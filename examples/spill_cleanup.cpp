// Spill + cleanup demo on a single machine, with real spill files.
//
// Shows the state-spill half of the paper in isolation: a memory
// threshold forces the engine to push its least productive partition
// groups to disk during the run; afterwards the cleanup processor merges
// the disk generations with the memory remainder and produces exactly
// the missed results. The example verifies exactness against an
// unconstrained reference run.

#include <algorithm>
#include <iostream>
#include <map>
#include <string>

#include "dcape.h"

namespace {

dcape::ClusterConfig BaseConfig() {
  using namespace dcape;
  ClusterConfig config;
  config.num_engines = 1;
  config.workload.num_streams = 3;
  config.workload.num_partitions = 16;
  config.workload.inter_arrival_ticks = 10;
  config.workload.classes = {PartitionClass{1.0, 640}};  // 40 keys/partition
  config.run_duration = MinutesToTicks(2);
  config.collect_results = true;
  config.cleanup.collect_results = true;
  return config;
}

std::map<std::string, int> Multiset(const std::vector<dcape::JoinResult>& v) {
  std::map<std::string, int> m;
  for (const auto& r : v) m[r.EncodeKey()] += 1;
  return m;
}

}  // namespace

int main() {
  using namespace dcape;
  Logging::SetLevel(LogLevel::kInfo);

  // Reference: everything in memory.
  ClusterConfig reference_config = BaseConfig();
  reference_config.strategy = AdaptationStrategy::kNoAdaptation;
  RunResult reference = Cluster(reference_config).Run();

  // Constrained: 128 KiB of state allowed, spill 40% when exceeded, to
  // real files under a temp directory.
  ClusterConfig constrained = BaseConfig();
  constrained.strategy = AdaptationStrategy::kSpillOnly;
  constrained.spill.memory_threshold_bytes = 128 * kKiB;
  constrained.spill.spill_fraction = 0.4;
  constrained.use_file_backend = true;
  constrained.file_backend_prefix = "dcape_spill_demo";
  RunResult result = Cluster(constrained).Run();

  std::cout << "\n--- spill & cleanup -------------------------------------\n";
  std::cout << "reference (all-memory) results: " << reference.runtime_results
            << "\n";
  std::cout << "constrained run-time results:   " << result.runtime_results
            << " (after " << result.spill_events << " spills, "
            << FormatBytes(result.spilled_bytes) << " to disk)\n";
  std::cout << "cleanup recovered:              " << result.cleanup.result_count
            << " results in " << result.cleanup.total_ticks
            << " virtual ms (" << result.cleanup.segments_read
            << " disk generations read)\n";

  // Verify exactness: runtime ∪ cleanup == reference, no duplicates.
  std::vector<JoinResult> all = result.collected;
  all.insert(all.end(), result.cleanup.results.begin(),
             result.cleanup.results.end());
  const bool exact = Multiset(all) == Multiset(reference.collected);
  std::cout << "runtime ∪ cleanup == reference: "
            << (exact ? "YES (exact, duplicate-free)" : "NO (BUG!)") << "\n";
  return exact ? 0 : 1;
}
