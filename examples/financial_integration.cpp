// The paper's motivating scenario (§1): a real-time financial data
// integration server joining currency-offer streams from three banks
//
//   SELECT ... FROM bank1, bank2, bank3
//   WHERE bank1.offerCurrency = bank2.offerCurrency
//     AND bank2.offerCurrency = bank3.offerCurrency ...
//
// running on a small cluster whose aggregate memory cannot hold the
// accumulated state of a full trading day. The lazy-disk strategy keeps
// the most productive currency partitions in memory (relocating them to
// wherever room remains) and defers the rest to disk, producing the
// missed matches in the post-market cleanup phase.

#include <iostream>

#include "dcape.h"

int main() {
  using namespace dcape;
  Logging::SetLevel(LogLevel::kInfo);

  ClusterConfig config;
  config.num_engines = 3;
  config.workload.num_streams = 3;     // bank1, bank2, bank3
  config.workload.num_partitions = 48; // currency-hash partitions
  config.workload.inter_arrival_ticks = 10;
  config.workload.payload_bytes = 96;  // offer, price, broker name, ...

  // Some currencies trade far more than others: 1/3 of the partitions are
  // "major pairs" (join rate 4), 1/3 moderate (2), 1/3 exotic (1).
  config.workload.classes = {PartitionClass{4.0, 48000},
                             PartitionClass{2.0, 48000},
                             PartitionClass{1.0, 48000}};
  config.workload.partition_class =
      AssignClassesByFraction(config.workload.num_partitions,
                              {1.0 / 3, 1.0 / 3, 1.0 / 3});

  // A "trading day" of 20 virtual minutes; each server can hold ~2 MiB of
  // join state — deliberately less than the day accumulates.
  config.run_duration = MinutesToTicks(20);
  config.strategy = AdaptationStrategy::kActiveDisk;
  config.spill.memory_threshold_bytes = 2 * kMiB;
  config.spill.policy = SpillPolicy::kLeastProductiveFirst;
  config.relocation.min_relocate_bytes = 64 * kKiB;
  config.active_disk.max_forced_spill_bytes = 2 * kMiB;
  config.active_disk.memory_pressure = 0.5;

  // Spill to real files, like the real system would.
  config.use_file_backend = true;
  config.file_backend_prefix = "dcape_financial";

  std::cout << "market open: streaming bank offers into the integration "
               "server...\n";
  Cluster cluster(config);
  RunResult result = cluster.Run();

  std::cout << "\n--- trading-day report ---------------------------------\n";
  std::cout << "matches delivered in real time:    " << result.runtime_results
            << "\n";
  std::cout << "matches recovered after close:     "
            << result.cleanup.result_count << " (cleanup took "
            << result.cleanup.total_ticks / 1000.0 << " virtual s)\n";
  std::cout << "offers ingested:                   " << result.tuples_generated
            << "\n";
  std::cout << "state relocations between servers: "
            << result.coordinator.relocations_completed << "\n";
  std::cout << "coordinator-forced spills:         "
            << result.coordinator.forced_spills << "\n";
  std::cout << "state spilled to disk:             "
            << FormatBytes(result.spilled_bytes) << " across "
            << result.spill_events << " spills\n";
  std::cout << "\nNo offer was dropped: every match is produced either in "
               "real time or by the cleanup phase (see the test suite's "
               "exactness properties).\n";
  return 0;
}
