// Infinite-stream mode: a sliding-window join over sensor-style streams.
//
// The paper's techniques target long-running but finite queries, noting
// they "could also be applied to cases with infinite data streams as
// long as operators have finite window sizes". This example runs that
// regime: a 3-way correlation over a 1-minute window. State eviction
// keeps each engine's memory pinned near one window of input — the run
// could continue forever — while the spill/relocation machinery still
// guards against bursts that outrun the window.

#include <iostream>

#include "dcape.h"

int main() {
  using namespace dcape;
  Logging::SetLevel(LogLevel::kInfo);

  ClusterConfig config;
  config.num_engines = 2;
  config.workload.num_streams = 3;      // three sensor feeds
  config.workload.num_partitions = 24;  // by device-group hash
  config.workload.inter_arrival_ticks = 10;
  config.workload.classes = {PartitionClass{2.0, 9600}};
  config.run_duration = MinutesToTicks(15);

  // Correlate readings within one minute of each other.
  config.join_window_ticks = MinutesToTicks(1);

  // A burst guard: if a load spike outruns eviction, lazy-disk takes
  // over (relocate first, spill as a last resort).
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.spill.memory_threshold_bytes = 2 * kMiB;
  config.relocation.min_relocate_bytes = 64 * kKiB;

  // A 5-minute 10x burst on half the device groups.
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = MinutesToTicks(5);
  config.workload.fluctuation.hot_multiplier = 10.0;

  Cluster cluster(config);
  RunResult result = cluster.Run();

  std::cout << "\n--- continuous monitoring (1-minute window) ------------\n";
  result.PrintSummary(std::cout);
  int64_t evicted = 0;
  for (const auto& c : result.engines) evicted += c.evicted_tuples;
  std::cout << "window-expired tuples evicted: " << evicted << "\n";

  std::cout << "\nper-engine state over time (KiB) — plateaus instead of "
               "growing:\n";
  TablePrinter table({"minute", "engine0", "engine1"});
  for (int minute = 0; minute <= 15; minute += 3) {
    const Tick t = MinutesToTicks(minute);
    table.AddRow({std::to_string(minute),
                  FormatDouble(result.engine_memory[0].ValueAtOrBefore(t) /
                                   kKiB, 0),
                  FormatDouble(result.engine_memory[1].ValueAtOrBefore(t) /
                                   kKiB, 0)});
  }
  table.Print(std::cout);

  std::cout << "\nbecause every tuple older than the window is evicted, the "
               "run-time memory is bounded by ~rate x window — this query "
               "can run forever.\n";
  return 0;
}
