// Quickstart: run a partitioned 3-way stream join on a simulated
// 2-machine cluster with the lazy-disk adaptation strategy, and print
// what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "dcape.h"

int main() {
  using namespace dcape;

  // Narrate adaptations on stderr.
  Logging::SetLevel(LogLevel::kInfo);

  ClusterConfig config;

  // The query: a 3-way symmetric hash join (A ⋈ B ⋈ C), hash-partitioned
  // into 24 partitions spread over 2 query engines.
  config.num_engines = 2;
  config.workload.num_streams = 3;
  config.workload.num_partitions = 24;
  config.workload.inter_arrival_ticks = 10;   // one tuple per stream / 10 ms
  config.workload.classes = {PartitionClass{/*join_rate=*/2.0,
                                            /*tuple_range=*/12000}};

  // Skew the initial placement so there is something to adapt.
  config.placement_fractions = {0.75, 0.25};

  // The paper's integrated strategy: relocate while any machine has room,
  // spill to disk only as a last resort.
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.spill.memory_threshold_bytes = 1536 * kKiB;
  config.spill.spill_fraction = 0.3;
  config.relocation.theta_r = 0.8;
  config.relocation.min_time_between = SecondsToTicks(10);
  config.relocation.min_relocate_bytes = 16 * kKiB;

  // A 5-minute (virtual) run; finishes in well under a second of real
  // time. The cleanup phase then produces every result the run-time phase
  // had to defer to disk.
  config.run_duration = MinutesToTicks(5);

  Cluster cluster(config);
  RunResult result = cluster.Run();

  std::cout << "\n--- quickstart summary ---------------------------------\n";
  result.PrintSummary(std::cout);
  std::cout << "total results (runtime + cleanup): " << result.TotalResults()
            << "\n";
  for (size_t e = 0; e < result.engines.size(); ++e) {
    const auto& c = result.engines[e];
    std::cout << "engine " << e << ": processed " << c.tuples_processed
              << " tuples, produced " << c.results_produced
              << " results, spilled " << FormatBytes(c.spilled_bytes)
              << ", relocated out " << FormatBytes(c.bytes_relocated_out)
              << ", in " << FormatBytes(c.bytes_relocated_in) << "\n";
  }
  std::cout << "network: " << result.network.messages_sent << " messages, "
            << FormatBytes(result.network.bytes_sent) << " ("
            << FormatBytes(result.network.state_transfer_bytes)
            << " of relocated state)\n";
  return 0;
}
