// State-relocation demo: a 2-machine cluster under the paper's
// worst-case alternating workload (the hot half of the input flips every
// few minutes, §4.2). The global coordinator keeps memory balanced by
// moving partition groups through the 8-step relocation protocol; this
// example prints the resulting memory trajectories side by side.

#include <iostream>

#include "dcape.h"

namespace {

dcape::ClusterConfig BaseConfig() {
  using namespace dcape;
  ClusterConfig config;
  config.num_engines = 2;
  config.workload.num_streams = 3;
  config.workload.num_partitions = 32;
  config.workload.inter_arrival_ticks = 10;
  config.workload.classes = {PartitionClass{2.0, 19200}};
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = MinutesToTicks(2);
  config.workload.fluctuation.hot_multiplier = 10.0;
  config.run_duration = MinutesToTicks(10);
  config.sample_period = SecondsToTicks(30);
  // Memory is not constrained here; this is purely about balance.
  config.spill.memory_threshold_bytes = 1 * kGiB;
  config.relocation.theta_r = 0.8;
  config.relocation.min_time_between = SecondsToTicks(30);
  config.relocation.min_relocate_bytes = 32 * kKiB;
  return config;
}

}  // namespace

int main() {
  using namespace dcape;
  Logging::SetLevel(LogLevel::kInfo);

  ClusterConfig without = BaseConfig();
  without.strategy = AdaptationStrategy::kNoAdaptation;
  RunResult no_reloc = Cluster(without).Run();

  ClusterConfig with = BaseConfig();
  with.strategy = AdaptationStrategy::kRelocationOnly;
  RunResult reloc = Cluster(with).Run();

  std::cout << "\nper-machine state (KiB), no relocation vs relocation:\n";
  TablePrinter table({"minute", "static-M1", "static-M2", "adaptive-M1",
                      "adaptive-M2", "relocated?"});
  for (int minute = 0; minute <= 10; ++minute) {
    const Tick t = MinutesToTicks(minute);
    auto kib = [&](const TimeSeries& s) {
      return FormatDouble(s.ValueAtOrBefore(t) / kKiB, 0);
    };
    table.AddRow({std::to_string(minute), kib(no_reloc.engine_memory[0]),
                  kib(no_reloc.engine_memory[1]),
                  kib(reloc.engine_memory[0]), kib(reloc.engine_memory[1]),
                  ""});
  }
  table.Print(std::cout);

  std::cout << "\nrelocations completed: "
            << reloc.coordinator.relocations_completed << " ("
            << FormatBytes(reloc.coordinator.bytes_relocated)
            << " of state moved, "
            << FormatBytes(reloc.network.state_transfer_bytes)
            << " on the wire)\n";
  std::cout << "throughput: static=" << no_reloc.runtime_results
            << " adaptive=" << reloc.runtime_results
            << " (identical input, identical results — relocation is "
               "output-transparent)\n";
  return 0;
}
