// End-to-end reproduction of the paper's QUERY 1 (§1):
//
//   SELECT brokerName, min(price)
//   FROM bank1, bank2, bank3
//   WHERE bank1.offerCurrency = bank2.offerCurrency
//     AND bank2.offerCurrency = bank3.offerCurrency
//     AND ... (offer / timestamp conditions)
//   GROUP BY brokerName
//
// Mapping onto the library: the three bank streams are the join inputs,
// `offerCurrency` is the join column (hash-partitioned by the splits),
// `price` is the numeric column, `brokerName` the categorical column. A
// WHERE-style selection keeps only offers within a price band, the
// post-join projection emits (broker, min over the matched offers'
// prices), and the application server's GroupByAggregate maintains
// min(price) per broker — folding in the cleanup phase's late results so
// the final answer is exact even though the cluster spilled.

#include <iostream>

#include "dcape.h"

int main() {
  using namespace dcape;
  Logging::SetLevel(LogLevel::kWarning);

  ClusterConfig config;
  config.num_engines = 2;
  config.workload.num_streams = 3;       // bank1, bank2, bank3
  config.workload.num_partitions = 24;   // currency partitions
  config.workload.inter_arrival_ticks = 10;
  config.workload.num_categories = 12;   // brokers
  config.workload.value_min = 100;       // price range
  config.workload.value_max = 999;
  config.workload.classes = {PartitionClass{2.0, 12000}};
  config.run_duration = MinutesToTicks(5);

  // WHERE price <= 800 on every bank's stream.
  SelectPredicate band;
  band.max_value = 800;
  config.select_per_stream = {band, band, band};
  // Project away the wide free-text columns before shipping.
  config.project_payload_to = 16;

  // SELECT brokerName, min(price): broker taken from bank1's offer, the
  // minimum over the three matched offers' prices.
  ResultProjection projection;
  projection.group_stream = 0;
  projection.op = AggregateOp::kMin;
  config.projection = projection;
  config.aggregate_op = AggregateOp::kMin;

  // A memory-constrained cluster running lazy-disk.
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.spill.memory_threshold_bytes = 512 * kKiB;
  config.relocation.min_relocate_bytes = 32 * kKiB;
  config.cleanup.collect_results = true;

  Cluster cluster(config);
  RunResult result = cluster.Run();

  // Fold the cleanup's late results into the aggregate for the final,
  // exact answer (min is insensitive to arrival order).
  GroupByAggregate* aggregate = cluster.aggregate();
  aggregate->ConsumeAll(result.cleanup.results);

  std::cout << "QUERY 1 over " << result.tuples_generated
            << " bank offers (" << result.runtime_results
            << " matches in real time, " << result.cleanup.result_count
            << " recovered by cleanup after " << result.spill_events
            << " spills and " << result.coordinator.relocations_completed
            << " relocations)\n\n";

  std::cout << "brokerName | min(price) | matches\n";
  TablePrinter table({"broker", "min(price)", "matches"});
  for (const auto& [broker, state] : aggregate->TopByAggregate(12)) {
    table.AddRow({"broker-" + std::to_string(broker),
                  std::to_string(state.aggregate),
                  std::to_string(state.count)});
  }
  table.Print(std::cout);

  std::cout << "\n(no broker shows a price above 800 — the WHERE selection "
               "ran before the join; selectivity "
            << FormatDouble(cluster.split_host().select(0)->selectivity(), 3)
            << ", "
            << FormatBytes(cluster.split_host().project()->bytes_saved())
            << " of payload projected away)\n";
  return 0;
}
