#!/usr/bin/env python3
"""dcape-lint — project-specific determinism/protocol linter for DCAPE.

Encodes invariants no generic tool knows about this codebase:

  wall-clock          No wall-clock time, std::random_device, or libc
                      rand() outside src/sim and tools. The engine runs
                      on a virtual clock and seeded splitmix64 streams;
                      one wall-clock read makes replay non-bit-identical.
  unordered-net       No iteration over std::unordered_map/set in any
                      function that (transitively) reaches Network::Send
                      or serialization. Hash iteration order depends on
                      the library and on insertion history, so it leaks
                      nondeterminism into message and blob bytes.
  ptr-key-ordered     No std::map/std::set keyed on a pointer. Address
                      order changes run to run, so iteration order —
                      and everything derived from it — is random.
  phase-switch        Every `switch` over a relocation-protocol phase
                      enum needs a `default:` arm containing DCAPE_CHECK
                      (protocol-state corruption must abort, not fall
                      through), unless the switch carries a TODO.
  statusor-unchecked  A local StatusOr must be checked (.ok() /
                      .status()) before it is dereferenced with *, ->,
                      or .value().
  trace-name          Every tracer Emit*/BeginSpan/EndSpan and registry
                      AddCounter/AddGauge/AddHistogram call must name
                      its event/metric with a registered taxonomy
                      constant (obs::ev::k* / obs::m::k*, see
                      src/obs/taxonomy.h) — never a string literal or a
                      built-up string. Stable name identities are what
                      make traces diffable and schema-checkable.

Usage:
  dcape_lint.py [--root=DIR] [--check=NAME] [--list] [--selftest]
                [--compile-commands=PATH] [files...]

Suppression: append `// dcape-lint: allow(<check>)` to the offending
line or the line directly above it. Suppressions are greppable — every
intentional exception stays visible.

The linter prefers a libclang AST when the python `clang` bindings are
importable (function extents and types come from the real parser); it
falls back to a built-in lexer (comment/string-stripping, brace
matching, declaration regexes) that encodes the repo's house style.
Both backends feed the same checks. Exit status: 0 clean, 1 findings,
2 bad flags — mirroring dcape_chaos.
"""

import json
import os
import re
import sys

# ---------------------------------------------------------------------------
# Source model
# ---------------------------------------------------------------------------


class Function:
    """One function definition: qualified name, body text, call sites."""

    def __init__(self, name, qualname, file, line, body):
        self.name = name          # unqualified (Send, Serialize, ...)
        self.qualname = qualname  # Class::Send or Send
        self.file = file
        self.line = line          # 1-based line of the body's first line
        self.body = body          # body text, comments/strings blanked
        self.calls = set()        # unqualified callee names

    def __repr__(self):
        return f"<fn {self.qualname} {self.file}:{self.line}>"


class SourceFile:
    """A lexed translation unit: cleaned text plus extracted facts."""

    def __init__(self, path, raw):
        self.path = path
        self.raw = raw
        self.lines = raw.split("\n")
        self.clean = blank_comments_and_strings(raw)
        self.clean_lines = self.clean.split("\n")
        self.functions = []
        self.unordered_idents = set()   # identifiers with unordered_* type
        self.unordered_returners = set()  # functions returning unordered_*

    def line_of_offset(self, offset):
        return self.clean.count("\n", 0, offset) + 1


_ALLOW_RE = re.compile(r"//\s*dcape-lint:\s*allow\(([a-z0-9_,\s-]+)\)")


def suppressed(source, line, check):
    """True if `line` (1-based) or the line above carries allow(check)."""
    for candidate in (line, line - 1):
        if 1 <= candidate <= len(source.lines):
            m = _ALLOW_RE.search(source.lines[candidate - 1])
            if m and check in [c.strip() for c in m.group(1).split(",")]:
                return True
    return False


def blank_comments_and_strings(text):
    """Replaces comment/string/char contents with spaces, preserving
    newlines and the `// dcape-lint:` suppression comments' positions
    (suppressions are read from the raw text, not the cleaned one)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i:j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == '"':
            # Raw strings R"delim( ... )delim" need their own scan.
            if i >= 1 and text[i - 1] == "R":
                m = re.match(r'"([^(\s]*)\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    j = text.find(closer, i)
                    j = n - len(closer) if j == -1 else j
                    chunk = text[i:j + len(closer)]
                    out.append("".join(
                        ch if ch == "\n" else " " for ch in chunk))
                    i = j + len(closer)
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append('"' + " " * (j - i - 1) + '"')
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append("'" + " " * (j - i - 1) + "'")
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


# A function definition header: optional template/attrs consumed
# implicitly by requiring a return-ish token before the name. Matches
# `Ret Ns::Class::Name(...) ... {` and free `Ret Name(...) {`.
_FUNC_RE = re.compile(
    r"""(?:^|\n)
        [ \t]*
        (?P<head>[A-Za-z_][\w:<>,&*\s\[\]]*?)          # return type ish
        [&*\s]
        (?P<qual>(?:[A-Za-z_]\w*::)*)                  # Class:: chain
        (?P<name>~?[A-Za-z_]\w*|operator[^\s(]{1,3})   # name
        \s*\((?P<params>[^;{}]*?)\)
        (?P<trail>[^;{}()]*)                           # const/noexcept/attrs
        \{""",
    re.VERBOSE,
)

_KEYWORD_NAMES = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "new", "delete", "case", "default", "static_assert",
    "alignof", "decltype", "defined",
}

_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def match_brace(text, open_idx):
    """Index just past the `}` matching the `{` at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def lex_functions(source):
    """Extracts function definitions with the fallback lexer."""
    text = source.clean
    for m in _FUNC_RE.finditer(text):
        name = m.group("name")
        if name in _KEYWORD_NAMES:
            continue
        head = m.group("head").strip()
        # Reject control-flow masquerading as definitions and decls
        # inside expressions (heads ending in operators).
        if head.split()[-1:] and head.split()[-1] in _KEYWORD_NAMES:
            continue
        open_idx = m.end() - 1
        close_idx = match_brace(text, open_idx)
        body = text[open_idx:close_idx]
        qual = (m.group("qual") or "")
        fn = Function(
            name=name,
            qualname=qual + name,
            file=source.path,
            line=source.line_of_offset(m.start("name")),
            body=body,
        )
        for call in _CALL_RE.finditer(body):
            callee = call.group(1)
            if callee not in _KEYWORD_NAMES:
                fn.calls.add(callee)
        source.functions.append(fn)


_UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\b"
)
# `<type containing unordered_> name_{ = ... ;}` — member or local.
_DECL_IDENT_RE = re.compile(
    r"unordered_[^;{}()]*?>[&\s]+([A-Za-z_]\w*)\s*[;={(\[]"
)
# Aliases: `auto& x = <expr>` / `const auto& x = <expr>;`
_ALIAS_RE = re.compile(
    r"\bauto&?\s+([A-Za-z_]\w*)\s*=\s*([^;]+);"
)
# Function whose declared return type mentions unordered_.
_UNORDERED_RETURN_RE = re.compile(
    r"unordered_[^;{}()]*?>&?\s*\n?\s*(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\("
)


def collect_unordered_symbols(source):
    """Identifiers (members, locals, aliases) of unordered container
    type, plus names of functions returning unordered containers."""
    text = source.clean
    for m in _DECL_IDENT_RE.finditer(text):
        source.unordered_idents.add(m.group(1))
    for m in _UNORDERED_RETURN_RE.finditer(text):
        source.unordered_returners.add(m.group(1))
    # Aliases (`auto& t = tables_[i];`) are collected per function in
    # iterates_unordered — an alias in one function must not taint a
    # same-named local elsewhere in the file.


def alias_tainted(source, expr, extra=()):
    """Taint rule for `auto x = <expr>` aliases. When the initializer
    goes through function calls, the alias has whatever those functions
    return — `SortedBuckets(tables_[s])` yields a sorted vector, not the
    hash map it was built from — so only calls to known
    unordered-returning functions taint. A double subscript
    (`tables_[s][key]`) lands in the mapped value, not the map.
    Call-free single-subscript initializers (`tables_[s]`,
    `hub.per_engine_bytes_`) taint by identifier."""
    calls = re.findall(r"\b([A-Za-z_]\w*)\s*\(", expr)
    if calls:
        return any(c in source.unordered_returners or
                   c in GLOBAL_UNORDERED_RETURNERS for c in calls)
    if re.search(r"\]\s*\[", expr):
        return False
    return tainted_expr(source, expr, extra)


def function_alias_taint(source, fn):
    """Identifiers aliased to unordered containers within fn's body."""
    local = set()
    for _ in range(2):
        for m in _ALIAS_RE.finditer(fn.body):
            if alias_tainted(source, m.group(2), local):
                local.add(m.group(1))
    return local


def tainted_expr(source, expr, extra=()):
    """True when `expr` plausibly names/returns an unordered container."""
    for ident in re.findall(r"[A-Za-z_]\w*", expr):
        if ident in extra:
            return True
        if ident in source.unordered_idents:
            return True
        if ident in source.unordered_returners:
            return True
        if ident in GLOBAL_UNORDERED_RETURNERS:
            return True
        if ident in GLOBAL_UNORDERED_IDENTS:
            return True
    return False


# Populated across all files before checks run (TableForStream etc. are
# declared in headers but iterated in other TUs).
GLOBAL_UNORDERED_RETURNERS = set()
GLOBAL_UNORDERED_IDENTS = set()


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


def try_libclang():
    """Returns the clang.cindex module when usable, else None."""
    try:
        import clang.cindex as cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def parse_with_libclang(cindex, path, compile_args, source):
    """AST-precise function extraction; falls back on parse failure."""
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=compile_args)
    except Exception:
        lex_functions(source)
        return
    from clang.cindex import CursorKind  # type: ignore
    fn_kinds = {
        CursorKind.FUNCTION_DECL,
        CursorKind.CXX_METHOD,
        CursorKind.CONSTRUCTOR,
        CursorKind.DESTRUCTOR,
        CursorKind.FUNCTION_TEMPLATE,
        CursorKind.LAMBDA_EXPR,
    }

    def walk(cursor):
        for child in cursor.get_children():
            loc = child.location
            if loc.file is None or os.path.realpath(
                    loc.file.name) != os.path.realpath(path):
                walk(child)
                continue
            if child.kind in fn_kinds and child.is_definition():
                ext = child.extent
                body = "\n".join(
                    source.clean_lines[ext.start.line - 1:ext.end.line])
                fn = Function(
                    name=child.spelling,
                    qualname=qualify(child),
                    file=path,
                    line=ext.start.line,
                    body=body,
                )
                for call in _CALL_RE.finditer(body):
                    if call.group(1) not in _KEYWORD_NAMES:
                        fn.calls.add(call.group(1))
                source.functions.append(fn)
            walk(child)

    def qualify(cursor):
        parts = [cursor.spelling]
        parent = cursor.semantic_parent
        while parent is not None and parent.spelling and \
                parent.kind.name != "TRANSLATION_UNIT":
            parts.append(parent.spelling)
            parent = parent.semantic_parent
        return "::".join(reversed(parts))

    walk(tu.cursor)
    if not source.functions:
        lex_functions(source)


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


class Finding:
    def __init__(self, check, file, line, message):
        self.check = check
        self.file = file
        self.line = line
        self.message = message

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"


_WALLCLOCK_PATTERNS = [
    (re.compile(r"\bstd::chrono\b"), "std::chrono"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"(?<![\w:])(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:nullptr|NULL|0|&)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\bstd::this_thread::sleep_"), "sleep_for/sleep_until"),
]

# Paths (relative, '/'-separated) where wall-clock and OS randomness are
# legitimate: the chaos harness seeds from them, tools print wall
# durations, and src/rt/ IS the wall-clock plane (the realtime driver's
# whole job is steady-clock pacing and bounded waits). Everything else
# runs on the virtual clock.
_WALLCLOCK_EXEMPT = ("src/sim/", "src/rt/", "tools/")


def check_wall_clock(sources, relpath):
    findings = []
    for source in sources:
        rel = relpath(source.path)
        if rel.startswith(_WALLCLOCK_EXEMPT):
            continue
        for lineno, line in enumerate(source.clean_lines, 1):
            for pattern, label in _WALLCLOCK_PATTERNS:
                if pattern.search(line):
                    if suppressed(source, lineno, "wall-clock"):
                        continue
                    findings.append(Finding(
                        "wall-clock", rel, lineno,
                        f"{label} outside src/sim|tools: determinism "
                        "requires the virtual clock and seeded streams"))
    return findings


# Serialization sinks: functions that turn state into bytes. Reaching
# one of these (or Network::Send) from a hash-order iteration leaks the
# order into observable bytes.
_SINK_NAMES = {
    "Send", "Serialize", "EncodeTuple", "EncodeTupleBatch",
    "PutU8", "PutU32", "PutU64", "PutI32", "PutI64", "PutString",
    "PutVarint", "PutZigzag", "PutVString",
}

_RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*?):([^)]*)\)")
# Classic iterator loop: `for (auto it = x.begin(); ...`. A bare
# x.begin()/x.end() pair outside a for-header is NOT flagged — that is
# the sanctioned fix idiom (copy into a vector, then sort).
_ITER_FOR_RE = re.compile(
    r"\bfor\s*\([^;)]*=\s*([A-Za-z_][\w.\->\[\]]*)\s*\.\s*begin\s*\(")


def build_call_closure(functions):
    """Names (unqualified) of functions that transitively reach a sink."""
    by_name = {}
    for fn in functions:
        by_name.setdefault(fn.name, []).append(fn)
    reaching = set()
    changed = True
    while changed:
        changed = False
        for fn in functions:
            if fn.name in reaching:
                continue
            hit = any(c in _SINK_NAMES or c in reaching for c in fn.calls)
            if hit:
                reaching.add(fn.name)
                changed = True
    return reaching


def iterates_unordered(source, fn):
    """(line, expr) pairs where fn's body iterates an unordered
    container."""
    hits = []
    base_line = fn.line
    local = function_alias_taint(source, fn)
    for m in _RANGE_FOR_RE.finditer(fn.body):
        expr = m.group(2).strip()
        if _UNORDERED_DECL_RE.search(expr) or \
                tainted_expr(source, expr, local):
            line = base_line + fn.body.count("\n", 0, m.start())
            hits.append((line, expr))
    for m in _ITER_FOR_RE.finditer(fn.body):
        expr = m.group(1).strip()
        if tainted_expr(source, expr, local):
            line = base_line + fn.body.count("\n", 0, m.start())
            hits.append((line, expr + ".begin()"))
    return hits


def check_unordered_net(sources, relpath):
    all_functions = [fn for s in sources for fn in s.functions]
    reaching = build_call_closure(all_functions)
    findings = []
    for source in sources:
        for fn in source.functions:
            fn_is_sink = fn.name in _SINK_NAMES
            fn_reaches = fn.name in reaching or \
                any(c in _SINK_NAMES for c in fn.calls)
            if not (fn_is_sink or fn_reaches):
                continue
            for line, expr in iterates_unordered(source, fn):
                if suppressed(source, line, "unordered-net"):
                    continue
                findings.append(Finding(
                    "unordered-net", relpath(source.path), line,
                    f"{fn.qualname} iterates unordered container "
                    f"'{expr}' and reaches Network::Send/serialization: "
                    "hash order would leak into message/blob bytes "
                    "(sort into a vector first)"))
    return findings


_PTR_KEY_RE = re.compile(
    r"\bstd::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?"
    r"[A-Za-z_][\w:<>\s]*?\*\s*[,>]"
)


def check_ptr_key_ordered(sources, relpath):
    findings = []
    for source in sources:
        for lineno, line in enumerate(source.clean_lines, 1):
            if _PTR_KEY_RE.search(line):
                if suppressed(source, lineno, "ptr-key-ordered"):
                    continue
                findings.append(Finding(
                    "ptr-key-ordered", relpath(source.path), lineno,
                    "ordered container keyed on a pointer: address order "
                    "differs run to run, so iteration order is "
                    "nondeterministic (key on a stable id instead)"))
    return findings


_SWITCH_RE = re.compile(r"\bswitch\s*\(")
_PHASE_COND_RE = re.compile(r"\b(?:Phase|phase)\b")
_TODO_RE = re.compile(r"\bTODO\b")
_DEFAULT_ARM_RE = re.compile(r"\bdefault\s*:")


def check_phase_switch(sources, relpath):
    findings = []
    for source in sources:
        text = source.clean
        for m in _SWITCH_RE.finditer(text):
            cond_open = text.find("(", m.start())
            cond_close = matching_paren(text, cond_open)
            cond = text[cond_open + 1:cond_close]
            if not _PHASE_COND_RE.search(cond):
                continue
            body_open = text.find("{", cond_close)
            if body_open == -1:
                continue
            body_close = match_brace(text, body_open)
            body = text[body_open:body_close]
            line = source.line_of_offset(m.start())
            raw_body = "\n".join(
                source.lines[line - 1:
                             source.line_of_offset(body_close)])
            if _TODO_RE.search(raw_body):
                continue  # explicitly marked unfinished
            default_ok = False
            dm = _DEFAULT_ARM_RE.search(body)
            if dm:
                arm = body[dm.end():dm.end() + 400]
                if "DCAPE_CHECK" in arm or "CheckFailed" in arm:
                    default_ok = True
            if default_ok:
                continue
            if suppressed(source, line, "phase-switch"):
                continue
            findings.append(Finding(
                "phase-switch", relpath(source.path), line,
                "switch over a protocol phase enum without a "
                "`default: DCAPE_CHECK(...)` arm: a corrupt phase value "
                "must abort, not fall through"))
    return findings


def matching_paren(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


_STATUSOR_DECL_RE = re.compile(
    r"\bStatusOr<[^;=]*?>\s+([A-Za-z_]\w*)\s*[=({]"
)


def check_statusor_unchecked(sources, relpath):
    findings = []
    for source in sources:
        for fn in source.functions:
            for m in _STATUSOR_DECL_RE.finditer(fn.body):
                var = m.group(1)
                rest = fn.body[m.end():]
                deref = re.search(
                    r"(?:\*\s*{v}\b|\b{v}\s*->|\b{v}\s*\.\s*value\s*\()"
                    .format(v=re.escape(var)), rest)
                if not deref:
                    continue
                checked = re.search(
                    r"\b{v}\s*\.\s*(?:ok|status)\s*\(".format(
                        v=re.escape(var)), rest[:deref.start()])
                if checked:
                    continue
                line = fn.line + fn.body.count("\n", 0, m.start())
                if suppressed(source, line, "statusor-unchecked"):
                    continue
                findings.append(Finding(
                    "statusor-unchecked", relpath(source.path), line,
                    f"StatusOr '{var}' is dereferenced before any "
                    ".ok()/.status() check: an error here aborts via "
                    "DCAPE_CHECK instead of propagating"))
    return findings


# Tracer / registry calls whose name argument (0-based position) must be
# a taxonomy constant. Emit(TraceEvent) builds the struct directly and is
# only used inside src/obs/, which is exempt (it forwards caller names).
_TRACE_NAME_ARG_POS = {
    "EmitInstant": 2,
    "EmitComplete": 2,
    "BeginSpan": 2,
    "EndSpan": 2,
    "EmitCounter": 2,
    "AddCounter": 0,
    "AddGauge": 0,
    "AddHistogram": 0,
}
_TRACE_CALL_RE = re.compile(
    r"\b(" + "|".join(_TRACE_NAME_ARG_POS) + r")\s*\("
)
_TRACE_NAME_OK_RE = re.compile(r"^\s*(?:obs::)?(?:ev|m)::k\w+\s*$")


def split_top_level_args(text):
    """Splits an argument list on commas at bracket depth 0."""
    args = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(text[start:i])
            start = i + 1
    args.append(text[start:])
    return args


def check_trace_name(sources, relpath):
    findings = []
    for source in sources:
        rel = relpath(source.path)
        if rel.startswith("src/obs/"):
            continue  # the implementation layer forwards caller names
        text = source.clean
        for m in _TRACE_CALL_RE.finditer(text):
            callee = m.group(1)
            close = matching_paren(text, m.end() - 1)
            args = split_top_level_args(text[m.end():close])
            pos = _TRACE_NAME_ARG_POS[callee]
            if len(args) <= pos:
                continue  # a declaration or an unrelated overload
            name_arg = args[pos]
            if _TRACE_NAME_OK_RE.match(name_arg):
                continue
            # Declarations name the parameter's type, not a value.
            if re.search(r"\bconst\s+char\s*\*", name_arg):
                continue
            line = source.line_of_offset(m.start())
            if suppressed(source, line, "trace-name"):
                continue
            findings.append(Finding(
                "trace-name", rel, line,
                f"{callee} name argument '{name_arg.strip()}' is not a "
                "registered taxonomy constant (obs::ev::k*/obs::m::k*): "
                "add the name to src/obs/taxonomy.h and pass the "
                "constant"))
    return findings


CHECKS = {
    "wall-clock": check_wall_clock,
    "unordered-net": check_unordered_net,
    "ptr-key-ordered": check_ptr_key_ordered,
    "phase-switch": check_phase_switch,
    "statusor-unchecked": check_statusor_unchecked,
    "trace-name": check_trace_name,
}


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def discover_files(root, compile_commands):
    """Translation units + headers to lint. compile_commands.json is the
    source of truth for .cc files when present; headers are walked."""
    files = []
    seen = set()
    if compile_commands and os.path.exists(compile_commands):
        try:
            with open(compile_commands) as f:
                for entry in json.load(f):
                    path = os.path.realpath(
                        os.path.join(entry.get("directory", ""),
                                     entry["file"]))
                    if is_linted_path(root, path) and path not in seen:
                        seen.add(path)
                        files.append(path)
        except (OSError, ValueError, KeyError):
            pass
    for base in ("src", "tools"):
        top = os.path.join(root, base)
        for dirpath, _, names in os.walk(top):
            for name in sorted(names):
                if not name.endswith((".h", ".cc")):
                    continue
                path = os.path.realpath(os.path.join(dirpath, name))
                if is_linted_path(root, path) and path not in seen:
                    seen.add(path)
                    files.append(path)
    return sorted(files)


def is_linted_path(root, path):
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    if rel.startswith(".."):
        return False
    if "tests/lint_fixtures" in rel:
        return False  # intentionally-bad fixtures; linted by --selftest
    if rel.startswith("build"):
        return False
    return rel.endswith((".h", ".cc"))


def load_sources(paths, cindex, compile_args_by_file):
    sources = []
    for path in paths:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw = f.read()
        except OSError as e:
            print(f"dcape-lint: cannot read {path}: {e}", file=sys.stderr)
            continue
        source = SourceFile(path, raw)
        collect_unordered_symbols(source)
        if cindex is not None and path.endswith(".cc"):
            parse_with_libclang(
                cindex, path, compile_args_by_file.get(path, ["-std=c++20"]),
                source)
        else:
            lex_functions(source)
        sources.append(source)
    for source in sources:
        GLOBAL_UNORDERED_RETURNERS.update(source.unordered_returners)
        # Only members (trailing-underscore house convention) taint
        # across files; a local named `out` in one TU must not flag
        # every `out` in the repo.
        GLOBAL_UNORDERED_IDENTS.update(
            i for i in source.unordered_idents if i.endswith("_"))
    return sources


def run_checks(sources, root, selected):
    def relpath(path):
        return os.path.relpath(path, root).replace(os.sep, "/")
    findings = []
    for name in selected:
        findings.extend(CHECKS[name](sources, relpath))
    findings.sort(key=lambda f: (f.file, f.line, f.check))
    return findings


def compile_args_from_db(compile_commands):
    args_by_file = {}
    if not (compile_commands and os.path.exists(compile_commands)):
        return args_by_file
    try:
        with open(compile_commands) as f:
            for entry in json.load(f):
                path = os.path.realpath(
                    os.path.join(entry.get("directory", ""), entry["file"]))
                raw = entry.get("arguments") or entry.get("command", "").split()
                args = [a for a in raw[1:]
                        if a.startswith(("-I", "-D", "-std", "-isystem"))]
                args_by_file[path] = args
    except (OSError, ValueError, KeyError):
        pass
    return args_by_file


def selftest(root, cindex):
    """Every tests/lint_fixtures/bad_<check>*.cc must trigger exactly its
    check; clean_*.cc and suppressed_*.cc must be finding-free."""
    fixtures = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"dcape-lint selftest: no fixtures dir at {fixtures}",
              file=sys.stderr)
        return 1
    failures = 0
    names = sorted(n for n in os.listdir(fixtures) if n.endswith(".cc"))
    if not names:
        print("dcape-lint selftest: fixtures dir is empty", file=sys.stderr)
        return 1
    for name in names:
        path = os.path.join(fixtures, name)
        # Fixture files are self-contained: reset cross-file state.
        GLOBAL_UNORDERED_RETURNERS.clear()
        GLOBAL_UNORDERED_IDENTS.clear()
        sources = load_sources([path], cindex, {})
        findings = run_checks(sources, fixtures, list(CHECKS))
        checks_hit = {f.check for f in findings}
        if name.startswith("bad_"):
            stem = name[len("bad_"):-len(".cc")]
            expected = stem.replace("_", "-")
            # allow a numeric suffix: bad_wall_clock_2.cc
            expected = re.sub(r"-\d+$", "", expected)
            if expected not in CHECKS:
                print(f"FAIL {name}: fixture names unknown check "
                      f"'{expected}'")
                failures += 1
            elif checks_hit != {expected}:
                print(f"FAIL {name}: expected only [{expected}], "
                      f"got {sorted(checks_hit) or 'nothing'}")
                for f in findings:
                    print(f"    {f}")
                failures += 1
            else:
                print(f"ok   {name}: triggers [{expected}]")
        elif name.startswith(("clean_", "suppressed_")):
            if findings:
                print(f"FAIL {name}: expected no findings, got:")
                for f in findings:
                    print(f"    {f}")
                failures += 1
            else:
                print(f"ok   {name}: no findings")
        else:
            print(f"FAIL {name}: fixture must be named bad_*/clean_*/"
                  "suppressed_*")
            failures += 1
    print(f"selftest: {len(names)} fixtures, {failures} failures")
    return 1 if failures else 0


def main(argv):
    root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    compile_commands = None
    selected = list(CHECKS)
    explicit_files = []
    do_selftest = False

    for arg in argv:
        if arg == "--list":
            for name in CHECKS:
                print(name)
            return 0
        if arg == "--selftest":
            do_selftest = True
        elif arg.startswith("--check="):
            name = arg.split("=", 1)[1]
            if name not in CHECKS:
                print(f"unknown check '{name}' "
                      f"(known: {', '.join(CHECKS)})", file=sys.stderr)
                return 2
            selected = [name]
        elif arg.startswith("--root="):
            root = os.path.realpath(arg.split("=", 1)[1])
        elif arg.startswith("--compile-commands="):
            compile_commands = arg.split("=", 1)[1]
        elif arg in ("--help", "-h"):
            print(__doc__)
            return 0
        elif arg.startswith("--"):
            print(f"unknown flag '{arg}' (see --help)", file=sys.stderr)
            return 2
        else:
            explicit_files.append(os.path.realpath(arg))

    if compile_commands is None:
        default_db = os.path.join(root, "build", "compile_commands.json")
        compile_commands = default_db if os.path.exists(default_db) else None

    cindex = try_libclang()

    if do_selftest:
        return selftest(root, cindex)

    paths = explicit_files or discover_files(root, compile_commands)
    args_by_file = compile_args_from_db(compile_commands)
    sources = load_sources(paths, cindex, args_by_file)
    findings = run_checks(sources, root, selected)
    for f in findings:
        print(f)
    backend = "libclang" if cindex is not None else "builtin-lexer"
    print(f"dcape-lint: {len(paths)} files, {len(findings)} findings "
          f"({backend}; checks: {', '.join(selected)})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
