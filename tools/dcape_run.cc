// dcape_run — command-line experiment driver for the DCAPE library.
//
// Examples:
//   dcape_run --strategy=lazy-disk --engines=3 --placement=0.6,0.2,0.2
//             --threshold-kib=16384 --duration-min=20
//   dcape_run --strategy=active-disk --verbose --csv=run.csv
//   dcape_run --record-trace=day.trace --duration-min=5
//   dcape_run --replay-trace=day.trace --strategy=spill-only
//   dcape_run --strategy=active-disk --trace-out=run.trace.json
//   dcape_run --strategy=lazy-disk --report=timeline

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dcape.h"
#include "metrics/csv.h"
#include "rt/realtime_driver.h"
#include "sim/oracle.h"
#include "stream/trace.h"

namespace dcape {
namespace {

/// The --realtime path: run the wall-clock driver, print the sustained
/// throughput + latency report, and (with --check-oracle) replay the
/// identical input on the deterministic simulator and diff the outputs.
int RunRealtime(ExperimentOptions options) {
  if (options.rt_check_oracle) {
    // The oracle compares the complete output multiset; both runs must
    // retain their results.
    options.cluster.collect_results = true;
    options.cluster.cleanup.collect_results = true;
  }
  rt::RealtimeOptions rt_options;
  rt_options.duration_sec = options.rt_duration_sec;
  rt_options.rate = options.rt_rate;
  rt_options.link_capacity = options.rt_queue_capacity;

  std::cout << "realtime strategy=" << StrategyName(options.cluster.strategy)
            << " engines=" << options.cluster.num_engines
            << " duration=" << rt_options.duration_sec << "s rate="
            << (rt_options.rate > 0 ? std::to_string(rt_options.rate)
                                    : std::string("free-run"))
            << " threshold="
            << FormatBytes(options.cluster.spill.memory_threshold_bytes)
            << "\n";

  rt::RealtimeDriver driver(options.cluster, rt_options);
  RunResult result = driver.Run();
  const rt::RealtimeReport& report = driver.report();

  std::cout << "generated " << report.tuples_generated << " tuples over "
            << report.ticks_run << " virtual ticks in "
            << report.generate_wall_sec << "s wall ("
            << static_cast<int64_t>(report.tuples_per_sec)
            << " tuples/sec in, "
            << static_cast<int64_t>(report.results_per_sec)
            << " results/sec out)\n";
  const Histogram& lat = report.latency_us;
  if (lat.count() > 0) {
    std::cout << "latency_us p50=" << lat.Quantile(0.5)
              << " p90=" << lat.Quantile(0.9) << " p99=" << lat.Quantile(0.99)
              << " max=" << lat.max() << " (n=" << lat.count() << ")\n";
  }
  std::cout << "backpressure_parks=" << report.backpressure_parks
            << " threads=" << report.total_threads << " (engines "
            << report.engine_threads << ")\n";
  result.PrintSummary(std::cout);

  if (!options.csv_path.empty()) {
    std::vector<const TimeSeries*> series = {&result.throughput};
    for (const TimeSeries& m : result.engine_memory) series.push_back(&m);
    Status status = WriteSeriesCsv(options.csv_path, series);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "series written to " << options.csv_path << "\n";
  }
  if (!options.record_trace_path.empty()) {
    Status status = WriteTraceFile(options.record_trace_path,
                                   *options.cluster.record_trace);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "trace (" << options.cluster.record_trace->size()
              << " bytes) written to " << options.record_trace_path << "\n";
  }

  if (options.rt_check_oracle) {
    // Golden: the same query and workload on the virtual clock, without
    // adaptation (the strategy whose output correctness is established
    // by the tier-1 suite), over exactly the tick range the realtime
    // generator emitted.
    ClusterConfig golden_config = options.cluster;
    golden_config.strategy = AdaptationStrategy::kNoAdaptation;
    golden_config.num_threads = 1;
    golden_config.async_spill_io = false;
    golden_config.use_file_backend = false;
    golden_config.trace = false;
    golden_config.record_trace = nullptr;
    golden_config.run_duration = report.ticks_run;
    Cluster golden_cluster(golden_config);
    RunResult golden = golden_cluster.Run();

    std::vector<std::string> violations;
    sim::DiffOutputs(sim::ResultMultiset(result), sim::ResultMultiset(golden),
                     &violations);
    const int num_streams = options.cluster.workload.num_streams;
    const std::vector<int64_t> got =
        sim::PerStreamProcessed(result, num_streams);
    const std::vector<int64_t> want =
        sim::PerStreamProcessed(golden, num_streams);
    if (got != want) {
      std::string text = "per-stream processed mismatch:";
      for (int s = 0; s < num_streams; ++s) {
        text += " s" + std::to_string(s) + "=" +
                std::to_string(got[static_cast<size_t>(s)]) + "/" +
                std::to_string(want[static_cast<size_t>(s)]);
      }
      violations.push_back(std::move(text));
    }
    if (!violations.empty()) {
      for (const std::string& v : violations) {
        std::cerr << "ORACLE VIOLATION: " << v << "\n";
      }
      return 1;
    }
    std::cout << "oracle check passed: output multiset ("
              << result.TotalResults()
              << " results) and per-stream accounting match the "
                 "deterministic replay\n";
  }
  return 0;
}

int Run(const std::vector<std::string>& args) {
  StatusOr<ExperimentOptions> parsed = ParseExperimentFlags(args);
  if (!parsed.ok()) {
    std::cerr << parsed.status().message() << "\n";
    return 2;
  }
  ExperimentOptions options = std::move(parsed).value();
  Logging::SetLevel(options.verbose ? LogLevel::kInfo : LogLevel::kWarning);

  if (!options.replay_trace_path.empty()) {
    StatusOr<std::string> trace = ReadTraceFile(options.replay_trace_path);
    if (!trace.ok()) {
      std::cerr << "cannot read trace: " << trace.status() << "\n";
      return 1;
    }
    options.cluster.replay_trace =
        std::make_shared<const std::string>(*std::move(trace));
  }
  if (!options.record_trace_path.empty()) {
    options.cluster.record_trace = std::make_shared<std::string>();
  }

  if (options.realtime) return RunRealtime(std::move(options));

  std::cout << "strategy=" << StrategyName(options.cluster.strategy)
            << " engines=" << options.cluster.num_engines
            << " threads=" << options.cluster.num_threads << " duration="
            << options.cluster.run_duration / MinutesToTicks(1)
            << "min threshold="
            << FormatBytes(options.cluster.spill.memory_threshold_bytes)
            << "\n";

  Cluster cluster(options.cluster);
  RunResult result = cluster.Run();
  result.PrintSummary(std::cout);

  if (options.tables) {
    TimeSeries rate = ToRatePerMinute(result.throughput);
    rate.set_name("tuples/min");
    std::vector<const TimeSeries*> series = {&result.throughput, &rate};
    for (const TimeSeries& m : result.engine_memory) series.push_back(&m);
    const int64_t minutes =
        options.cluster.run_duration / MinutesToTicks(1);
    PrintSeriesByMinute(std::cout, "minute", series, 0, minutes,
                        std::max<int64_t>(1, minutes / 10));
  }

  if (!options.csv_path.empty()) {
    std::vector<const TimeSeries*> series = {&result.throughput};
    for (const TimeSeries& m : result.engine_memory) series.push_back(&m);
    Status status = WriteSeriesCsv(options.csv_path, series);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "series written to " << options.csv_path << "\n";

    // Storage-plane counters ride along as a sibling CSV.
    std::string storage_path = options.csv_path;
    const size_t dot = storage_path.rfind(".csv");
    if (dot != std::string::npos && dot == storage_path.size() - 4) {
      storage_path.resize(dot);
    }
    storage_path += ".storage.csv";
    std::ofstream storage_out(storage_path);
    storage_out << result.StorageCsv();
    if (!storage_out) {
      std::cerr << "cannot write " << storage_path << "\n";
      return 1;
    }
    std::cout << "storage counters written to " << storage_path << "\n";
  }
  if (!options.record_trace_path.empty()) {
    Status status = WriteTraceFile(options.record_trace_path,
                                   *options.cluster.record_trace);
    if (!status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "trace (" << options.cluster.record_trace->size()
              << " bytes) written to " << options.record_trace_path << "\n";
  }
  if (!options.trace_out_path.empty()) {
    const obs::Tracer* tracer = cluster.tracer();
    std::ofstream trace_out(options.trace_out_path);
    trace_out << tracer->ToChromeJson();
    if (!trace_out) {
      std::cerr << "cannot write " << options.trace_out_path << "\n";
      return 1;
    }
    std::cout << "structured trace (" << tracer->event_count()
              << " events) written to " << options.trace_out_path
              << " (open in Perfetto / chrome://tracing)\n";
  }
  if (options.report == "timeline") {
    std::cout << obs::RenderTimeline(*cluster.tracer());
  }
  return 0;
}

}  // namespace
}  // namespace dcape

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return dcape::Run(args);
}
