#!/usr/bin/env python3
"""check_trace — schema checker for DCAPE's exported structured traces.

Validates a `dcape_run --trace-out=FILE` Chrome trace_event JSON file
against the registered event taxonomy (src/obs/taxonomy.h):

  * the file is valid JSON of the {"traceEvents": [...]} form;
  * every event carries name/ph/pid/tid/ts with the right types;
  * every phase code is one the exporter emits (M, i, X, b, e, C);
  * every non-metadata event name is a registered `obs::ev::k*`
    taxonomy constant — the header is parsed, so adding a name there is
    the single step that teaches every tool about it;
  * complete events ("X") carry a non-negative `dur`;
  * async spans ("b"/"e") carry the `dcape` category and an id, and
    every span that opens also closes (balance per (name, id, pid));
  * timestamps are non-negative and, per (pid, tid) lane, the merged
    stream is time-ordered — the determinism contract's merge key.

Usage:
  check_trace.py TRACE.json [TRACE2.json ...]
                 [--taxonomy=src/obs/taxonomy.h] [--quiet]

Exit status: 0 clean, 1 findings, 2 bad flags/unreadable input —
mirroring dcape_lint.
"""

import json
import os
import re
import sys

VALID_PHASES = {"M", "i", "X", "b", "e", "C"}

_NAME_CONST_RE = re.compile(
    r'inline\s+constexpr\s+char\s+k\w+\[\]\s*=\s*"([^"]+)"')
_NAMESPACE_RE = re.compile(r"namespace\s+(\w+)\s*\{")


def registered_names(taxonomy_path):
    """Event names (namespace ev) and metric names (namespace m) from
    taxonomy.h."""
    with open(taxonomy_path, encoding="utf-8") as f:
        text = f.read()
    names = {"ev": set(), "m": set()}
    current = None
    for line in text.split("\n"):
        ns = _NAMESPACE_RE.search(line)
        if ns and ns.group(1) in names:
            current = ns.group(1)
        elif re.search(r"\}\s*//\s*namespace\s+(ev|m)\b", line):
            current = None
        m = _NAME_CONST_RE.search(line)
        if m and current is not None:
            names[current].add(m.group(1))
    return names


def check_trace(path, event_names, findings):
    def bad(i, msg):
        findings.append(f"{path}: event {i}: {msg}")

    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        findings.append(f"{path}: not readable JSON: {e}")
        return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        findings.append(f"{path}: missing top-level traceEvents array")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list):
        findings.append(f"{path}: traceEvents is not an array")
        return

    span_balance = {}
    last_ts = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            bad(i, "not an object")
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in e and not (key == "ts" and e.get("ph") == "M"):
                bad(i, f"missing required key '{key}'")
        ph = e.get("ph")
        if ph not in VALID_PHASES:
            bad(i, f"unknown phase code {ph!r}")
            continue
        if ph == "M":
            continue  # metadata (process_name)
        name = e.get("name")
        if name not in event_names:
            bad(i, f"name {name!r} is not a registered taxonomy constant "
                   "(add it to src/obs/taxonomy.h)")
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            bad(i, f"bad timestamp {ts!r}")
            continue
        lane = (e.get("pid"), e.get("tid"))
        if ts < last_ts.get(lane, 0):
            bad(i, f"timestamp {ts} goes backwards on lane {lane}: the "
                   "merged stream must be time-ordered per lane")
        last_ts[lane] = ts
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                bad(i, f"complete event needs non-negative dur, got "
                       f"{dur!r}")
        if ph in ("b", "e"):
            if e.get("cat") != "dcape":
                bad(i, f"async span needs cat='dcape', got {e.get('cat')!r}")
            if "id" not in e:
                bad(i, "async span needs an id")
            key = (name, e.get("id"), e.get("pid"))
            span_balance[key] = span_balance.get(key, 0) + \
                (1 if ph == "b" else -1)

    for (name, span_id, pid), balance in sorted(
            span_balance.items(), key=lambda kv: str(kv[0])):
        if balance != 0:
            what = "never closed" if balance > 0 else "closed but never opened"
            findings.append(
                f"{path}: span {name} id={span_id} pid={pid} {what} "
                f"(balance {balance:+d})")


def main(argv):
    root = os.path.realpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    taxonomy = os.path.join(root, "src", "obs", "taxonomy.h")
    quiet = False
    paths = []
    for arg in argv:
        if arg.startswith("--taxonomy="):
            taxonomy = arg.split("=", 1)[1]
        elif arg == "--quiet":
            quiet = True
        elif arg in ("--help", "-h"):
            print(__doc__)
            return 0
        elif arg.startswith("--"):
            print(f"unknown flag '{arg}' (see --help)", file=sys.stderr)
            return 2
        else:
            paths.append(arg)
    if not paths:
        print("usage: check_trace.py TRACE.json [...]", file=sys.stderr)
        return 2
    try:
        names = registered_names(taxonomy)
    except OSError as e:
        print(f"cannot read taxonomy {taxonomy}: {e}", file=sys.stderr)
        return 2
    if not names["ev"]:
        print(f"no event names parsed from {taxonomy}", file=sys.stderr)
        return 2

    findings = []
    counts = {}
    for path in paths:
        before = len(findings)
        check_trace(path, names["ev"], findings)
        counts[path] = len(findings) - before
    for f in findings:
        print(f)
    if not quiet:
        for path in paths:
            status = "FAIL" if counts[path] else "ok"
            print(f"{status:4s} {path}")
        print(f"check_trace: {len(paths)} files, {len(findings)} findings "
              f"({len(names['ev'])} registered event names)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
