// dcape_chaos — seeded chaos sweep over randomized DCAPE scenarios.
//
// Each trial samples a scenario (cluster size, strategy, thresholds,
// segment formats, skew, threads) and a fault mix (message delay jitter,
// transient/latched disk failures, corrupted blobs, engine stalls) from
// the trial seed, runs it with invariant checkers armed, then diffs the
// final join output and per-stream tuple accounting against an all-mem
// serial golden run of the same scenario. Failures print the seed, the
// scenario flag line, and a greedily shrunk fault mix; re-running with
// --trials=1 --seed=N replays the identical trace.
//
// Examples:
//   dcape_chaos --trials=200 --seed=0
//   dcape_chaos --trials=1 --seed=137 --verbose      # replay a failure
//   dcape_chaos --trials=20 --bug=duplicate-batch    # must fail
//
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "dcape.h"
#include "sim/harness.h"

namespace dcape {
namespace {

constexpr char kHelp[] =
    R"(dcape_chaos — seeded chaos sweep over randomized DCAPE scenarios

usage: dcape_chaos [--key=value ...]

  --trials=N      number of trials (seeds base..base+N-1)     [50]
  --seed=N        base seed                                   [0]
  --bug=CLASS     overlay a deliberate bug on every trial:
                  duplicate-batch (protocol violation the
                  harness must flag)
  --no-shrink     report failures without shrinking the fault mix
  --verbose       per-trial progress lines

exit status: 0 when every trial passes, 1 otherwise, 2 on bad flags.
)";

bool ParseUint64(std::string_view value, uint64_t* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  const std::string copy(value);
  const unsigned long long parsed = std::strtoull(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size()) return false;
  *out = static_cast<uint64_t>(parsed);
  return true;
}

int Run(const std::vector<std::string>& args) {
  sim::HarnessOptions options;
  options.out = &std::cout;
  for (const std::string& arg : args) {
    const std::string_view view = arg;
    if (view == "--help" || view == "-h") {
      std::cout << kHelp;
      return 0;
    }
    if (view == "--no-shrink") {
      options.shrink = false;
      continue;
    }
    if (view == "--verbose") {
      options.verbose = true;
      continue;
    }
    const size_t eq = view.find('=');
    const std::string_view key = view.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view() : view.substr(eq + 1);
    uint64_t parsed = 0;
    if (key == "--trials") {
      if (!ParseUint64(value, &parsed) || parsed < 1) {
        std::cerr << "--trials expects a positive integer\n";
        return 2;
      }
      options.trials = static_cast<int>(parsed);
    } else if (key == "--seed") {
      if (!ParseUint64(value, &parsed)) {
        std::cerr << "--seed expects an unsigned integer\n";
        return 2;
      }
      options.base_seed = parsed;
    } else if (key == "--bug") {
      if (value == "duplicate-batch") {
        options.extra_faults.duplicate_batch_prob = 0.02;
      } else {
        std::cerr << "unknown --bug class '" << value
                  << "' (known: duplicate-batch)\n";
        return 2;
      }
    } else {
      std::cerr << "unknown flag '" << arg << "' (see --help)\n";
      return 2;
    }
  }

  Logging::SetLevel(options.verbose ? LogLevel::kWarning : LogLevel::kError);
  const sim::HarnessReport report = sim::RunTrials(options);
  return report.failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dcape

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return dcape::Run(args);
}
