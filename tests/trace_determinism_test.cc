#include <gtest/gtest.h>

#include <string>

#include "obs/taxonomy.h"
#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::SmallClusterConfig;

/// The observability-plane determinism contract: the structured trace is
/// a pure function of the configuration — byte-identical across thread
/// counts and across reruns — because events buffer per lane (appended
/// only by the task stepping that node) and merge on the thread-free key
/// (tick, lane, per-lane emit order).

ClusterConfig TracedConfig() {
  ClusterConfig config = SmallClusterConfig();
  config.trace = true;
  config.run_duration = SecondsToTicks(50);
  // An adaptation-heavy mix so the trace covers relocations and spills.
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.placement_fractions = {0.7, 0.3};
  config.spill.memory_threshold_bytes = 48 * kKiB;
  return config;
}

std::string TraceJsonFor(const ClusterConfig& config) {
  Cluster cluster(config);
  cluster.Run();
  return cluster.tracer()->ToChromeJson();
}

TEST(TraceDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  ClusterConfig config = TracedConfig();
  config.num_threads = 1;
  const std::string serial = TraceJsonFor(config);
  EXPECT_GT(serial.size(), 1000u) << "trace unexpectedly empty";

  config.num_threads = 4;
  EXPECT_EQ(serial, TraceJsonFor(config));

  config.num_threads = 8;
  EXPECT_EQ(serial, TraceJsonFor(config));
}

TEST(TraceDeterminismTest, ByteIdenticalOnRerun) {
  ClusterConfig config = TracedConfig();
  config.num_threads = 2;
  EXPECT_EQ(TraceJsonFor(config), TraceJsonFor(config));
}

TEST(TraceDeterminismTest, SeedChangesTheTrace) {
  ClusterConfig config = TracedConfig();
  const std::string a = TraceJsonFor(config);
  config.workload.seed += 1;
  EXPECT_NE(a, TraceJsonFor(config));
}

TEST(TraceDeterminismTest, SpansBalanceAtQuiescence) {
  ClusterConfig config = TracedConfig();
  Cluster cluster(config);
  cluster.Run();
  for (const std::string& line : cluster.tracer()->OpenSpans()) {
    ADD_FAILURE() << line;
  }
}

TEST(TraceDeterminismTest, TraceContainsTheAdaptationTaxonomy) {
  ClusterConfig config = TracedConfig();
  Cluster cluster(config);
  RunResult result = cluster.Run();
  const std::string json = cluster.tracer()->ToChromeJson();

  if (result.spill_events > 0) {
    EXPECT_NE(json.find(obs::ev::kSpill), std::string::npos);
  }
  if (result.coordinator.relocations_started > 0) {
    EXPECT_NE(json.find(obs::ev::kRelocation), std::string::npos);
    EXPECT_NE(json.find(obs::ev::kRelocDecide), std::string::npos);
  }
  EXPECT_NE(json.find(obs::ev::kStateBytes), std::string::npos);
  EXPECT_NE(json.find(obs::ev::kCleanup), std::string::npos);
}

TEST(TraceDeterminismTest, DisabledTracingHoldsNoTracer) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(5);
  Cluster cluster(config);
  cluster.Run();
  EXPECT_EQ(cluster.tracer(), nullptr);
}

TEST(TraceDeterminismTest, ResultsUnchangedByTracing) {
  ClusterConfig config = TracedConfig();
  RunResult traced = Cluster(config).Run();
  config.trace = false;
  RunResult untraced = Cluster(config).Run();
  EXPECT_EQ(traced.runtime_results, untraced.runtime_results);
  EXPECT_EQ(traced.spill_events, untraced.spill_events);
  EXPECT_EQ(traced.coordinator.relocations_completed,
            untraced.coordinator.relocations_completed);
}

/// The registry is the single source of truth: RunResult's compatibility
/// counters are views over the same cells.
TEST(MetricsRegistryIntegrationTest, RunResultMatchesRegistry) {
  ClusterConfig config = TracedConfig();
  Cluster cluster(config);
  RunResult result = cluster.Run();
  const obs::MetricsRegistry& registry = cluster.metrics();

  int64_t spilled_bytes = 0;
  int64_t tuples_processed = 0;
  for (int e = 0; e < config.num_engines; ++e) {
    spilled_bytes += registry.Value(obs::m::kSpilledBytes, e);
    tuples_processed += registry.Value(obs::m::kTuplesProcessed, e);
  }
  EXPECT_EQ(result.spilled_bytes, spilled_bytes);
  int64_t result_tuples = 0;
  for (const auto& engine : result.engines) {
    result_tuples += engine.tuples_processed;
  }
  EXPECT_EQ(result_tuples, tuples_processed);
  EXPECT_EQ(result.coordinator.relocations_started,
            registry.Value(obs::m::kRelocationsStarted));
}

}  // namespace
}  // namespace dcape
