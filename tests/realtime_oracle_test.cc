#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rt/realtime_driver.h"
#include "runtime/cluster.h"
#include "sim/oracle.h"
#include "test_util.h"

namespace dcape {
namespace rt {
namespace {

/// Runs `config` on the realtime driver, then replays the identical
/// input (the exact tick range the wall-clock generator covered) on the
/// deterministic virtual-clock simulator, and requires the two runs to
/// agree on the complete output multiset and the per-stream processed
/// counts — the differential-oracle guarantee of docs/REALTIME.md.
void ExpectMatchesVirtualOracle(ClusterConfig config,
                                const RealtimeOptions& options) {
  config.collect_results = true;
  config.cleanup.collect_results = true;

  RealtimeDriver driver(config, options);
  RunResult realtime = driver.Run();
  const RealtimeReport& report = driver.report();
  ASSERT_GT(report.tuples_generated, 0);
  ASSERT_GT(report.ticks_run, 0);

  // Golden: no adaptation, single-threaded, virtual clock — the
  // configuration whose correctness the tier-1 suite establishes.
  ClusterConfig golden_config = config;
  golden_config.strategy = AdaptationStrategy::kNoAdaptation;
  golden_config.num_threads = 1;
  golden_config.async_spill_io = false;
  golden_config.use_file_backend = false;
  golden_config.run_duration = report.ticks_run;
  Cluster golden_cluster(golden_config);
  RunResult golden = golden_cluster.Run();

  // Same input…
  EXPECT_EQ(realtime.tuples_generated, golden.tuples_generated);
  // …same output, as a sorted multiset (std::map orders the keys), no
  // matter how wall-clock timing interleaved spills and batches.
  std::vector<std::string> violations;
  sim::DiffOutputs(sim::ResultMultiset(realtime), sim::ResultMultiset(golden),
                   &violations);
  for (const std::string& v : violations) ADD_FAILURE() << v;
  // …and the same per-stream accounting, summed over engines.
  EXPECT_EQ(sim::PerStreamProcessed(realtime, config.workload.num_streams),
            sim::PerStreamProcessed(golden, config.workload.num_streams));
}

TEST(RealtimeOracleTest, AllMemMatchesVirtualRun) {
  ClusterConfig config = testing::SmallClusterConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  RealtimeOptions options;
  options.duration_sec = 1;
  options.rate = 10000;
  ExpectMatchesVirtualOracle(config, options);
}

TEST(RealtimeOracleTest, SpillOnlyUnderWallClockTimersMatchesVirtualRun) {
  // A threshold far below the run's state footprint, so the engines'
  // wall-clock spill timers actually fire mid-run (the adaptation path
  // whose timing differs most from the simulator).
  ClusterConfig config = testing::SmallClusterConfig();
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.spill.memory_threshold_bytes = 32 * kKiB;
  // Sparser key space than SmallClusterConfig's 480: at 40k input
  // tuples, a dense key space would join into millions of results and
  // the test would spend minutes comparing multisets. State size (what
  // spilling reacts to) is unaffected.
  config.workload.classes[0].tuple_range = 24000;
  RealtimeOptions options;
  options.duration_sec = 2;
  options.rate = 20000;
  ExpectMatchesVirtualOracle(config, options);
}

TEST(RealtimeOracleTest, FreeRunMatchesVirtualRun) {
  // Free-run (rate=0): the generator advances the tick cursor as fast
  // as backpressure admits; whatever prefix it reaches must still replay
  // exactly.
  ClusterConfig config = testing::SmallClusterConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  // Every tick emits tuples (no empty cursor spins), so the free-running
  // generator is bounded by real per-tick work and the golden replay
  // walks the same dense tick range; the sparse key space keeps the
  // result sets comparable in milliseconds.
  config.workload.inter_arrival_ticks = 1;
  config.workload.classes[0].tuple_range = 48000;
  RealtimeOptions options;
  options.duration_sec = 1;
  options.rate = 0;
  options.link_capacity = 256;  // small rings: exercise backpressure
  ExpectMatchesVirtualOracle(config, options);
}

TEST(RealtimeOracleTest, ReportsSustainedRates) {
  ClusterConfig config = testing::SmallClusterConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  config.collect_results = false;
  config.cleanup.collect_results = false;
  RealtimeOptions options;
  options.duration_sec = 1;
  options.rate = 10000;
  RealtimeDriver driver(config, options);
  RunResult result = driver.Run();
  const RealtimeReport& report = driver.report();
  // 10k tuples/sec for 1s, within generous scheduling slack.
  EXPECT_GT(report.tuples_generated, 8000);
  EXPECT_LT(report.tuples_generated, 13000);
  EXPECT_GT(report.tuples_per_sec, 0);
  EXPECT_GE(report.generate_wall_sec, 1.0);
  EXPECT_EQ(result.tuples_generated, report.tuples_generated);
  // End-to-end latency was measured for the direct result path.
  EXPECT_GT(report.latency_us.count(), 0);
  EXPECT_EQ(report.engine_threads, config.num_engines);
}

}  // namespace
}  // namespace rt
}  // namespace dcape
