#include <gtest/gtest.h>

#include <sstream>

#include "metrics/table_printer.h"
#include "metrics/time_series.h"

namespace dcape {
namespace {

TEST(TimeSeriesTest, ValueAtOrBefore) {
  TimeSeries series("s");
  series.Add(10, 1.0);
  series.Add(20, 2.0);
  series.Add(30, 3.0);
  EXPECT_EQ(series.ValueAtOrBefore(5, -1.0), -1.0);
  EXPECT_EQ(series.ValueAtOrBefore(10), 1.0);
  EXPECT_EQ(series.ValueAtOrBefore(15), 1.0);
  EXPECT_EQ(series.ValueAtOrBefore(25), 2.0);
  EXPECT_EQ(series.ValueAtOrBefore(1000), 3.0);
}

TEST(TimeSeriesTest, LastAndMax) {
  TimeSeries series;
  EXPECT_EQ(series.Last(-7.0), -7.0);
  EXPECT_EQ(series.Max(-7.0), -7.0);
  series.Add(0, 5.0);
  series.Add(10, 9.0);
  series.Add(20, 2.0);
  EXPECT_EQ(series.Last(), 2.0);
  EXPECT_EQ(series.Max(), 9.0);
}

TEST(TimeSeriesTest, NameRoundTrip) {
  TimeSeries series("memory");
  EXPECT_EQ(series.name(), "memory");
  series.set_name("other");
  EXPECT_EQ(series.name(), "other");
}

TEST(TimeSeriesTest, RatePerMinuteFromCumulative) {
  TimeSeries cumulative("results");
  cumulative.Add(0, 0);
  cumulative.Add(MinutesToTicks(1), 600);
  cumulative.Add(MinutesToTicks(2), 1800);
  TimeSeries rate = ToRatePerMinute(cumulative);
  ASSERT_EQ(rate.size(), 2u);
  EXPECT_DOUBLE_EQ(rate.samples()[0].second, 600.0);
  EXPECT_DOUBLE_EQ(rate.samples()[1].second, 1200.0);
}

TEST(TimeSeriesTest, RateHandlesSubMinuteWindows) {
  TimeSeries cumulative;
  cumulative.Add(0, 0);
  cumulative.Add(SecondsToTicks(30), 100);  // 100 per half minute
  TimeSeries rate = ToRatePerMinute(cumulative);
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_DOUBLE_EQ(rate.samples()[0].second, 200.0);
}

TEST(TablePrinterTest, AlignsAndPrintsRows) {
  TablePrinter table({"minute", "all-mem", "30%"});
  table.AddRow({"0", "0", "0"});
  table.AddRow({"10", "123456", "9"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("minute"), std::string::npos);
  EXPECT_NE(out.find("123456"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // Header line then separator then two rows.
  int newlines = 0;
  for (char c : out) newlines += (c == '\n');
  EXPECT_EQ(newlines, 4);
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(PrintSeriesByMinuteTest, ProducesOneRowPerStep) {
  TimeSeries a("a");
  TimeSeries b("b");
  for (int minute = 0; minute <= 10; ++minute) {
    a.Add(MinutesToTicks(minute), minute);
    b.Add(MinutesToTicks(minute), 10 * minute);
  }
  std::ostringstream os;
  PrintSeriesByMinute(os, "minute", {&a, &b}, 0, 10, 5);
  std::string out = os.str();
  // Rows for minutes 0, 5, 10 plus header + separator.
  int newlines = 0;
  for (char c : out) newlines += (c == '\n');
  EXPECT_EQ(newlines, 5);
  EXPECT_NE(out.find("100"), std::string::npos);  // b at minute 10
}

}  // namespace
}  // namespace dcape
