#include "cleanup/cleanup.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "runtime/exec_pool.h"
#include "state/partition_group.h"
#include "storage/disk_backend.h"

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.payload = "pl";
  return t;
}

/// Serializes a group holding `tuples` for `partition`.
std::string GroupBlob(PartitionId partition, int num_streams,
                      const std::vector<Tuple>& tuples) {
  PartitionGroup group(partition, num_streams);
  for (const Tuple& t : tuples) group.InsertOnly(t);
  std::string blob;
  group.Serialize(&blob);
  return blob;
}

std::unique_ptr<SpillStore> MakeStore(EngineId engine) {
  return std::make_unique<SpillStore>(engine, SpillStore::Config{},
                                      std::make_unique<MemoryDiskBackend>());
}

CleanupConfig TestConfig() {
  CleanupConfig config;
  config.collect_results = true;
  return config;
}

TEST(CleanupTest, NothingSpilledMeansNothingMissing) {
  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(0, 1, 5), nullptr);
  state.ProcessTuple(0, MakeTuple(1, 1, 5), nullptr);
  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> stats = processor.Run({nullptr}, {&state});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 0);
  EXPECT_EQ(stats->total_ticks, 0);
}

TEST(CleanupTest, CrossGenerationComboIsProduced) {
  // Disk generation holds the stream-0 tuple; memory holds the stream-1
  // match. The runtime could never join them.
  auto store = MakeStore(0);
  ASSERT_TRUE(
      store->WriteSegment(0, 100, GroupBlob(0, 2, {MakeTuple(0, 1, 5)}), 1)
          .ok());
  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(1, 9, 5), nullptr);

  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> stats = processor.Run({store.get()}, {&state});
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->result_count, 1);
  EXPECT_EQ(stats->results[0].member_seqs, (std::vector<int64_t>{1, 9}));
  EXPECT_EQ(stats->results[0].join_key, 5);
  EXPECT_EQ(stats->partitions_cleaned, 1);
  EXPECT_GT(stats->total_ticks, 0);
}

TEST(CleanupTest, SameGenerationCombosAreNotReproduced) {
  // The spilled generation contains a full match (produced at runtime
  // before the spill); cleanup must not emit it again.
  auto store = MakeStore(0);
  ASSERT_TRUE(store
                  ->WriteSegment(0, 100,
                                 GroupBlob(0, 2,
                                           {MakeTuple(0, 1, 5),
                                            MakeTuple(1, 2, 5)}),
                                 2)
                  .ok());
  StateManager state(2);  // empty memory remainder
  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> stats = processor.Run({store.get()}, {&state});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 0);
}

TEST(CleanupTest, ThreeGenerationsCountedExactlyOnce) {
  // Three generations of partition 0, each with one tuple per stream and
  // the same key: 3x3 = 9 total combos, 3 were produced at runtime
  // (same-generation), so cleanup owes exactly 6 — no duplicates.
  auto store = MakeStore(0);
  ASSERT_TRUE(store
                  ->WriteSegment(0, 100,
                                 GroupBlob(0, 2,
                                           {MakeTuple(0, 1, 5),
                                            MakeTuple(1, 1, 5)}),
                                 2)
                  .ok());
  ASSERT_TRUE(store
                  ->WriteSegment(0, 200,
                                 GroupBlob(0, 2,
                                           {MakeTuple(0, 2, 5),
                                            MakeTuple(1, 2, 5)}),
                                 2)
                  .ok());
  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(0, 3, 5), nullptr);
  state.ProcessTuple(0, MakeTuple(1, 3, 5), nullptr);

  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> stats = processor.Run({store.get()}, {&state});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 6);
  std::set<std::string> unique;
  for (const JoinResult& r : stats->results) unique.insert(r.EncodeKey());
  EXPECT_EQ(unique.size(), 6u);
  // Same-generation combos (1,1), (2,2), (3,3) must be absent.
  for (const JoinResult& r : stats->results) {
    EXPECT_NE(r.member_seqs[0], r.member_seqs[1]);
  }
}

TEST(CleanupTest, ThreeWayJoinSubsetExpansion) {
  // m=3: disk gen has one tuple per stream (key 7); memory gen has one
  // tuple per stream. Total combos 2^3 = 8; same-gen 2 → cleanup owes 6.
  auto store = MakeStore(0);
  ASSERT_TRUE(store
                  ->WriteSegment(0, 50,
                                 GroupBlob(0, 3,
                                           {MakeTuple(0, 1, 7),
                                            MakeTuple(1, 1, 7),
                                            MakeTuple(2, 1, 7)}),
                                 3)
                  .ok());
  StateManager state(3);
  state.ProcessTuple(0, MakeTuple(0, 2, 7), nullptr);
  state.ProcessTuple(0, MakeTuple(1, 2, 7), nullptr);
  state.ProcessTuple(0, MakeTuple(2, 2, 7), nullptr);

  CleanupProcessor processor(TestConfig(), 3);
  StatusOr<CleanupStats> stats = processor.Run({store.get()}, {&state});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 6);
}

TEST(CleanupTest, GenerationsSpreadAcrossEngines) {
  // Partition spilled at engine 0, then relocated and its remainder lives
  // at engine 1 — cleanup must still join across.
  auto store0 = MakeStore(0);
  auto store1 = MakeStore(1);
  ASSERT_TRUE(
      store0->WriteSegment(3, 10, GroupBlob(3, 2, {MakeTuple(0, 1, 9)}), 1)
          .ok());
  StateManager state0(2);
  StateManager state1(2);
  state1.ProcessTuple(3, MakeTuple(1, 2, 9), nullptr);

  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> stats =
      processor.Run({store0.get(), store1.get()}, {&state0, &state1});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 1);
  ASSERT_EQ(stats->engine_ticks.size(), 2u);
}

TEST(CleanupTest, CountingWorksWithoutCollecting) {
  auto store = MakeStore(0);
  ASSERT_TRUE(
      store->WriteSegment(0, 10, GroupBlob(0, 2, {MakeTuple(0, 1, 5)}), 1)
          .ok());
  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(1, 2, 5), nullptr);

  CleanupConfig config;
  config.collect_results = false;
  CleanupProcessor processor(config, 2);
  StatusOr<CleanupStats> stats = processor.Run({store.get()}, {&state});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 1);
  EXPECT_TRUE(stats->results.empty());
}

TEST(CleanupTest, ParallelCleanupTimeIsMaxOverEngines) {
  // Two independent partitions on two engines: total time is the max of
  // the per-engine times, not the sum (engines clean in parallel).
  auto store0 = MakeStore(0);
  auto store1 = MakeStore(1);
  const JoinKey key_p0 = 5;
  const JoinKey key_p1 = 5 + (1LL << 20);
  ASSERT_TRUE(
      store0->WriteSegment(0, 10, GroupBlob(0, 2, {MakeTuple(0, 1, key_p0)}), 1)
          .ok());
  ASSERT_TRUE(
      store1->WriteSegment(1, 10, GroupBlob(1, 2, {MakeTuple(0, 1, key_p1)}), 1)
          .ok());
  StateManager state0(2);
  StateManager state1(2);
  state0.ProcessTuple(1, MakeTuple(1, 2, key_p1), nullptr);
  state1.ProcessTuple(0, MakeTuple(1, 2, key_p0), nullptr);

  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> stats =
      processor.Run({store0.get(), store1.get()}, {&state0, &state1});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 2);
  Tick max_ticks = 0;
  for (Tick t : stats->engine_ticks) max_ticks = std::max(max_ticks, t);
  EXPECT_EQ(stats->total_ticks, max_ticks);
  EXPECT_LT(stats->total_ticks,
            stats->engine_ticks[0] + stats->engine_ticks[1]);
}

TEST(CleanupTest, ExecPoolRunIsBitIdenticalToSerial) {
  // The same multi-partition, multi-engine scenario run serially and on
  // ExecPools of several widths: every CleanupStats field and the exact
  // result ordering must match the serial run.
  auto build = [](std::unique_ptr<SpillStore>* store0,
                  std::unique_ptr<SpillStore>* store1,
                  StateManager* state0, StateManager* state1) {
    *store0 = MakeStore(0);
    *store1 = MakeStore(1);
    for (PartitionId p = 0; p < 6; ++p) {
      const JoinKey key = 100 + p;
      ASSERT_TRUE((*store0)
                      ->WriteSegment(p, 10 + p,
                                     GroupBlob(p, 2,
                                               {MakeTuple(0, p * 10 + 1, key),
                                                MakeTuple(1, p * 10 + 2, key)}),
                                     2)
                      .ok());
      ASSERT_TRUE((*store1)
                      ->WriteSegment(p, 50 + p,
                                     GroupBlob(p, 2,
                                               {MakeTuple(0, p * 10 + 3, key)}),
                                     1)
                      .ok());
      state0->ProcessTuple(p, MakeTuple(1, p * 10 + 4, key), nullptr);
      // Partition 5 gets no memory remainder on engine 1.
      if (p != 5) state1->ProcessTuple(p, MakeTuple(0, p * 10 + 5, key), nullptr);
    }
  };

  std::unique_ptr<SpillStore> store0, store1;
  StateManager state0(2), state1(2);
  build(&store0, &store1, &state0, &state1);
  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> serial =
      processor.Run({store0.get(), store1.get()}, {&state0, &state1});
  ASSERT_TRUE(serial.ok());
  ASSERT_GT(serial->result_count, 0);

  for (int workers : {1, 2, 4, 8}) {
    std::unique_ptr<SpillStore> pstore0, pstore1;
    StateManager pstate0(2), pstate1(2);
    build(&pstore0, &pstore1, &pstate0, &pstate1);
    ExecPool pool(workers);
    StatusOr<CleanupStats> parallel = processor.Run(
        {pstore0.get(), pstore1.get()}, {&pstate0, &pstate1}, &pool);
    ASSERT_TRUE(parallel.ok()) << "workers=" << workers;
    EXPECT_EQ(parallel->result_count, serial->result_count);
    EXPECT_EQ(parallel->partitions_cleaned, serial->partitions_cleaned);
    EXPECT_EQ(parallel->total_ticks, serial->total_ticks);
    EXPECT_EQ(parallel->engine_ticks, serial->engine_ticks);
    ASSERT_EQ(parallel->results.size(), serial->results.size());
    for (size_t i = 0; i < serial->results.size(); ++i) {
      EXPECT_EQ(parallel->results[i].EncodeKey(), serial->results[i].EncodeKey())
          << "workers=" << workers << " result " << i;
    }
  }
}

TEST(CleanupTest, KeyMismatchAcrossGenerationsYieldsNothing) {
  auto store = MakeStore(0);
  ASSERT_TRUE(
      store->WriteSegment(0, 10, GroupBlob(0, 2, {MakeTuple(0, 1, 5)}), 1)
          .ok());
  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(1, 2, 6), nullptr);  // different key
  CleanupProcessor processor(TestConfig(), 2);
  StatusOr<CleanupStats> stats = processor.Run({store.get()}, {&state});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_count, 0);
}

}  // namespace
}  // namespace dcape
