#include <gtest/gtest.h>

#include "operators/aggregate.h"
#include "operators/select.h"
#include "state/partition_group.h"
#include "tuple/projection.h"

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key, int64_t value,
                int64_t category) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.value = value;
  t.category = category;
  t.payload = "0123456789abcdef";
  return t;
}

TEST(SelectPredicateTest, ValueBand) {
  SelectPredicate p;
  p.min_value = 10;
  p.max_value = 20;
  EXPECT_FALSE(p.Matches(MakeTuple(0, 1, 0, 9, 0)));
  EXPECT_TRUE(p.Matches(MakeTuple(0, 1, 0, 10, 0)));
  EXPECT_TRUE(p.Matches(MakeTuple(0, 1, 0, 20, 0)));
  EXPECT_FALSE(p.Matches(MakeTuple(0, 1, 0, 21, 0)));
}

TEST(SelectPredicateTest, CategoryEquality) {
  SelectPredicate p;
  p.category_equals = 7;
  EXPECT_TRUE(p.Matches(MakeTuple(0, 1, 0, 0, 7)));
  EXPECT_FALSE(p.Matches(MakeTuple(0, 1, 0, 0, 8)));
}

TEST(SelectPredicateTest, DefaultPassesEverything) {
  SelectPredicate p;
  EXPECT_TRUE(p.Matches(MakeTuple(0, 1, 0, INT64_MIN, -5)));
}

TEST(SelectOpTest, CountsSelectivity) {
  SelectPredicate p;
  p.min_value = 50;
  SelectOp op(p);
  for (int v = 0; v < 100; ++v) {
    op.Process(MakeTuple(0, v, 0, v, 0));
  }
  EXPECT_EQ(op.seen(), 100);
  EXPECT_EQ(op.passed(), 50);
  EXPECT_DOUBLE_EQ(op.selectivity(), 0.5);
}

TEST(ProjectOpTest, TruncatesPayloadAndCountsSavings) {
  ProjectOp op(4);
  Tuple t = MakeTuple(0, 1, 0, 0, 0);  // payload 16 bytes
  EXPECT_EQ(op.Process(&t), 12);
  EXPECT_EQ(t.payload, "0123");
  // Already short payloads are untouched.
  EXPECT_EQ(op.Process(&t), 0);
  EXPECT_EQ(op.bytes_saved(), 12);
}

TEST(FoldAggregateTest, AllOps) {
  EXPECT_EQ(FoldAggregate(AggregateOp::kMin, 5, 3, false), 3);
  EXPECT_EQ(FoldAggregate(AggregateOp::kMin, 3, 5, false), 3);
  EXPECT_EQ(FoldAggregate(AggregateOp::kMax, 3, 5, false), 5);
  EXPECT_EQ(FoldAggregate(AggregateOp::kSum, 3, 5, false), 8);
  // `first` always resets to the value.
  EXPECT_EQ(FoldAggregate(AggregateOp::kMin, 999, 5, true), 5);
}

TEST(ProjectionTest, ProbeComputesGroupKeyAndMinValue) {
  ResultProjection projection;
  projection.group_stream = 1;
  projection.op = AggregateOp::kMin;

  PartitionGroup group(0, 3);
  group.ProbeAndInsert(MakeTuple(0, 1, 5, /*value=*/300, /*cat=*/1), nullptr,
                       &projection);
  group.ProbeAndInsert(MakeTuple(1, 2, 5, /*value=*/200, /*cat=*/42), nullptr,
                       &projection);
  std::vector<JoinResult> results;
  group.ProbeAndInsert(MakeTuple(2, 3, 5, /*value=*/250, /*cat=*/9), &results,
                       &projection);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].group_key, 42);   // category of the stream-1 member
  EXPECT_EQ(results[0].agg_value, 200);  // min(300, 200, 250)
}

TEST(ProjectionTest, SumAcrossMembers) {
  ResultProjection projection;
  projection.group_stream = 0;
  projection.op = AggregateOp::kSum;

  PartitionGroup group(0, 2);
  group.ProbeAndInsert(MakeTuple(0, 1, 5, 10, 3), nullptr, &projection);
  std::vector<JoinResult> results;
  group.ProbeAndInsert(MakeTuple(1, 2, 5, 32, 8), &results, &projection);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].group_key, 3);
  EXPECT_EQ(results[0].agg_value, 42);
}

JoinResult MakeResult(int64_t group, int64_t value) {
  JoinResult r;
  r.group_key = group;
  r.agg_value = value;
  return r;
}

TEST(GroupByAggregateTest, MinPerGroup) {
  GroupByAggregate agg(AggregateOp::kMin);
  agg.Consume(MakeResult(1, 50));
  agg.Consume(MakeResult(1, 30));
  agg.Consume(MakeResult(1, 70));
  agg.Consume(MakeResult(2, 10));
  ASSERT_EQ(agg.groups().size(), 2u);
  EXPECT_EQ(agg.groups().at(1).aggregate, 30);
  EXPECT_EQ(agg.groups().at(1).count, 3);
  EXPECT_EQ(agg.groups().at(2).aggregate, 10);
  EXPECT_EQ(agg.total(), 4);
}

TEST(GroupByAggregateTest, OrderInsensitive) {
  GroupByAggregate forward(AggregateOp::kMin);
  GroupByAggregate backward(AggregateOp::kMin);
  std::vector<JoinResult> results = {MakeResult(0, 5), MakeResult(0, 2),
                                     MakeResult(1, 9), MakeResult(0, 7)};
  forward.ConsumeAll(results);
  std::reverse(results.begin(), results.end());
  backward.ConsumeAll(results);
  EXPECT_EQ(forward.groups().at(0).aggregate,
            backward.groups().at(0).aggregate);
  EXPECT_EQ(forward.groups().at(1).aggregate,
            backward.groups().at(1).aggregate);
}

TEST(GroupByAggregateTest, TopByAggregateSmallestFirst) {
  GroupByAggregate agg(AggregateOp::kMin);
  agg.Consume(MakeResult(1, 50));
  agg.Consume(MakeResult(2, 10));
  agg.Consume(MakeResult(3, 30));
  auto top = agg.TopByAggregate(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 3);
  auto bottom = agg.TopByAggregate(1, /*smallest_first=*/false);
  ASSERT_EQ(bottom.size(), 1u);
  EXPECT_EQ(bottom[0].first, 1);
}

}  // namespace
}  // namespace dcape
