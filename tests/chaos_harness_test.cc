#include "sim/harness.h"

#include <gtest/gtest.h>

#include <string>

#include "sim/fault_plan.h"
#include "sim/scenario.h"

namespace dcape {
namespace sim {
namespace {

TEST(ChaosHarnessTest, GeneratedTrialsPassAndReplayIdentically) {
  for (uint64_t seed : {0u, 1u, 2u}) {
    TrialOptions options;
    options.seed = seed;
    const TrialOutcome first = RunTrial(options);
    EXPECT_TRUE(first.passed) << "seed " << seed << ": "
                              << (first.violations.empty()
                                      ? std::string("?")
                                      : first.violations[0]);
    // The whole trial — scenario, counters, violations — is a pure
    // function of the seed.
    const TrialOutcome second = RunTrial(options);
    EXPECT_EQ(first.signature, second.signature);
    EXPECT_EQ(first.flags, second.flags);
  }
}

TEST(ChaosHarnessTest, DeliberateDuplicateBatchIsCaught) {
  // A duplicated tuple batch is a protocol violation no fault-tolerant
  // path absorbs; the differential oracle must flag it. Seed 3's
  // scenario is irrelevant — the bug overlay applies to any.
  TrialOptions options;
  options.seed = 3;
  options.extra_faults.duplicate_batch_prob = 0.05;
  const TrialOutcome outcome = RunTrial(options);
  ASSERT_FALSE(outcome.passed);
  ASSERT_FALSE(outcome.violations.empty());
  bool oracle_fired = false;
  for (const std::string& v : outcome.violations) {
    if (v.find("oracle") != std::string::npos ||
        v.find("accounting") != std::string::npos) {
      oracle_fired = true;
    }
  }
  EXPECT_TRUE(oracle_fired) << outcome.violations[0];
}

TEST(ChaosHarnessTest, FailingTrialReplaysBitIdentically) {
  // Acceptance check: re-running a failing trial's seed reproduces the
  // identical trace, violations included.
  TrialOptions options;
  options.seed = 5;
  options.extra_faults.duplicate_batch_prob = 0.05;
  const TrialOutcome first = RunTrial(options);
  const TrialOutcome second = RunTrial(options);
  ASSERT_FALSE(first.passed);
  EXPECT_EQ(first.signature, second.signature);
  EXPECT_EQ(first.violations, second.violations);
}

TEST(ChaosHarnessTest, ShrinkerIsolatesTheInjectedFaultClass) {
  FaultSpec extra;
  extra.duplicate_batch_prob = 0.05;
  const std::string shrunk = ShrinkFailure(/*seed=*/3, extra, nullptr);
  EXPECT_EQ(shrunk, "duplicate");
}

TEST(ChaosHarnessTest, SweepReportsEveryFailure) {
  HarnessOptions options;
  options.trials = 3;
  options.base_seed = 0;
  options.extra_faults.duplicate_batch_prob = 0.05;
  options.shrink = false;
  const HarnessReport report = RunTrials(options);
  EXPECT_EQ(report.trials, 3);
  EXPECT_EQ(report.failures, 3);
  ASSERT_EQ(report.failed.size(), 3u);
  EXPECT_EQ(report.failed[0].seed, 0u);
  EXPECT_EQ(report.failed[2].seed, 2u);
}

TEST(ChaosScenarioTest, ScenariosAreSeedDeterministicAndVaried) {
  const Scenario a = GenerateScenario(11);
  const Scenario b = GenerateScenario(11);
  EXPECT_EQ(a.flags, b.flags);
  EXPECT_EQ(a.config.num_engines, b.config.num_engines);
  // Different seeds explore the space: over a few seeds, at least two
  // distinct engine counts and strategies must appear.
  bool engines_vary = false;
  bool strategy_varies = false;
  const Scenario base = GenerateScenario(0);
  for (uint64_t seed = 1; seed < 12; ++seed) {
    const Scenario s = GenerateScenario(seed);
    engines_vary |= s.config.num_engines != base.config.num_engines;
    strategy_varies |= s.config.strategy != base.config.strategy;
  }
  EXPECT_TRUE(engines_vary);
  EXPECT_TRUE(strategy_varies);
}

TEST(ChaosFaultPlanTest, HealDisablesEveryFault) {
  FaultSpec spec;
  spec.delay_prob = 1.0;
  spec.max_extra_delay = 5;
  spec.read_error_prob = 1.0;
  spec.write_error_prob = 1.0;
  spec.stall_prob = 1.0;
  spec.max_stall_ticks = 5;
  FaultPlan plan(spec, /*seed=*/9, /*num_engines=*/2);
  Message m;
  m.type = MessageType::kTupleBatch;
  EXPECT_GT(plan.SampleExtraDelay(m), 0);
  EXPECT_EQ(plan.SampleRead(0), FaultPlan::DiskFault::kError);
  plan.Heal();
  EXPECT_EQ(plan.SampleExtraDelay(m), 0);
  EXPECT_EQ(plan.SampleRead(0), FaultPlan::DiskFault::kNone);
  EXPECT_EQ(plan.SampleWrite(1), FaultPlan::DiskFault::kNone);
  EXPECT_EQ(plan.SampleStall(0), 0);
}

}  // namespace
}  // namespace sim
}  // namespace dcape
