#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

/// The library's central invariant, checked across the whole strategy and
/// configuration space: for any adaptation strategy, spill policy, engine
/// count, and placement skew, (run-time results) ∪ (cleanup results)
/// equals the all-memory reference join exactly — no losses and no
/// duplicates. This is the property the paper's correctness argument
/// (partition-group granularity + cleanup) rests on.
struct PropertyCase {
  AdaptationStrategy strategy;
  SpillPolicy policy;
  int num_engines;
  std::vector<double> placement;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string name = StrategyName(c.strategy);
  name += "_";
  name += SpillPolicyName(c.policy);
  name += "_e" + std::to_string(c.num_engines) + "_s" +
          std::to_string(c.seed);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class ExactnessProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ExactnessProperty, RuntimePlusCleanupEqualsReference) {
  const PropertyCase& param = GetParam();
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.num_engines = param.num_engines;
  config.placement_fractions = param.placement;
  config.spill.policy = param.policy;
  config.workload.seed = param.seed;
  config.seed = param.seed;

  std::vector<JoinResult> reference = testing::ReferenceResults(config);
  ASSERT_FALSE(reference.empty());

  config.strategy = param.strategy;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  auto all = ToMultiset(AllResults(result));
  for (const auto& [key, count] : all) {
    ASSERT_EQ(count, 1) << "duplicate result " << key << " under "
                        << StrategyName(param.strategy);
  }
  EXPECT_EQ(all, ToMultiset(reference))
      << "result set mismatch under " << StrategyName(param.strategy) << "/"
      << SpillPolicyName(param.policy);
}

INSTANTIATE_TEST_SUITE_P(
    StrategySweep, ExactnessProperty,
    ::testing::Values(
        PropertyCase{AdaptationStrategy::kSpillOnly,
                     SpillPolicy::kLeastProductiveFirst, 2, {}, 1},
        PropertyCase{AdaptationStrategy::kSpillOnly,
                     SpillPolicy::kMostProductiveFirst, 2, {}, 2},
        PropertyCase{AdaptationStrategy::kSpillOnly, SpillPolicy::kLargestFirst,
                     2, {}, 3},
        PropertyCase{AdaptationStrategy::kSpillOnly,
                     SpillPolicy::kSmallestFirst, 2, {}, 4},
        PropertyCase{AdaptationStrategy::kSpillOnly, SpillPolicy::kRandom, 2,
                     {}, 5},
        PropertyCase{AdaptationStrategy::kRelocationOnly,
                     SpillPolicy::kLeastProductiveFirst, 2, {0.8, 0.2}, 6},
        PropertyCase{AdaptationStrategy::kRelocationOnly,
                     SpillPolicy::kLeastProductiveFirst, 3,
                     {0.6, 0.2, 0.2}, 7},
        PropertyCase{AdaptationStrategy::kLazyDisk,
                     SpillPolicy::kLeastProductiveFirst, 2, {0.75, 0.25}, 8},
        PropertyCase{AdaptationStrategy::kLazyDisk,
                     SpillPolicy::kLeastProductiveFirst, 3,
                     {2.0 / 3, 1.0 / 6, 1.0 / 6}, 9},
        PropertyCase{AdaptationStrategy::kLazyDisk, SpillPolicy::kRandom, 2,
                     {0.5, 0.5}, 10},
        PropertyCase{AdaptationStrategy::kActiveDisk,
                     SpillPolicy::kLeastProductiveFirst, 2, {0.6, 0.4}, 11},
        PropertyCase{AdaptationStrategy::kActiveDisk,
                     SpillPolicy::kLeastProductiveFirst, 3, {}, 12}),
    CaseName);

/// Under load fluctuation (the Figs. 9–10 adversarial input), relocation
/// keeps bouncing state between machines; exactness must survive.
TEST(FluctuationProperty, RelocationUnderAlternatingLoadIsExact) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = MinutesToTicks(2);
  // The 2-minute run emits ~12k tuples/stream; with the fluctuation
  // concentrating 10x load on half the partitions, the default 40 keys
  // per partition would give each hot key dozens of matches per stream
  // and a cubic result blow-up. Widen the key domain so every key sees
  // only a handful of partners.
  config.workload.classes[0].tuple_range = 4800;  // -> 400 keys/partition
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = SecondsToTicks(20);
  config.workload.fluctuation.hot_multiplier = 10.0;
  config.relocation.min_time_between = SecondsToTicks(5);

  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  config.strategy = AdaptationStrategy::kRelocationOnly;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  EXPECT_GT(result.coordinator.relocations_completed, 1);
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

/// Repeated spills of the same partitions create many generations per
/// partition; the cleanup's incremental merge must still be exact.
TEST(ManyGenerationsProperty, TinyThresholdManySpillsIsExact) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.spill.memory_threshold_bytes = 16 * kKiB;
  config.spill.spill_fraction = 0.4;

  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  config.strategy = AdaptationStrategy::kSpillOnly;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  EXPECT_GT(result.spill_events, 4);
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

}  // namespace
}  // namespace dcape
