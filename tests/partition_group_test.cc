#include "state/partition_group.h"

#include <gtest/gtest.h>

#include <set>

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key,
                const std::string& payload = "pp") {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.timestamp = seq;
  t.payload = payload;
  return t;
}

TEST(PartitionGroupTest, NoResultUntilAllStreamsMatch) {
  PartitionGroup group(0, 3);
  std::vector<JoinResult> results;
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(0, 1, 7), &results), 0);
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(1, 1, 7), &results), 0);
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(2, 1, 7), &results), 1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].join_key, 7);
  EXPECT_EQ(results[0].member_seqs, (std::vector<int64_t>{1, 1, 1}));
}

TEST(PartitionGroupTest, DifferentKeysDoNotJoin) {
  PartitionGroup group(0, 2);
  std::vector<JoinResult> results;
  group.ProbeAndInsert(MakeTuple(0, 1, 7), &results);
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(1, 2, 8), &results), 0);
  EXPECT_TRUE(results.empty());
}

TEST(PartitionGroupTest, CrossProductCount) {
  // 2 tuples in stream 0, 3 in stream 1 with key k; a new stream-2 tuple
  // produces 2*3 = 6 results.
  PartitionGroup group(0, 3);
  std::vector<JoinResult> results;
  group.ProbeAndInsert(MakeTuple(0, 1, 5), nullptr);
  group.ProbeAndInsert(MakeTuple(0, 2, 5), nullptr);
  group.ProbeAndInsert(MakeTuple(1, 1, 5), nullptr);
  group.ProbeAndInsert(MakeTuple(1, 2, 5), nullptr);
  group.ProbeAndInsert(MakeTuple(1, 3, 5), nullptr);
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(2, 9, 5), &results), 6);
  // All results distinct.
  std::set<std::string> keys;
  for (const JoinResult& r : results) keys.insert(r.EncodeKey());
  EXPECT_EQ(keys.size(), 6u);
}

TEST(PartitionGroupTest, MultiplicativeFactorMath) {
  // The paper's example: 5 tuples per stream with the same join value →
  // 5*5*5 = 125 total results for a 3-way join.
  PartitionGroup group(0, 3);
  int64_t total = 0;
  for (int i = 0; i < 5; ++i) {
    for (StreamId s = 0; s < 3; ++s) {
      total += group.ProbeAndInsert(MakeTuple(s, i, 1), nullptr);
    }
  }
  EXPECT_EQ(total, 125);
  EXPECT_EQ(group.outputs(), 125);
}

TEST(PartitionGroupTest, ByteAndTupleAccounting) {
  PartitionGroup group(3, 2);
  Tuple t = MakeTuple(0, 1, 2, "0123456789");
  group.ProbeAndInsert(t, nullptr);
  EXPECT_EQ(group.tuple_count(), 1);
  EXPECT_EQ(group.bytes(), t.ByteSize());
  group.ProbeAndInsert(MakeTuple(1, 2, 2, "0123456789"), nullptr);
  EXPECT_EQ(group.tuple_count(), 2);
  EXPECT_EQ(group.bytes(), 2 * t.ByteSize());
}

TEST(PartitionGroupTest, ProductivityIsOutputsPerByte) {
  PartitionGroup group(0, 2);
  EXPECT_EQ(group.productivity(), 0.0);
  group.ProbeAndInsert(MakeTuple(0, 1, 1), nullptr);
  group.ProbeAndInsert(MakeTuple(1, 1, 1), nullptr);  // 1 result
  EXPECT_GT(group.productivity(), 0.0);
  EXPECT_DOUBLE_EQ(group.productivity(),
                   1.0 / static_cast<double>(group.bytes()));
  GroupStats stats = group.Stats();
  EXPECT_EQ(stats.outputs, 1);
  EXPECT_EQ(stats.bytes, group.bytes());
}

TEST(PartitionGroupTest, SerializeDeserializeRoundTrip) {
  PartitionGroup group(11, 3);
  for (int i = 0; i < 4; ++i) {
    for (StreamId s = 0; s < 3; ++s) {
      group.ProbeAndInsert(MakeTuple(s, i, i % 2, "payload"), nullptr);
    }
  }
  std::string blob;
  group.Serialize(&blob);
  StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->partition(), 11);
  EXPECT_EQ(restored->num_streams(), 3);
  EXPECT_EQ(restored->tuple_count(), group.tuple_count());
  EXPECT_EQ(restored->bytes(), group.bytes());
  EXPECT_EQ(restored->outputs(), group.outputs());
  // Re-serialization is stable modulo hash-table iteration order: compare
  // the per-stream per-key seq multisets instead.
  for (StreamId s = 0; s < 3; ++s) {
    const auto& original_table = group.TableForStream(s);
    const auto& restored_table = restored->TableForStream(s);
    ASSERT_EQ(original_table.size(), restored_table.size());
    for (const auto& [key, tuples] : original_table) {
      auto it = restored_table.find(key);
      ASSERT_NE(it, restored_table.end());
      EXPECT_EQ(it->second.size(), tuples.size());
    }
  }
}

TEST(PartitionGroupTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(PartitionGroup::Deserialize("garbage").ok());
  std::string blob;
  PartitionGroup group(0, 2);
  group.Serialize(&blob);
  blob += "extra";
  EXPECT_FALSE(PartitionGroup::Deserialize(blob).ok());
}

TEST(PartitionGroupTest, MergeCombinesStateAndCounters) {
  PartitionGroup a(4, 2);
  a.ProbeAndInsert(MakeTuple(0, 1, 9), nullptr);
  a.ProbeAndInsert(MakeTuple(1, 2, 9), nullptr);  // 1 output

  PartitionGroup b(4, 2);
  b.ProbeAndInsert(MakeTuple(0, 3, 9), nullptr);

  const int64_t bytes = a.bytes() + b.bytes();
  a.MergeFrom(std::move(b));
  EXPECT_EQ(a.tuple_count(), 3);
  EXPECT_EQ(a.bytes(), bytes);
  EXPECT_EQ(a.outputs(), 1);
  // Post-merge probes see the merged state: a stream-1 tuple with key 9
  // matches both stream-0 tuples.
  EXPECT_EQ(a.ProbeAndInsert(MakeTuple(1, 4, 9), nullptr), 2);
}

TEST(PartitionGroupTest, InsertOnlySkipsProbing) {
  PartitionGroup group(0, 2);
  group.InsertOnly(MakeTuple(0, 1, 3));
  group.InsertOnly(MakeTuple(1, 2, 3));
  EXPECT_EQ(group.outputs(), 0);
  EXPECT_EQ(group.tuple_count(), 2);
}

}  // namespace
}  // namespace dcape
