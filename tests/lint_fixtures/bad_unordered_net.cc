// dcape-lint fixture: must trigger exactly [unordered-net].
//
// BroadcastStats iterates a hash map and calls Network::Send from the
// loop: the order tuples leave the node now depends on the standard
// library's hash seed and on insertion history. FlushTable reaches a
// serializer the same way, two hops down the call graph.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace dcape {

struct Message {
  int dest = 0;
  std::string payload;
};

class Network {
 public:
  void Send(const Message& m) { sent_.push_back(m); }

 private:
  std::vector<Message> sent_;
};

class StatsHub {
 public:
  void BroadcastStats(Network* net) {
    for (const auto& entry : per_engine_bytes_) {
      Message m;
      m.dest = entry.first;
      m.payload = std::to_string(entry.second);
      net->Send(m);
    }
  }

  void EncodeRow(std::string* out, int64_t v) {
    out->append(std::to_string(v));
  }

  void AppendRow(std::string* out, int64_t v) { EncodeRow(out, v); }

  void FlushTable(std::string* out) {
    for (const auto& entry : per_engine_bytes_) {
      AppendRow(out, entry.second);
    }
  }

 private:
  std::unordered_map<int, int64_t> per_engine_bytes_;
};

}  // namespace dcape
