// dcape-lint fixture: the clean counterpart — every pattern the bad_*
// fixtures flag, written the way the tree is supposed to write it.
// Must produce zero findings.
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dcape {

// Stand-in for common/check.h in this self-contained fixture.
#define DCAPE_CHECK(cond) \
  do {                    \
  } while (false)

enum class Phase {
  kAwaitPartitions,
  kAwaitPauseAcks,
  kAwaitInstall,
  kAwaitRoutingAcks,
};

struct Message {
  int dest = 0;
  std::string payload;
};

class Network {
 public:
  void Send(const Message& m) { sent_.push_back(m); }

 private:
  std::vector<Message> sent_;
};

template <typename T>
class StatusOr {
 public:
  bool ok() const { return ok_; }
  const T& value() const { return value_; }
  const T& operator*() const { return value_; }

 private:
  T value_{};
  bool ok_ = true;
};

StatusOr<std::string> LoadBlob(int64_t id);

// Phase switch with the required guarded default arm.
const char* DescribePhase(Phase phase) {
  switch (phase) {
    case Phase::kAwaitPartitions:
      return "await-partitions";
    case Phase::kAwaitPauseAcks:
      return "await-pause-acks";
    case Phase::kAwaitInstall:
      return "await-install";
    case Phase::kAwaitRoutingAcks:
      return "await-routing-acks";
    default:
      DCAPE_CHECK(false);
      return "corrupt-phase";
  }
}

// StatusOr checked before use.
int64_t BlobSize(int64_t id) {
  StatusOr<std::string> blob = LoadBlob(id);
  if (!blob.ok()) return -1;
  return static_cast<int64_t>((*blob).size());
}

class StatsHub {
 public:
  // Hash-order erased by sorting into a vector before the sends.
  void BroadcastStats(Network* net) {
    std::vector<std::pair<int, int64_t>> rows(per_engine_bytes_.begin(),
                                              per_engine_bytes_.end());
    std::sort(rows.begin(), rows.end());
    for (const auto& row : rows) {
      Message m;
      m.dest = row.first;
      m.payload = std::to_string(row.second);
      net->Send(m);
    }
  }

  // Iterating the hash map is fine in functions that never reach a
  // network/serialization sink — aggregation order doesn't matter.
  int64_t TotalBytes() const {
    int64_t total = 0;
    for (const auto& entry : per_engine_bytes_) total += entry.second;
    return total;
  }

 private:
  std::unordered_map<int, int64_t> per_engine_bytes_;
  // Ordered container keyed on a stable id, not a pointer.
  std::map<int64_t, std::string> names_by_id_;
};

}  // namespace dcape
