// Fixture: trace-event and metric names must be registered taxonomy
// constants from src/obs/taxonomy.h, never ad-hoc strings — stable name
// identities are what make traces diffable and schema-checkable.
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dcape {

void EmitAdHocEventName(obs::Tracer* tracer) {
  tracer->EmitInstant(0, 1, "engine.custom_event");
}

void RegisterAdHocMetricName(obs::MetricsRegistry* registry) {
  registry->AddCounter("engine.custom_metric", 0);
}

}  // namespace dcape
