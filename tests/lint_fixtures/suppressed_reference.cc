// dcape-lint fixture: every check suppressed with the
// `// dcape-lint: allow(<check>)` marker, same-line and line-above
// forms. Must produce zero findings — this is the regression test for
// the suppression mechanism itself.
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace dcape {

enum class Phase {
  kAwaitPartitions,
  kAwaitPauseAcks,
};

struct Message {
  int dest = 0;
};

class Network {
 public:
  void Send(const Message& m) { sent_.push_back(m); }

 private:
  std::vector<Message> sent_;
};

template <typename T>
class StatusOr {
 public:
  bool ok() const { return ok_; }
  const T& operator*() const { return value_; }

 private:
  T value_{};
  bool ok_ = true;
};

StatusOr<std::string> LoadBlob(int64_t id);

struct Engine {
  int64_t id = 0;
};

// Same-line suppression.
long WallMillis() {
  return std::chrono::steady_clock::now()  // dcape-lint: allow(wall-clock)
      .time_since_epoch()
      .count();
}

const char* DescribePhase(Phase phase) {
  // dcape-lint: allow(phase-switch)
  switch (phase) {
    case Phase::kAwaitPartitions:
      return "await-partitions";
    case Phase::kAwaitPauseAcks:
      return "await-pause-acks";
  }
  return "unreachable";
}

int64_t BlobSize(int64_t id) {
  // dcape-lint: allow(statusor-unchecked)
  StatusOr<std::string> blob = LoadBlob(id);
  return static_cast<int64_t>((*blob).size());
}

class StatsHub {
 public:
  void BroadcastStats(Network* net) {
    // dcape-lint: allow(unordered-net)
    for (const auto& entry : per_engine_bytes_) {
      Message m;
      m.dest = entry.first;
      net->Send(m);
    }
  }

 private:
  std::unordered_map<int, int64_t> per_engine_bytes_;
  std::map<Engine*, int64_t> by_ptr_;  // dcape-lint: allow(ptr-key-ordered)
};

}  // namespace dcape
