// dcape-lint fixture: must trigger exactly [phase-switch].
//
// A switch over a relocation-protocol phase enum without a
// `default: DCAPE_CHECK(...)` arm: if the phase value is ever corrupt
// (stale message, memory bug), the protocol silently falls through
// instead of aborting at the first observable inconsistency.
namespace dcape {

enum class Phase {
  kAwaitPartitions,
  kAwaitPauseAcks,
  kAwaitInstall,
  kAwaitRoutingAcks,
};

const char* DescribePhase(Phase phase) {
  switch (phase) {
    case Phase::kAwaitPartitions:
      return "await-partitions";
    case Phase::kAwaitPauseAcks:
      return "await-pause-acks";
    case Phase::kAwaitInstall:
      return "await-install";
    case Phase::kAwaitRoutingAcks:
      return "await-routing-acks";
  }
  return "unreachable";
}

}  // namespace dcape
