// dcape-lint fixture: must trigger exactly [statusor-unchecked].
//
// Dereferencing a StatusOr before any .ok()/.status() check turns an
// error return into a DCAPE_CHECK abort instead of a propagated Status.
#include <cstdint>
#include <string>

namespace dcape {

template <typename T>
class StatusOr {
 public:
  bool ok() const { return ok_; }
  const T& value() const { return value_; }
  const T& operator*() const { return value_; }
  const T* operator->() const { return &value_; }

 private:
  T value_{};
  bool ok_ = true;
};

StatusOr<std::string> LoadBlob(int64_t id);

int64_t BlobSize(int64_t id) {
  StatusOr<std::string> blob = LoadBlob(id);
  return static_cast<int64_t>(blob->size());
}

}  // namespace dcape
