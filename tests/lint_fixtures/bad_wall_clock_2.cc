// dcape-lint fixture: must trigger exactly [wall-clock].
//
// The src/rt/ realtime plane is exempt from the wall-clock check (its
// whole job is steady-clock pacing), but that exemption is a path
// prefix, not a pattern change: the same calls in any virtual-clock
// file — here, imagining an engine "optimization" that naps while its
// inbox is empty — must still be findings.
#include <chrono>
#include <thread>

namespace dcape {

void NapUntilInboxCheck() {
  // Both lines below are idiomatic in src/rt/ and illegal anywhere the
  // virtual clock rules: a real sleep desynchronizes replay, and a
  // steady_clock deadline smuggles wall time into tick logic.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace dcape
