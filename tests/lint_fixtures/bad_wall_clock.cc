// dcape-lint fixture: must trigger exactly [wall-clock].
//
// Wall-clock time anywhere outside src/sim|tools breaks bit-identical
// replay: the engine's only time source is the virtual clock, and its
// only randomness the seeded splitmix64 streams.
#include <chrono>
#include <cstdlib>

namespace dcape {

long NowMillisForLog() {
  auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             now.time_since_epoch())
      .count();
}

int JitterTicks() { return rand() % 7; }

}  // namespace dcape
