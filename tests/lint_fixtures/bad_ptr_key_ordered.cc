// dcape-lint fixture: must trigger exactly [ptr-key-ordered].
//
// std::map/std::set ordered by pointer value: the iteration order is
// the allocator's address order, different every run. Key on a stable
// id (EngineId, PartitionId) instead.
#include <cstdint>
#include <map>
#include <set>

namespace dcape {

struct Engine {
  int64_t id = 0;
};

struct Registry {
  std::map<Engine*, int64_t> bytes_by_engine;
  std::set<const Engine*> paused;
};

}  // namespace dcape
