#include "engine/query_engine.h"

#include "net/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/disk_backend.h"
#include "stream/stream_generator.h"

namespace dcape {
namespace {

constexpr NodeId kEngineNode = 0;
constexpr NodeId kPeerEngineNode = 1;
constexpr NodeId kCoordinatorNode = 10;
constexpr NodeId kSinkNode = 11;
constexpr NodeId kSplitHostNode = 12;

Tuple TupleFor(StreamId stream, int64_t seq, PartitionId partition,
               int64_t key_index = 0) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key =
      static_cast<JoinKey>(partition) * StreamGenerator::kKeyStride + key_index;
  t.payload = "0123456789";
  return t;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : network_(FastConfig()) {
    network_.RegisterNode(kCoordinatorNode, [this](Tick, const Message& m) {
      coordinator_inbox_.push_back(m);
    });
    network_.RegisterNode(kSinkNode, [this](Tick, const Message& m) {
      const auto& batch = std::get<ResultBatch>(m.payload);
      results_.insert(results_.end(), batch.results.begin(),
                      batch.results.end());
    });
    network_.RegisterNode(kPeerEngineNode, [this](Tick, const Message& m) {
      peer_inbox_.push_back(m);
    });
  }

  static Network::Config FastConfig() {
    Network::Config config;
    config.latency_ticks = 1;
    config.bytes_per_tick = 1 << 30;
    return config;
  }

  void Build(AdaptationStrategy strategy,
             int64_t threshold = 1 * kMiB) {
    EngineConfig config;
    config.engine_id = 0;
    config.node_id = kEngineNode;
    config.coordinator_node = kCoordinatorNode;
    config.sink_node = kSinkNode;
    config.num_streams = 2;
    config.num_split_hosts = 1;
    config.strategy = strategy;
    config.spill.memory_threshold_bytes = threshold;
    config.spill.spill_fraction = 0.5;
    config.spill.ss_timer_period = 10;
    config.stats_period = 100;
    engine_ = std::make_unique<QueryEngine>(
        config, &network_, SpillStore::Config{},
        std::make_unique<MemoryDiskBackend>());
    network_.RegisterNode(kEngineNode, [this](Tick now, const Message& m) {
      engine_->OnMessage(now, m);
    });
  }

  void Deliver(Tick now, Message m) {
    engine_->OnMessage(now, m);
    network_.DeliverUntil(now + 5);
  }

  void SendTuples(Tick now, const std::vector<Tuple>& tuples) {
    TupleBatch batch;
    batch.stream_id = tuples.front().stream_id;
    batch.tuples = tuples;
    Message m =
        MakeTupleBatchMessage(kSplitHostNode, kEngineNode, std::move(batch));
    Deliver(now, std::move(m));
  }

  Network network_;
  std::unique_ptr<QueryEngine> engine_;
  std::vector<Message> coordinator_inbox_;
  std::vector<Message> peer_inbox_;
  std::vector<JoinResult> results_;
};

TEST_F(QueryEngineTest, ProcessesTuplesAndShipsResults) {
  Build(AdaptationStrategy::kNoAdaptation);
  SendTuples(0, {TupleFor(0, 1, 3)});
  SendTuples(1, {TupleFor(1, 2, 3)});
  network_.DeliverUntil(10);
  ASSERT_EQ(results_.size(), 1u);
  EXPECT_EQ(results_[0].partition, 3);
  EXPECT_EQ(engine_->counters().tuples_processed, 2);
  EXPECT_EQ(engine_->counters().results_produced, 1);
}

TEST_F(QueryEngineTest, StatsReportedPeriodically) {
  Build(AdaptationStrategy::kNoAdaptation);
  SendTuples(0, {TupleFor(0, 1, 3)});
  engine_->OnTick(100);
  network_.DeliverUntil(110);
  ASSERT_EQ(coordinator_inbox_.size(), 1u);
  const auto& report = std::get<StatsReport>(coordinator_inbox_[0].payload);
  EXPECT_EQ(report.engine, 0);
  EXPECT_GT(report.state_bytes, 0);
  EXPECT_EQ(report.num_groups, 1);
}

TEST_F(QueryEngineTest, SpillsWhenThresholdExceeded) {
  Build(AdaptationStrategy::kSpillOnly, /*threshold=*/200);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 20; ++i) {
    tuples.push_back(TupleFor(0, i, i % 5));
  }
  SendTuples(0, tuples);
  const int64_t bytes_before = engine_->state_bytes();
  ASSERT_GT(bytes_before, 200);
  engine_->OnTick(10);
  EXPECT_EQ(engine_->counters().spill_events, 1);
  EXPECT_GT(engine_->counters().spilled_bytes, 0);
  EXPECT_GT(engine_->spill_store().segment_count(), 0);
  // At least the configured 50% of the state left memory.
  EXPECT_LE(engine_->state_bytes(), bytes_before / 2);
}

TEST_F(QueryEngineTest, NoAdaptationNeverSpills) {
  Build(AdaptationStrategy::kNoAdaptation, /*threshold=*/100);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 20; ++i) tuples.push_back(TupleFor(0, i, i % 5));
  SendTuples(0, tuples);
  engine_->OnTick(10);
  engine_->OnTick(20);
  EXPECT_EQ(engine_->counters().spill_events, 0);
}

TEST_F(QueryEngineTest, SpillMakesEngineBusyAndQueuesInput) {
  Build(AdaptationStrategy::kSpillOnly, /*threshold=*/200);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 50; ++i) tuples.push_back(TupleFor(0, i, i % 5));
  SendTuples(0, tuples);
  engine_->OnTick(10);  // spill happens; busy for a few ticks
  ASSERT_EQ(engine_->counters().spill_events, 1);
  EXPECT_FALSE(engine_->Idle(10));

  // A batch arriving while busy is queued, not processed.
  const int64_t processed_before = engine_->counters().tuples_processed;
  SendTuples(11, {TupleFor(1, 100, 0)});
  EXPECT_EQ(engine_->counters().tuples_processed, processed_before);
  // Once the I/O completes, the queue drains (further ticks may spill
  // again while memory remains above threshold — keep ticking).
  Tick t = 10000;
  while (!engine_->Idle(t) && t < 200000) {
    engine_->OnTick(t);
    t += 100;
  }
  EXPECT_EQ(engine_->counters().tuples_processed, processed_before + 1);
  EXPECT_TRUE(engine_->Idle(t));
}

TEST_F(QueryEngineTest, ForceSpillRepliesWithSpilledBytes) {
  Build(AdaptationStrategy::kActiveDisk, /*threshold=*/1 * kMiB);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 20; ++i) tuples.push_back(TupleFor(0, i, i % 5));
  SendTuples(0, tuples);

  Message m;
  m.type = MessageType::kForceSpill;
  m.from = kCoordinatorNode;
  m.to = kEngineNode;
  m.payload = ForceSpill{/*amount_bytes=*/300};
  Deliver(5, std::move(m));
  network_.DeliverUntil(20);

  ASSERT_EQ(coordinator_inbox_.size(), 1u);
  const auto& done = std::get<SpillComplete>(coordinator_inbox_[0].payload);
  EXPECT_GE(done.bytes_spilled, 300);
  EXPECT_EQ(engine_->counters().forced_spill_events, 1);
  EXPECT_EQ(engine_->counters().spill_events, 0);
}

TEST_F(QueryEngineTest, RelocationSenderFullFlow) {
  Build(AdaptationStrategy::kLazyDisk);
  // Partition 3 has a match (productive); partition 4 does not.
  SendTuples(0, {TupleFor(0, 1, 3), TupleFor(0, 2, 4)});
  SendTuples(1, {TupleFor(1, 3, 3)});

  // Step 1: coordinator asks for partitions to move.
  Message cptv;
  cptv.type = MessageType::kComputePartitionsToMove;
  cptv.from = kCoordinatorNode;
  cptv.to = kEngineNode;
  cptv.payload = ComputePartitionsToMove{/*relocation_id=*/7,
                                         /*amount_bytes=*/1, /*receiver=*/1};
  Deliver(10, std::move(cptv));
  network_.DeliverUntil(15);

  // Step 2: the reply names the most productive partition (3), locked.
  ASSERT_EQ(coordinator_inbox_.size(), 1u);
  const auto& reply =
      std::get<PartitionsToMove>(coordinator_inbox_[0].payload);
  EXPECT_EQ(reply.relocation_id, 7);
  ASSERT_EQ(reply.partitions.size(), 1u);
  EXPECT_EQ(reply.partitions[0], 3);
  EXPECT_TRUE(engine_->mjoin().state().IsLocked(3));
  EXPECT_EQ(engine_->mode(), EngineMode::kStateRelocation);

  // While locked+pending, tuples for partition 3 still get processed.
  SendTuples(20, {TupleFor(1, 4, 3, 0)});
  EXPECT_EQ(engine_->counters().tuples_processed, 4);

  // Steps 4b/5: drain marker + transfer authorization (either order).
  Message transfer;
  transfer.type = MessageType::kTransferStates;
  transfer.from = kCoordinatorNode;
  transfer.to = kEngineNode;
  transfer.payload = TransferStates{7, /*receiver=*/1, {3}};
  Deliver(30, std::move(transfer));
  EXPECT_TRUE(peer_inbox_.empty()) << "must wait for the drain marker";

  Message marker;
  marker.type = MessageType::kDrainMarker;
  marker.from = kSplitHostNode;
  marker.to = kEngineNode;
  marker.payload = DrainMarker{7, kSplitHostNode};
  Deliver(31, std::move(marker));
  network_.DeliverUntil(40);

  // Step 6: the serialized state went to the receiver.
  ASSERT_EQ(peer_inbox_.size(), 1u);
  ASSERT_EQ(peer_inbox_[0].type, MessageType::kStateTransfer);
  const auto& shipped = std::get<StateTransfer>(peer_inbox_[0].payload);
  ASSERT_EQ(shipped.groups.size(), 1u);
  EXPECT_EQ(shipped.groups[0].partition, 3);
  EXPECT_EQ(engine_->mjoin().state().FindGroup(3), nullptr);
  EXPECT_EQ(engine_->mode(), EngineMode::kNormal);
  EXPECT_EQ(engine_->counters().relocations_out, 1);
}

TEST_F(QueryEngineTest, ReceiverInstallsStateAndAcks) {
  Build(AdaptationStrategy::kLazyDisk);
  // Serialize a group worth of state from a scratch manager.
  StateManager scratch(2);
  scratch.ProcessTuple(5, TupleFor(0, 1, 5), nullptr);
  scratch.ProcessTuple(5, TupleFor(1, 2, 5), nullptr);
  auto extracted = scratch.ExtractGroups({5});
  ASSERT_EQ(extracted.size(), 1u);

  Message m;
  m.type = MessageType::kStateTransfer;
  m.from = kPeerEngineNode;
  m.to = kEngineNode;
  StateTransfer transfer;
  transfer.relocation_id = 9;
  transfer.sender = 1;
  transfer.groups.push_back(SerializedGroup{5, extracted[0].blob});
  m.payload = std::move(transfer);
  Deliver(50, std::move(m));
  network_.DeliverUntil(60);

  EXPECT_NE(engine_->mjoin().state().FindGroup(5), nullptr);
  EXPECT_EQ(engine_->counters().relocations_in, 1);
  ASSERT_EQ(coordinator_inbox_.size(), 1u);
  const auto& ack = std::get<StatesInstalled>(coordinator_inbox_[0].payload);
  EXPECT_EQ(ack.relocation_id, 9);
  EXPECT_GT(ack.bytes, 0);

  // Installed state joins with new input.
  SendTuples(70, {TupleFor(0, 10, 5)});
  network_.DeliverUntil(80);
  EXPECT_FALSE(results_.empty());
}

}  // namespace
}  // namespace dcape
