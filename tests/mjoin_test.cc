#include "operators/mjoin.h"

#include <gtest/gtest.h>

#include <memory>

#include "storage/disk_backend.h"

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.payload = "abc";
  return t;
}

class MJoinTest : public ::testing::Test {
 protected:
  MJoinTest()
      : store_(0, SpillStore::Config{}, std::make_unique<MemoryDiskBackend>()),
        join_(3, &store_) {}

  SpillStore store_;
  MJoin join_;
};

TEST_F(MJoinTest, ProcessRoutesToPartitionGroups) {
  std::vector<JoinResult> results;
  join_.Process(1, MakeTuple(0, 1, 100), &results);
  join_.Process(1, MakeTuple(1, 1, 100), &results);
  join_.Process(1, MakeTuple(2, 1, 100), &results);
  EXPECT_EQ(results.size(), 1u);
  EXPECT_EQ(join_.state().group_count(), 1);
}

TEST_F(MJoinTest, SpillFreezesGroupsToDisk) {
  join_.Process(1, MakeTuple(0, 1, 100), nullptr);
  join_.Process(2, MakeTuple(0, 2, 200), nullptr);
  const int64_t bytes_before = join_.state().total_bytes();

  StatusOr<MJoin::SpillOutcome> outcome = join_.SpillPartitions({1}, 50);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->groups, 1);
  EXPECT_EQ(outcome->tuples, 1);
  EXPECT_GT(outcome->bytes, 0);
  EXPECT_GT(outcome->io_ticks, 0);
  EXPECT_LT(join_.state().total_bytes(), bytes_before);
  ASSERT_EQ(store_.segments().size(), 1u);
  EXPECT_EQ(store_.segments()[0].partition, 1);
  EXPECT_EQ(store_.segments()[0].spill_time, 50);
}

TEST_F(MJoinTest, SpillSkipsLockedGroups) {
  join_.Process(1, MakeTuple(0, 1, 100), nullptr);
  join_.state().LockGroups({1});
  StatusOr<MJoin::SpillOutcome> outcome = join_.SpillPartitions({1}, 0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->groups, 0);
  EXPECT_EQ(join_.state().group_count(), 1);
}

TEST_F(MJoinTest, NewGenerationGrowsAfterSpill) {
  join_.Process(1, MakeTuple(0, 1, 100), nullptr);
  ASSERT_TRUE(join_.SpillPartitions({1}, 0).ok());
  EXPECT_EQ(join_.state().group_count(), 0);
  // New tuples with the same partition id form a fresh group; they do NOT
  // see the spilled state (that's the cleanup's job).
  std::vector<JoinResult> results;
  join_.Process(1, MakeTuple(1, 1, 100), &results);
  join_.Process(1, MakeTuple(2, 1, 100), &results);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(join_.state().group_count(), 1);
  // A second spill of the same partition creates another generation.
  ASSERT_TRUE(join_.SpillPartitions({1}, 10).ok());
  EXPECT_EQ(store_.segments().size(), 2u);
}

TEST(MJoinWithoutStoreTest, SpillFailsPrecondition) {
  MJoin join(2, nullptr);
  EXPECT_EQ(join.SpillPartitions({0}, 0).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace dcape
