#include "storage/disk_backend.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace dcape {
namespace {

template <typename T>
std::unique_ptr<DiskBackend> MakeBackend();

template <>
std::unique_ptr<DiskBackend> MakeBackend<MemoryDiskBackend>() {
  return std::make_unique<MemoryDiskBackend>();
}

template <>
std::unique_ptr<DiskBackend> MakeBackend<FileDiskBackend>() {
  return MakeTempFileBackend("dcape_disk_test");
}

template <typename T>
class DiskBackendTest : public ::testing::Test {};

using BackendTypes = ::testing::Types<MemoryDiskBackend, FileDiskBackend>;
TYPED_TEST_SUITE(DiskBackendTest, BackendTypes);

TYPED_TEST(DiskBackendTest, WriteReadRoundTrip) {
  auto backend = MakeBackend<TypeParam>();
  ASSERT_TRUE(backend->Write("a.spill", "hello world").ok());
  StatusOr<std::string> read = backend->Read("a.spill");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello world");
}

TYPED_TEST(DiskBackendTest, BinaryDataSurvives) {
  auto backend = MakeBackend<TypeParam>();
  std::string data;
  for (int i = 0; i < 256; ++i) data.push_back(static_cast<char>(i));
  ASSERT_TRUE(backend->Write("bin", data).ok());
  EXPECT_EQ(backend->Read("bin").value(), data);
}

TYPED_TEST(DiskBackendTest, ReadMissingIsNotFound) {
  auto backend = MakeBackend<TypeParam>();
  EXPECT_EQ(backend->Read("nope").status().code(), StatusCode::kNotFound);
}

TYPED_TEST(DiskBackendTest, OverwriteReplacesContent) {
  auto backend = MakeBackend<TypeParam>();
  ASSERT_TRUE(backend->Write("x", "one").ok());
  ASSERT_TRUE(backend->Write("x", "two").ok());
  EXPECT_EQ(backend->Read("x").value(), "two");
}

TYPED_TEST(DiskBackendTest, RemoveDeletes) {
  auto backend = MakeBackend<TypeParam>();
  ASSERT_TRUE(backend->Write("gone", "data").ok());
  ASSERT_TRUE(backend->Remove("gone").ok());
  EXPECT_EQ(backend->Read("gone").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(backend->Remove("gone").code(), StatusCode::kNotFound);
}

TYPED_TEST(DiskBackendTest, ListReturnsSortedNames) {
  auto backend = MakeBackend<TypeParam>();
  ASSERT_TRUE(backend->Write("b", "2").ok());
  ASSERT_TRUE(backend->Write("a", "1").ok());
  ASSERT_TRUE(backend->Write("c", "3").ok());
  std::vector<std::string> names = backend->List();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  EXPECT_EQ(names[2], "c");
}

TEST(FileDiskBackendTest, WritesLeaveNoTempFiles) {
  // Writes go through a temp file + rename; after each Write the
  // directory must contain only published files.
  std::string dir =
      (std::filesystem::temp_directory_path() / "dcape_tmpfree").string();
  std::filesystem::remove_all(dir);
  {
    FileDiskBackend backend(dir);
    ASSERT_TRUE(backend.Write("a.spill", "first").ok());
    ASSERT_TRUE(backend.Write("a.spill", std::string(4096, 'x')).ok());
    ASSERT_TRUE(backend.Write("b.spill", "second").ok());
    int tmp_files = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".tmp") ++tmp_files;
    }
    EXPECT_EQ(tmp_files, 0);
    std::vector<std::string> names = backend.List();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.spill");
    EXPECT_EQ(names[1], "b.spill");
  }
  std::filesystem::remove_all(dir);
}

TEST(FileDiskBackendTest, ListSkipsInFlightTempFiles) {
  // A leftover .tmp (e.g. from a crash mid-write) is not a segment:
  // List must skip it and Read must not see it.
  std::string dir =
      (std::filesystem::temp_directory_path() / "dcape_stale_tmp").string();
  std::filesystem::remove_all(dir);
  {
    FileDiskBackend backend(dir);
    ASSERT_TRUE(backend.Write("real", "data").ok());
    std::ofstream(std::filesystem::path(dir) / "crashed.tmp") << "partial";
    std::vector<std::string> names = backend.List();
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "real");
  }
  std::filesystem::remove_all(dir);
}

TEST(FileDiskBackendTest, OverwriteIsAtomicallyPublished) {
  // An overwrite replaces the old content wholesale — the reader never
  // sees a mix or an empty file, because publication is a rename.
  auto backend = MakeTempFileBackend("dcape_atomic");
  ASSERT_TRUE(backend->Write("seg", std::string(1024, 'A')).ok());
  ASSERT_TRUE(backend->Write("seg", std::string(16, 'B')).ok());
  StatusOr<std::string> read = backend->Read("seg");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, std::string(16, 'B'));
}

TEST(FileDiskBackendTest, CreatesDirectory) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "dcape_nested" / "deep")
          .string();
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "dcape_nested");
  FileDiskBackend backend(dir);
  EXPECT_TRUE(std::filesystem::exists(dir));
  EXPECT_TRUE(backend.Write("f", "x").ok());
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "dcape_nested");
}

TEST(MakeTempFileBackendTest, DistinctDirectories) {
  auto a = MakeTempFileBackend("dcape_uniq");
  auto b = MakeTempFileBackend("dcape_uniq");
  ASSERT_TRUE(a->Write("same_name", "A").ok());
  ASSERT_TRUE(b->Write("same_name", "B").ok());
  EXPECT_EQ(a->Read("same_name").value(), "A");
  EXPECT_EQ(b->Read("same_name").value(), "B");
}

}  // namespace
}  // namespace dcape
