#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/taxonomy.h"

namespace dcape {
namespace obs {
namespace {

TEST(MetricsRegistryTest, CounterCellsAccumulate) {
  MetricsRegistry registry;
  Counter* spills = registry.AddCounter(m::kSpillEvents, /*entity=*/0);
  spills->Increment();
  spills->Add(2);
  EXPECT_EQ(spills->value(), 3);
  EXPECT_EQ(registry.Value(m::kSpillEvents, 0), 3);
}

TEST(MetricsRegistryTest, GaugeCellsGoUpAndDown) {
  MetricsRegistry registry;
  Gauge* resident = registry.AddGauge(m::kResidentBytes, /*entity=*/1);
  resident->Add(100);
  resident->Add(-40);
  EXPECT_EQ(resident->value(), 60);
  resident->Set(5);
  EXPECT_EQ(registry.Value(m::kResidentBytes, 1), 5);
}

TEST(MetricsRegistryTest, EntityAndIndexAreDistinctDimensions) {
  MetricsRegistry registry;
  Counter* e0s0 = registry.AddCounter(m::kTuplesPerStream, 0, 0);
  Counter* e0s1 = registry.AddCounter(m::kTuplesPerStream, 0, 1);
  Counter* e1s0 = registry.AddCounter(m::kTuplesPerStream, 1, 0);
  e0s0->Add(1);
  e0s1->Add(2);
  e1s0->Add(4);
  EXPECT_EQ(registry.Value(m::kTuplesPerStream, 0, 0), 1);
  EXPECT_EQ(registry.Value(m::kTuplesPerStream, 0, 1), 2);
  EXPECT_EQ(registry.Value(m::kTuplesPerStream, 1, 0), 4);
}

TEST(MetricsRegistryTest, ValueOfUnregisteredCellIsZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Value(m::kSpillEvents, 9), 0);
}

TEST(MetricsRegistryTest, SnapshotPreservesRegistrationOrder) {
  MetricsRegistry registry;
  registry.AddCounter(m::kSpillEvents, 0)->Add(7);
  registry.AddGauge(m::kResidentBytes, 0)->Set(11);
  registry.AddCounter(m::kSpillEvents, 1)->Add(13);

  std::vector<MetricsRegistry::Sample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_STREQ(samples[0].name, m::kSpillEvents);
  EXPECT_EQ(samples[0].entity, 0);
  EXPECT_EQ(samples[0].value, 7);
  EXPECT_STREQ(samples[1].name, m::kResidentBytes);
  EXPECT_EQ(samples[1].value, 11);
  EXPECT_EQ(samples[2].entity, 1);
  EXPECT_EQ(samples[2].value, 13);
}

TEST(MetricsRegistryTest, CellPointersSurviveLaterRegistrations) {
  MetricsRegistry registry;
  Counter* first = registry.AddCounter(m::kTuplesProcessed, 0);
  for (int e = 1; e < 100; ++e) {
    registry.AddCounter(m::kTuplesProcessed, e);
  }
  first->Add(5);
  EXPECT_EQ(registry.Value(m::kTuplesProcessed, 0), 5);
  EXPECT_EQ(registry.size(), 100);
}

TEST(MetricsRegistryTest, CsvListsEveryCell) {
  MetricsRegistry registry;
  registry.AddCounter(m::kSpillEvents, 0)->Add(3);
  registry.AddGauge(m::kResidentBytes, 1)->Set(9);
  const std::string csv = registry.ToCsv();
  EXPECT_NE(csv.find("name,entity,index,value"), std::string::npos);
  EXPECT_NE(csv.find("engine.spill_events,0,-1,3"), std::string::npos);
  EXPECT_NE(csv.find("storage.resident_bytes,1,-1,9"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramsAreFindable) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindHistogram(m::kSpillIoTicks, 0), nullptr);
  Histogram* h = registry.AddHistogram(m::kSpillIoTicks, 0);
  h->Add(4);
  const Histogram* found = registry.FindHistogram(m::kSpillIoTicks, 0);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count(), 1);
}

}  // namespace
}  // namespace obs
}  // namespace dcape
