#include "net/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/message.h"
#include "tuple/tuple.h"

namespace dcape {
namespace {

Message SmallMessage(NodeId from, NodeId to) {
  StatsReport report;
  report.engine = 0;
  return MakeStatsReportMessage(from, to, report);
}

Message BigTupleMessage(NodeId from, NodeId to, int payload_bytes) {
  TupleBatch batch;
  batch.stream_id = 0;
  Tuple t;
  t.payload.assign(static_cast<size_t>(payload_bytes), 'x');
  batch.tuples.push_back(t);
  return MakeTupleBatchMessage(from, to, std::move(batch));
}

class NetworkTest : public ::testing::Test {
 protected:
  void Register(Network* net, NodeId node) {
    net->RegisterNode(node, [this, node](Tick now, const Message& m) {
      deliveries_.push_back({node, now, m.type});
    });
  }
  struct Delivery {
    NodeId node;
    Tick at;
    MessageType type;
  };
  std::vector<Delivery> deliveries_;
};

TEST_F(NetworkTest, LatencyDelaysDelivery) {
  Network::Config config;
  config.latency_ticks = 5;
  config.bytes_per_tick = 1 << 30;  // effectively free transfer
  Network net(config);
  Register(&net, 1);

  // latency 5 + minimum 1 tick of transfer time for a non-empty message.
  net.Send(SmallMessage(0, 1), /*now=*/10);
  net.DeliverUntil(15);
  EXPECT_TRUE(deliveries_.empty());
  net.DeliverUntil(16);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_EQ(deliveries_[0].at, 16);
}

TEST_F(NetworkTest, BandwidthAddsTransferTime) {
  Network::Config config;
  config.latency_ticks = 1;
  config.bytes_per_tick = 100;
  Network net(config);
  Register(&net, 1);

  // ~1000 bytes payload → ≈10 extra ticks.
  net.Send(BigTupleMessage(0, 1, 1000), /*now=*/0);
  net.DeliverUntil(9);
  EXPECT_TRUE(deliveries_.empty());
  net.DeliverUntil(30);
  ASSERT_EQ(deliveries_.size(), 1u);
  EXPECT_GE(deliveries_[0].at, 11);
}

TEST_F(NetworkTest, LinkIsFifoEvenWhenLaterMessageIsSmaller) {
  Network::Config config;
  config.latency_ticks = 1;
  config.bytes_per_tick = 10;  // slow: big message takes long
  Network net(config);
  Register(&net, 1);

  net.Send(BigTupleMessage(0, 1, 2000), /*now=*/0);  // arrives late
  net.Send(SmallMessage(0, 1), /*now=*/1);           // would arrive early
  net.DeliverUntil(10000);
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(deliveries_[0].type, MessageType::kTupleBatch);
  EXPECT_EQ(deliveries_[1].type, MessageType::kStatsReport);
  EXPECT_GE(deliveries_[1].at, deliveries_[0].at);
}

TEST_F(NetworkTest, DistinctLinksDoNotBlockEachOther) {
  Network::Config config;
  config.latency_ticks = 1;
  config.bytes_per_tick = 10;
  Network net(config);
  Register(&net, 1);
  Register(&net, 2);

  net.Send(BigTupleMessage(0, 1, 5000), /*now=*/0);
  net.Send(SmallMessage(0, 2), /*now=*/1);
  net.DeliverUntil(10000);
  ASSERT_EQ(deliveries_.size(), 2u);
  // The small message on the other link overtakes.
  EXPECT_EQ(deliveries_[0].node, 2);
  EXPECT_EQ(deliveries_[1].node, 1);
}

TEST_F(NetworkTest, DeterministicTieBreakBySendOrder) {
  Network::Config config;
  config.latency_ticks = 1;
  config.bytes_per_tick = 1 << 30;
  Network net(config);
  Register(&net, 1);
  Register(&net, 2);

  net.Send(SmallMessage(0, 2), 0);
  net.Send(SmallMessage(0, 1), 0);
  net.DeliverUntil(5);
  ASSERT_EQ(deliveries_.size(), 2u);
  EXPECT_EQ(deliveries_[0].node, 2);
  EXPECT_EQ(deliveries_[1].node, 1);
}

TEST_F(NetworkTest, StatsTrackMessagesAndBytes) {
  Network net(Network::Config{});
  Register(&net, 1);
  net.Send(SmallMessage(0, 1), 0);
  net.Send(BigTupleMessage(0, 1, 100), 0);
  EXPECT_EQ(net.stats().messages_sent, 2);
  EXPECT_GT(net.stats().bytes_sent, 100);
  EXPECT_EQ(net.stats().state_transfer_bytes, 0);
}

TEST_F(NetworkTest, StateTransferBytesTrackedSeparately) {
  Network net(Network::Config{});
  Register(&net, 1);
  Message m;
  m.type = MessageType::kStateTransfer;
  m.from = 0;
  m.to = 1;
  StateTransfer transfer;
  transfer.groups.push_back(SerializedGroup{0, std::string(1000, 'z')});
  m.payload = std::move(transfer);
  net.Send(std::move(m), 0);
  EXPECT_GT(net.stats().state_transfer_bytes, 1000);
}

TEST_F(NetworkTest, NextArrivalAndIdle) {
  Network::Config config;
  config.latency_ticks = 3;
  config.bytes_per_tick = 1 << 30;
  Network net(config);
  Register(&net, 1);
  EXPECT_TRUE(net.idle());
  EXPECT_EQ(net.NextArrival(), -1);
  net.Send(SmallMessage(0, 1), 4);
  EXPECT_FALSE(net.idle());
  EXPECT_EQ(net.NextArrival(), 8);  // latency 3 + 1 transfer tick
  net.DeliverUntil(8);
  EXPECT_TRUE(net.idle());
}

TEST_F(NetworkTest, HandlersCanSendDuringDelivery) {
  Network::Config config;
  config.latency_ticks = 1;
  config.bytes_per_tick = 1 << 30;
  Network net(config);
  int second_hop_at = -1;
  net.RegisterNode(1, [&](Tick now, const Message&) {
    net.Send(SmallMessage(1, 2), now);
  });
  net.RegisterNode(2, [&](Tick now, const Message&) {
    second_hop_at = static_cast<int>(now);
  });
  net.Send(SmallMessage(0, 1), 0);
  net.DeliverUntil(10);
  EXPECT_EQ(second_hop_at, 4);  // two hops of latency 1 + transfer 1
}

TEST(MessageTest, TypeNamesAreStable) {
  EXPECT_STREQ(MessageTypeName(MessageType::kTupleBatch), "TupleBatch");
  EXPECT_STREQ(MessageTypeName(MessageType::kStateTransfer), "StateTransfer");
  EXPECT_STREQ(MessageTypeName(MessageType::kDrainMarker), "DrainMarker");
}

TEST(MessageTest, ByteSizeGrowsWithPayload) {
  Message small = BigTupleMessage(0, 1, 10);
  Message big = BigTupleMessage(0, 1, 1000);
  EXPECT_GT(big.ByteSize(), small.ByteSize());
  EXPECT_GE(big.ByteSize() - small.ByteSize(), 990);
}

}  // namespace
}  // namespace dcape
