#include "core/productivity.h"

#include <gtest/gtest.h>

#include "core/local_controller.h"
#include "state/state_manager.h"

namespace dcape {
namespace {

GroupStats MakeStats(PartitionId p, int64_t bytes, int64_t outputs) {
  GroupStats g;
  g.partition = p;
  g.bytes = bytes;
  g.outputs = outputs;
  g.productivity =
      bytes > 0 ? static_cast<double>(outputs) / static_cast<double>(bytes)
                : 0.0;
  return g;
}

TEST(ProductivityTrackerTest, CumulativeIsIdentity) {
  ProductivityTracker tracker(
      ProductivityConfig{ProductivityModel::kCumulative, 0.5});
  std::vector<GroupStats> stats = {MakeStats(0, 100, 50)};
  tracker.Roll(stats);
  tracker.Refine(&stats);
  EXPECT_DOUBLE_EQ(stats[0].productivity, 0.5);
}

TEST(ProductivityTrackerTest, EwmaFirstWindowMatchesInstantRate) {
  ProductivityTracker tracker(
      ProductivityConfig{ProductivityModel::kEwma, 0.5});
  std::vector<GroupStats> stats = {MakeStats(0, 100, 40)};
  tracker.Roll(stats);
  tracker.Refine(&stats);
  EXPECT_DOUBLE_EQ(stats[0].productivity, 0.4);
}

TEST(ProductivityTrackerTest, EwmaDecaysWhenGroupGoesQuiet) {
  ProductivityTracker tracker(
      ProductivityConfig{ProductivityModel::kEwma, 0.5});
  // Window 1: produced 40 of 100 bytes (rate 0.4).
  std::vector<GroupStats> stats = {MakeStats(0, 100, 40)};
  tracker.Roll(stats);
  // Windows 2..4: no new outputs.
  for (int i = 0; i < 3; ++i) {
    tracker.Roll({MakeStats(0, 100, 40)});
  }
  std::vector<GroupStats> refined = {MakeStats(0, 100, 40)};
  tracker.Refine(&refined);
  EXPECT_LT(refined[0].productivity, 0.06);  // 0.4 * 0.5^3 = 0.05
  EXPECT_GT(refined[0].productivity, 0.0);
}

TEST(ProductivityTrackerTest, EwmaRanksRecentlyHotAboveFormerlyHot) {
  ProductivityTracker tracker(
      ProductivityConfig{ProductivityModel::kEwma, 0.5});
  // Group 0 was hot long ago; group 1 just became hot. Cumulative ratios
  // favour group 0 (100/100 vs 30/100) but EWMA must favour group 1.
  tracker.Roll({MakeStats(0, 100, 100), MakeStats(1, 100, 0)});
  tracker.Roll({MakeStats(0, 100, 100), MakeStats(1, 100, 30)});
  tracker.Roll({MakeStats(0, 100, 100), MakeStats(1, 100, 60)});
  tracker.Roll({MakeStats(0, 100, 100), MakeStats(1, 100, 90)});

  std::vector<GroupStats> refined = {MakeStats(0, 100, 100),
                                     MakeStats(1, 100, 90)};
  tracker.Refine(&refined);
  EXPECT_GT(refined[1].productivity, refined[0].productivity);
  // Cumulative says the opposite.
  EXPECT_LT(30.0 / 100.0, 100.0 / 100.0);
}

TEST(ProductivityTrackerTest, DepartedGroupsForgotten) {
  ProductivityTracker tracker(
      ProductivityConfig{ProductivityModel::kEwma, 1.0});
  tracker.Roll({MakeStats(0, 100, 80)});
  // Group 0 spilled away; a new generation reappears later with fresh
  // counters — its first window must not inherit the old delta baseline.
  tracker.Roll({MakeStats(1, 100, 0)});
  tracker.Roll({MakeStats(0, 100, 10), MakeStats(1, 100, 0)});
  std::vector<GroupStats> refined = {MakeStats(0, 100, 10)};
  tracker.Refine(&refined);
  EXPECT_DOUBLE_EQ(refined[0].productivity, 0.1);
}

TEST(ProductivityTrackerTest, ModelNames) {
  EXPECT_STREQ(ProductivityModelName(ProductivityModel::kCumulative),
               "cumulative");
  EXPECT_STREQ(ProductivityModelName(ProductivityModel::kEwma), "ewma");
}

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.payload = std::string(30, 'x');
  return t;
}

TEST(LocalControllerEwmaTest, EwmaChangesSpillChoice) {
  SpillConfig spill;
  spill.memory_threshold_bytes = 1;
  spill.spill_fraction = 0.01;  // one victim
  spill.ss_timer_period = 10;

  // Partition 0: produced results long ago (high cumulative). Partition
  // 1: producing now. Build state, then roll windows so the EWMA sees
  // partition 0 as quiet.
  auto build_state = [](StateManager* state) {
    state->ProcessTuple(0, MakeTuple(0, 1, 100), nullptr);
    state->ProcessTuple(0, MakeTuple(1, 2, 100), nullptr);  // old output
  };

  StateManager cumulative_state(2);
  build_state(&cumulative_state);
  StateManager ewma_state(2);
  build_state(&ewma_state);

  LocalController cumulative(
      spill, ProductivityConfig{ProductivityModel::kCumulative, 0.5}, 1);
  LocalController ewma(spill,
                       ProductivityConfig{ProductivityModel::kEwma, 0.5}, 1);

  // Window 1: both partitions as-is (partition 0's output counted).
  cumulative.RollProductivityWindow(cumulative_state);
  ewma.RollProductivityWindow(ewma_state);

  // Partition 1 becomes productive *now*.
  for (auto* state : {&cumulative_state, &ewma_state}) {
    state->ProcessTuple(1, MakeTuple(0, 3, 2000), nullptr);
    state->ProcessTuple(1, MakeTuple(1, 4, 2000), nullptr);  // fresh output
  }
  cumulative.RollProductivityWindow(cumulative_state);
  ewma.RollProductivityWindow(ewma_state);
  cumulative.RollProductivityWindow(cumulative_state);
  ewma.RollProductivityWindow(ewma_state);

  // Cumulative: both have 1 output over similar bytes → victim is the
  // id-tiebreak (partition 0 == the stale one, coincidentally). EWMA:
  // partition 0's rate decayed, partition 1's is fresh → victim must be
  // partition 0, *not* partition 1.
  std::vector<PartitionId> ewma_victims = ewma.CheckSpill(10, ewma_state);
  ASSERT_EQ(ewma_victims.size(), 1u);
  EXPECT_EQ(ewma_victims[0], 0);
  // And the relocation choice flips accordingly (most productive moves).
  std::vector<PartitionId> move = ewma.ChoosePartitionsToMove(ewma_state, 1);
  ASSERT_EQ(move.size(), 1u);
  EXPECT_EQ(move[0], 1);
}

}  // namespace
}  // namespace dcape
