#include "common/status.h"

#include <gtest/gtest.h>

namespace dcape {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "Unimplemented");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

StatusOr<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::OutOfRange("non-positive");
  return 2 * x;
}

Status Chained(int x) {
  DCAPE_RETURN_IF_ERROR(FailIfNegative(x));
  DCAPE_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  if (doubled != 2 * x) return Status::Internal("math broke");
  return Status::OK();
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(helpers::Chained(-1).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(helpers::Chained(0).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(helpers::Chained(3).ok());
}

}  // namespace
}  // namespace dcape
