#include "core/local_controller.h"

#include <gtest/gtest.h>

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key, int payload = 50) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.payload.assign(static_cast<size_t>(payload), 'x');
  return t;
}

SpillConfig SmallSpillConfig() {
  SpillConfig config;
  config.memory_threshold_bytes = 500;
  config.spill_fraction = 0.5;
  config.policy = SpillPolicy::kLeastProductiveFirst;
  config.ss_timer_period = 100;
  return config;
}

TEST(LocalControllerTest, NoSpillBelowThreshold) {
  LocalController controller(SmallSpillConfig(), ProductivityConfig{}, 1);
  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(0, 1, 1, 10), nullptr);
  EXPECT_TRUE(controller.CheckSpill(100, state).empty());
}

TEST(LocalControllerTest, SpillsAboutTheConfiguredFraction) {
  LocalController controller(SmallSpillConfig(), ProductivityConfig{}, 1);
  StateManager state(2);
  // ~8 groups of ~82 bytes: total ≈ 656 > 500 threshold.
  for (int p = 0; p < 8; ++p) {
    state.ProcessTuple(p, MakeTuple(0, p, p * 1000, 50), nullptr);
  }
  ASSERT_GT(state.total_bytes(), 500);
  std::vector<PartitionId> victims = controller.CheckSpill(100, state);
  ASSERT_FALSE(victims.empty());
  int64_t victim_bytes = 0;
  for (PartitionId p : victims) {
    victim_bytes += state.FindGroup(p)->bytes();
  }
  // >= 50% of state, but not all of it.
  EXPECT_GE(victim_bytes, state.total_bytes() / 2);
  EXPECT_LT(victim_bytes, state.total_bytes());
}

TEST(LocalControllerTest, TimerGatesChecks) {
  LocalController controller(SmallSpillConfig(), ProductivityConfig{}, 1);
  StateManager state(2);
  for (int p = 0; p < 10; ++p) {
    state.ProcessTuple(p, MakeTuple(0, p, p * 1000, 80), nullptr);
  }
  // Timer period is 100; tick 50 must not fire.
  EXPECT_TRUE(controller.CheckSpill(50, state).empty());
  EXPECT_FALSE(controller.CheckSpill(100, state).empty());
  // Immediately after firing, the timer is re-armed.
  EXPECT_TRUE(controller.CheckSpill(101, state).empty());
}

TEST(LocalControllerTest, ForcedSpillTakesLeastProductive) {
  LocalController controller(SmallSpillConfig(), ProductivityConfig{}, 1);
  StateManager state(2);
  // Partition 0 produces output (productive); partition 1 does not.
  state.ProcessTuple(0, MakeTuple(0, 1, 100, 30), nullptr);
  state.ProcessTuple(0, MakeTuple(1, 2, 100, 30), nullptr);  // 1 result
  state.ProcessTuple(1, MakeTuple(0, 3, 2000, 30), nullptr);

  std::vector<PartitionId> victims =
      controller.ChooseForcedSpillVictims(state, 1);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 1);
}

TEST(LocalControllerTest, RelocationPrefersMostProductive) {
  LocalController controller(SmallSpillConfig(), ProductivityConfig{}, 1);
  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(0, 1, 100, 30), nullptr);
  state.ProcessTuple(0, MakeTuple(1, 2, 100, 30), nullptr);  // productive
  state.ProcessTuple(1, MakeTuple(0, 3, 2000, 30), nullptr);

  std::vector<PartitionId> chosen =
      controller.ChoosePartitionsToMove(state, 1);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], 0);
}

TEST(LocalControllerTest, LockedGroupsNeverSelected) {
  LocalController controller(SmallSpillConfig(), ProductivityConfig{}, 1);
  StateManager state(2);
  for (int p = 0; p < 4; ++p) {
    state.ProcessTuple(p, MakeTuple(0, p, p * 1000, 200), nullptr);
  }
  state.LockGroups({0, 1, 2, 3});
  EXPECT_TRUE(controller.CheckSpill(100, state).empty());
  EXPECT_TRUE(controller.ChooseForcedSpillVictims(state, 1000).empty());
  EXPECT_TRUE(controller.ChoosePartitionsToMove(state, 1000).empty());
}

}  // namespace
}  // namespace dcape
