#include "rt/spsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "net/message.h"
#include "rt/spsc_transport.h"

namespace dcape {
namespace rt {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, FifoOrderAndFullEmpty) {
  SpscQueue<int> queue(4);
  EXPECT_TRUE(queue.Empty());
  int out = 0;
  EXPECT_FALSE(queue.TryPop(&out));
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(queue.TryPush(v)) << i;
  }
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(queue.Empty());
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(SpscQueueTest, WrapAroundManyTimes) {
  // A tiny ring cycled far past its capacity exercises every index
  // of the monotonic head/tail counters' masked wrap.
  SpscQueue<int64_t> queue(4);
  int64_t expected = 0;
  for (int64_t i = 0; i < 10000; ++i) {
    int64_t v = i;
    ASSERT_TRUE(queue.TryPush(v)) << i;
    // Occupancy cycles 1..3 across wraps: hold on i%3==0, drain the
    // backlog two iterations later.
    int64_t out = -1;
    if (i % 3 == 1) {
      ASSERT_TRUE(queue.TryPop(&out));
      EXPECT_EQ(out, expected++);
    } else if (i % 3 == 2) {
      ASSERT_TRUE(queue.TryPop(&out));
      EXPECT_EQ(out, expected++);
      ASSERT_TRUE(queue.TryPop(&out));
      EXPECT_EQ(out, expected++);
    }
  }
  int64_t out = -1;
  while (queue.TryPop(&out)) EXPECT_EQ(out, expected++);
  EXPECT_EQ(expected, 10000);
}

TEST(SpscQueueTest, MoveOnlyElements) {
  SpscQueue<std::unique_ptr<int>> queue(8);
  auto v = std::make_unique<int>(42);
  EXPECT_TRUE(queue.TryPush(v));
  EXPECT_EQ(v, nullptr);  // moved from
  std::unique_ptr<int> out;
  ASSERT_TRUE(queue.TryPop(&out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(SpscQueueTest, TwoThreadStressPreservesSequence) {
  // One producer, one consumer, a ring much smaller than the stream:
  // every value must come out exactly once, in order.
  constexpr int64_t kCount = 200000;
  SpscQueue<int64_t> queue(64);
  std::thread producer([&] {
    for (int64_t i = 0; i < kCount; ++i) {
      int64_t v = i;
      while (!queue.TryPush(v)) std::this_thread::yield();
    }
  });
  int64_t expected = 0;
  while (expected < kCount) {
    int64_t out = -1;
    if (queue.TryPop(&out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscTransportTest, DeliversInFifoOrderPerLink) {
  SpscTransport transport(2, SpscTransport::Config{});
  std::vector<int64_t> received;
  transport.RegisterNode(1, [&](Tick /*now*/, Message& m) {
    received.push_back(std::get<StatsReport>(m.payload).state_bytes);
  });
  for (int64_t i = 0; i < 100; ++i) {
    StatsReport report;
    report.state_bytes = i;
    transport.Send(MakeStatsReportMessage(0, 1, report), /*now=*/0);
  }
  EXPECT_EQ(transport.Outstanding(), 100);
  while (transport.Poll(1, /*now=*/0) > 0) {
  }
  ASSERT_EQ(received.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
  EXPECT_EQ(transport.Outstanding(), 0);
  EXPECT_EQ(transport.TotalStats().messages_sent, 100);
  EXPECT_EQ(transport.TotalStats().backpressure_parks, 0);
}

TEST(SpscTransportTest, BackpressureParksProducerAndRecovers) {
  // A 4-slot link and a slow consumer force the producer through the
  // spin-then-park path; every message must still arrive, in order.
  SpscTransport::Config config;
  config.link_capacity = 4;
  config.spin_iters = 4;
  SpscTransport transport(2, config);
  constexpr int64_t kCount = 100;
  std::vector<int64_t> received;
  transport.RegisterNode(1, [&](Tick /*now*/, Message& m) {
    received.push_back(std::get<StatsReport>(m.payload).state_bytes);
  });

  std::thread producer([&] {
    for (int64_t i = 0; i < kCount; ++i) {
      StatsReport report;
      report.state_bytes = i;
      transport.Send(MakeStatsReportMessage(0, 1, report), /*now=*/0);
    }
  });
  // Hold off polling until the producer is provably wedged: sends are
  // counted before the push, so Outstanding() == capacity + 1 means the
  // ring is full AND message 5 is stuck inside Send. Give it a moment to
  // burn its 4 spin iterations and reach the park loop, then drain.
  while (transport.Outstanding() <
         static_cast<int64_t>(config.link_capacity) + 1) {
    std::this_thread::yield();
  }
  // Real sleep on purpose: this tests the wall-clock park path itself.
  // dcape-lint: allow(wall-clock)
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  while (received.size() < kCount) {
    if (transport.Poll(1, /*now=*/0, /*max_messages=*/8) == 0) {
      transport.WaitForInbound(1, /*micros=*/200);
    }
  }
  producer.join();

  ASSERT_EQ(received.size(), static_cast<size_t>(kCount));
  for (int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(transport.Outstanding(), 0);
  EXPECT_GT(transport.TotalStats().backpressure_parks, 0);
}

TEST(SpscTransportTest, WaitForInboundWakesOnSend) {
  SpscTransport transport(2, SpscTransport::Config{});
  std::atomic<int> delivered{0};
  transport.RegisterNode(1, [&](Tick /*now*/, Message& /*m*/) {
    delivered.fetch_add(1);
  });
  std::thread consumer([&] {
    while (delivered.load() == 0) {
      if (transport.Poll(1, /*now=*/0) == 0) {
        // A long wait that must be cut short by the producer's wake.
        transport.WaitForInbound(1, /*micros=*/2 * 1000 * 1000);
      }
    }
  });
  StatsReport report;
  transport.Send(MakeStatsReportMessage(0, 1, report), /*now=*/0);
  consumer.join();  // hangs (test timeout) if the wake is lost
  EXPECT_EQ(delivered.load(), 1);
}

}  // namespace
}  // namespace rt
}  // namespace dcape
