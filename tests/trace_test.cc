#include "stream/trace.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "runtime/cluster.h"
#include "stream/stream_generator.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.value = seq * 10;
  t.category = seq % 3;
  t.payload = "payload";
  return t;
}

TEST(TraceTest, WriteDecodeRoundTrip) {
  std::string data;
  TraceWriter writer(3, &data);
  writer.Append(10, MakeTuple(0, 1, 100));
  writer.Append(10, MakeTuple(1, 1, 100));
  writer.Append(25, MakeTuple(2, 1, 200));
  writer.Finish();
  EXPECT_EQ(writer.count(), 3);

  int num_streams = 0;
  StatusOr<std::vector<TraceRecord>> records = DecodeTrace(data, &num_streams);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(num_streams, 3);
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].arrival, 10);
  EXPECT_EQ((*records)[2].arrival, 25);
  EXPECT_EQ((*records)[0].tuple, MakeTuple(0, 1, 100));
}

TEST(TraceTest, DecodeRejectsGarbageAndTruncation) {
  EXPECT_FALSE(DecodeTrace("not a trace").ok());
  std::string data;
  TraceWriter writer(2, &data);
  writer.Append(1, MakeTuple(0, 1, 5));
  writer.Finish();
  EXPECT_FALSE(DecodeTrace(data.substr(0, data.size() - 3)).ok());
  EXPECT_FALSE(DecodeTrace(data + "junk").ok());
}

TEST(TraceTest, SourceReplaysAtRecordedTicks) {
  std::string data;
  TraceWriter writer(2, &data);
  writer.Append(5, MakeTuple(0, 1, 100));
  writer.Append(5, MakeTuple(1, 2, 100));
  writer.Append(9, MakeTuple(0, 3, 200));
  writer.Finish();

  StatusOr<TraceSource> source = TraceSource::FromBytes(data);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->num_streams(), 2);
  EXPECT_TRUE(source->EmitForTick(4).empty());
  EXPECT_EQ(source->EmitForTick(5).size(), 2u);
  EXPECT_TRUE(source->EmitForTick(6).empty());
  EXPECT_EQ(source->EmitForTick(9).size(), 1u);
  EXPECT_EQ(source->total_emitted(), 3);
  EXPECT_EQ(source->remaining(), 0);
}

TEST(TraceTest, FileRoundTrip) {
  std::string data;
  TraceWriter writer(2, &data);
  writer.Append(1, MakeTuple(0, 1, 5));
  writer.Finish();
  std::string path = (std::filesystem::temp_directory_path() /
                      "dcape_trace_test.trace")
                         .string();
  ASSERT_TRUE(WriteTraceFile(path, data).ok());
  StatusOr<std::string> read = ReadTraceFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  std::filesystem::remove(path);
  EXPECT_EQ(ReadTraceFile(path).status().code(), StatusCode::kNotFound);
}

TEST(TraceTest, GeneratorRecordingMatchesDirectEmission) {
  // Recording a cluster run captures exactly what the generator emitted.
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(10);
  config.record_trace = std::make_shared<std::string>();
  Cluster cluster(config);
  RunResult result = cluster.Run();

  StatusOr<std::vector<TraceRecord>> records =
      DecodeTrace(*config.record_trace);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(static_cast<int64_t>(records->size()), result.tuples_generated);
}

TEST(TraceTest, ReplayReproducesTheRunExactly) {
  // Record once, then replay through a different adaptation strategy:
  // the result multiset must be identical to the recorded run's.
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.record_trace = std::make_shared<std::string>();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster recording_cluster(config);
  RunResult recorded = recording_cluster.Run();

  ClusterConfig replay = config;
  replay.record_trace = nullptr;
  replay.replay_trace = config.record_trace;
  replay.strategy = AdaptationStrategy::kSpillOnly;
  Cluster replay_cluster(replay);
  RunResult replayed = replay_cluster.Run();

  EXPECT_GT(replayed.spill_events, 0);
  EXPECT_EQ(replayed.tuples_generated, recorded.tuples_generated);
  EXPECT_EQ(ToMultiset(AllResults(replayed)),
            ToMultiset(AllResults(recorded)));
}

}  // namespace
}  // namespace dcape
