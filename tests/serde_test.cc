#include "tuple/serde.h"

#include <gtest/gtest.h>

#include <string_view>

#include "tuple/tuple.h"

namespace dcape {
namespace {

TEST(ByteWriterReaderTest, PrimitiveRoundTrip) {
  std::string buf;
  ByteWriter writer(&buf);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFULL);
  writer.PutI32(-7);
  writer.PutI64(-123456789012345LL);
  writer.PutString("hello");
  writer.PutString("");

  ByteReader reader(buf);
  EXPECT_EQ(reader.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.GetI32().value(), -7);
  EXPECT_EQ(reader.GetI64().value(), -123456789012345LL);
  EXPECT_EQ(reader.GetString().value(), "hello");
  EXPECT_EQ(reader.GetString().value(), "");
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteWriterReaderTest, TruncatedPrimitiveIsOutOfRange) {
  std::string buf;
  ByteWriter writer(&buf);
  writer.PutU32(1);
  // string_view(buf) first: ByteReader only borrows, so the prefix
  // must outlive it.
  ByteReader reader(std::string_view(buf).substr(0, 2));
  EXPECT_EQ(reader.GetU32().status().code(), StatusCode::kOutOfRange);
}

TEST(ByteWriterReaderTest, TruncatedStringBodyIsOutOfRange) {
  std::string buf;
  ByteWriter writer(&buf);
  writer.PutString("abcdef");
  ByteReader reader(
      std::string_view(buf).substr(0, 6));  // length prefix + 2 bytes
  EXPECT_EQ(reader.GetString().status().code(), StatusCode::kOutOfRange);
}

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.timestamp = 17 * seq;
  t.payload = "payload_" + std::to_string(seq);
  return t;
}

TEST(TupleSerdeTest, TupleRoundTrip) {
  Tuple original = MakeTuple(2, 99, 1 << 21);
  std::string buf;
  EncodeTuple(original, &buf);
  ByteReader reader(buf);
  StatusOr<Tuple> decoded = DecodeTuple(&reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
  EXPECT_TRUE(reader.exhausted());
}

TEST(TupleSerdeTest, SerializedSizeMatchesByteSize) {
  Tuple t = MakeTuple(0, 5, 7);
  std::string buf;
  EncodeTuple(t, &buf);
  EXPECT_EQ(static_cast<int64_t>(buf.size()), t.ByteSize());
}

TEST(TupleSerdeTest, BatchRoundTrip) {
  TupleBatch batch;
  batch.stream_id = 1;
  for (int i = 0; i < 10; ++i) {
    batch.tuples.push_back(MakeTuple(1, i, i * 3));
  }
  std::string buf;
  EncodeTupleBatch(batch, &buf);
  StatusOr<TupleBatch> decoded = DecodeTupleBatch(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stream_id, 1);
  ASSERT_EQ(decoded->tuples.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(decoded->tuples[static_cast<size_t>(i)],
              batch.tuples[static_cast<size_t>(i)]);
  }
}

TEST(TupleSerdeTest, BatchWithTrailingBytesRejected) {
  TupleBatch batch;
  batch.stream_id = 0;
  batch.tuples.push_back(MakeTuple(0, 1, 2));
  std::string buf;
  EncodeTupleBatch(batch, &buf);
  buf += "junk";
  EXPECT_EQ(DecodeTupleBatch(buf).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TupleSerdeTest, EmptyBatchRoundTrip) {
  TupleBatch batch;
  batch.stream_id = 2;
  std::string buf;
  EncodeTupleBatch(batch, &buf);
  StatusOr<TupleBatch> decoded = DecodeTupleBatch(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->tuples.empty());
}

}  // namespace
}  // namespace dcape
