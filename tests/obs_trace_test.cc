#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/report.h"
#include "obs/taxonomy.h"

namespace dcape {
namespace obs {
namespace {

TEST(TracerTest, MergeOrdersByTickThenLaneThenEmitOrder) {
  Tracer tracer(3);
  tracer.EmitInstant(2, 10, ev::kRelocDecide);
  tracer.EmitInstant(0, 10, ev::kRelocDecide);
  tracer.EmitInstant(1, 5, ev::kRelocDecide);
  tracer.EmitInstant(0, 10, ev::kRelocAbort);  // same (tick, lane): emit order

  std::vector<const TraceEvent*> merged = tracer.Merged();
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0]->tick, 5);
  EXPECT_EQ(merged[0]->lane, 1);
  EXPECT_EQ(merged[1]->lane, 0);
  EXPECT_STREQ(merged[1]->name, ev::kRelocDecide);
  EXPECT_STREQ(merged[2]->name, ev::kRelocAbort);
  EXPECT_EQ(merged[3]->lane, 2);
}

TEST(TracerTest, EventCountSumsAllLanes) {
  Tracer tracer(2);
  EXPECT_EQ(tracer.event_count(), 0);
  tracer.EmitInstant(0, 1, ev::kSpill);
  tracer.EmitCounter(1, 1, ev::kStateBytes, 42);
  EXPECT_EQ(tracer.event_count(), 2);
}

TEST(TracerTest, ChromeJsonContainsPhasesAndLaneNames) {
  Tracer tracer(2);
  tracer.SetLaneName(0, "engine 0");
  tracer.SetLaneName(1, "coordinator");
  tracer.BeginSpan(1, 3, ev::kRelocation, /*scope=*/7,
                   {TraceArg::Int("sender", 1)});
  tracer.EmitComplete(0, 4, ev::kSpill, /*duration=*/2,
                      {TraceArg::Int("bytes", 100)});
  tracer.EmitCounter(0, 5, ev::kStateBytes, 1234);
  tracer.EndSpan(1, 6, ev::kRelocation, /*scope=*/7);

  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"coordinator\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x7\""), std::string::npos);
  // Virtual ms map to trace µs.
  EXPECT_NE(json.find("\"ts\":4000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);
}

TEST(TracerTest, OpenSpansEmptyWhenBalanced) {
  Tracer tracer(1);
  tracer.BeginSpan(0, 1, ev::kRelocation, 1);
  tracer.BeginSpan(0, 1, ev::kRelocPhaseCompute, 1);
  tracer.EndSpan(0, 2, ev::kRelocPhaseCompute, 1);
  tracer.EndSpan(0, 2, ev::kRelocation, 1);
  EXPECT_TRUE(tracer.OpenSpans().empty());
}

TEST(TracerTest, OpenSpansReportsUnclosedAndUnopened) {
  Tracer tracer(1);
  tracer.BeginSpan(0, 1, ev::kRelocation, 1);
  tracer.EndSpan(0, 2, ev::kRelocPhasePause, 9);
  std::vector<std::string> open = tracer.OpenSpans();
  ASSERT_EQ(open.size(), 2u);
  EXPECT_NE(open[0].find("relocation"), std::string::npos);
  EXPECT_NE(open[1].find("unopened"), std::string::npos);
}

TEST(TracerTest, IdenticalEmissionYieldsIdenticalJson) {
  auto build = [] {
    Tracer tracer(2);
    tracer.SetLaneName(0, "engine 0");
    tracer.BeginSpan(1, 1, ev::kRelocation, 3,
                     {TraceArg::Double("ratio", 0.25)});
    tracer.EmitComplete(0, 2, ev::kEvict, 1);
    tracer.EndSpan(1, 4, ev::kRelocation, 3);
    return tracer.ToChromeJson();
  };
  EXPECT_EQ(build(), build());
}

TEST(TaxonomyTest, RegisteredNamesAreUniqueAndWellFormed) {
  for (size_t i = 0; i < kNumEventNames; ++i) {
    const std::string name = kAllEventNames[i];
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find_first_not_of("abcdefghijklmnopqrstuvwxyz._"),
              std::string::npos)
        << name;
    for (size_t j = i + 1; j < kNumEventNames; ++j) {
      EXPECT_STRNE(kAllEventNames[i], kAllEventNames[j]);
    }
  }
}

TEST(TimelineReportTest, RendersAdaptationLinesAndSummary) {
  Tracer tracer(2);
  tracer.SetLaneName(0, "engine 0");
  tracer.SetLaneName(1, "coordinator");
  tracer.EmitInstant(1, 10, ev::kRelocDecide,
                     {TraceArg::Int("max_engine", 0),
                      TraceArg::Double("ratio", 0.4)});
  tracer.BeginSpan(1, 10, ev::kRelocation, 1,
                   {TraceArg::Int("sender", 0), TraceArg::Int("receiver", 1)});
  tracer.EndSpan(1, 20010, ev::kRelocation, 1);  // 20000 virtual ms later
  tracer.EmitComplete(0, 15, ev::kSpill, 5,
                      {TraceArg::Int("bytes", 2048),
                       TraceArg::Int("forced", 1)});

  const std::string timeline = RenderTimeline(tracer);
  EXPECT_NE(timeline.find("relocation.decide"), std::string::npos);
  EXPECT_NE(timeline.find("ratio=0.4"), std::string::npos);
  EXPECT_NE(timeline.find("relocation begin #1"), std::string::npos);
  EXPECT_NE(timeline.find("(20.0s)"), std::string::npos);  // span duration
  EXPECT_NE(timeline.find("engine.spill"), std::string::npos);
  EXPECT_NE(timeline.find("1 relocations (1 completed, 0 aborted)"),
            std::string::npos);
  EXPECT_NE(timeline.find("1 spills (1 forced"), std::string::npos);
}

TEST(TimelineReportTest, AbortedRelocationIsNotCountedCompleted) {
  Tracer tracer(1);
  tracer.BeginSpan(0, 1, ev::kRelocation, 2);
  tracer.EmitInstant(0, 5, ev::kRelocAbort, {}, 2);
  tracer.EndSpan(0, 5, ev::kRelocation, 2);
  const std::string timeline = RenderTimeline(tracer);
  EXPECT_NE(timeline.find("1 relocations (0 completed, 1 aborted)"),
            std::string::npos);
}

TEST(TimelineReportTest, EmptyTraceSaysSo) {
  Tracer tracer(1);
  EXPECT_NE(RenderTimeline(tracer).find("(no adaptation events)"),
            std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace dcape
