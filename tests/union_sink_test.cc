#include <gtest/gtest.h>

#include "operators/sink.h"
#include "operators/union_op.h"

namespace dcape {
namespace {

JoinResult MakeResult(PartitionId p, int64_t seq) {
  JoinResult r;
  r.partition = p;
  r.join_key = p * 10;
  r.member_seqs = {seq, seq + 1};
  return r;
}

TEST(UnionOpTest, MergesBatchesInOrder) {
  UnionOp union_op;
  union_op.Add({MakeResult(0, 1), MakeResult(0, 3)});
  union_op.Add({MakeResult(1, 5)});
  EXPECT_EQ(union_op.total(), 3);
  EXPECT_EQ(union_op.pending(), 3);
  std::vector<JoinResult> merged = union_op.Drain();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].member_seqs[0], 1);
  EXPECT_EQ(merged[2].partition, 1);
  EXPECT_EQ(union_op.pending(), 0);
  EXPECT_EQ(union_op.total(), 3);
}

TEST(UnionOpTest, DrainOnEmptyIsEmpty) {
  UnionOp union_op;
  EXPECT_TRUE(union_op.Drain().empty());
}

TEST(ResultSinkTest, CountsWithoutCollecting) {
  ResultSink sink(/*collect=*/false);
  sink.Consume(100, {MakeResult(0, 1), MakeResult(0, 2)});
  sink.Consume(200, {MakeResult(1, 3)});
  EXPECT_EQ(sink.total(), 3);
  EXPECT_EQ(sink.last_arrival(), 200);
  EXPECT_TRUE(sink.collected().empty());
}

TEST(ResultSinkTest, CollectsWhenAsked) {
  ResultSink sink(/*collect=*/true);
  sink.Consume(10, {MakeResult(2, 7)});
  ASSERT_EQ(sink.collected().size(), 1u);
  EXPECT_EQ(sink.collected()[0].partition, 2);
}

}  // namespace
}  // namespace dcape
