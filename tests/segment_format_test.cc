#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "state/partition_group.h"
#include "tuple/serde.h"
#include "tuple/tuple.h"

namespace dcape {
namespace {

// Canonical order-independent view of a group's contents. The hash
// tables iterate in different orders after a round trip, so contents
// are compared as a sorted tuple list.
std::vector<Tuple> CanonicalTuples(const PartitionGroup& group) {
  std::vector<Tuple> all;
  for (StreamId s = 0; s < group.num_streams(); ++s) {
    for (const auto& [key, tuples] : group.TableForStream(s)) {
      all.insert(all.end(), tuples.begin(), tuples.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Tuple& a, const Tuple& b) {
    if (a.stream_id != b.stream_id) return a.stream_id < b.stream_id;
    if (a.join_key != b.join_key) return a.join_key < b.join_key;
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.payload < b.payload;
  });
  return all;
}

void ExpectSameContents(const PartitionGroup& a, const PartitionGroup& b) {
  EXPECT_EQ(a.partition(), b.partition());
  EXPECT_EQ(a.num_streams(), b.num_streams());
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_EQ(a.tuple_count(), b.tuple_count());
  EXPECT_EQ(a.outputs(), b.outputs());
  const std::vector<Tuple> ta = CanonicalTuples(a);
  const std::vector<Tuple> tb = CanonicalTuples(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
}

// A randomized group: skewed keys, arbitrary-sign values, random
// payload lengths, monotone-ish timestamps with jitter.
PartitionGroup RandomGroup(std::mt19937_64* rng, PartitionId partition,
                           int num_streams, int num_tuples,
                           int max_payload) {
  PartitionGroup group(partition, num_streams);
  std::uniform_int_distribution<int> stream_dist(0, num_streams - 1);
  std::geometric_distribution<JoinKey> key_dist(0.1);
  std::uniform_int_distribution<int64_t> value_dist(-1000000, 1000000);
  std::uniform_int_distribution<int> len_dist(0, max_payload);
  std::vector<JoinResult> results;
  Tick ts = 1000;
  for (int i = 0; i < num_tuples; ++i) {
    Tuple t;
    t.stream_id = stream_dist(*rng);
    t.seq = i;
    t.join_key = key_dist(*rng);
    ts += static_cast<Tick>(len_dist(*rng));
    t.timestamp = ts;
    t.value = value_dist(*rng);
    t.category = value_dist(*rng) % 7;
    t.payload.assign(static_cast<size_t>(len_dist(*rng)),
                     static_cast<char>('a' + i % 26));
    // Probe-and-insert so the outputs counter is exercised too.
    group.ProbeAndInsert(t, &results);
    results.clear();
  }
  return group;
}

TEST(SegmentFormatTest, V2RoundTripRandomGroups) {
  std::mt19937_64 rng(20260807);
  for (int num_streams : {2, 3, 5}) {
    for (int max_payload : {0, 8, 64}) {
      PartitionGroup group =
          RandomGroup(&rng, /*partition=*/17, num_streams,
                      /*num_tuples=*/300, max_payload);
      std::string blob;
      group.Serialize(&blob, SegmentFormat::kV2);
      StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(blob);
      ASSERT_TRUE(restored.ok()) << restored.status();
      ExpectSameContents(group, *restored);
    }
  }
}

TEST(SegmentFormatTest, V1BlobStillDeserializes) {
  std::mt19937_64 rng(7);
  PartitionGroup group = RandomGroup(&rng, 4, 3, 200, 32);
  std::string v1;
  group.Serialize(&v1, SegmentFormat::kV1);
  StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(v1);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ExpectSameContents(group, *restored);
}

TEST(SegmentFormatTest, FormatsDecodeToIdenticalState) {
  std::mt19937_64 rng(99);
  PartitionGroup group = RandomGroup(&rng, 9, 4, 250, 16);
  std::string v1, v2;
  group.Serialize(&v1, SegmentFormat::kV1);
  group.Serialize(&v2, SegmentFormat::kV2);
  StatusOr<PartitionGroup> from_v1 = PartitionGroup::Deserialize(v1);
  StatusOr<PartitionGroup> from_v2 = PartitionGroup::Deserialize(v2);
  ASSERT_TRUE(from_v1.ok());
  ASSERT_TRUE(from_v2.ok());
  ExpectSameContents(*from_v1, *from_v2);
}

TEST(SegmentFormatTest, V2IsAtLeast25PercentSmallerOnStandardWorkload) {
  // The dcape_run default workload shape: 64-byte payloads, skewed keys.
  std::mt19937_64 rng(42);
  PartitionGroup group = RandomGroup(&rng, 0, 3, 2000, 64);
  std::string v1, v2;
  group.Serialize(&v1, SegmentFormat::kV1);
  group.Serialize(&v2, SegmentFormat::kV2);
  EXPECT_EQ(static_cast<int64_t>(v1.size()), group.SerializedByteSize());
  EXPECT_LE(static_cast<double>(v2.size()),
            0.75 * static_cast<double>(v1.size()))
      << "v1=" << v1.size() << " v2=" << v2.size();
}

TEST(SegmentFormatTest, EvictedGenerationRoundTrips) {
  // Eviction generations are serialized from EvictBefore output —
  // partial groups holding only window-expired tuples.
  std::mt19937_64 rng(5);
  PartitionGroup group = RandomGroup(&rng, 3, 3, 400, 24);
  PartitionGroup expired(3, 3);
  const int64_t moved = group.EvictBefore(/*cutoff=*/3000, &expired);
  ASSERT_GT(moved, 0);
  for (const PartitionGroup* g : {&group, &expired}) {
    std::string blob;
    g->Serialize(&blob, SegmentFormat::kV2);
    StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(blob);
    ASSERT_TRUE(restored.ok()) << restored.status();
    ExpectSameContents(*g, *restored);
  }
}

TEST(SegmentFormatTest, EveryTruncationOfV2IsRejected) {
  std::mt19937_64 rng(13);
  PartitionGroup group = RandomGroup(&rng, 2, 2, 40, 8);
  std::string blob;
  group.Serialize(&blob, SegmentFormat::kV2);
  for (size_t len = 0; len < blob.size(); ++len) {
    StatusOr<PartitionGroup> restored =
        PartitionGroup::Deserialize(std::string_view(blob).substr(0, len));
    EXPECT_FALSE(restored.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(SegmentFormatTest, TrailingBytesAfterV2Rejected) {
  std::mt19937_64 rng(13);
  PartitionGroup group = RandomGroup(&rng, 2, 2, 40, 8);
  std::string blob;
  group.Serialize(&blob, SegmentFormat::kV2);
  blob += "x";
  StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(blob);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentFormatTest, UnknownVersionByteRejected) {
  std::mt19937_64 rng(13);
  PartitionGroup group = RandomGroup(&rng, 2, 2, 10, 8);
  std::string blob;
  group.Serialize(&blob, SegmentFormat::kV2);
  blob[4] = 99;  // version byte follows the 4-byte magic
  StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(blob);
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentFormatTest, CorruptCountsDoNotCrash) {
  // Overwrite bytes after the header with 0xFF runs (huge varints) —
  // must fail with a Status, not allocate wildly or crash.
  std::mt19937_64 rng(21);
  PartitionGroup group = RandomGroup(&rng, 2, 2, 50, 8);
  std::string blob;
  group.Serialize(&blob, SegmentFormat::kV2);
  for (size_t pos = 5; pos < std::min<size_t>(blob.size(), 25); ++pos) {
    std::string corrupt = blob;
    for (size_t i = pos; i < std::min(corrupt.size(), pos + 9); ++i) {
      corrupt[i] = static_cast<char>(0xFF);
    }
    StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(corrupt);
    // Either rejected or (rarely) decoded to something well-formed; the
    // point is no crash/OOM. Most positions must reject.
    (void)restored;
  }
  SUCCEED();
}

TEST(SegmentFormatTest, TupleBatchV2RoundTripAndSniffing) {
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<int64_t> value_dist(-1000, 1000);
  TupleBatch batch;
  batch.stream_id = 2;
  Tick ts = 500;
  for (int i = 0; i < 100; ++i) {
    Tuple t;
    t.stream_id = 2;
    t.seq = 1000 + i;
    t.join_key = value_dist(rng);
    ts += static_cast<Tick>(i % 5);
    t.timestamp = ts;
    t.value = value_dist(rng);
    t.category = value_dist(rng) % 3;
    t.payload = std::string(static_cast<size_t>(i % 17), 'p');
    batch.tuples.push_back(t);
  }
  std::string v1, v2;
  EncodeTupleBatch(batch, &v1, SegmentFormat::kV1);
  EncodeTupleBatch(batch, &v2, SegmentFormat::kV2);
  EXPECT_LT(v2.size(), v1.size());
  for (const std::string* blob : {&v1, &v2}) {
    StatusOr<TupleBatch> decoded = DecodeTupleBatch(*blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->stream_id, batch.stream_id);
    ASSERT_EQ(decoded->tuples.size(), batch.tuples.size());
    for (size_t i = 0; i < batch.tuples.size(); ++i) {
      EXPECT_EQ(decoded->tuples[i], batch.tuples[i]);
    }
  }
}

TEST(SegmentFormatTest, TruncatedTupleBatchV2Rejected) {
  TupleBatch batch;
  batch.stream_id = 0;
  for (int i = 0; i < 5; ++i) {
    Tuple t;
    t.stream_id = 0;
    t.seq = i;
    t.join_key = i;
    t.timestamp = i;
    t.payload = "abc";
    batch.tuples.push_back(t);
  }
  std::string blob;
  EncodeTupleBatch(batch, &blob, SegmentFormat::kV2);
  for (size_t len = 1; len < blob.size(); ++len) {
    EXPECT_FALSE(DecodeTupleBatch(std::string_view(blob).substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

}  // namespace
}  // namespace dcape
