#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

TEST(ClusterIntegrationTest, AllMemoryRunProducesResultsAndNoCleanupWork) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  EXPECT_GT(result.tuples_generated, 0);
  EXPECT_GT(result.runtime_results, 0);
  EXPECT_EQ(result.cleanup.result_count, 0);
  EXPECT_EQ(result.spill_events, 0);
  EXPECT_EQ(result.coordinator.relocations_completed, 0);
  EXPECT_EQ(static_cast<int64_t>(result.collected.size()),
            result.runtime_results);
}

TEST(ClusterIntegrationTest, RuntimeResultsHaveNoDuplicates) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  auto multiset = ToMultiset(result.collected);
  for (const auto& [key, count] : multiset) {
    ASSERT_EQ(count, 1) << "duplicate runtime result: " << key;
  }
}

TEST(ClusterIntegrationTest, SpillOnlyMatchesReferenceAfterCleanup) {
  ClusterConfig config = SmallClusterConfig();
  std::vector<JoinResult> reference = testing::ReferenceResults(config);
  ASSERT_FALSE(reference.empty());

  config.strategy = AdaptationStrategy::kSpillOnly;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  EXPECT_GT(result.spill_events, 0) << "test config must actually spill";
  EXPECT_GT(result.cleanup.result_count, 0);
  EXPECT_LT(result.runtime_results,
            static_cast<int64_t>(reference.size()))
      << "spilling must defer some results to cleanup";

  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

TEST(ClusterIntegrationTest, LazyDiskMatchesReference) {
  ClusterConfig config = SmallClusterConfig();
  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  config.strategy = AdaptationStrategy::kLazyDisk;
  // Skew the initial placement so relocation has something to do.
  config.placement_fractions = {0.75, 0.25};
  Cluster cluster(config);
  RunResult result = cluster.Run();

  EXPECT_GT(result.coordinator.relocations_completed, 0);
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

TEST(ClusterIntegrationTest, RelocationOnlyKeepsEverythingInMemory) {
  ClusterConfig config = SmallClusterConfig();
  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.placement_fractions = {0.8, 0.2};
  Cluster cluster(config);
  RunResult result = cluster.Run();

  EXPECT_GT(result.coordinator.relocations_completed, 0);
  EXPECT_EQ(result.spill_events, 0);
  EXPECT_EQ(result.cleanup.result_count, 0);
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

TEST(ClusterIntegrationTest, ActiveDiskMatchesReference) {
  ClusterConfig config = SmallClusterConfig();
  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  config.strategy = AdaptationStrategy::kActiveDisk;
  config.placement_fractions = {0.6, 0.4};
  config.run_duration = SecondsToTicks(30);
  // Make engine 0's partitions far more productive so the productivity
  // rule has a reason to fire.
  std::vector<EngineId> placement = Cluster::PlacementFor(config);
  config.workload.classes = {PartitionClass{4.0, 1920},
                             PartitionClass{1.0, 480}};
  config.workload.partition_class = AssignClassesByOwner(placement, {0, 1});
  std::vector<JoinResult> skewed_reference =
      testing::ReferenceResults(config);

  Cluster cluster(config);
  RunResult result = cluster.Run();
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(skewed_reference));
}

}  // namespace
}  // namespace dcape
