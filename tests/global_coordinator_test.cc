#include "core/global_coordinator.h"

#include "net/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace dcape {
namespace {

/// Harness: coordinator on node 10, engines on nodes 0/1/2, split host on
/// node 20; every outbound coordinator message is captured.
class GlobalCoordinatorTest : public ::testing::Test {
 protected:
  GlobalCoordinatorTest() : network_(FastNetwork()) {}

  static Network::Config FastNetwork() {
    Network::Config config;
    config.latency_ticks = 1;
    config.bytes_per_tick = 1 << 30;
    return config;
  }

  void Build(AdaptationStrategy strategy, int num_engines = 2) {
    CoordinatorConfig config;
    config.node_id = 10;
    for (int e = 0; e < num_engines; ++e) {
      config.engine_nodes.push_back(e);
      config.engine_memory_thresholds.push_back(1000);
      network_.RegisterNode(e, [this, e](Tick, const Message& m) {
        engine_inbox_.push_back({e, m});
      });
    }
    config.split_hosts = {20};
    network_.RegisterNode(20, [this](Tick, const Message& m) {
      split_inbox_.push_back(m);
    });
    config.strategy = strategy;
    config.relocation.sr_timer_period = 10;
    config.relocation.min_time_between = 50;
    config.relocation.theta_r = 0.8;
    config.relocation.min_relocate_bytes = 10;
    config.active.lb_timer_period = 10;
    config.active.lambda = 2.0;
    config.active.memory_pressure = 0.5;
    config.active.max_forced_spill_bytes = 1000;
    config.active.forced_spill_fraction = 0.5;
    coordinator_ = std::make_unique<GlobalCoordinator>(config, &network_);
  }

  void Report(Tick now, EngineId engine, int64_t bytes, int64_t groups = 10,
              int64_t outputs = 100) {
    StatsReport report;
    report.engine = engine;
    report.state_bytes = bytes;
    report.num_groups = groups;
    report.outputs_in_window = outputs;
    Message m = MakeStatsReportMessage(engine, 10, report);
    coordinator_->OnMessage(now, m);
  }

  void Pump(Tick now) { network_.DeliverUntil(now); }

  Network network_;
  std::unique_ptr<GlobalCoordinator> coordinator_;
  std::vector<std::pair<int, Message>> engine_inbox_;
  std::vector<Message> split_inbox_;
};

TEST_F(GlobalCoordinatorTest, NoRelocationWhenBalanced) {
  Build(AdaptationStrategy::kLazyDisk);
  Report(1, 0, 1000);
  Report(1, 1, 900);  // ratio 0.9 >= θ_r = 0.8
  coordinator_->OnTick(10);
  Pump(20);
  EXPECT_TRUE(engine_inbox_.empty());
  EXPECT_FALSE(coordinator_->relocation_in_flight());
}

TEST_F(GlobalCoordinatorTest, ImbalanceTriggersComputePartitionsToMove) {
  Build(AdaptationStrategy::kLazyDisk);
  Report(1, 0, 1000);
  Report(1, 1, 200);
  coordinator_->OnTick(10);
  Pump(20);
  ASSERT_EQ(engine_inbox_.size(), 1u);
  EXPECT_EQ(engine_inbox_[0].first, 0);  // max-load engine is the sender
  const auto& request =
      std::get<ComputePartitionsToMove>(engine_inbox_[0].second.payload);
  EXPECT_EQ(request.amount_bytes, 400);  // (1000-200)/2
  EXPECT_EQ(request.receiver, 1);
  EXPECT_TRUE(coordinator_->relocation_in_flight());
  EXPECT_EQ(coordinator_->counters().relocations_started, 1);
}

TEST_F(GlobalCoordinatorTest, SpillOnlyStrategyNeverRelocates) {
  Build(AdaptationStrategy::kSpillOnly);
  Report(1, 0, 1000);
  Report(1, 1, 0);
  coordinator_->OnTick(10);
  Pump(20);
  EXPECT_TRUE(engine_inbox_.empty());
}

TEST_F(GlobalCoordinatorTest, MinTimeBetweenRelocationsEnforced) {
  Build(AdaptationStrategy::kRelocationOnly);
  Report(1, 0, 1000);
  Report(1, 1, 200);
  coordinator_->OnTick(10);
  ASSERT_TRUE(coordinator_->relocation_in_flight());

  // Abort it (empty partitions) so in-flight state clears.
  PartitionsToMove reply;
  reply.relocation_id = 1;
  reply.sender = 0;
  Message m;
  m.type = MessageType::kPartitionsToMove;
  m.from = 0;
  m.to = 10;
  m.payload = reply;
  coordinator_->OnMessage(12, m);
  EXPECT_FALSE(coordinator_->relocation_in_flight());
  EXPECT_EQ(coordinator_->counters().relocations_aborted, 1);

  // Still inside τ_m = 50: the next timer ticks must not start another.
  coordinator_->OnTick(20);
  coordinator_->OnTick(30);
  EXPECT_FALSE(coordinator_->relocation_in_flight());
  // After τ_m elapses it may fire again.
  coordinator_->OnTick(70);
  EXPECT_TRUE(coordinator_->relocation_in_flight());
}

TEST_F(GlobalCoordinatorTest, FullProtocolSequence) {
  Build(AdaptationStrategy::kLazyDisk);
  Report(1, 0, 1000);
  Report(1, 1, 200);
  coordinator_->OnTick(10);
  Pump(20);
  ASSERT_EQ(engine_inbox_.size(), 1u);

  // Step 2: sender replies with partitions.
  PartitionsToMove reply;
  reply.relocation_id = 1;
  reply.sender = 0;
  reply.partitions = {3, 4};
  reply.bytes = 400;
  Message m;
  m.type = MessageType::kPartitionsToMove;
  m.from = 0;
  m.to = 10;
  m.payload = reply;
  coordinator_->OnMessage(21, m);
  Pump(30);

  // Step 3: the split host got a pause with the sender's node.
  ASSERT_EQ(split_inbox_.size(), 1u);
  ASSERT_EQ(split_inbox_[0].type, MessageType::kPausePartitions);
  const auto& pause = std::get<PausePartitions>(split_inbox_[0].payload);
  EXPECT_EQ(pause.partitions, (std::vector<PartitionId>{3, 4}));
  EXPECT_EQ(pause.sender_node, 0);

  // Step 4a: pause ack → transfer authorization to the sender.
  PauseAck ack;
  ack.relocation_id = 1;
  ack.split_host = 20;
  Message ack_msg;
  ack_msg.type = MessageType::kPauseAck;
  ack_msg.from = 20;
  ack_msg.to = 10;
  ack_msg.payload = ack;
  coordinator_->OnMessage(31, ack_msg);
  Pump(40);
  ASSERT_EQ(engine_inbox_.size(), 2u);
  EXPECT_EQ(engine_inbox_[1].second.type, MessageType::kTransferStates);

  // Step 7: receiver confirms install → routing update to split host.
  StatesInstalled installed;
  installed.relocation_id = 1;
  installed.receiver = 1;
  installed.bytes = 400;
  Message inst_msg;
  inst_msg.type = MessageType::kStatesInstalled;
  inst_msg.from = 1;
  inst_msg.to = 10;
  inst_msg.payload = installed;
  coordinator_->OnMessage(41, inst_msg);
  Pump(50);
  ASSERT_EQ(split_inbox_.size(), 2u);
  ASSERT_EQ(split_inbox_[1].type, MessageType::kUpdateRouting);
  const auto& update = std::get<UpdateRouting>(split_inbox_[1].payload);
  EXPECT_EQ(update.new_owner, 1);

  // Step 8b: routing ack completes the relocation.
  RoutingUpdated updated;
  updated.relocation_id = 1;
  updated.split_host = 20;
  Message upd_msg;
  upd_msg.type = MessageType::kRoutingUpdated;
  upd_msg.from = 20;
  upd_msg.to = 10;
  upd_msg.payload = updated;
  coordinator_->OnMessage(51, upd_msg);
  EXPECT_FALSE(coordinator_->relocation_in_flight());
  EXPECT_EQ(coordinator_->counters().relocations_completed, 1);
  EXPECT_EQ(coordinator_->counters().bytes_relocated, 400);
}

TEST_F(GlobalCoordinatorTest, ActiveDiskForcesSpillOnProductivitySkew) {
  Build(AdaptationStrategy::kActiveDisk);
  // Balanced memory (no relocation), high pressure, skewed productivity:
  // engine 0 productive (rate 100/10=10), engine 1 not (rate 1/10=0.1).
  Report(1, 0, 900, /*groups=*/10, /*outputs=*/100);
  Report(1, 1, 850, /*groups=*/10, /*outputs=*/1);
  coordinator_->OnTick(10);
  Pump(20);
  ASSERT_EQ(engine_inbox_.size(), 1u);
  EXPECT_EQ(engine_inbox_[0].first, 1);  // least productive engine spills
  const auto& cmd = std::get<ForceSpill>(engine_inbox_[0].second.payload);
  EXPECT_EQ(cmd.amount_bytes, 425);  // 0.5 * 850
  EXPECT_EQ(coordinator_->counters().forced_spills, 1);
}

TEST_F(GlobalCoordinatorTest, ActiveDiskRespectsMemoryPressureGuard) {
  Build(AdaptationStrategy::kActiveDisk);
  // Low usage (400+350 < 0.5 * 2000): no forced spill even with skew.
  Report(1, 0, 400, 10, 100);
  Report(1, 1, 350, 10, 1);
  coordinator_->OnTick(10);
  Pump(20);
  EXPECT_TRUE(engine_inbox_.empty());
}

TEST_F(GlobalCoordinatorTest, ActiveDiskVolumeCapHonored) {
  Build(AdaptationStrategy::kActiveDisk);
  Report(1, 0, 900, 10, 100);
  Report(1, 1, 850, 10, 1);
  coordinator_->OnTick(10);
  Pump(20);
  ASSERT_EQ(engine_inbox_.size(), 1u);

  // The engine reports back a spill of 990 bytes — nearly the 1000 cap.
  SpillComplete done;
  done.engine = 1;
  done.bytes_spilled = 990;
  Message done_msg;
  done_msg.type = MessageType::kSpillComplete;
  done_msg.from = 1;
  done_msg.to = 10;
  done_msg.payload = done;
  coordinator_->OnMessage(15, done_msg);

  // Next round: remaining budget is 10 bytes; 0.5*850=425 is clamped.
  Report(16, 0, 900, 10, 100);
  Report(16, 1, 850, 10, 1);
  coordinator_->OnTick(20);
  Pump(30);
  ASSERT_EQ(engine_inbox_.size(), 2u);
  const auto& cmd = std::get<ForceSpill>(engine_inbox_[1].second.payload);
  EXPECT_EQ(cmd.amount_bytes, 10);

  // And once the cap is consumed, no further forced spills.
  done.bytes_spilled = 10;
  done_msg.payload = done;
  coordinator_->OnMessage(25, done_msg);
  coordinator_->OnTick(30);
  Pump(40);
  EXPECT_EQ(engine_inbox_.size(), 2u);
}

TEST_F(GlobalCoordinatorTest, LazyDiskNeverForcesSpill) {
  Build(AdaptationStrategy::kLazyDisk);
  Report(1, 0, 900, 10, 100);
  Report(1, 1, 850, 10, 1);
  coordinator_->OnTick(10);
  Pump(20);
  EXPECT_TRUE(engine_inbox_.empty());
}

}  // namespace
}  // namespace dcape
