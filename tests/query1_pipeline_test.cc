#include <gtest/gtest.h>

#include "operators/aggregate.h"
#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::SmallClusterConfig;

/// Integration tests for the full QUERY 1 pipeline: WHERE selection →
/// split → partitioned m-way join (+ projection) → union → GROUP BY
/// aggregate — including exactness of the final aggregate when the run
/// spilled and the cleanup phase delivered results late.

ClusterConfig Query1Config() {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.workload.num_categories = 8;
  config.workload.value_min = 100;
  config.workload.value_max = 999;

  SelectPredicate band;
  band.max_value = 800;
  config.select_per_stream = {band, band, band};
  config.project_payload_to = 8;

  ResultProjection projection;
  projection.group_stream = 0;
  projection.op = AggregateOp::kMin;
  config.projection = projection;
  config.aggregate_op = AggregateOp::kMin;
  return config;
}

TEST(Query1PipelineTest, SelectionFiltersBeforeTheJoin) {
  ClusterConfig config = Query1Config();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  const SelectOp* select = cluster.split_host().select(0);
  ASSERT_NE(select, nullptr);
  EXPECT_GT(select->seen(), 0);
  // value uniform in [100, 999]; WHERE value <= 800 keeps ~78%.
  EXPECT_NEAR(select->selectivity(), 0.78, 0.05);
  // Fewer tuples reach the engines than were generated.
  int64_t processed = 0;
  for (const auto& c : result.engines) processed += c.tuples_processed;
  EXPECT_LT(processed, result.tuples_generated);
  EXPECT_GT(processed, 0);
}

TEST(Query1PipelineTest, ProjectionShrinksState) {
  ClusterConfig config = Query1Config();
  config.strategy = AdaptationStrategy::kNoAdaptation;

  ClusterConfig wide = config;
  wide.project_payload_to.reset();

  Cluster narrow_cluster(config);
  RunResult narrow = narrow_cluster.Run();
  Cluster wide_cluster(wide);
  RunResult wide_result = wide_cluster.Run();

  EXPECT_GT(narrow_cluster.split_host().project()->bytes_saved(), 0);
  EXPECT_LT(narrow.engine_memory[0].Last() + narrow.engine_memory[1].Last(),
            wide_result.engine_memory[0].Last() +
                wide_result.engine_memory[1].Last());
  // Same results either way — projection only strips payload bytes.
  EXPECT_EQ(narrow.runtime_results, wide_result.runtime_results);
}

TEST(Query1PipelineTest, ResultsCarryProjectedFields) {
  ClusterConfig config = Query1Config();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_FALSE(result.collected.empty());
  for (const JoinResult& r : result.collected) {
    EXPECT_GE(r.group_key, 0);
    EXPECT_LT(r.group_key, 8);
    EXPECT_GE(r.agg_value, 100);
    EXPECT_LE(r.agg_value, 800);  // min over selected members
  }
}

TEST(Query1PipelineTest, AggregateExactUnderSpillAndCleanup) {
  ClusterConfig config = Query1Config();

  // Reference: all-memory aggregate.
  ClusterConfig reference_config = config;
  reference_config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster reference_cluster(reference_config);
  RunResult reference = reference_cluster.Run();
  GroupByAggregate* reference_agg = reference_cluster.aggregate();
  ASSERT_NE(reference_agg, nullptr);
  ASSERT_EQ(reference.cleanup.result_count, 0);

  // Constrained: lazy-disk with spills; cleanup folds in afterwards.
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.placement_fractions = {0.7, 0.3};
  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_GT(result.spill_events, 0);
  ASSERT_GT(result.cleanup.result_count, 0);

  GroupByAggregate* agg = cluster.aggregate();
  agg->ConsumeAll(result.cleanup.results);

  ASSERT_EQ(agg->groups().size(), reference_agg->groups().size());
  for (const auto& [group, state] : reference_agg->groups()) {
    auto it = agg->groups().find(group);
    ASSERT_NE(it, agg->groups().end()) << "missing group " << group;
    EXPECT_EQ(it->second.aggregate, state.aggregate)
        << "min(price) differs for group " << group;
    EXPECT_EQ(it->second.count, state.count)
        << "match count differs for group " << group;
  }
}

TEST(Query1PipelineTest, CleanupResultsCarryProjectionToo) {
  ClusterConfig config = Query1Config();
  config.strategy = AdaptationStrategy::kSpillOnly;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_GT(result.cleanup.result_count, 0);
  for (const JoinResult& r : result.cleanup.results) {
    EXPECT_GE(r.group_key, 0);
    EXPECT_LT(r.group_key, 8);
    EXPECT_GE(r.agg_value, 100);
    EXPECT_LE(r.agg_value, 800);
  }
}

}  // namespace
}  // namespace dcape
