#include "runtime/experiment_flags.h"

#include <gtest/gtest.h>

namespace dcape {
namespace {

StatusOr<ExperimentOptions> Parse(std::vector<std::string> args) {
  return ParseExperimentFlags(args);
}

TEST(ExperimentFlagsTest, DefaultsWhenEmpty) {
  StatusOr<ExperimentOptions> options = Parse({});
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->cluster.strategy, AdaptationStrategy::kNoAdaptation);
  EXPECT_EQ(options->cluster.num_engines, 2);
  EXPECT_EQ(options->cluster.run_duration, MinutesToTicks(10));
  EXPECT_TRUE(options->tables);
  EXPECT_FALSE(options->verbose);
}

TEST(ExperimentFlagsTest, ParsesFullCommandLine) {
  StatusOr<ExperimentOptions> options = Parse(
      {"--strategy=active-disk", "--engines=3", "--split-hosts=3",
       "--streams=4", "--partitions=100", "--duration-min=20",
       "--inter-arrival-ms=5", "--join-rate=4", "--tuple-range=90000",
       "--payload-bytes=32", "--seed=7", "--placement=0.5,0.3,0.2",
       "--threshold-kib=1024", "--spill-fraction=0.5",
       "--spill-policy=push-largest", "--theta=0.7", "--tau-sec=30",
       "--relocation-model=global-rebalance", "--lambda=3",
       "--productivity=ewma", "--ewma-alpha=0.8", "--restore",
       "--fluctuation", "--phase-min=2", "--hot-mult=5", "--csv=/tmp/x.csv",
       "--quiet", "--verbose"});
  ASSERT_TRUE(options.ok());
  const ClusterConfig& c = options->cluster;
  EXPECT_EQ(c.strategy, AdaptationStrategy::kActiveDisk);
  EXPECT_EQ(c.num_engines, 3);
  EXPECT_EQ(c.num_split_hosts, 3);
  EXPECT_EQ(c.workload.num_streams, 4);
  EXPECT_EQ(c.workload.num_partitions, 100);
  EXPECT_EQ(c.run_duration, MinutesToTicks(20));
  EXPECT_EQ(c.workload.inter_arrival_ticks, 5);
  ASSERT_EQ(c.workload.classes.size(), 1u);
  EXPECT_DOUBLE_EQ(c.workload.classes[0].join_rate, 4.0);
  EXPECT_EQ(c.workload.classes[0].tuple_range, 90000);
  EXPECT_EQ(c.workload.payload_bytes, 32);
  EXPECT_EQ(c.seed, 7u);
  ASSERT_EQ(c.placement_fractions.size(), 3u);
  EXPECT_DOUBLE_EQ(c.placement_fractions[1], 0.3);
  EXPECT_EQ(c.spill.memory_threshold_bytes, 1024 * kKiB);
  EXPECT_DOUBLE_EQ(c.spill.spill_fraction, 0.5);
  EXPECT_EQ(c.spill.policy, SpillPolicy::kLargestFirst);
  EXPECT_DOUBLE_EQ(c.relocation.theta_r, 0.7);
  EXPECT_EQ(c.relocation.min_time_between, SecondsToTicks(30));
  EXPECT_EQ(c.relocation.model, RelocationModel::kGlobalRebalance);
  EXPECT_DOUBLE_EQ(c.active_disk.lambda, 3.0);
  EXPECT_EQ(c.productivity.model, ProductivityModel::kEwma);
  EXPECT_DOUBLE_EQ(c.productivity.ewma_alpha, 0.8);
  EXPECT_TRUE(c.restore.enabled);
  EXPECT_TRUE(c.workload.fluctuation.enabled);
  EXPECT_EQ(c.workload.fluctuation.phase_ticks, MinutesToTicks(2));
  EXPECT_DOUBLE_EQ(c.workload.fluctuation.hot_multiplier, 5.0);
  EXPECT_EQ(options->csv_path, "/tmp/x.csv");
  EXPECT_FALSE(options->tables);
  EXPECT_TRUE(options->verbose);
}

TEST(ExperimentFlagsTest, RejectsUnknownFlag) {
  StatusOr<ExperimentOptions> options = Parse({"--nope=1"});
  ASSERT_FALSE(options.ok());
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExperimentFlagsTest, RejectsMalformedNumbers) {
  EXPECT_FALSE(Parse({"--engines=two"}).ok());
  EXPECT_FALSE(Parse({"--theta=big"}).ok());
  EXPECT_FALSE(Parse({"--placement=0.5,x"}).ok());
}

TEST(ExperimentFlagsTest, RejectsOutOfRangeValues) {
  EXPECT_FALSE(Parse({"--engines=0"}).ok());
  EXPECT_FALSE(Parse({"--streams=1"}).ok());
  EXPECT_FALSE(Parse({"--theta=1.5"}).ok());
  EXPECT_FALSE(Parse({"--spill-fraction=0"}).ok());
  EXPECT_FALSE(Parse({"--lambda=1"}).ok());
  EXPECT_FALSE(Parse({"--ewma-alpha=2"}).ok());
}

TEST(ExperimentFlagsTest, RejectsBadEnumValues) {
  EXPECT_FALSE(Parse({"--strategy=yolo"}).ok());
  EXPECT_FALSE(Parse({"--spill-policy=whatever"}).ok());
  EXPECT_FALSE(Parse({"--relocation-model=magic"}).ok());
  EXPECT_FALSE(Parse({"--productivity=psychic"}).ok());
}

TEST(ExperimentFlagsTest, PlacementMustMatchEngineCount) {
  EXPECT_FALSE(Parse({"--engines=3", "--placement=0.5,0.5"}).ok());
  EXPECT_TRUE(Parse({"--engines=2", "--placement=0.5,0.5"}).ok());
}

TEST(ExperimentFlagsTest, RejectsDuplicateFlags) {
  StatusOr<ExperimentOptions> options =
      Parse({"--engines=3", "--engines=4"});
  ASSERT_FALSE(options.ok());
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().message().find("duplicate flag --engines"),
            std::string::npos);
  // Boolean flags too, and duplicates with different values.
  EXPECT_FALSE(Parse({"--restore", "--strategy=lazy-disk", "--restore"}).ok());
  EXPECT_FALSE(Parse({"--seed=1", "--seed=1"}).ok());
  // Same key, one bare and one with a value, is still a duplicate.
  StatusOr<ExperimentOptions> mixed = Parse({"--verbose", "--verbose=1"});
  ASSERT_FALSE(mixed.ok());
  EXPECT_NE(mixed.status().message().find("duplicate flag --verbose"),
            std::string::npos);
}

TEST(ExperimentFlagsTest, UnknownFlagErrorNamesTheFlag) {
  StatusOr<ExperimentOptions> options = Parse({"--warpdrive=9"});
  ASSERT_FALSE(options.ok());
  EXPECT_NE(options.status().message().find("--warpdrive"),
            std::string::npos);
}

TEST(ExperimentFlagsTest, OutOfRangeThetaAndTauNameTheFlag) {
  for (const char* arg : {"--theta=0", "--theta=1", "--theta=-0.3",
                          "--theta=1.01"}) {
    StatusOr<ExperimentOptions> options =
        Parse({"--strategy=lazy-disk", arg});
    ASSERT_FALSE(options.ok()) << arg;
    EXPECT_NE(options.status().message().find("--theta"), std::string::npos)
        << options.status().ToString();
  }
  StatusOr<ExperimentOptions> tau =
      Parse({"--strategy=lazy-disk", "--tau-sec=-1"});
  ASSERT_FALSE(tau.ok());
  EXPECT_NE(tau.status().message().find("--tau-sec"), std::string::npos);
}

TEST(ExperimentFlagsTest, SpillFlagsRequireASpillingStrategy) {
  for (const char* arg :
       {"--restore", "--spill-fraction=0.4", "--spill-policy=push-largest"}) {
    // Default strategy (all-mem) never spills.
    StatusOr<ExperimentOptions> implicit = Parse({arg});
    ASSERT_FALSE(implicit.ok()) << arg;
    const std::string flag_name =
        std::string(arg).substr(0, std::string(arg).find('='));
    EXPECT_NE(implicit.status().message().find(flag_name), std::string::npos)
        << implicit.status().ToString();
    // Explicit non-spilling strategy, either flag order.
    EXPECT_FALSE(Parse({"--strategy=relocation-only", arg}).ok()) << arg;
    EXPECT_FALSE(Parse({arg, "--strategy=relocation-only"}).ok()) << arg;
    // Any spilling strategy accepts it.
    EXPECT_TRUE(Parse({"--strategy=spill-only", arg}).ok()) << arg;
    EXPECT_TRUE(Parse({"--strategy=lazy-disk", arg}).ok()) << arg;
  }
}

TEST(ExperimentFlagsTest, RelocationFlagsRequireARelocatingStrategy) {
  for (const char* arg :
       {"--theta=0.7", "--tau-sec=30", "--relocation-model=pairwise"}) {
    StatusOr<ExperimentOptions> implicit = Parse({arg});
    ASSERT_FALSE(implicit.ok()) << arg;
    const std::string flag_name =
        std::string(arg).substr(0, std::string(arg).find('='));
    EXPECT_NE(implicit.status().message().find(flag_name), std::string::npos)
        << implicit.status().ToString();
    EXPECT_FALSE(Parse({"--strategy=spill-only", arg}).ok()) << arg;
    EXPECT_TRUE(Parse({"--strategy=relocation-only", arg}).ok()) << arg;
    EXPECT_TRUE(Parse({"--strategy=active-disk", arg}).ok()) << arg;
  }
}

TEST(ExperimentFlagsTest, LambdaRequiresActiveDisk) {
  for (const char* strategy :
       {"--strategy=all-mem", "--strategy=spill-only",
        "--strategy=relocation-only", "--strategy=lazy-disk"}) {
    StatusOr<ExperimentOptions> options = Parse({strategy, "--lambda=3"});
    ASSERT_FALSE(options.ok()) << strategy;
    EXPECT_NE(options.status().message().find("--lambda"), std::string::npos);
  }
  EXPECT_TRUE(Parse({"--strategy=active-disk", "--lambda=3"}).ok());
}

TEST(ExperimentFlagsTest, HelpIsAnError) {
  StatusOr<ExperimentOptions> options = Parse({"--help"});
  ASSERT_FALSE(options.ok());
  EXPECT_NE(options.status().message().find("--strategy"),
            std::string::npos);
}

TEST(EnumParseTest, RoundTripsAllValues) {
  for (AdaptationStrategy s :
       {AdaptationStrategy::kNoAdaptation, AdaptationStrategy::kSpillOnly,
        AdaptationStrategy::kRelocationOnly, AdaptationStrategy::kLazyDisk,
        AdaptationStrategy::kActiveDisk}) {
    EXPECT_EQ(ParseStrategy(StrategyName(s)).value(), s);
  }
  for (SpillPolicy p :
       {SpillPolicy::kLeastProductiveFirst, SpillPolicy::kMostProductiveFirst,
        SpillPolicy::kLargestFirst, SpillPolicy::kSmallestFirst,
        SpillPolicy::kRandom}) {
    EXPECT_EQ(ParseSpillPolicy(SpillPolicyName(p)).value(), p);
  }
  for (RelocationModel m :
       {RelocationModel::kPairwise, RelocationModel::kGlobalRebalance}) {
    EXPECT_EQ(ParseRelocationModel(RelocationModelName(m)).value(), m);
  }
}

TEST(ExperimentFlagsTest, RealtimeDefaultsOffAndParses) {
  StatusOr<ExperimentOptions> off = Parse({});
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->realtime);
  EXPECT_FALSE(off->rt_check_oracle);

  StatusOr<ExperimentOptions> on =
      Parse({"--realtime", "--duration-sec=9", "--rate=120000",
             "--check-oracle", "--rt-queue-capacity=1024"});
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on->realtime);
  EXPECT_EQ(on->rt_duration_sec, 9);
  EXPECT_EQ(on->rt_rate, 120000);
  EXPECT_TRUE(on->rt_check_oracle);
  EXPECT_EQ(on->rt_queue_capacity, 1024u);
}

TEST(ExperimentFlagsTest, RealtimeRejectsSimulatorOnlyFlagsByName) {
  // Each conflicting flag is simulator-only; the error must name it so
  // the fix is obvious.
  const std::vector<std::vector<std::string>> cases = {
      {"--realtime", "--threads=2"},
      {"--realtime", "--duration-min=5"},
      {"--realtime", "--window-sec=60"},
      {"--realtime", "--trace-out=/tmp/t.json"},
      {"--realtime", "--report=timeline"},
  };
  for (const auto& args : cases) {
    StatusOr<ExperimentOptions> options = Parse(args);
    ASSERT_FALSE(options.ok()) << args[1];
    const std::string flag_name = args[1].substr(0, args[1].find('='));
    EXPECT_NE(options.status().message().find(flag_name), std::string::npos)
        << options.status().message();
    EXPECT_NE(options.status().message().find("--realtime"),
              std::string::npos)
        << options.status().message();
  }
}

TEST(ExperimentFlagsTest, RealtimeOnlyFlagsRequireRealtime) {
  const std::vector<std::string> rt_only = {
      "--duration-sec=9", "--rate=1000", "--check-oracle",
      "--rt-queue-capacity=64"};
  for (const std::string& arg : rt_only) {
    StatusOr<ExperimentOptions> options = Parse({arg});
    ASSERT_FALSE(options.ok()) << arg;
    const std::string flag_name = arg.substr(0, arg.find('='));
    EXPECT_NE(options.status().message().find(flag_name), std::string::npos)
        << options.status().message();
    EXPECT_NE(options.status().message().find("requires --realtime"),
              std::string::npos)
        << options.status().message();
  }
}

TEST(ExperimentFlagsTest, RealtimeValueRanges) {
  EXPECT_FALSE(Parse({"--realtime", "--duration-sec=0"}).ok());
  EXPECT_FALSE(Parse({"--realtime", "--rate=-1"}).ok());
  EXPECT_FALSE(Parse({"--realtime", "--rt-queue-capacity=1"}).ok());
}

TEST(ExperimentFlagsTest, RealtimeAllowsSharedFlags) {
  // The whole adaptation / workload surface stays available.
  StatusOr<ExperimentOptions> options =
      Parse({"--realtime", "--strategy=lazy-disk", "--engines=4",
             "--streams=3", "--fluctuation", "--csv=/tmp/x.csv",
             "--trace", "--async-io", "--file-backend"});
  ASSERT_TRUE(options.ok()) << options.status().message();
  EXPECT_TRUE(options->realtime);
  EXPECT_EQ(options->cluster.num_engines, 4);
}

}  // namespace
}  // namespace dcape
