#include "runtime/cluster_config.h"

#include <gtest/gtest.h>

#include <map>

namespace dcape {
namespace {

TEST(ComputePlacementTest, UniformByDefault) {
  std::vector<EngineId> placement = ComputePlacement(12, 3, {});
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 4);
}

TEST(ComputePlacementTest, ContiguousBlocks) {
  std::vector<EngineId> placement = ComputePlacement(10, 2, {0.6, 0.4});
  for (size_t p = 1; p < placement.size(); ++p) {
    EXPECT_GE(placement[p], placement[p - 1]) << "blocks must be contiguous";
  }
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 4);
}

TEST(ComputePlacementTest, SkewedThreeWay) {
  // The Fig. 12 setup: one machine gets 2/3, the others split 1/3.
  std::vector<EngineId> placement =
      ComputePlacement(60, 3, {2.0 / 3, 1.0 / 6, 1.0 / 6});
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts[0], 40);
  EXPECT_EQ(counts[1], 10);
  EXPECT_EQ(counts[2], 10);
}

TEST(ComputePlacementTest, EveryEngineAppearsEvenWithRounding) {
  std::vector<EngineId> placement = ComputePlacement(7, 3, {0.5, 0.25, 0.25});
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts.size(), 3u);
}

TEST(PartitionsOfEngineTest, ReturnsOwnedIds) {
  std::vector<EngineId> placement = {0, 0, 1, 1, 1, 2};
  EXPECT_EQ(PartitionsOfEngine(placement, 0),
            (std::vector<PartitionId>{0, 1}));
  EXPECT_EQ(PartitionsOfEngine(placement, 1),
            (std::vector<PartitionId>{2, 3, 4}));
  EXPECT_EQ(PartitionsOfEngine(placement, 2), (std::vector<PartitionId>{5}));
  EXPECT_TRUE(PartitionsOfEngine(placement, 3).empty());
}

TEST(StrategyTest, NamesAndCapabilities) {
  EXPECT_STREQ(StrategyName(AdaptationStrategy::kLazyDisk), "lazy-disk");
  EXPECT_STREQ(StrategyName(AdaptationStrategy::kActiveDisk), "active-disk");
  EXPECT_STREQ(SpillPolicyName(SpillPolicy::kLeastProductiveFirst),
               "push-less-productive");

  EXPECT_FALSE(StrategySpillsLocally(AdaptationStrategy::kNoAdaptation));
  EXPECT_TRUE(StrategySpillsLocally(AdaptationStrategy::kSpillOnly));
  EXPECT_FALSE(StrategySpillsLocally(AdaptationStrategy::kRelocationOnly));
  EXPECT_TRUE(StrategySpillsLocally(AdaptationStrategy::kLazyDisk));
  EXPECT_TRUE(StrategySpillsLocally(AdaptationStrategy::kActiveDisk));

  EXPECT_FALSE(StrategyRelocates(AdaptationStrategy::kNoAdaptation));
  EXPECT_FALSE(StrategyRelocates(AdaptationStrategy::kSpillOnly));
  EXPECT_TRUE(StrategyRelocates(AdaptationStrategy::kRelocationOnly));
  EXPECT_TRUE(StrategyRelocates(AdaptationStrategy::kLazyDisk));
  EXPECT_TRUE(StrategyRelocates(AdaptationStrategy::kActiveDisk));
}

TEST(ClusterConfigBuilderTest, DefaultsValidate) {
  StatusOr<ClusterConfig> built = ClusterConfig::Builder().Build();
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->num_engines, 2);
  EXPECT_EQ(built->strategy, AdaptationStrategy::kNoAdaptation);
}

TEST(ClusterConfigBuilderTest, SettersFlowIntoTheConfig) {
  StatusOr<ClusterConfig> built = ClusterConfig::Builder()
                                      .SetStrategy(AdaptationStrategy::kLazyDisk)
                                      .SetNumEngines(4)
                                      .SetNumThreads(3)
                                      .SetSeed(99)
                                      .SetThetaR(0.6)
                                      .Build();
  ASSERT_TRUE(built.ok()) << built.status();
  EXPECT_EQ(built->num_engines, 4);
  EXPECT_EQ(built->num_threads, 3);
  EXPECT_EQ(built->seed, 99u);
  EXPECT_EQ(built->workload.seed, 99u);
  EXPECT_DOUBLE_EQ(built->relocation.theta_r, 0.6);
}

TEST(ClusterConfigBuilderTest, RangeChecksCatchBadValues) {
  EXPECT_FALSE(ClusterConfig::Builder().SetNumEngines(0).Build().ok());
  EXPECT_FALSE(ClusterConfig::Builder().SetNumEngines(65).Build().ok());
  EXPECT_FALSE(ClusterConfig::Builder().SetNumThreads(0).Build().ok());
  EXPECT_FALSE(ClusterConfig::Builder().SetNumStreams(1).Build().ok());
  EXPECT_FALSE(ClusterConfig::Builder()
                   .SetStrategy(AdaptationStrategy::kLazyDisk)
                   .SetSpillFraction(1.5)
                   .Build()
                   .ok());
  Status status =
      ClusterConfig::Builder().SetNumEngines(0).Validate();
  EXPECT_NE(status.message().find("--engines"), std::string::npos);
}

TEST(ClusterConfigBuilderTest, StrategyConsistencyOnlyForExplicitFields) {
  // theta_r has a (valid) default; not setting it keeps all-mem fine.
  EXPECT_TRUE(ClusterConfig::Builder().Build().ok());
  // Explicitly tuning relocation under a non-relocating strategy fails.
  StatusOr<ClusterConfig> built =
      ClusterConfig::Builder().SetThetaR(0.5).Build();
  ASSERT_FALSE(built.ok());
  EXPECT_NE(built.status().message().find("--theta"), std::string::npos);
  EXPECT_NE(built.status().message().find("relocating strategy"),
            std::string::npos);
  // The same value under a relocating strategy is fine.
  EXPECT_TRUE(ClusterConfig::Builder()
                  .SetStrategy(AdaptationStrategy::kRelocationOnly)
                  .SetThetaR(0.5)
                  .Build()
                  .ok());
}

TEST(ClusterConfigBuilderTest, LambdaRequiresActiveDisk) {
  EXPECT_FALSE(ClusterConfig::Builder()
                   .SetStrategy(AdaptationStrategy::kLazyDisk)
                   .SetLambda(3.0)
                   .Build()
                   .ok());
  EXPECT_TRUE(ClusterConfig::Builder()
                  .SetStrategy(AdaptationStrategy::kActiveDisk)
                  .SetLambda(3.0)
                  .Build()
                  .ok());
}

TEST(ClusterConfigBuilderTest, AggregateBaseCountsAsDefaults) {
  // Fields of a base aggregate are not "explicitly set": a conflicting
  // theta in the base does not trip the consistency check…
  ClusterConfig base;
  base.relocation.theta_r = 0.5;
  EXPECT_TRUE(ClusterConfig::Builder(base).Build().ok());
  // …but MarkSet turns the same config into an error.
  EXPECT_FALSE(
      ClusterConfig::Builder(base).MarkSet("--theta").Build().ok());
}

TEST(ClusterConfigBuilderTest, TraceVerboseRequiresTrace) {
  EXPECT_FALSE(ClusterConfig::Builder().SetTraceVerbose(true).Build().ok());
  StatusOr<ClusterConfig> built = ClusterConfig::Builder()
                                      .SetTrace(true)
                                      .SetTraceVerbose(true)
                                      .Build();
  ASSERT_TRUE(built.ok());
  EXPECT_TRUE(built->trace);
  EXPECT_TRUE(built->trace_verbose);
}

TEST(ClusterConfigBuilderTest, PlacementMustMatchEngineCount) {
  EXPECT_FALSE(ClusterConfig::Builder()
                   .SetNumEngines(2)
                   .SetPlacementFractions({0.5, 0.3, 0.2})
                   .Build()
                   .ok());
  EXPECT_TRUE(ClusterConfig::Builder()
                  .SetNumEngines(3)
                  .SetPlacementFractions({0.5, 0.3, 0.2})
                  .Build()
                  .ok());
}

TEST(ClusterConfigBuilderTest, MutableConfigEscapeHatchStillRangeChecked) {
  ClusterConfig::Builder builder;
  builder.mutable_config().workload.inter_arrival_ticks = 0;
  Status status = builder.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("--inter-arrival-ms"), std::string::npos);
}

}  // namespace
}  // namespace dcape
