#include "runtime/cluster_config.h"

#include <gtest/gtest.h>

#include <map>

namespace dcape {
namespace {

TEST(ComputePlacementTest, UniformByDefault) {
  std::vector<EngineId> placement = ComputePlacement(12, 3, {});
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 4);
}

TEST(ComputePlacementTest, ContiguousBlocks) {
  std::vector<EngineId> placement = ComputePlacement(10, 2, {0.6, 0.4});
  for (size_t p = 1; p < placement.size(); ++p) {
    EXPECT_GE(placement[p], placement[p - 1]) << "blocks must be contiguous";
  }
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts[0], 6);
  EXPECT_EQ(counts[1], 4);
}

TEST(ComputePlacementTest, SkewedThreeWay) {
  // The Fig. 12 setup: one machine gets 2/3, the others split 1/3.
  std::vector<EngineId> placement =
      ComputePlacement(60, 3, {2.0 / 3, 1.0 / 6, 1.0 / 6});
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts[0], 40);
  EXPECT_EQ(counts[1], 10);
  EXPECT_EQ(counts[2], 10);
}

TEST(ComputePlacementTest, EveryEngineAppearsEvenWithRounding) {
  std::vector<EngineId> placement = ComputePlacement(7, 3, {0.5, 0.25, 0.25});
  std::map<EngineId, int> counts;
  for (EngineId e : placement) counts[e] += 1;
  EXPECT_EQ(counts.size(), 3u);
}

TEST(PartitionsOfEngineTest, ReturnsOwnedIds) {
  std::vector<EngineId> placement = {0, 0, 1, 1, 1, 2};
  EXPECT_EQ(PartitionsOfEngine(placement, 0),
            (std::vector<PartitionId>{0, 1}));
  EXPECT_EQ(PartitionsOfEngine(placement, 1),
            (std::vector<PartitionId>{2, 3, 4}));
  EXPECT_EQ(PartitionsOfEngine(placement, 2), (std::vector<PartitionId>{5}));
  EXPECT_TRUE(PartitionsOfEngine(placement, 3).empty());
}

TEST(StrategyTest, NamesAndCapabilities) {
  EXPECT_STREQ(StrategyName(AdaptationStrategy::kLazyDisk), "lazy-disk");
  EXPECT_STREQ(StrategyName(AdaptationStrategy::kActiveDisk), "active-disk");
  EXPECT_STREQ(SpillPolicyName(SpillPolicy::kLeastProductiveFirst),
               "push-less-productive");

  EXPECT_FALSE(StrategySpillsLocally(AdaptationStrategy::kNoAdaptation));
  EXPECT_TRUE(StrategySpillsLocally(AdaptationStrategy::kSpillOnly));
  EXPECT_FALSE(StrategySpillsLocally(AdaptationStrategy::kRelocationOnly));
  EXPECT_TRUE(StrategySpillsLocally(AdaptationStrategy::kLazyDisk));
  EXPECT_TRUE(StrategySpillsLocally(AdaptationStrategy::kActiveDisk));

  EXPECT_FALSE(StrategyRelocates(AdaptationStrategy::kNoAdaptation));
  EXPECT_FALSE(StrategyRelocates(AdaptationStrategy::kSpillOnly));
  EXPECT_TRUE(StrategyRelocates(AdaptationStrategy::kRelocationOnly));
  EXPECT_TRUE(StrategyRelocates(AdaptationStrategy::kLazyDisk));
  EXPECT_TRUE(StrategyRelocates(AdaptationStrategy::kActiveDisk));
}

}  // namespace
}  // namespace dcape
