#include "metrics/histogram.h"

#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

TEST(HistogramTest, EmptyIsZeroEverything) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int64_t v : {1, 2, 3, 4, 10}) h.Add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 20);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 10);
}

TEST(HistogramTest, NegativeClampsToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.count(), 1);
}

TEST(HistogramTest, QuantileWithinFactorOfTwo) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(100);  // all samples equal
  const int64_t p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 100);
  EXPECT_LE(p50, 200);  // log-bucket upper bound, clamped to max... = 100
  EXPECT_EQ(h.Quantile(0.99), p50);
}

TEST(HistogramTest, QuantilesOrdered) {
  Histogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Add(v);
  const int64_t p10 = h.Quantile(0.10);
  const int64_t p50 = h.Quantile(0.50);
  const int64_t p99 = h.Quantile(0.99);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
  // p50 of uniform 1..10000 is ~5000; bucket bound within 2x.
  EXPECT_GE(p50, 5000);
  EXPECT_LE(p50, 10000);
  EXPECT_LE(p99, 10000);  // clamped to observed max
}

TEST(HistogramTest, MaxClampsBucketBound) {
  Histogram h;
  h.Add(5);  // bucket [4,8) → upper bound 8, clamped to max 5
  EXPECT_EQ(h.Quantile(1.0), 5);
}

TEST(LatencyTrackingTest, RuntimeResultsHaveSmallPipelineLatency) {
  // All-memory run: a result is producible the instant its last member
  // arrives; delivery adds only the split-hop, engine-hop and sink-hop
  // network latencies (a few virtual ms).
  ClusterConfig config = testing::SmallClusterConfig();
  config.run_duration = SecondsToTicks(30);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.strategy = AdaptationStrategy::kNoAdaptation;
  RunResult result = Cluster(config).Run();

  ASSERT_GT(result.runtime_latency.count(), 0);
  EXPECT_EQ(result.runtime_latency.count(), result.runtime_results);
  EXPECT_GE(result.runtime_latency.min(), 0);
  EXPECT_LE(result.runtime_latency.Quantile(0.5), 32)
      << "unloaded pipeline latency should be a handful of virtual ms";
}

TEST(LatencyTrackingTest, SpillIoInflatesTailLatency) {
  ClusterConfig config = testing::SmallClusterConfig();
  config.run_duration = MinutesToTicks(1);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  // Slow disk: spills hold the engine busy, queueing input.
  config.disk.write_bytes_per_tick = 2000;

  ClusterConfig all_mem = config;
  all_mem.strategy = AdaptationStrategy::kNoAdaptation;
  RunResult baseline = Cluster(all_mem).Run();

  config.strategy = AdaptationStrategy::kSpillOnly;
  config.spill.memory_threshold_bytes = 64 * kKiB;
  RunResult spilling = Cluster(config).Run();
  ASSERT_GT(spilling.spill_events, 0);

  EXPECT_GT(spilling.runtime_latency.Quantile(0.99),
            baseline.runtime_latency.Quantile(0.99))
      << "disk-busy periods must show up in the latency tail";
}

}  // namespace
}  // namespace dcape
