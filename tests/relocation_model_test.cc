#include <gtest/gtest.h>

#include "core/global_coordinator.h"
#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

TEST(RelocationModelTest, Names) {
  EXPECT_STREQ(RelocationModelName(RelocationModel::kPairwise), "pairwise");
  EXPECT_STREQ(RelocationModelName(RelocationModel::kGlobalRebalance),
               "global-rebalance");
}

/// Coordinator-level test: under global rebalance, one trigger plans a
/// whole round of moves, executed one 8-step protocol at a time.
TEST(RelocationModelTest, GlobalRebalancePlansMultipleMoves) {
  Network::Config net_config;
  net_config.latency_ticks = 1;
  net_config.bytes_per_tick = 1 << 30;
  Network network(net_config);

  std::vector<std::pair<int, Message>> engine_inbox;
  CoordinatorConfig config;
  config.node_id = 10;
  for (int e = 0; e < 4; ++e) {
    config.engine_nodes.push_back(e);
    config.engine_memory_thresholds.push_back(10000);
    network.RegisterNode(e, [&engine_inbox, e](Tick, const Message& m) {
      engine_inbox.push_back({e, m});
    });
  }
  config.split_hosts = {20};
  network.RegisterNode(20, [](Tick, const Message&) {});
  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.relocation.model = RelocationModel::kGlobalRebalance;
  config.relocation.sr_timer_period = 10;
  config.relocation.min_time_between = 10;
  config.relocation.min_relocate_bytes = 10;
  GlobalCoordinator coordinator(config, &network);

  // Loads: 4000, 3000, 500, 500 (mean 2000): two surplus engines must
  // send 2000 and 1000; deficits are 1500 each.
  auto report = [&](EngineId engine, int64_t bytes) {
    StatsReport r;
    r.engine = engine;
    r.state_bytes = bytes;
    r.num_groups = 4;
    Message m = MakeStatsReportMessage(engine, 10, r);
    coordinator.OnMessage(1, m);
  };
  report(0, 4000);
  report(1, 3000);
  report(2, 500);
  report(3, 500);

  coordinator.OnTick(10);
  network.DeliverUntil(20);
  // First move started: engine 0 (largest surplus) asked to move.
  ASSERT_EQ(engine_inbox.size(), 1u);
  EXPECT_EQ(engine_inbox[0].first, 0);
  const auto& first =
      std::get<ComputePartitionsToMove>(engine_inbox[0].second.payload);
  EXPECT_EQ(first.amount_bytes, 1500);  // fills the larger deficit fully

  // Abort the move (sender has nothing) — the next queued move must
  // start immediately, not wait for the timer.
  PartitionsToMove reply;
  reply.relocation_id = first.relocation_id;
  reply.sender = 0;
  Message abort_msg;
  abort_msg.type = MessageType::kPartitionsToMove;
  abort_msg.from = 0;
  abort_msg.to = 10;
  abort_msg.payload = reply;
  coordinator.OnMessage(21, abort_msg);
  network.DeliverUntil(30);
  ASSERT_GE(engine_inbox.size(), 2u);
  EXPECT_EQ(engine_inbox[1].second.type,
            MessageType::kComputePartitionsToMove);
  EXPECT_GE(coordinator.counters().relocations_started, 2);
}

TEST(RelocationModelTest, GlobalRebalanceBalancesFourEngines) {
  ClusterConfig config = SmallClusterConfig();
  config.num_engines = 4;
  config.workload.num_partitions = 24;
  config.placement_fractions = {0.55, 0.25, 0.1, 0.1};
  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.relocation.model = RelocationModel::kGlobalRebalance;
  config.run_duration = MinutesToTicks(2);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  ASSERT_GT(result.coordinator.relocations_completed, 1);
  double min_mem = 1e18;
  double max_mem = 0;
  for (const TimeSeries& series : result.engine_memory) {
    min_mem = std::min(min_mem, series.Last());
    max_mem = std::max(max_mem, series.Last());
  }
  ASSERT_GT(max_mem, 0);
  EXPECT_GT(min_mem / max_mem, 0.5)
      << "rebalance should leave all four engines near the mean";
}

TEST(RelocationModelTest, GlobalRebalanceRemainsExact) {
  ClusterConfig config = SmallClusterConfig();
  config.num_engines = 3;
  config.placement_fractions = {0.6, 0.3, 0.1};
  config.run_duration = SecondsToTicks(40);
  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  config.strategy = AdaptationStrategy::kLazyDisk;
  config.relocation.model = RelocationModel::kGlobalRebalance;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  EXPECT_GT(result.coordinator.relocations_completed, 0);
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

}  // namespace
}  // namespace dcape
