#include "runtime/generator_node.h"

#include "net/network.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "stream/stream_generator.h"
#include "stream/trace.h"

namespace dcape {
namespace {

WorkloadConfig SmallWorkload() {
  WorkloadConfig config;
  config.num_streams = 3;
  config.num_partitions = 8;
  config.inter_arrival_ticks = 10;
  config.classes = {PartitionClass{1.0, 320}};
  config.seed = 3;
  return config;
}

class GeneratorNodeTest : public ::testing::Test {
 protected:
  GeneratorNodeTest() : network_(FastConfig()) {
    for (NodeId host : {10, 11, 12}) {
      network_.RegisterNode(host, [this, host](Tick, const Message& m) {
        const auto& batch = std::get<TupleBatch>(m.payload);
        per_host_stream_[{host, batch.stream_id}] +=
            static_cast<int64_t>(batch.tuples.size());
      });
    }
  }
  static Network::Config FastConfig() {
    Network::Config c;
    c.latency_ticks = 1;
    c.bytes_per_tick = 1 << 30;
    return c;
  }

  Network network_;
  std::map<std::pair<NodeId, StreamId>, int64_t> per_host_stream_;
};

TEST_F(GeneratorNodeTest, RoutesStreamsToTheirHosts) {
  GeneratorNode node(
      /*node_id=*/0, std::make_unique<StreamGenerator>(SmallWorkload()),
      /*split_host_of_stream=*/{10, 11, 12}, &network_,
      /*record_trace=*/nullptr);
  for (Tick t = 0; t <= 1000; ++t) node.OnTick(t);
  network_.DeliverUntil(2000);

  // Each host received exactly its stream, ~101 tuples each.
  EXPECT_EQ((per_host_stream_[{10, 0}]), 101);
  EXPECT_EQ((per_host_stream_[{11, 1}]), 101);
  EXPECT_EQ((per_host_stream_[{12, 2}]), 101);
  EXPECT_EQ((per_host_stream_[{10, 1}]), 0);
  EXPECT_EQ((per_host_stream_[{11, 2}]), 0);
  EXPECT_EQ(node.source().total_emitted(), 303);
}

TEST_F(GeneratorNodeTest, SharedHostGetsSeparateBatchesPerStream) {
  GeneratorNode node(0, std::make_unique<StreamGenerator>(SmallWorkload()),
                     {10, 10, 10}, &network_, nullptr);
  node.OnTick(0);
  network_.DeliverUntil(100);
  EXPECT_EQ((per_host_stream_[{10, 0}]), 1);
  EXPECT_EQ((per_host_stream_[{10, 1}]), 1);
  EXPECT_EQ((per_host_stream_[{10, 2}]), 1);
}

TEST_F(GeneratorNodeTest, GenerateFalseSilencesTheSource) {
  GeneratorNode node(0, std::make_unique<StreamGenerator>(SmallWorkload()),
                     {10, 10, 10}, &network_, nullptr);
  node.OnTick(0, /*generate=*/false);
  network_.DeliverUntil(100);
  EXPECT_TRUE(per_host_stream_.empty());
  EXPECT_EQ(node.source().total_emitted(), 0);
}

TEST_F(GeneratorNodeTest, RecordsTraceOfEverythingEmitted) {
  std::string trace;
  {
    GeneratorNode node(0, std::make_unique<StreamGenerator>(SmallWorkload()),
                       {10, 10, 10}, &network_, &trace);
    for (Tick t = 0; t <= 500; ++t) node.OnTick(t);
    node.FinishTrace();
  }
  StatusOr<std::vector<TraceRecord>> records = DecodeTrace(trace);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 3u * 51u);
  // Arrival ticks respect the inter-arrival grid.
  for (const TraceRecord& r : *records) {
    EXPECT_EQ(r.arrival % 10, 0);
  }
}

TEST_F(GeneratorNodeTest, TraceFinalizedByDestructorToo) {
  std::string trace;
  {
    GeneratorNode node(0, std::make_unique<StreamGenerator>(SmallWorkload()),
                       {10, 10, 10}, &network_, &trace);
    node.OnTick(0);
  }
  EXPECT_TRUE(DecodeTrace(trace).ok());
}

}  // namespace
}  // namespace dcape
