#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

/// Exactness across join arities: the paper evaluates m = 3, but the
/// partition-group design is arity-generic. Sweep m = 2, 4, 5 under the
/// integrated strategy; the subset-expansion in the cleanup (2^m masks)
/// and the odometer probe must stay exact at every m.
class ArityExactness : public ::testing::TestWithParam<int> {};

TEST_P(ArityExactness, LazyDiskMatchesReference) {
  const int m = GetParam();
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.workload.num_streams = m;
  // Rescale the key domain so the output volume stays testable at
  // higher arity (output per key ~ c^m).
  config.workload.classes = {PartitionClass{1.0, static_cast<int64_t>(60) * 12 * m}};
  config.placement_fractions = {0.7, 0.3};

  std::vector<JoinResult> reference = testing::ReferenceResults(config);
  ASSERT_FALSE(reference.empty()) << "m=" << m;

  config.strategy = AdaptationStrategy::kLazyDisk;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_GT(result.spill_events + result.coordinator.relocations_completed, 0)
      << "m=" << m << ": the config must actually adapt";

  auto all = ToMultiset(AllResults(result));
  for (const auto& [key, count] : all) {
    ASSERT_EQ(count, 1) << "duplicate at m=" << m << ": " << key;
  }
  EXPECT_EQ(all, ToMultiset(reference)) << "m=" << m;
}

TEST_P(ArityExactness, ResultsHaveOneMemberPerStream) {
  const int m = GetParam();
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(20);
  config.workload.num_streams = m;
  config.workload.classes = {PartitionClass{1.0, static_cast<int64_t>(60) * 12 * m}};
  config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_FALSE(result.collected.empty());
  for (const JoinResult& r : result.collected) {
    ASSERT_EQ(r.member_seqs.size(), static_cast<size_t>(m));
  }
}

INSTANTIATE_TEST_SUITE_P(AritySweep, ArityExactness,
                         ::testing::Values(2, 4, 5),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "m" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace dcape
