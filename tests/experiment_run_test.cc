#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "metrics/csv.h"
#include "runtime/cluster.h"
#include "runtime/experiment_flags.h"
#include "stream/trace.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

/// End-to-end tests of the experiment-driver plumbing: parsed flag sets
/// must produce runnable clusters, and the CSV/trace side channels must
/// round-trip.

TEST(ExperimentRunTest, ParsedFlagsProduceARunnableCluster) {
  StatusOr<ExperimentOptions> options = ParseExperimentFlags(
      {"--strategy=lazy-disk", "--engines=2", "--partitions=12",
       "--duration-min=1", "--inter-arrival-ms=10", "--join-rate=1",
       "--tuple-range=480", "--threshold-kib=96", "--placement=0.75,0.25",
       "--tau-sec=5", "--seed=7"});
  ASSERT_TRUE(options.ok());
  Cluster cluster(options->cluster);
  RunResult result = cluster.Run();
  EXPECT_GT(result.runtime_results, 0);
  EXPECT_GT(result.spill_events + result.coordinator.relocations_completed,
            0);
}

TEST(ExperimentRunTest, CsvSeriesRoundTrip) {
  ClusterConfig config = testing::SmallClusterConfig();
  config.run_duration = SecondsToTicks(20);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  RunResult result = Cluster(config).Run();

  std::string path = (std::filesystem::temp_directory_path() /
                      "dcape_experiment_run.csv")
                         .string();
  std::vector<const TimeSeries*> series = {&result.throughput};
  for (const TimeSeries& m : result.engine_memory) series.push_back(&m);
  ASSERT_TRUE(WriteSeriesCsv(path, series).ok());

  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header, "tick,cumulative_results,engine0_bytes,engine1_bytes");
  int rows = 0;
  for (std::string line; std::getline(in, line);) ++rows;
  EXPECT_EQ(rows, static_cast<int>(result.throughput.size()));
  std::filesystem::remove(path);
}

TEST(ExperimentRunTest, TraceFileRecordReplayViaConfig) {
  std::string path = (std::filesystem::temp_directory_path() /
                      "dcape_experiment_run.trace")
                         .string();
  ClusterConfig record = testing::SmallClusterConfig();
  record.run_duration = SecondsToTicks(20);
  record.record_trace = std::make_shared<std::string>();
  RunResult recorded = Cluster(record).Run();
  ASSERT_TRUE(WriteTraceFile(path, *record.record_trace).ok());

  StatusOr<std::string> bytes = ReadTraceFile(path);
  ASSERT_TRUE(bytes.ok());
  ClusterConfig replay = testing::SmallClusterConfig();
  replay.run_duration = SecondsToTicks(20);
  replay.replay_trace = std::make_shared<const std::string>(*bytes);
  RunResult replayed = Cluster(replay).Run();
  EXPECT_EQ(replayed.tuples_generated, recorded.tuples_generated);
  EXPECT_EQ(replayed.runtime_results, recorded.runtime_results);
  std::filesystem::remove(path);
}

TEST(ExperimentRunTest, PerEngineThresholdsRespected) {
  // Engine 0 gets a tiny threshold, engine 1 an effectively unlimited
  // one: only engine 0 may spill.
  ClusterConfig config = testing::SmallClusterConfig();
  config.run_duration = MinutesToTicks(1);
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.per_engine_thresholds = {32 * kKiB, 1 * kGiB};
  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_EQ(result.engines.size(), 2u);
  EXPECT_GT(result.engines[0].spill_events, 0);
  EXPECT_EQ(result.engines[1].spill_events, 0);
}

}  // namespace
}  // namespace dcape
