#include "storage/spill_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "storage/disk_backend.h"

namespace dcape {
namespace {

SpillStore MakeStore(int64_t write_bw = 100, int64_t read_bw = 200) {
  SpillStore::Config config;
  config.write_bytes_per_tick = write_bw;
  config.read_bytes_per_tick = read_bw;
  return SpillStore(/*engine=*/3, config,
                    std::make_unique<MemoryDiskBackend>());
}

TEST(SpillStoreTest, WriteSegmentRecordsMetadata) {
  SpillStore store = MakeStore();
  std::string blob(250, 'a');
  StatusOr<Tick> io = store.WriteSegment(7, /*now=*/1000, blob, 42);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(*io, 3);  // ceil(250 / 100)

  ASSERT_EQ(store.segments().size(), 1u);
  const SpillSegmentMeta& meta = store.segments()[0];
  EXPECT_EQ(meta.engine, 3);
  EXPECT_EQ(meta.partition, 7);
  EXPECT_EQ(meta.segment_id, 0);
  EXPECT_EQ(meta.spill_time, 1000);
  EXPECT_EQ(meta.bytes, 250);
  EXPECT_EQ(meta.tuple_count, 42);
  EXPECT_EQ(store.total_spilled_bytes(), 250);
}

TEST(SpillStoreTest, ReadSegmentRoundTripWithCost) {
  SpillStore store = MakeStore();
  std::string blob(1000, 'b');
  ASSERT_TRUE(store.WriteSegment(1, 0, blob, 10).ok());
  Tick io = 0;
  StatusOr<std::string> read = store.ReadSegment(store.segments()[0], &io);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, blob);
  EXPECT_EQ(io, 5);  // ceil(1000 / 200)
}

TEST(SpillStoreTest, MultipleGenerationsOfSamePartition) {
  SpillStore store = MakeStore();
  ASSERT_TRUE(store.WriteSegment(5, 100, "gen0", 1).ok());
  ASSERT_TRUE(store.WriteSegment(5, 200, "gen1!", 2).ok());
  ASSERT_TRUE(store.WriteSegment(9, 300, "other", 3).ok());
  EXPECT_EQ(store.segment_count(), 3);
  EXPECT_EQ(store.segments()[0].segment_id, 0);
  EXPECT_EQ(store.segments()[1].segment_id, 1);
  EXPECT_EQ(store.segments()[1].spill_time, 200);
  EXPECT_EQ(store.ReadSegment(store.segments()[0]).value(), "gen0");
  EXPECT_EQ(store.ReadSegment(store.segments()[1]).value(), "gen1!");
  EXPECT_EQ(store.total_spilled_bytes(), 14);
}

TEST(SpillStoreTest, IoCostRoundsUp) {
  SpillStore store = MakeStore(/*write_bw=*/100);
  EXPECT_EQ(store.WriteSegment(0, 0, std::string(1, 'x'), 1).value(), 1);
  EXPECT_EQ(store.WriteSegment(0, 0, std::string(100, 'x'), 1).value(), 1);
  EXPECT_EQ(store.WriteSegment(0, 0, std::string(101, 'x'), 1).value(), 2);
}

}  // namespace
}  // namespace dcape
