#include "storage/spill_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "storage/disk_backend.h"
#include "storage/io_executor.h"

namespace dcape {
namespace {

SpillStore MakeStore(int64_t write_bw = 100, int64_t read_bw = 200) {
  SpillStore::Config config;
  config.write_bytes_per_tick = write_bw;
  config.read_bytes_per_tick = read_bw;
  return SpillStore(/*engine=*/3, config,
                    std::make_unique<MemoryDiskBackend>());
}

TEST(SpillStoreTest, WriteSegmentRecordsMetadata) {
  SpillStore store = MakeStore();
  std::string blob(250, 'a');
  StatusOr<Tick> io = store.WriteSegment(7, /*now=*/1000, blob, 42);
  ASSERT_TRUE(io.ok());
  EXPECT_EQ(*io, 3);  // ceil(250 / 100)

  ASSERT_EQ(store.segments().size(), 1u);
  const SpillSegmentMeta& meta = store.segments()[0];
  EXPECT_EQ(meta.engine, 3);
  EXPECT_EQ(meta.partition, 7);
  EXPECT_EQ(meta.segment_id, 0);
  EXPECT_EQ(meta.spill_time, 1000);
  EXPECT_EQ(meta.bytes, 250);
  EXPECT_EQ(meta.tuple_count, 42);
  EXPECT_EQ(store.total_spilled_bytes(), 250);
}

TEST(SpillStoreTest, ReadSegmentRoundTripWithCost) {
  SpillStore store = MakeStore();
  std::string blob(1000, 'b');
  ASSERT_TRUE(store.WriteSegment(1, 0, blob, 10).ok());
  Tick io = 0;
  StatusOr<std::string> read = store.ReadSegment(store.segments()[0], &io);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, blob);
  EXPECT_EQ(io, 5);  // ceil(1000 / 200)
}

TEST(SpillStoreTest, MultipleGenerationsOfSamePartition) {
  SpillStore store = MakeStore();
  ASSERT_TRUE(store.WriteSegment(5, 100, "gen0", 1).ok());
  ASSERT_TRUE(store.WriteSegment(5, 200, "gen1!", 2).ok());
  ASSERT_TRUE(store.WriteSegment(9, 300, "other", 3).ok());
  EXPECT_EQ(store.segment_count(), 3);
  EXPECT_EQ(store.segments()[0].segment_id, 0);
  EXPECT_EQ(store.segments()[1].segment_id, 1);
  EXPECT_EQ(store.segments()[1].spill_time, 200);
  EXPECT_EQ(store.ReadSegment(store.segments()[0]).value(), "gen0");
  EXPECT_EQ(store.ReadSegment(store.segments()[1]).value(), "gen1!");
  EXPECT_EQ(store.total_spilled_bytes(), 14);
}

TEST(SpillStoreTest, IoCostRoundsUp) {
  SpillStore store = MakeStore(/*write_bw=*/100);
  EXPECT_EQ(store.WriteSegment(0, 0, std::string(1, 'x'), 1).value(), 1);
  EXPECT_EQ(store.WriteSegment(0, 0, std::string(100, 'x'), 1).value(), 1);
  EXPECT_EQ(store.WriteSegment(0, 0, std::string(101, 'x'), 1).value(), 2);
}

TEST(SpillStoreTest, RemoveSegmentByIdAndAccounting) {
  SpillStore store = MakeStore();
  ASSERT_TRUE(store.WriteSegment(1, 0, "aaaa", 1).ok());
  ASSERT_TRUE(store.WriteSegment(2, 0, "bbbbbb", 2).ok());
  ASSERT_TRUE(store.WriteSegment(3, 0, "cc", 3).ok());
  EXPECT_EQ(store.segments_written(), 3);
  EXPECT_EQ(store.resident_bytes(), 12);

  // Remove the middle segment; lookup is by id, not position.
  ASSERT_TRUE(store.RemoveSegment(1).ok());
  EXPECT_EQ(store.segment_count(), 2);
  EXPECT_EQ(store.segments()[0].segment_id, 0);
  EXPECT_EQ(store.segments()[1].segment_id, 2);
  EXPECT_EQ(store.resident_bytes(), 6);
  // Cumulative counters never decrease.
  EXPECT_EQ(store.segments_written(), 3);
  EXPECT_EQ(store.total_spilled_bytes(), 12);

  EXPECT_EQ(store.RemoveSegment(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.RemoveSegment(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.RemoveSegment(0).ok());
  ASSERT_TRUE(store.RemoveSegment(2).ok());
  EXPECT_EQ(store.segment_count(), 0);
  EXPECT_EQ(store.resident_bytes(), 0);
}

TEST(SpillStoreTest, RawBytesCounterTracksPreEncodingSize) {
  SpillStore store = MakeStore();
  ASSERT_TRUE(store.WriteSegment(1, 0, std::string(60, 'e'), 4,
                                 /*evicted=*/false, /*raw_bytes=*/100)
                  .ok());
  ASSERT_TRUE(store.WriteSegment(1, 0, std::string(40, 'e'), 4).ok());
  EXPECT_EQ(store.total_spilled_bytes(), 100);
  // Defaults to the blob size when the caller has no raw figure.
  EXPECT_EQ(store.total_raw_bytes(), 140);
  EXPECT_EQ(store.segments()[0].raw_bytes, 100);
  EXPECT_EQ(store.segments()[1].raw_bytes, 40);
}

TEST(SpillStoreTest, AsyncWritesAreReadableAfterBarrier) {
  IoExecutor io;
  SpillStore::Config config;
  config.write_bytes_per_tick = 100;
  config.read_bytes_per_tick = 200;
  SpillStore store(/*engine=*/0, config,
                   std::make_unique<MemoryDiskBackend>(), &io);
  const std::string blob(250, 'z');
  // Virtual cost is identical to the synchronous path.
  EXPECT_EQ(store.WriteSegment(7, 10, blob, 5).value(), 3);
  ASSERT_EQ(store.segments().size(), 1u);
  // ReadSegment barriers on the queued write before touching the backend.
  EXPECT_EQ(store.ReadSegment(store.segments()[0]).value(), blob);
}

TEST(SpillStoreTest, AsyncWriteSnapshotsTheBlob) {
  IoExecutor io;
  SpillStore store(/*engine=*/0, SpillStore::Config{},
                   std::make_unique<MemoryDiskBackend>(), &io);
  std::string blob = "original-contents";
  ASSERT_TRUE(store.WriteSegment(1, 0, blob, 1).ok());
  // Caller reuses its buffer immediately — the queued write must hold a
  // private copy.
  blob.assign(blob.size(), '!');
  EXPECT_EQ(store.ReadSegment(store.segments()[0]).value(),
            "original-contents");
}

TEST(SpillStoreTest, ManyAsyncWritesAllLand) {
  IoExecutor io;
  SpillStore store(/*engine=*/2, SpillStore::Config{},
                   std::make_unique<MemoryDiskBackend>(), &io);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        store.WriteSegment(i % 7, i, std::string(static_cast<size_t>(i + 1),
                                                 static_cast<char>('a' + i % 26)),
                           1)
            .ok());
  }
  EXPECT_EQ(store.segments_written(), 200);
  for (const SpillSegmentMeta& meta : store.segments()) {
    StatusOr<std::string> blob = store.ReadSegment(meta);
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(static_cast<int64_t>(blob->size()), meta.bytes);
  }
  EXPECT_GE(io.queue_high_water(), 1);
}

TEST(SpillStoreTest, AsyncRemoveBarriersBeforeBackendRemove) {
  IoExecutor io;
  SpillStore store(/*engine=*/0, SpillStore::Config{},
                   std::make_unique<MemoryDiskBackend>(), &io);
  ASSERT_TRUE(store.WriteSegment(1, 0, "abc", 1).ok());
  // Without the barrier this could race the queued write and NotFound.
  EXPECT_TRUE(store.RemoveSegment(0).ok());
  EXPECT_EQ(store.segment_count(), 0);
}

TEST(IoExecutorTest, DrainIsABarrierAndLatchesFirstError) {
  IoExecutor io;
  int done = 0;
  io.Submit([&done] {
    done += 1;
    return Status::OK();
  });
  io.Submit([] { return Status::Internal("boom-1"); });
  io.Submit([] { return Status::Internal("boom-2"); });
  io.Submit([&done] {
    done += 1;
    return Status::OK();
  });
  Status s = io.Drain();
  EXPECT_EQ(done, 2);  // jobs after a failure still run
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "boom-1");
  EXPECT_EQ(io.status().message(), "boom-1");
}

// A backend whose writes always fail with a recognizable message.
class FailingBackend : public DiskBackend {
 public:
  explicit FailingBackend(std::string error = "disk full")
      : error_(std::move(error)) {}
  Status Write(const std::string&, std::string_view) override {
    return Status::Internal(error_);
  }
  StatusOr<std::string> Read(const std::string& name) override {
    return Status::NotFound(name);
  }
  Status Remove(const std::string& name) override {
    return Status::NotFound(name);
  }
  std::vector<std::string> List() const override { return {}; }

 private:
  std::string error_;
};

TEST(SpillStoreTest, AsyncWriteErrorSurfacesOnNextOperation) {
  IoExecutor io;
  SpillStore store(/*engine=*/0, SpillStore::Config{},
                   std::make_unique<FailingBackend>(), &io);
  ASSERT_TRUE(store.WriteSegment(1, 0, "abc", 1).ok());  // queued
  ASSERT_TRUE(io.Drain().code() == StatusCode::kInternal);
  // The latched failure surfaces on the next write, carrying the
  // backend's original error text, not a generic drain error.
  Status next = store.WriteSegment(1, 1, "def", 1).status();
  EXPECT_EQ(next.code(), StatusCode::kInternal);
  EXPECT_EQ(next.message(), "disk full");
}

TEST(SpillStoreTest, AsyncWriteErrorIsSticky) {
  IoExecutor io;
  SpillStore store(/*engine=*/0, SpillStore::Config{},
                   std::make_unique<FailingBackend>(), &io);
  ASSERT_TRUE(store.WriteSegment(1, 0, "abc", 1).ok());
  (void)io.Drain();
  // Every later operation keeps failing with the first error.
  EXPECT_EQ(store.WriteSegment(1, 1, "def", 1).status().message(),
            "disk full");
  EXPECT_EQ(store.ReadSegment(store.segments()[0]).status().message(),
            "disk full");
  EXPECT_EQ(store.RemoveSegment(0).message(), "disk full");
}

TEST(SpillStoreTest, SharedExecutorErrorStaysWithItsOwnStore) {
  // Two stores share one executor. A failed write of store A must not
  // poison store B: the executor-global first error is not per-store.
  IoExecutor io;
  SpillStore failing(/*engine=*/0, SpillStore::Config{},
                     std::make_unique<FailingBackend>("engine 0 disk died"),
                     &io);
  SpillStore healthy(/*engine=*/1, SpillStore::Config{},
                     std::make_unique<MemoryDiskBackend>(), &io);
  ASSERT_TRUE(failing.WriteSegment(1, 0, "abc", 1).ok());  // queued, will fail
  ASSERT_TRUE(healthy.WriteSegment(2, 0, "xyz", 1).ok());
  ASSERT_EQ(io.Drain().code(), StatusCode::kInternal);

  // The healthy store keeps working across all operations...
  EXPECT_EQ(healthy.ReadSegment(healthy.segments()[0]).value(), "xyz");
  EXPECT_TRUE(healthy.WriteSegment(2, 1, "more", 1).ok());
  EXPECT_TRUE(healthy.RemoveSegment(0).ok());
  // ...while the failing store reports its own error, by original text.
  EXPECT_EQ(failing.WriteSegment(1, 1, "def", 1).status().message(),
            "engine 0 disk died");
}

}  // namespace
}  // namespace dcape
