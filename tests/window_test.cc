#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "state/group_merge.h"
#include "state/partition_group.h"
#include "state/state_manager.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key, Tick timestamp) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.timestamp = timestamp;
  t.payload = "pp";
  return t;
}

TEST(WindowProbeTest, FiltersCombinationsBeyondTheWindow) {
  PartitionGroup group(0, 2);
  group.ProbeAndInsert(MakeTuple(0, 1, 5, /*ts=*/0), nullptr, nullptr,
                       /*window=*/100);
  group.ProbeAndInsert(MakeTuple(0, 2, 5, /*ts=*/150), nullptr, nullptr, 100);
  // Arriving at t=200: joins the ts=150 tuple (span 50) but not ts=0.
  std::vector<JoinResult> results;
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(1, 3, 5, 200), &results, nullptr,
                                 100),
            1);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].member_seqs, (std::vector<int64_t>{2, 3}));
}

TEST(WindowProbeTest, ThreeWaySpanUsesMinAndMax) {
  PartitionGroup group(0, 3);
  group.ProbeAndInsert(MakeTuple(0, 1, 5, 0), nullptr, nullptr, 100);
  group.ProbeAndInsert(MakeTuple(1, 2, 5, 60), nullptr, nullptr, 100);
  // Arriving at 110: span(0, 60, 110) = 110 > 100 → no result; but with
  // window 120 it qualifies.
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(2, 3, 5, 110), nullptr, nullptr,
                                 100),
            0);
  PartitionGroup group2(0, 3);
  group2.ProbeAndInsert(MakeTuple(0, 1, 5, 0), nullptr, nullptr, 120);
  group2.ProbeAndInsert(MakeTuple(1, 2, 5, 60), nullptr, nullptr, 120);
  EXPECT_EQ(group2.ProbeAndInsert(MakeTuple(2, 3, 5, 110), nullptr, nullptr,
                                  120),
            1);
}

TEST(WindowProbeTest, ZeroWindowMeansUnbounded) {
  PartitionGroup group(0, 2);
  group.ProbeAndInsert(MakeTuple(0, 1, 5, 0), nullptr, nullptr, 0);
  EXPECT_EQ(group.ProbeAndInsert(MakeTuple(1, 2, 5, 1000000), nullptr,
                                 nullptr, 0),
            1);
}

TEST(EvictBeforeTest, MovesExpiredTuplesAndAccounting) {
  PartitionGroup group(3, 2);
  group.InsertOnly(MakeTuple(0, 1, 5, 10));
  group.InsertOnly(MakeTuple(0, 2, 5, 90));
  group.InsertOnly(MakeTuple(1, 3, 6, 20));
  const int64_t bytes_before = group.bytes();

  PartitionGroup evicted(3, 2);
  EXPECT_EQ(group.EvictBefore(/*cutoff=*/50, &evicted), 2);
  EXPECT_EQ(group.tuple_count(), 1);
  EXPECT_EQ(evicted.tuple_count(), 2);
  EXPECT_EQ(group.bytes() + evicted.bytes(), bytes_before);
  // The surviving tuple is the ts=90 one.
  ASSERT_EQ(group.TableForStream(0).size(), 1u);
  EXPECT_EQ(group.TableForStream(0).at(5)[0].seq, 2);
  // Re-running evicts nothing.
  PartitionGroup none(3, 2);
  EXPECT_EQ(group.EvictBefore(50, &none), 0);
}

TEST(StateManagerEvictTest, SerializesEvictedGroupsAndDropsEmpties) {
  StateManager state(2, std::nullopt, /*window=*/100);
  state.ProcessTuple(0, MakeTuple(0, 1, 5, 10), nullptr);
  state.ProcessTuple(1, MakeTuple(0, 2, 1 << 20, 10), nullptr);
  state.ProcessTuple(1, MakeTuple(1, 3, 1 << 20, 500), nullptr);
  const int64_t tuples_before = state.total_tuples();

  auto evicted = state.EvictExpired(/*cutoff=*/100);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(state.total_tuples(), tuples_before - 2);
  // Partition 0 became empty and was dropped entirely.
  EXPECT_EQ(state.FindGroup(0), nullptr);
  EXPECT_NE(state.FindGroup(1), nullptr);
  // Blobs decode back to the evicted tuples.
  for (const auto& group : evicted) {
    StatusOr<PartitionGroup> decoded = PartitionGroup::Deserialize(group.blob);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->tuple_count(), 1);
  }
}

TEST(WindowCrossJoinTest, RespectsWindow) {
  PartitionGroup older(0, 2);
  older.InsertOnly(MakeTuple(0, 1, 5, 0));
  PartitionGroup newer(0, 2);
  newer.InsertOnly(MakeTuple(1, 2, 5, 80));
  newer.InsertOnly(MakeTuple(1, 3, 5, 300));
  EXPECT_EQ(CrossJoinGenerations(older, newer, nullptr, nullptr,
                                 /*window=*/100),
            1);
  EXPECT_EQ(CrossJoinGenerations(older, newer, nullptr, nullptr, 0), 2);
}

/// The paper's claim: the adaptation techniques carry over to infinite
/// streams with finite windows. All-memory windowed runs define the
/// reference; spill + eviction + cleanup must reproduce it exactly.
ClusterConfig WindowedConfig() {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = MinutesToTicks(2);
  config.join_window_ticks = SecondsToTicks(20);
  return config;
}

TEST(WindowedClusterTest, AllMemoryWindowProducesFewerResults) {
  ClusterConfig windowed = WindowedConfig();
  windowed.strategy = AdaptationStrategy::kNoAdaptation;
  ClusterConfig unbounded = windowed;
  unbounded.join_window_ticks = 0;

  RunResult windowed_result = Cluster(windowed).Run();
  RunResult unbounded_result = Cluster(unbounded).Run();
  EXPECT_GT(windowed_result.runtime_results, 0);
  EXPECT_LT(windowed_result.runtime_results,
            unbounded_result.runtime_results);
}

TEST(WindowedClusterTest, EvictionBoundsStateWithoutSpilling) {
  ClusterConfig config = WindowedConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  int64_t evicted = 0;
  for (const auto& c : result.engines) evicted += c.evicted_tuples;
  EXPECT_GT(evicted, 0);
  // With a 20 s window plus one 10 s eviction period of lag, resident
  // state stays around ~30 s of input (~400 KiB/engine at this rate) —
  // a fraction of the 2-minute run's total (~1.5 MiB/engine).
  double peak = 0;
  for (const TimeSeries& s : result.engine_memory) {
    peak = std::max(peak, s.Max());
  }
  EXPECT_LT(peak, 512.0 * kKiB)
      << "window eviction should keep state around one window of input";
  // And the final state is far below the unbounded accumulation.
  double final_total = 0;
  for (const TimeSeries& s : result.engine_memory) {
    final_total += s.Last();
  }
  EXPECT_LT(final_total, 1024.0 * kKiB);
}

TEST(WindowedClusterTest, SpillPlusCleanupMatchesWindowedReference) {
  // A one-shot load shift: engine 0's partitions are hot for the first
  // minute (their window-resident state exceeds the threshold → spills),
  // then go cold — the residual memory tuples of the spilled partitions
  // expire in place, forcing eviction generations onto disk.
  ClusterConfig config = WindowedConfig();
  config.placement_fractions = {0.75, 0.25};
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.one_shot = true;
  config.workload.fluctuation.phase_ticks = MinutesToTicks(1);
  config.workload.fluctuation.hot_multiplier = 10.0;
  std::vector<JoinResult> reference = testing::ReferenceResults(config);
  ASSERT_FALSE(reference.empty());

  config.strategy = AdaptationStrategy::kSpillOnly;
  config.spill.memory_threshold_bytes = 384 * kKiB;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_GT(result.spill_events, 0);
  int64_t eviction_segments = 0;
  for (const auto& c : result.engines) {
    eviction_segments += c.eviction_segments;
  }
  EXPECT_GT(eviction_segments, 0)
      << "spilled partitions must preserve evicted tuples for cleanup";

  auto all = ToMultiset(AllResults(result));
  for (const auto& [key, count] : all) {
    ASSERT_EQ(count, 1) << "duplicate windowed result " << key;
  }
  EXPECT_EQ(all, ToMultiset(reference));
}

TEST(WindowedClusterTest, LazyDiskMatchesWindowedReference) {
  ClusterConfig config = WindowedConfig();
  config.placement_fractions = {0.75, 0.25};
  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  config.strategy = AdaptationStrategy::kLazyDisk;
  config.spill.memory_threshold_bytes = 448 * kKiB;
  // Restore is requested but must stay inert under window semantics
  // (it would break eviction-generation bookkeeping; see MaybeRestore).
  config.restore.enabled = true;
  config.restore.low_watermark = 0.9;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  int64_t restored = 0;
  for (const auto& c : result.engines) restored += c.restored_segments;
  EXPECT_EQ(restored, 0) << "restore must be inert in windowed mode";
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

}  // namespace
}  // namespace dcape
