#include "state/state_manager.h"

#include <gtest/gtest.h>

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.payload = "xyz";
  return t;
}

TEST(StateManagerTest, CreatesGroupsOnDemand) {
  StateManager state(2);
  EXPECT_EQ(state.group_count(), 0);
  state.ProcessTuple(3, MakeTuple(0, 1, 100), nullptr);
  state.ProcessTuple(5, MakeTuple(0, 2, 200), nullptr);
  EXPECT_EQ(state.group_count(), 2);
  EXPECT_NE(state.FindGroup(3), nullptr);
  EXPECT_NE(state.FindGroup(5), nullptr);
  EXPECT_EQ(state.FindGroup(4), nullptr);
  EXPECT_EQ(state.PartitionIds(), (std::vector<PartitionId>{3, 5}));
}

TEST(StateManagerTest, TracksTotals) {
  StateManager state(2);
  std::vector<JoinResult> results;
  state.ProcessTuple(0, MakeTuple(0, 1, 7), &results);
  state.ProcessTuple(0, MakeTuple(1, 1, 7), &results);
  EXPECT_EQ(state.total_tuples(), 2);
  EXPECT_EQ(state.total_outputs(), 1);
  EXPECT_GT(state.total_bytes(), 0);
  EXPECT_EQ(state.total_bytes(), state.FindGroup(0)->bytes());
}

TEST(StateManagerTest, ExtractRemovesAndSerializes) {
  StateManager state(2);
  state.ProcessTuple(1, MakeTuple(0, 1, 10), nullptr);
  state.ProcessTuple(2, MakeTuple(0, 2, 20), nullptr);
  const int64_t bytes_before = state.total_bytes();

  auto extracted = state.ExtractGroups({1});
  ASSERT_EQ(extracted.size(), 1u);
  EXPECT_EQ(extracted[0].partition, 1);
  EXPECT_EQ(extracted[0].tuple_count, 1);
  EXPECT_FALSE(extracted[0].blob.empty());
  EXPECT_EQ(state.group_count(), 1);
  EXPECT_LT(state.total_bytes(), bytes_before);
  EXPECT_EQ(state.FindGroup(1), nullptr);
}

TEST(StateManagerTest, ExtractUnknownPartitionIsSkipped) {
  StateManager state(2);
  state.ProcessTuple(1, MakeTuple(0, 1, 10), nullptr);
  auto extracted = state.ExtractGroups({99, 1});
  EXPECT_EQ(extracted.size(), 1u);
}

TEST(StateManagerTest, InstallRestoresExtractedGroup) {
  StateManager source(2);
  source.ProcessTuple(4, MakeTuple(0, 1, 40), nullptr);
  source.ProcessTuple(4, MakeTuple(1, 2, 40), nullptr);
  auto extracted = source.ExtractGroups({4});
  ASSERT_EQ(extracted.size(), 1u);

  StateManager target(2);
  ASSERT_TRUE(target.InstallGroup(extracted[0].blob).ok());
  EXPECT_EQ(target.group_count(), 1);
  EXPECT_EQ(target.total_tuples(), 2);
  EXPECT_EQ(target.total_bytes(), extracted[0].bytes);

  // The installed state joins with new arrivals.
  std::vector<JoinResult> results;
  target.ProcessTuple(4, MakeTuple(0, 3, 40), &results);
  EXPECT_EQ(results.size(), 1u);
}

TEST(StateManagerTest, InstallIntoExistingGroupMerges) {
  StateManager source(2);
  source.ProcessTuple(4, MakeTuple(0, 1, 40), nullptr);
  auto extracted = source.ExtractGroups({4});

  StateManager target(2);
  target.ProcessTuple(4, MakeTuple(1, 9, 40), nullptr);
  ASSERT_TRUE(target.InstallGroup(extracted[0].blob).ok());
  EXPECT_EQ(target.group_count(), 1);
  EXPECT_EQ(target.total_tuples(), 2);
  std::vector<JoinResult> results;
  target.ProcessTuple(4, MakeTuple(0, 2, 40), &results);
  EXPECT_EQ(results.size(), 1u);  // joins the pre-existing stream-1 tuple
}

TEST(StateManagerTest, InstallRejectsStreamMismatch) {
  StateManager source(3);
  source.ProcessTuple(4, MakeTuple(0, 1, 40), nullptr);
  auto extracted = source.ExtractGroups({4});
  StateManager target(2);
  EXPECT_EQ(target.InstallGroup(extracted[0].blob).code(),
            StatusCode::kInvalidArgument);
}

TEST(StateManagerTest, LocksExcludeGroupsFromSnapshots) {
  StateManager state(2);
  state.ProcessTuple(1, MakeTuple(0, 1, 10), nullptr);
  state.ProcessTuple(2, MakeTuple(0, 2, 20), nullptr);
  state.LockGroups({1});
  EXPECT_TRUE(state.IsLocked(1));
  EXPECT_FALSE(state.IsLocked(2));
  EXPECT_EQ(state.SnapshotStats(/*exclude_locked=*/true).size(), 1u);
  EXPECT_EQ(state.SnapshotStats(/*exclude_locked=*/false).size(), 2u);
  state.UnlockGroups({1});
  EXPECT_EQ(state.SnapshotStats(/*exclude_locked=*/true).size(), 2u);
}

TEST(StateManagerTest, TotalsConservedAcrossExtractInstall) {
  StateManager a(2);
  for (int i = 0; i < 20; ++i) {
    a.ProcessTuple(i % 4, MakeTuple(i % 2, i, i % 4 * 100 + i % 3), nullptr);
  }
  const int64_t total_bytes = a.total_bytes();
  const int64_t total_tuples = a.total_tuples();

  StateManager b(2);
  auto extracted = a.ExtractGroups(a.PartitionIds());
  for (const auto& group : extracted) {
    ASSERT_TRUE(b.InstallGroup(group.blob).ok());
  }
  EXPECT_EQ(a.total_bytes(), 0);
  EXPECT_EQ(a.total_tuples(), 0);
  EXPECT_EQ(b.total_bytes(), total_bytes);
  EXPECT_EQ(b.total_tuples(), total_tuples);
}

}  // namespace
}  // namespace dcape
