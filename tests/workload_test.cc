#include "stream/workload.h"

#include <gtest/gtest.h>

#include <map>

namespace dcape {
namespace {

TEST(AssignClassesByFractionTest, ThirdsMixAcrossIdSpace) {
  std::vector<int> classes =
      AssignClassesByFraction(12, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  ASSERT_EQ(classes.size(), 12u);
  std::map<int, int> counts;
  for (int c : classes) counts[c] += 1;
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
  EXPECT_EQ(counts[2], 4);
  // Interleaved: every contiguous run of 3 partitions has all classes.
  for (size_t i = 0; i + 2 < classes.size(); i += 3) {
    std::map<int, int> window;
    for (size_t j = i; j < i + 3; ++j) window[classes[j]] += 1;
    EXPECT_EQ(window.size(), 3u) << "at offset " << i;
  }
}

TEST(AssignClassesByFractionTest, RoundingStillCoversAll) {
  std::vector<int> classes = AssignClassesByFraction(10, {0.5, 0.5});
  std::map<int, int> counts;
  for (int c : classes) counts[c] += 1;
  EXPECT_EQ(counts[0] + counts[1], 10);
  EXPECT_EQ(counts[0], 5);
}

TEST(AssignClassesByFractionTest, SingleClass) {
  std::vector<int> classes = AssignClassesByFraction(5, {1.0});
  for (int c : classes) EXPECT_EQ(c, 0);
}

TEST(AssignClassesByOwnerTest, MapsThroughPlacement) {
  std::vector<EngineId> placement = {0, 0, 1, 1, 2, 2};
  std::vector<int> classes = AssignClassesByOwner(placement, {7, 8, 9});
  EXPECT_EQ(classes, (std::vector<int>{7, 7, 8, 8, 9, 9}));
}

TEST(KeysPerPartitionTest, MatchesFormula) {
  WorkloadConfig config;
  config.num_partitions = 10;
  config.classes = {PartitionClass{/*join_rate=*/3.0,
                                   /*tuple_range=*/30000}};
  // 30000 / (3 * 10) = 1000 keys.
  EXPECT_EQ(KeysPerPartition(config, 0), 1000);
}

TEST(KeysPerPartitionTest, PerPartitionClasses) {
  WorkloadConfig config;
  config.num_partitions = 4;
  config.classes = {PartitionClass{4.0, 1600}, PartitionClass{1.0, 1600}};
  config.partition_class = {0, 1, 0, 1};
  EXPECT_EQ(KeysPerPartition(config, 0), 100);  // 1600/(4*4)
  EXPECT_EQ(KeysPerPartition(config, 1), 400);  // 1600/(1*4)
}

TEST(KeysPerPartitionTest, NeverBelowOne) {
  WorkloadConfig config;
  config.num_partitions = 100;
  config.classes = {PartitionClass{/*join_rate=*/1000.0,
                                   /*tuple_range=*/10}};
  EXPECT_EQ(KeysPerPartition(config, 42), 1);
}

}  // namespace
}  // namespace dcape
