#include <gtest/gtest.h>

#include <string>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

/// The tentpole guarantee of the parallel stepping path: the worker
/// thread count is an execution detail, never a semantic one. A run with
/// N pool workers must be bit-identical to the serial run — same results,
/// same counters, same network traffic, same sampled series — because
/// every send funnels through the deterministic (node id, send order)
/// merge at each tick barrier.

void ExpectIdenticalRuns(const RunResult& a, const RunResult& b,
                         const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.runtime_results, b.runtime_results);
  EXPECT_EQ(a.cleanup.result_count, b.cleanup.result_count);
  EXPECT_EQ(a.tuples_generated, b.tuples_generated);
  EXPECT_EQ(a.runtime_end, b.runtime_end);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.spilled_bytes, b.spilled_bytes);
  EXPECT_EQ(a.coordinator.relocations_completed,
            b.coordinator.relocations_completed);
  EXPECT_EQ(a.coordinator.relocations_started,
            b.coordinator.relocations_started);
  EXPECT_EQ(a.coordinator.bytes_relocated, b.coordinator.bytes_relocated);
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
  EXPECT_EQ(a.network.bytes_sent, b.network.bytes_sent);
  EXPECT_EQ(a.network.state_transfer_bytes, b.network.state_transfer_bytes);
  ASSERT_EQ(a.engines.size(), b.engines.size());
  for (size_t e = 0; e < a.engines.size(); ++e) {
    EXPECT_EQ(a.engines[e].tuples_processed, b.engines[e].tuples_processed);
    EXPECT_EQ(a.engines[e].results_produced, b.engines[e].results_produced);
    EXPECT_EQ(a.engines[e].spill_events, b.engines[e].spill_events);
    EXPECT_EQ(a.engines[e].relocations_out, b.engines[e].relocations_out);
    EXPECT_EQ(a.engines[e].relocations_in, b.engines[e].relocations_in);
  }
  ASSERT_EQ(a.throughput.size(), b.throughput.size());
  for (size_t i = 0; i < a.throughput.size(); ++i) {
    EXPECT_EQ(a.throughput.samples()[i], b.throughput.samples()[i]);
  }
  ASSERT_EQ(a.engine_memory.size(), b.engine_memory.size());
  for (size_t e = 0; e < a.engine_memory.size(); ++e) {
    ASSERT_EQ(a.engine_memory[e].size(), b.engine_memory[e].size());
    for (size_t i = 0; i < a.engine_memory[e].size(); ++i) {
      EXPECT_EQ(a.engine_memory[e].samples()[i],
                b.engine_memory[e].samples()[i]);
    }
  }
  EXPECT_EQ(ToMultiset(AllResults(a)), ToMultiset(AllResults(b)));
}

TEST(ParallelEquivalenceTest, SpillRunMatchesSerial) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.strategy = AdaptationStrategy::kSpillOnly;

  config.num_threads = 1;
  RunResult serial = Cluster(config).Run();
  EXPECT_GT(serial.spill_events, 0);

  for (int threads : {2, 4}) {
    config.num_threads = threads;
    RunResult parallel = Cluster(config).Run();
    ExpectIdenticalRuns(serial, parallel,
                        "threads=" + std::to_string(threads));
  }
}

TEST(ParallelEquivalenceTest, RelocationRunMatchesSerial) {
  // Relocations exercise the full control plane (pause, drain markers,
  // state transfer, routing updates) across engines and split hosts.
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(60);
  config.num_engines = 3;
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.placement_fractions = {0.6, 0.2, 0.2};

  config.num_threads = 1;
  RunResult serial = Cluster(config).Run();

  config.num_threads = 4;
  RunResult parallel = Cluster(config).Run();
  ExpectIdenticalRuns(serial, parallel, "lazy-disk threads=4");
}

TEST(ParallelEquivalenceTest, MultipleSplitHostsMatchSerial) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.num_split_hosts = 3;  // one host per stream
  config.strategy = AdaptationStrategy::kSpillOnly;

  config.num_threads = 1;
  RunResult serial = Cluster(config).Run();

  config.num_threads = 3;
  RunResult parallel = Cluster(config).Run();
  ExpectIdenticalRuns(serial, parallel, "split-hosts=3 threads=3");
}

TEST(ParallelEquivalenceTest, AsyncSpillIoMatchesSynchronous) {
  // Background disk I/O moves the physical write off the caller thread
  // but charges the identical virtual io cost, so a run with async I/O
  // is byte-identical to the synchronous run — including with real
  // files and multiple worker threads in the mix.
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.strategy = AdaptationStrategy::kSpillOnly;

  config.num_threads = 1;
  config.async_spill_io = false;
  RunResult sync_run = Cluster(config).Run();
  EXPECT_GT(sync_run.spill_events, 0);

  config.async_spill_io = true;
  RunResult async_run = Cluster(config).Run();
  ExpectIdenticalRuns(sync_run, async_run, "async-io threads=1");

  config.num_threads = 4;
  RunResult async_parallel = Cluster(config).Run();
  ExpectIdenticalRuns(sync_run, async_parallel, "async-io threads=4");

  config.use_file_backend = true;
  RunResult async_file = Cluster(config).Run();
  ExpectIdenticalRuns(sync_run, async_file, "async-io file-backend threads=4");
}

TEST(ParallelEquivalenceTest, SegmentFormatDoesNotChangeResults) {
  // v1 and v2 blobs restore identical state, so the format choice only
  // changes encoded byte counts, never results or relocation decisions.
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.num_threads = 2;

  config.segment_format = SegmentFormat::kV2;
  RunResult v2 = Cluster(config).Run();
  EXPECT_GT(v2.spill_events, 0);

  config.segment_format = SegmentFormat::kV1;
  RunResult v1 = Cluster(config).Run();

  EXPECT_EQ(v1.runtime_results, v2.runtime_results);
  EXPECT_EQ(v1.cleanup.result_count, v2.cleanup.result_count);
  EXPECT_EQ(v1.spill_events, v2.spill_events);
  EXPECT_EQ(ToMultiset(AllResults(v1)), ToMultiset(AllResults(v2)));
  // The compact format strictly shrinks what lands on disk.
  EXPECT_LT(v2.storage.encoded_bytes, v1.storage.encoded_bytes);
  EXPECT_EQ(v1.storage.raw_bytes, v2.storage.raw_bytes);
}

TEST(ParallelEquivalenceTest, OversizedPoolMatchesSerial) {
  // More workers than nodes: the extra lanes idle, results unchanged.
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(20);
  config.strategy = AdaptationStrategy::kActiveDisk;

  config.num_threads = 1;
  RunResult serial = Cluster(config).Run();

  config.num_threads = 16;
  RunResult parallel = Cluster(config).Run();
  ExpectIdenticalRuns(serial, parallel, "threads=16");
}

}  // namespace
}  // namespace dcape
