#ifndef DCAPE_TESTS_TEST_UTIL_H_
#define DCAPE_TESTS_TEST_UTIL_H_

#include <map>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/cluster_config.h"
#include "tuple/tuple.h"

namespace dcape {
namespace testing {

/// A small, fast workload: 3-way join, 12 partitions, ~40 distinct keys
/// per partition, a couple of thousand tuples per stream in a 1-minute
/// virtual run. Small enough to collect and compare full result sets.
inline ClusterConfig SmallClusterConfig() {
  ClusterConfig config;
  config.num_engines = 2;
  config.workload.num_streams = 3;
  config.workload.num_partitions = 12;
  config.workload.inter_arrival_ticks = 10;
  config.workload.payload_bytes = 40;
  config.workload.classes = {PartitionClass{/*join_rate=*/1.0,
                                            /*tuple_range=*/5760}};
  // keys per partition = 5760 / (1.0 * 12) = 480 … too sparse for a short
  // run; shrink so each key sees a handful of matches:
  config.workload.classes[0].tuple_range = 480;  // -> 40 keys/partition
  config.workload.seed = 7;
  config.run_duration = MinutesToTicks(1);
  config.sample_period = SecondsToTicks(5);
  config.stats_period = SecondsToTicks(2);
  config.collect_results = true;
  config.run_cleanup = true;
  config.spill.memory_threshold_bytes = 96 * kKiB;
  config.spill.ss_timer_period = SecondsToTicks(1);
  config.relocation.sr_timer_period = SecondsToTicks(2);
  config.relocation.min_time_between = SecondsToTicks(5);
  config.relocation.min_relocate_bytes = 4 * kKiB;
  config.active_disk.lb_timer_period = SecondsToTicks(3);
  config.active_disk.max_forced_spill_bytes = 512 * kKiB;
  config.cleanup.collect_results = true;
  return config;
}

/// Encodes each result once; duplicates surface as count > 1.
inline std::map<std::string, int> ToMultiset(
    const std::vector<JoinResult>& results) {
  std::map<std::string, int> multiset;
  for (const JoinResult& r : results) multiset[r.EncodeKey()] += 1;
  return multiset;
}

/// All results of a finished run: runtime (sink-collected) + cleanup.
inline std::vector<JoinResult> AllResults(const RunResult& result) {
  std::vector<JoinResult> all = result.collected;
  all.insert(all.end(), result.cleanup.results.begin(),
             result.cleanup.results.end());
  return all;
}

/// Runs the reference configuration: identical workload, everything in
/// memory (no adaptation), collecting all results. Because workloads are
/// seed-deterministic, any strategy run over the same config must produce
/// exactly this result set (runtime ∪ cleanup).
inline std::vector<JoinResult> ReferenceResults(ClusterConfig config) {
  config.strategy = AdaptationStrategy::kNoAdaptation;
  config.collect_results = true;
  config.run_cleanup = true;  // must find nothing; callers may assert
  Cluster cluster(config);
  RunResult result = cluster.Run();
  return AllResults(result);
}

}  // namespace testing
}  // namespace dcape

#endif  // DCAPE_TESTS_TEST_UTIL_H_
