#include "state/group_merge.h"

#include <gtest/gtest.h>

#include <set>

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key, int64_t value = 0,
                int64_t category = 0) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.value = value;
  t.category = category;
  t.payload = "x";
  return t;
}

TEST(CrossJoinGenerationsTest, TwoWayCrossTermsOnly) {
  // older: a1 (s0), b1 (s1); newer: a2 (s0), b2 (s1) — all same key.
  // Full join = 4 combos; same-generation combos (a1,b1) and (a2,b2)
  // are excluded → exactly (a1,b2) and (a2,b1).
  PartitionGroup older(0, 2);
  older.InsertOnly(MakeTuple(0, 1, 5));
  older.InsertOnly(MakeTuple(1, 1, 5));
  PartitionGroup newer(0, 2);
  newer.InsertOnly(MakeTuple(0, 2, 5));
  newer.InsertOnly(MakeTuple(1, 2, 5));

  std::vector<JoinResult> results;
  EXPECT_EQ(CrossJoinGenerations(older, newer, nullptr, &results), 2);
  std::set<std::string> keys;
  for (const JoinResult& r : results) {
    keys.insert(r.EncodeKey());
    EXPECT_NE(r.member_seqs[0], r.member_seqs[1]);
  }
  EXPECT_EQ(keys.size(), 2u);
}

TEST(CrossJoinGenerationsTest, ThreeWayCount) {
  // One tuple per stream per generation, same key: 2^3 − 2 = 6 cross
  // combos.
  PartitionGroup older(0, 3);
  PartitionGroup newer(0, 3);
  for (StreamId s = 0; s < 3; ++s) {
    older.InsertOnly(MakeTuple(s, 1, 9));
    newer.InsertOnly(MakeTuple(s, 2, 9));
  }
  EXPECT_EQ(CrossJoinGenerations(older, newer, nullptr, nullptr), 6);
}

TEST(CrossJoinGenerationsTest, EmptySideYieldsNothing) {
  PartitionGroup older(0, 2);
  older.InsertOnly(MakeTuple(0, 1, 5));
  PartitionGroup newer(0, 2);
  // newer has no stream-1 tuple and older has no stream-1 tuple either:
  // nothing can combine.
  EXPECT_EQ(CrossJoinGenerations(older, newer, nullptr, nullptr), 0);
}

TEST(CrossJoinGenerationsTest, OneSidedStreamsStillCombine) {
  // older holds only stream-0 state, newer only stream-1 state: the only
  // combos are cross-generation by construction.
  PartitionGroup older(0, 2);
  older.InsertOnly(MakeTuple(0, 1, 5));
  older.InsertOnly(MakeTuple(0, 2, 5));
  PartitionGroup newer(0, 2);
  newer.InsertOnly(MakeTuple(1, 3, 5));
  EXPECT_EQ(CrossJoinGenerations(older, newer, nullptr, nullptr), 2);
}

TEST(CrossJoinGenerationsTest, ProjectionApplied) {
  ResultProjection projection;
  projection.group_stream = 1;
  projection.op = AggregateOp::kMin;

  PartitionGroup older(0, 2);
  older.InsertOnly(MakeTuple(0, 1, 5, /*value=*/100, /*cat=*/3));
  PartitionGroup newer(0, 2);
  newer.InsertOnly(MakeTuple(1, 2, 5, /*value=*/40, /*cat=*/8));

  std::vector<JoinResult> results;
  ASSERT_EQ(CrossJoinGenerations(older, newer, &projection, &results), 1);
  EXPECT_EQ(results[0].group_key, 8);
  EXPECT_EQ(results[0].agg_value, 40);
}

TEST(CrossJoinGenerationsTest, MatchesBruteForceOnMixedKeys) {
  // Brute-force check: total = merged-join; cross = total − per-gen.
  PartitionGroup older(0, 2);
  PartitionGroup newer(0, 2);
  int64_t seq = 0;
  for (int k = 0; k < 4; ++k) {
    for (int i = 0; i <= k; ++i) {
      older.InsertOnly(MakeTuple(i % 2, seq++, k));
      newer.InsertOnly(MakeTuple((i + 1) % 2, seq++, k));
    }
  }

  auto full_join_count = [](const PartitionGroup& g) {
    int64_t total = 0;
    for (const auto& [key, s0] : g.TableForStream(0)) {
      auto it = g.TableForStream(1).find(key);
      if (it != g.TableForStream(1).end()) {
        total += static_cast<int64_t>(s0.size() * it->second.size());
      }
    }
    return total;
  };

  PartitionGroup merged(0, 2);
  for (StreamId s = 0; s < 2; ++s) {
    for (const auto& [key, tuples] : older.TableForStream(s)) {
      for (const Tuple& t : tuples) merged.InsertOnly(t);
    }
    for (const auto& [key, tuples] : newer.TableForStream(s)) {
      for (const Tuple& t : tuples) merged.InsertOnly(t);
    }
  }
  const int64_t expected = full_join_count(merged) - full_join_count(older) -
                           full_join_count(newer);
  EXPECT_EQ(CrossJoinGenerations(older, newer, nullptr, nullptr), expected);
}

}  // namespace
}  // namespace dcape
