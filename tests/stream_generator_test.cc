#include "stream/stream_generator.h"

#include <gtest/gtest.h>

#include <map>

namespace dcape {
namespace {

WorkloadConfig BaseConfig() {
  WorkloadConfig config;
  config.num_streams = 3;
  config.num_partitions = 8;
  config.inter_arrival_ticks = 10;
  config.payload_bytes = 16;
  config.classes = {PartitionClass{1.0, 320}};  // 40 keys per partition
  config.seed = 99;
  return config;
}

TEST(StreamGeneratorTest, EmitsOnePerStreamAtInterArrival) {
  StreamGenerator gen(BaseConfig());
  EXPECT_EQ(gen.EmitForTick(0).size(), 3u);
  EXPECT_TRUE(gen.EmitForTick(1).empty());
  EXPECT_TRUE(gen.EmitForTick(9).empty());
  EXPECT_EQ(gen.EmitForTick(10).size(), 3u);
  EXPECT_EQ(gen.total_emitted(), 6);
}

TEST(StreamGeneratorTest, SequencesAreMonotonicPerStream) {
  StreamGenerator gen(BaseConfig());
  std::map<StreamId, int64_t> last;
  for (Tick t = 0; t <= 500; t += 10) {
    for (const Tuple& tuple : gen.EmitForTick(t)) {
      if (last.count(tuple.stream_id)) {
        EXPECT_EQ(tuple.seq, last[tuple.stream_id] + 1);
      } else {
        EXPECT_EQ(tuple.seq, 0);
      }
      last[tuple.stream_id] = tuple.seq;
      EXPECT_EQ(tuple.timestamp, t);
    }
  }
}

TEST(StreamGeneratorTest, KeysStayInPartitionDomains) {
  WorkloadConfig config = BaseConfig();
  StreamGenerator gen(config);
  for (Tick t = 0; t <= 5000; t += 10) {
    for (const Tuple& tuple : gen.EmitForTick(t)) {
      const PartitionId p = StreamGenerator::PartitionOfKey(tuple.join_key);
      EXPECT_GE(p, 0);
      EXPECT_LT(p, config.num_partitions);
      const int64_t index =
          tuple.join_key - static_cast<JoinKey>(p) * StreamGenerator::kKeyStride;
      EXPECT_GE(index, 0);
      EXPECT_LT(index, KeysPerPartition(config, p));
    }
  }
}

TEST(StreamGeneratorTest, DeterministicForEqualSeeds) {
  StreamGenerator a(BaseConfig());
  StreamGenerator b(BaseConfig());
  for (Tick t = 0; t <= 1000; t += 10) {
    auto ta = a.EmitForTick(t);
    auto tb = b.EmitForTick(t);
    ASSERT_EQ(ta.size(), tb.size());
    for (size_t i = 0; i < ta.size(); ++i) EXPECT_EQ(ta[i], tb[i]);
  }
}

TEST(StreamGeneratorTest, UniformPartitionsWithoutFluctuation) {
  WorkloadConfig config = BaseConfig();
  StreamGenerator gen(config);
  std::map<PartitionId, int> counts;
  for (Tick t = 0; t <= 80000; t += 10) {
    for (const Tuple& tuple : gen.EmitForTick(t)) {
      counts[StreamGenerator::PartitionOfKey(tuple.join_key)] += 1;
    }
  }
  // 8 partitions, ~24003 tuples → ~3000 each; allow generous slack.
  for (const auto& [partition, count] : counts) {
    EXPECT_NEAR(count, 3000, 450) << "partition " << partition;
  }
}

TEST(StreamGeneratorTest, FluctuationSkewsTowardsHotSet) {
  WorkloadConfig config = BaseConfig();
  config.fluctuation.enabled = true;
  config.fluctuation.phase_ticks = MinutesToTicks(5);
  config.fluctuation.hot_multiplier = 10.0;
  config.fluctuation.set_a = {0, 1, 2, 3};
  StreamGenerator gen(config);

  int64_t in_a_phase0 = 0;
  int64_t total_phase0 = 0;
  // Phase 0: set A hot.
  for (Tick t = 0; t < MinutesToTicks(5); t += 10) {
    for (const Tuple& tuple : gen.EmitForTick(t)) {
      ++total_phase0;
      if (StreamGenerator::PartitionOfKey(tuple.join_key) < 4) ++in_a_phase0;
    }
  }
  // Expected share: 10*4 / (10*4 + 4) = 10/11 ≈ 0.909.
  EXPECT_NEAR(static_cast<double>(in_a_phase0) / total_phase0, 0.909, 0.03);

  int64_t in_a_phase1 = 0;
  int64_t total_phase1 = 0;
  for (Tick t = MinutesToTicks(5); t < MinutesToTicks(10); t += 10) {
    for (const Tuple& tuple : gen.EmitForTick(t)) {
      ++total_phase1;
      if (StreamGenerator::PartitionOfKey(tuple.join_key) < 4) ++in_a_phase1;
    }
  }
  // Phase 1: set B hot; A share ≈ 4 / (4 + 40) ≈ 0.091.
  EXPECT_NEAR(static_cast<double>(in_a_phase1) / total_phase1, 0.091, 0.03);
}

TEST(StreamGeneratorTest, PayloadSizeHonored) {
  WorkloadConfig config = BaseConfig();
  config.payload_bytes = 64;
  StreamGenerator gen(config);
  for (const Tuple& t : gen.EmitForTick(0)) {
    EXPECT_EQ(t.payload.size(), 64u);
  }
}

}  // namespace
}  // namespace dcape
