#include <gtest/gtest.h>

#include <sstream>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

/// Bit-level reproducibility: identical configs produce identical runs —
/// the property that makes every figure in EXPERIMENTS.md regenerable.

TEST(DeterminismTest, IdenticalConfigsProduceIdenticalRuns) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.placement_fractions = {0.7, 0.3};

  RunResult a = Cluster(config).Run();
  RunResult b = Cluster(config).Run();

  EXPECT_EQ(a.runtime_results, b.runtime_results);
  EXPECT_EQ(a.cleanup.result_count, b.cleanup.result_count);
  EXPECT_EQ(a.tuples_generated, b.tuples_generated);
  EXPECT_EQ(a.spill_events, b.spill_events);
  EXPECT_EQ(a.coordinator.relocations_completed,
            b.coordinator.relocations_completed);
  EXPECT_EQ(a.network.messages_sent, b.network.messages_sent);
  EXPECT_EQ(a.network.bytes_sent, b.network.bytes_sent);
  EXPECT_EQ(ToMultiset(AllResults(a)), ToMultiset(AllResults(b)));
  // The sampled series match point for point.
  ASSERT_EQ(a.throughput.size(), b.throughput.size());
  for (size_t i = 0; i < a.throughput.size(); ++i) {
    EXPECT_EQ(a.throughput.samples()[i], b.throughput.samples()[i]);
  }
}

TEST(DeterminismTest, SeedChangesTheRun) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(30);
  RunResult a = Cluster(config).Run();
  config.workload.seed = config.workload.seed + 1;
  RunResult b = Cluster(config).Run();
  EXPECT_NE(a.runtime_results, b.runtime_results);
}

TEST(DeterminismTest, FileAndMemoryBackendsProduceIdenticalResults) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  config.strategy = AdaptationStrategy::kSpillOnly;

  ClusterConfig file_config = config;
  file_config.use_file_backend = true;
  file_config.file_backend_prefix = "dcape_det_test";

  RunResult memory_backed = Cluster(config).Run();
  RunResult file_backed = Cluster(file_config).Run();
  EXPECT_GT(memory_backed.spill_events, 0);
  EXPECT_EQ(ToMultiset(AllResults(memory_backed)),
            ToMultiset(AllResults(file_backed)));
}

TEST(RunResultTest, SummaryMentionsAllHeadlineNumbers) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(30);
  config.strategy = AdaptationStrategy::kSpillOnly;
  RunResult result = Cluster(config).Run();
  std::ostringstream os;
  result.PrintSummary(os);
  const std::string summary = os.str();
  EXPECT_NE(summary.find(std::to_string(result.runtime_results)),
            std::string::npos);
  EXPECT_NE(summary.find(std::to_string(result.cleanup.result_count)),
            std::string::npos);
  EXPECT_NE(summary.find("spill events"), std::string::npos);
  EXPECT_NE(summary.find("relocations"), std::string::npos);
  EXPECT_EQ(result.TotalResults(),
            result.runtime_results + result.cleanup.result_count);
}

}  // namespace
}  // namespace dcape
