#include "runtime/exec_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dcape {
namespace {

TEST(ExecPoolTest, SingleWorkerRunsInline) {
  ExecPool pool(1);
  std::vector<int> order;
  pool.ParallelFor(5, [&order](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ExecPoolTest, RunsEveryIndexExactlyOnce) {
  ExecPool pool(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&hits](int i) { hits[static_cast<size_t>(i)] += 1; });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ExecPoolTest, BarrierCompletesBeforeReturn) {
  ExecPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&sum](int i) { sum += i; });
  // Every task finished by the time ParallelFor returned.
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ExecPoolTest, ReusableAcrossManyBatches) {
  ExecPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(7, [&total](int) { total += 1; });
  }
  EXPECT_EQ(total.load(), 200 * 7);
}

TEST(ExecPoolTest, EmptyAndSingleBatchesAreFine) {
  ExecPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&calls](int) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ExecPoolTest, MoreTasksThanWorkers) {
  ExecPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(64, [&count](int) { count += 1; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ExecPoolTest, DestructionWithNoBatchesIsClean) {
  // Spawn and immediately destroy: workers must not hang in their wait.
  for (int i = 0; i < 20; ++i) {
    ExecPool pool(4);
  }
}

}  // namespace
}  // namespace dcape
