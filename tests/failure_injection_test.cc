#include <gtest/gtest.h>

#include <memory>

#include "cleanup/cleanup.h"
#include "state/partition_group.h"
#include "state/state_manager.h"
#include "storage/disk_backend.h"
#include "storage/spill_store.h"

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.payload = "payload";
  return t;
}

std::string GroupBlob(PartitionId partition, int num_streams,
                      const std::vector<Tuple>& tuples,
                      SegmentFormat format = SegmentFormat::kV2) {
  PartitionGroup group(partition, num_streams);
  for (const Tuple& t : tuples) group.InsertOnly(t);
  std::string blob;
  group.Serialize(&blob, format);
  return blob;
}

/// A backend whose reads can be poisoned after writing.
class CorruptibleBackend : public DiskBackend {
 public:
  Status Write(const std::string& name, std::string_view data) override {
    return inner_.Write(name, data);
  }
  StatusOr<std::string> Read(const std::string& name) override {
    DCAPE_ASSIGN_OR_RETURN(std::string data, inner_.Read(name));
    if (corrupt_) {
      // Truncate to force a deserialization failure downstream.
      data.resize(data.size() / 2);
    }
    return data;
  }
  Status Remove(const std::string& name) override {
    return inner_.Remove(name);
  }
  std::vector<std::string> List() const override { return inner_.List(); }

  void set_corrupt(bool corrupt) { corrupt_ = corrupt; }

 private:
  MemoryDiskBackend inner_;
  bool corrupt_ = false;
};

TEST(FailureInjectionTest, TruncatedSegmentFailsReadWithStatus) {
  auto owned = std::make_unique<CorruptibleBackend>();
  CorruptibleBackend* backend = owned.get();
  SpillStore store(0, SpillStore::Config{}, std::move(owned));
  ASSERT_TRUE(
      store.WriteSegment(0, 10, GroupBlob(0, 2, {MakeTuple(0, 1, 5)}), 1)
          .ok());

  backend->set_corrupt(true);
  // The size check catches the truncation at the store layer.
  StatusOr<std::string> read = store.ReadSegment(store.segments()[0]);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);
}

TEST(FailureInjectionTest, CleanupPropagatesReadFailure) {
  auto owned = std::make_unique<CorruptibleBackend>();
  CorruptibleBackend* backend = owned.get();
  auto store = std::make_unique<SpillStore>(0, SpillStore::Config{},
                                            std::move(owned));
  ASSERT_TRUE(
      store->WriteSegment(0, 10, GroupBlob(0, 2, {MakeTuple(0, 1, 5)}), 1)
          .ok());
  backend->set_corrupt(true);

  StateManager state(2);
  state.ProcessTuple(0, MakeTuple(1, 2, 5), nullptr);
  CleanupProcessor processor(CleanupConfig{}, 2);
  StatusOr<CleanupStats> stats = processor.Run({store.get()}, {&state});
  ASSERT_FALSE(stats.ok()) << "corrupt disk state must not be silently "
                              "treated as empty";
}

TEST(FailureInjectionTest, GarbageBlobRejectedByInstall) {
  StateManager state(2);
  EXPECT_FALSE(state.InstallGroup("complete garbage").ok());
  EXPECT_EQ(state.group_count(), 0);
  EXPECT_EQ(state.total_bytes(), 0);
}

TEST(FailureInjectionTest, TamperedGroupBlobRejected) {
  // These two tests patch fixed v1 offsets, so they pin the v1 format;
  // v2 corruption coverage lives in segment_format_test.
  std::string blob = GroupBlob(3, 2, {MakeTuple(0, 1, 5), MakeTuple(1, 2, 5)},
                               SegmentFormat::kV1);
  // Flip the stream-0 tuple count upward (header = partition i32 +
  // num_streams i32 + outputs i64 = 16 bytes): decoding must fail
  // cleanly (truncated input), not read out of bounds.
  blob[16] = 0x7F;
  StatusOr<PartitionGroup> decoded = PartitionGroup::Deserialize(blob);
  EXPECT_FALSE(decoded.ok());
}

TEST(FailureInjectionTest, MismatchedStreamSectionRejected) {
  // A stream-1 tuple serialized under the stream-0 section.
  PartitionGroup group(0, 2);
  group.InsertOnly(MakeTuple(0, 1, 5));
  std::string blob;
  group.Serialize(&blob, SegmentFormat::kV1);
  // Patch the tuple's stream id (first field after the 3 header fields +
  // stream-0 count): header = 4 + 4 + 8 + 8 = 24 bytes, stream id is an
  // i32 at offset 24.
  blob[24] = 1;
  StatusOr<PartitionGroup> decoded = PartitionGroup::Deserialize(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dcape
