#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::SmallClusterConfig;

/// Behavioural (shape) assertions matching the paper's qualitative
/// findings, on deterministic scaled-down runs.

TEST(AdaptationBehaviorTest, SpillKeepsMemoryNearThreshold) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.run_duration = MinutesToTicks(2);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.spill.memory_threshold_bytes = 64 * kKiB;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  ASSERT_GT(result.spill_events, 0);
  // Memory stays bounded: between ss_timer checks at most ~1 second of
  // input (~100 tuples * ~90 B) can accumulate above the threshold.
  for (const TimeSeries& series : result.engine_memory) {
    EXPECT_LT(series.Max(), 64.0 * kKiB + 32.0 * kKiB)
        << series.name() << " exceeded the threshold band";
  }
}

TEST(AdaptationBehaviorTest, WithoutAdaptationMemoryGrowsPastThreshold) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  config.run_duration = MinutesToTicks(2);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.spill.memory_threshold_bytes = 64 * kKiB;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  double max_memory = 0;
  for (const TimeSeries& series : result.engine_memory) {
    max_memory = std::max(max_memory, series.Max());
  }
  EXPECT_GT(max_memory, 64.0 * kKiB);
}

TEST(AdaptationBehaviorTest, HigherSpillFractionMeansFewerSpills) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.run_duration = MinutesToTicks(2);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.spill.memory_threshold_bytes = 48 * kKiB;

  config.spill.spill_fraction = 0.1;
  RunResult small_push = Cluster(config).Run();
  config.spill.spill_fraction = 0.6;
  RunResult big_push = Cluster(config).Run();

  ASSERT_GT(small_push.spill_events, 0);
  ASSERT_GT(big_push.spill_events, 0);
  EXPECT_GT(small_push.spill_events, big_push.spill_events)
      << "pushing more per adaptation must trigger fewer adaptations";
}

TEST(AdaptationBehaviorTest, RelocationBalancesSkewedPlacement) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.placement_fractions = {0.8, 0.2};
  config.run_duration = MinutesToTicks(2);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  Cluster cluster(config);
  RunResult result = cluster.Run();

  ASSERT_GT(result.coordinator.relocations_completed, 0);
  const double m0 = result.engine_memory[0].Last();
  const double m1 = result.engine_memory[1].Last();
  ASSERT_GT(m0 + m1, 0);
  const double ratio = std::min(m0, m1) / std::max(m0, m1);
  EXPECT_GT(ratio, 0.5) << "final memory should be roughly balanced, got "
                        << m0 << " vs " << m1;
}

TEST(AdaptationBehaviorTest, NoRelocationLeavesSkewUnbalanced) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  config.placement_fractions = {0.8, 0.2};
  config.run_duration = MinutesToTicks(2);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  Cluster cluster(config);
  RunResult result = cluster.Run();
  const double m0 = result.engine_memory[0].Last();
  const double m1 = result.engine_memory[1].Last();
  const double ratio = std::min(m0, m1) / std::max(m0, m1);
  EXPECT_LT(ratio, 0.5);
}

TEST(AdaptationBehaviorTest, PushLessProductiveBeatsPushMoreProductive) {
  // The Fig. 7 finding, on a scaled run: with heterogeneous partition
  // productivity, spilling the less productive groups first yields more
  // run-time output.
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.num_engines = 1;
  config.run_duration = MinutesToTicks(3);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.spill.memory_threshold_bytes = 64 * kKiB;
  config.workload.classes = {PartitionClass{4.0, 480}, PartitionClass{2.0, 480},
                             PartitionClass{1.0, 480}};
  config.workload.partition_class = AssignClassesByFraction(
      config.workload.num_partitions, {1.0 / 3, 1.0 / 3, 1.0 / 3});

  config.spill.policy = SpillPolicy::kLeastProductiveFirst;
  RunResult less = Cluster(config).Run();
  config.spill.policy = SpillPolicy::kMostProductiveFirst;
  RunResult more = Cluster(config).Run();

  ASSERT_GT(less.spill_events, 0);
  ASSERT_GT(more.spill_events, 0);
  EXPECT_GT(less.runtime_results, more.runtime_results);
  // And the cleanup debt is correspondingly smaller.
  EXPECT_LT(less.cleanup.result_count, more.cleanup.result_count);
}

TEST(AdaptationBehaviorTest, LazyDiskOutputsAtLeastSpillOnlyUnderSkew) {
  // The Fig. 12 finding: with a skewed placement and constrained memory,
  // lazy-disk (relocation first) beats pure local spilling.
  ClusterConfig config = SmallClusterConfig();
  config.num_engines = 3;
  config.placement_fractions = {2.0 / 3, 1.0 / 6, 1.0 / 6};
  config.run_duration = MinutesToTicks(3);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.spill.memory_threshold_bytes = 48 * kKiB;

  config.strategy = AdaptationStrategy::kSpillOnly;
  RunResult spill_only = Cluster(config).Run();
  config.strategy = AdaptationStrategy::kLazyDisk;
  RunResult lazy = Cluster(config).Run();

  ASSERT_GT(spill_only.spill_events, 0);
  EXPECT_GT(lazy.runtime_results, spill_only.runtime_results);
}

TEST(AdaptationBehaviorTest, StateConservedAcrossRelocations) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.placement_fractions = {0.8, 0.2};
  config.run_duration = MinutesToTicks(1);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  Cluster cluster(config);
  cluster.RunUntil(config.run_duration);
  cluster.Drain();

  // Every generated tuple is accounted for in some engine's state
  // (nothing spilled, nothing lost in flight after drain).
  int64_t tuples_in_state = 0;
  for (EngineId e = 0; e < cluster.num_engines(); ++e) {
    tuples_in_state += cluster.engine(e).mjoin().state().total_tuples();
  }
  EXPECT_EQ(tuples_in_state,
            cluster.source().total_emitted());

  // Relocation really moved bytes and none were created or destroyed.
  RunResult result = cluster.Collect();
  ASSERT_GT(result.coordinator.relocations_completed, 0);
  int64_t out_bytes = 0;
  int64_t in_bytes = 0;
  for (const auto& counters : result.engines) {
    out_bytes += counters.bytes_relocated_out;
    in_bytes += counters.bytes_relocated_in;
  }
  EXPECT_EQ(out_bytes, in_bytes);
  EXPECT_GT(out_bytes, 0);
}

TEST(AdaptationBehaviorTest, HigherThetaMeansMoreRelocations) {
  // The Fig. 9 finding: a tighter balance threshold (θ_r → 1) triggers
  // more relocations, each moving less.
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.run_duration = MinutesToTicks(3);
  config.collect_results = false;
  config.cleanup.collect_results = false;
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = SecondsToTicks(30);
  config.relocation.min_time_between = SecondsToTicks(10);
  config.relocation.min_relocate_bytes = 1 * kKiB;

  config.relocation.theta_r = 0.9;
  RunResult tight = Cluster(config).Run();
  config.relocation.theta_r = 0.5;
  RunResult loose = Cluster(config).Run();

  EXPECT_GT(tight.coordinator.relocations_completed,
            loose.coordinator.relocations_completed);
}

}  // namespace
}  // namespace dcape
