#include "core/victim_policy.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace dcape {
namespace {

GroupStats MakeStats(PartitionId p, int64_t bytes, int64_t outputs) {
  GroupStats stats;
  stats.partition = p;
  stats.bytes = bytes;
  stats.outputs = outputs;
  stats.productivity =
      bytes > 0 ? static_cast<double>(outputs) / static_cast<double>(bytes)
                : 0.0;
  return stats;
}

std::vector<GroupStats> SampleGroups() {
  // productivity: p0=0.1, p1=2.0, p2=0.5, p3=0.01
  return {MakeStats(0, 100, 10), MakeStats(1, 100, 200),
          MakeStats(2, 100, 50), MakeStats(3, 100, 1)};
}

TEST(SelectSpillVictimsTest, LeastProductiveFirst) {
  std::vector<PartitionId> victims = SelectSpillVictims(
      SampleGroups(), SpillPolicy::kLeastProductiveFirst, 150, nullptr);
  EXPECT_EQ(victims, (std::vector<PartitionId>{3, 0}));
}

TEST(SelectSpillVictimsTest, MostProductiveFirst) {
  std::vector<PartitionId> victims = SelectSpillVictims(
      SampleGroups(), SpillPolicy::kMostProductiveFirst, 150, nullptr);
  EXPECT_EQ(victims, (std::vector<PartitionId>{1, 2}));
}

TEST(SelectSpillVictimsTest, LargestFirst) {
  std::vector<GroupStats> stats = {MakeStats(0, 50, 0), MakeStats(1, 500, 0),
                                   MakeStats(2, 100, 0)};
  std::vector<PartitionId> victims =
      SelectSpillVictims(stats, SpillPolicy::kLargestFirst, 501, nullptr);
  EXPECT_EQ(victims, (std::vector<PartitionId>{1, 2}));
}

TEST(SelectSpillVictimsTest, SmallestFirst) {
  std::vector<GroupStats> stats = {MakeStats(0, 50, 0), MakeStats(1, 500, 0),
                                   MakeStats(2, 100, 0)};
  std::vector<PartitionId> victims =
      SelectSpillVictims(stats, SpillPolicy::kSmallestFirst, 60, nullptr);
  EXPECT_EQ(victims, (std::vector<PartitionId>{0, 2}));
}

TEST(SelectSpillVictimsTest, StopsAtTargetBytes) {
  std::vector<PartitionId> victims = SelectSpillVictims(
      SampleGroups(), SpillPolicy::kLeastProductiveFirst, 100, nullptr);
  EXPECT_EQ(victims.size(), 1u);
}

TEST(SelectSpillVictimsTest, AtLeastOneVictimForPositiveTarget) {
  std::vector<PartitionId> victims = SelectSpillVictims(
      SampleGroups(), SpillPolicy::kLeastProductiveFirst, 1, nullptr);
  EXPECT_EQ(victims.size(), 1u);
}

TEST(SelectSpillVictimsTest, EmptyForZeroTargetOrNoGroups) {
  EXPECT_TRUE(SelectSpillVictims(SampleGroups(),
                                 SpillPolicy::kLeastProductiveFirst, 0,
                                 nullptr)
                  .empty());
  EXPECT_TRUE(SelectSpillVictims({}, SpillPolicy::kLeastProductiveFirst, 100,
                                 nullptr)
                  .empty());
}

TEST(SelectSpillVictimsTest, RandomIsSeedDeterministicAndCoversTarget) {
  Rng rng1(42);
  Rng rng2(42);
  std::vector<PartitionId> a =
      SelectSpillVictims(SampleGroups(), SpillPolicy::kRandom, 250, &rng1);
  std::vector<PartitionId> b =
      SelectSpillVictims(SampleGroups(), SpillPolicy::kRandom, 250, &rng2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);  // 3 * 100 bytes >= 250
}

TEST(SelectSpillVictimsTest, TieBreaksOnPartitionId) {
  std::vector<GroupStats> stats = {MakeStats(5, 100, 10), MakeStats(2, 100, 10),
                                   MakeStats(9, 100, 10)};
  std::vector<PartitionId> victims = SelectSpillVictims(
      stats, SpillPolicy::kLeastProductiveFirst, 250, nullptr);
  EXPECT_EQ(victims, (std::vector<PartitionId>{2, 5, 9}));
}

TEST(SelectRelocationCandidatesTest, MostProductiveFirst) {
  std::vector<PartitionId> chosen =
      SelectRelocationCandidates(SampleGroups(), 150);
  EXPECT_EQ(chosen, (std::vector<PartitionId>{1, 2}));
}

TEST(SelectRelocationCandidatesTest, SkipsEmptyGroups) {
  std::vector<GroupStats> stats = {MakeStats(0, 0, 0), MakeStats(1, 10, 5)};
  std::vector<PartitionId> chosen = SelectRelocationCandidates(stats, 5);
  EXPECT_EQ(chosen, (std::vector<PartitionId>{1}));
}

}  // namespace
}  // namespace dcape
