#include "operators/split.h"

#include <gtest/gtest.h>

#include "stream/stream_generator.h"

namespace dcape {
namespace {

Tuple TupleForPartition(StreamId stream, int64_t seq, PartitionId partition) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = static_cast<JoinKey>(partition) * StreamGenerator::kKeyStride;
  return t;
}

TEST(SplitTest, RoutesByPartitionTable) {
  Split split(0, {0, 0, 1, 1});
  EXPECT_EQ(split.Route(TupleForPartition(0, 1, 0)).value(), 0);
  EXPECT_EQ(split.Route(TupleForPartition(0, 2, 2)).value(), 1);
  EXPECT_EQ(split.OwnerOf(3), 1);
}

TEST(SplitTest, PauseBuffersAffectedPartitionsOnly) {
  Split split(0, {0, 0, 1, 1});
  split.Pause({2});
  EXPECT_TRUE(split.IsPaused(2));
  EXPECT_FALSE(split.IsPaused(1));
  EXPECT_FALSE(split.Route(TupleForPartition(0, 1, 2)).has_value());
  EXPECT_TRUE(split.Route(TupleForPartition(0, 2, 1)).has_value());
  EXPECT_EQ(split.buffered_count(), 1);
}

TEST(SplitTest, ReleaseReturnsBufferedInArrivalOrderAndReroutes) {
  Split split(0, {0, 0, 1, 1});
  split.Pause({2, 3});
  split.Route(TupleForPartition(0, 1, 2));
  split.Route(TupleForPartition(0, 2, 3));
  split.Route(TupleForPartition(0, 3, 2));
  EXPECT_EQ(split.buffered_count(), 3);

  std::vector<Tuple> released = split.UpdateRoutingAndRelease({2, 3}, 0);
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0].seq, 1);
  EXPECT_EQ(released[1].seq, 2);
  EXPECT_EQ(released[2].seq, 3);
  EXPECT_EQ(split.buffered_count(), 0);
  EXPECT_FALSE(split.IsPaused(2));
  EXPECT_EQ(split.OwnerOf(2), 0);
  EXPECT_EQ(split.OwnerOf(3), 0);
  EXPECT_EQ(split.Route(TupleForPartition(0, 4, 2)).value(), 0);
}

TEST(SplitTest, PartialReleaseKeepsOtherBuffers) {
  Split split(0, {0, 1, 1});
  split.Pause({1, 2});
  split.Route(TupleForPartition(0, 1, 1));
  split.Route(TupleForPartition(0, 2, 2));
  std::vector<Tuple> released = split.UpdateRoutingAndRelease({1}, 0);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].seq, 1);
  EXPECT_EQ(split.buffered_count(), 1);
  EXPECT_TRUE(split.IsPaused(2));
}

TEST(SplitTest, PauseIsIdempotent) {
  Split split(0, {0, 1});
  split.Pause({1});
  split.Pause({1});
  split.Route(TupleForPartition(0, 1, 1));
  EXPECT_EQ(split.UpdateRoutingAndRelease({1}, 0).size(), 1u);
}

}  // namespace
}  // namespace dcape
