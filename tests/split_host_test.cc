#include "runtime/split_host.h"

#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "stream/stream_generator.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

Tuple TupleFor(StreamId stream, int64_t seq, PartitionId partition) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = static_cast<JoinKey>(partition) * StreamGenerator::kKeyStride;
  t.payload = "abcdef";
  return t;
}

class SplitHostTest : public ::testing::Test {
 protected:
  SplitHostTest() : network_(FastConfig()) {
    network_.RegisterNode(0, [this](Tick, const Message& m) {
      if (m.type == MessageType::kTupleBatch) {
        engine0_tuples_ +=
            static_cast<int64_t>(std::get<TupleBatch>(m.payload).tuples.size());
      } else {
        engine0_other_.push_back(m.type);
      }
    });
    network_.RegisterNode(1, [this](Tick, const Message& m) {
      if (m.type == MessageType::kTupleBatch) {
        engine1_tuples_ +=
            static_cast<int64_t>(std::get<TupleBatch>(m.payload).tuples.size());
      }
    });
    network_.RegisterNode(10, [this](Tick, const Message& m) {
      coordinator_inbox_.push_back(m.type);
    });
  }

  static Network::Config FastConfig() {
    Network::Config c;
    c.latency_ticks = 1;
    c.bytes_per_tick = 1 << 30;
    return c;
  }

  SplitHostConfig BaseConfig() {
    SplitHostConfig config;
    config.node_id = 20;
    config.coordinator_node = 10;
    config.streams = {0, 1};
    return config;
  }

  void Feed(SplitHost* host, Tick now, StreamId stream,
            std::vector<Tuple> tuples) {
    TupleBatch batch;
    batch.stream_id = stream;
    batch.tuples = std::move(tuples);
    Message m = MakeTupleBatchMessage(30, 20, std::move(batch));
    host->OnMessage(now, m);
    network_.DeliverUntil(now + 5);
  }

  Network network_;
  int64_t engine0_tuples_ = 0;
  int64_t engine1_tuples_ = 0;
  std::vector<MessageType> engine0_other_;
  std::vector<MessageType> coordinator_inbox_;
};

TEST_F(SplitHostTest, RoutesIncomingBatchesByPartition) {
  SplitHost host(BaseConfig(), /*placement=*/{0, 0, 1, 1}, &network_);
  Feed(&host, 0, 0, {TupleFor(0, 1, 0), TupleFor(0, 2, 3)});
  EXPECT_EQ(engine0_tuples_, 1);
  EXPECT_EQ(engine1_tuples_, 1);
}

TEST_F(SplitHostTest, HostsOnlyConfiguredStreams) {
  SplitHostConfig config = BaseConfig();
  config.streams = {1};
  SplitHost host(config, {0, 0}, &network_);
  EXPECT_FALSE(host.HostsStream(0));
  EXPECT_TRUE(host.HostsStream(1));
}

TEST_F(SplitHostTest, PauseBuffersAndEmitsMarkerAndAck) {
  SplitHost host(BaseConfig(), {0, 0, 1, 1}, &network_);

  PausePartitions pause;
  pause.relocation_id = 5;
  pause.partitions = {0};
  pause.sender_node = 0;
  Message m;
  m.type = MessageType::kPausePartitions;
  m.from = 10;
  m.to = 20;
  m.payload = pause;
  host.OnMessage(0, m);
  network_.DeliverUntil(10);

  // Drain marker went to the old owner, ack to the coordinator.
  ASSERT_EQ(engine0_other_.size(), 1u);
  EXPECT_EQ(engine0_other_[0], MessageType::kDrainMarker);
  ASSERT_EQ(coordinator_inbox_.size(), 1u);
  EXPECT_EQ(coordinator_inbox_[0], MessageType::kPauseAck);

  // Tuples for the paused partition buffer; others flow.
  Feed(&host, 11, 0, {TupleFor(0, 1, 0), TupleFor(0, 2, 1)});
  EXPECT_EQ(host.total_buffered(), 1);
  EXPECT_EQ(engine0_tuples_, 1);

  // Routing update flushes the buffer to the new owner and acks.
  UpdateRouting update;
  update.relocation_id = 5;
  update.partitions = {0};
  update.new_owner = 1;
  Message um;
  um.type = MessageType::kUpdateRouting;
  um.from = 10;
  um.to = 20;
  um.payload = update;
  host.OnMessage(20, um);
  network_.DeliverUntil(30);
  EXPECT_EQ(host.total_buffered(), 0);
  EXPECT_EQ(engine1_tuples_, 1);
  ASSERT_EQ(coordinator_inbox_.size(), 2u);
  EXPECT_EQ(coordinator_inbox_[1], MessageType::kRoutingUpdated);
}

TEST_F(SplitHostTest, SelectionAppliesOnlyToFreshTuples) {
  SplitHostConfig config = BaseConfig();
  SelectPredicate band;
  band.min_value = 100;
  config.select_per_stream = {band, band};
  SplitHost host(config, {0, 0}, &network_);

  Tuple pass = TupleFor(0, 1, 0);
  pass.value = 150;
  Tuple drop = TupleFor(0, 2, 0);
  drop.value = 50;
  Feed(&host, 0, 0, {pass, drop});
  EXPECT_EQ(engine0_tuples_, 1);
  EXPECT_EQ(host.select(0)->seen(), 2);
  EXPECT_EQ(host.select(0)->passed(), 1);
}

/// End-to-end: the full distributed pipeline with one split host per
/// stream remains exact under lazy-disk (multi-marker drain logic).
TEST(MultiSplitHostTest, ThreeHostsRemainExactUnderLazyDisk) {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(40);
  std::vector<JoinResult> reference;
  {
    ClusterConfig ref = config;
    ref.num_split_hosts = 3;
    ref.strategy = AdaptationStrategy::kNoAdaptation;
    Cluster cluster(ref);
    reference = AllResults(cluster.Run());
  }
  ASSERT_FALSE(reference.empty());

  config.num_split_hosts = 3;
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.placement_fractions = {0.75, 0.25};
  Cluster cluster(config);
  ASSERT_EQ(cluster.num_split_hosts(), 3);
  RunResult result = cluster.Run();
  EXPECT_GT(result.coordinator.relocations_completed, 0);
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

TEST(MultiSplitHostTest, SingleAndMultiHostProduceSameResultSet) {
  // The input is generated identically; only the split placement differs.
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = SecondsToTicks(30);
  config.strategy = AdaptationStrategy::kNoAdaptation;

  ClusterConfig single = config;
  single.num_split_hosts = 1;
  ClusterConfig multi = config;
  multi.num_split_hosts = 3;

  Cluster single_cluster(single);
  Cluster multi_cluster(multi);
  RunResult single_result = single_cluster.Run();
  RunResult multi_result = multi_cluster.Run();
  EXPECT_EQ(ToMultiset(AllResults(single_result)),
            ToMultiset(AllResults(multi_result)));
}

}  // namespace
}  // namespace dcape
