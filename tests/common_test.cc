#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/units.h"
#include "common/virtual_clock.h"

namespace dcape {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 24);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformCoversTheRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.AdvanceTo(5);
  clock.AdvanceTo(5);  // same tick OK
  clock.AdvanceTo(100);
  EXPECT_EQ(clock.now(), 100);
}

TEST(PeriodicTimerTest, FiresOncePerPeriod) {
  PeriodicTimer timer(10);
  EXPECT_FALSE(timer.Expired(5));
  EXPECT_TRUE(timer.Expired(10));
  EXPECT_FALSE(timer.Expired(11));
  EXPECT_FALSE(timer.Expired(19));
  EXPECT_TRUE(timer.Expired(20));
}

TEST(PeriodicTimerTest, LargeJumpFiresOnce) {
  PeriodicTimer timer(10);
  EXPECT_TRUE(timer.Expired(1000));
  EXPECT_FALSE(timer.Expired(1001));
  EXPECT_TRUE(timer.Expired(1010));
}

TEST(PeriodicTimerTest, ResetRearms) {
  PeriodicTimer timer(10);
  timer.Reset(7);
  EXPECT_FALSE(timer.Expired(10));
  EXPECT_TRUE(timer.Expired(17));
}

TEST(TickConversionTest, SecondsAndMinutes) {
  EXPECT_EQ(SecondsToTicks(1), 1000);
  EXPECT_EQ(SecondsToTicks(45), 45000);
  EXPECT_EQ(MinutesToTicks(1), 60000);
  EXPECT_EQ(MinutesToTicks(40), 2400000);
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.00 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB + kMiB / 2), "3.50 MiB");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2.00 GiB");
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(-2048), "-2.00 KiB");
}

TEST(LoggingTest, LevelGatesEmission) {
  LogLevel original = Logging::level();
  Logging::SetLevel(LogLevel::kError);
  EXPECT_FALSE(Logging::Enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logging::Enabled(LogLevel::kInfo));
  EXPECT_FALSE(Logging::Enabled(LogLevel::kWarning));
  EXPECT_TRUE(Logging::Enabled(LogLevel::kError));
  Logging::SetLevel(LogLevel::kDebug);
  EXPECT_TRUE(Logging::Enabled(LogLevel::kInfo));
  Logging::SetLevel(original);
}

}  // namespace
}  // namespace dcape
