#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "tests/test_util.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

/// Online state restore (RestoreConfig): disk generations merge back into
/// memory when room opens up, producing their deferred results during the
/// run-time phase instead of during cleanup.

ClusterConfig RestoreConfig_() {
  ClusterConfig config = SmallClusterConfig();
  config.run_duration = MinutesToTicks(2);
  // The 2-minute run emits ~12k tuples/stream; with the default 40 keys
  // per partition each key would gather ~25 matches per stream and the
  // 3-way cross product explodes. Widen the key domain — state size (and
  // thus spill/restore activity) is unaffected, only match counts drop.
  config.workload.classes[0].tuple_range = 2400;  // -> 200 keys/partition
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.spill.memory_threshold_bytes = 64 * kKiB;
  config.restore.enabled = true;
  config.restore.low_watermark = 0.9;
  config.restore.check_period = SecondsToTicks(2);
  return config;
}

TEST(RestoreTest, RemainsExactWithRestoreEnabled) {
  ClusterConfig config = RestoreConfig_();
  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  Cluster cluster(config);
  RunResult result = cluster.Run();
  ASSERT_GT(result.spill_events, 0);

  auto all = ToMultiset(AllResults(result));
  for (const auto& [key, count] : all) {
    ASSERT_EQ(count, 1) << "duplicate result " << key;
  }
  EXPECT_EQ(all, ToMultiset(reference));
}

TEST(RestoreTest, RestoreShiftsResultsFromCleanupToRuntime) {
  ClusterConfig with = RestoreConfig_();
  ClusterConfig without = with;
  without.restore.enabled = false;

  RunResult with_restore = Cluster(with).Run();
  RunResult without_restore = Cluster(without).Run();

  int64_t restored_segments = 0;
  for (const auto& c : with_restore.engines) {
    restored_segments += c.restored_segments;
  }
  ASSERT_GT(restored_segments, 0) << "test config must actually restore";

  // Same total output either way...
  EXPECT_EQ(with_restore.TotalResults(), without_restore.TotalResults());
  // ...but restore delivers more during the run-time phase and leaves
  // less to the cleanup.
  EXPECT_GT(with_restore.runtime_results, without_restore.runtime_results);
  EXPECT_LT(with_restore.cleanup.result_count,
            without_restore.cleanup.result_count);
}

TEST(RestoreTest, RestoreRespectsThresholdHeadroom) {
  ClusterConfig config = RestoreConfig_();
  Cluster cluster(config);
  RunResult result = cluster.Run();
  // Even with aggressive restore, tracked memory stays within the spill
  // band (threshold + one ss_timer window of input).
  for (const TimeSeries& series : result.engine_memory) {
    EXPECT_LT(series.Max(), 64.0 * kKiB + 32.0 * kKiB) << series.name();
  }
}

TEST(RestoreTest, WorksTogetherWithLazyDisk) {
  ClusterConfig config = RestoreConfig_();
  config.strategy = AdaptationStrategy::kLazyDisk;
  config.placement_fractions = {0.7, 0.3};
  std::vector<JoinResult> reference = testing::ReferenceResults(config);

  Cluster cluster(config);
  RunResult result = cluster.Run();
  EXPECT_EQ(ToMultiset(AllResults(result)), ToMultiset(reference));
}

}  // namespace
}  // namespace dcape
