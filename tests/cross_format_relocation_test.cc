#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "runtime/cluster_config.h"
#include "state/partition_group.h"
#include "state/state_manager.h"
#include "tests/test_util.h"
#include "tuple/tuple.h"

namespace dcape {
namespace {

using testing::AllResults;
using testing::ReferenceResults;
using testing::SmallClusterConfig;
using testing::ToMultiset;

// ----- Unit level: extract in one format, install into a manager of the
// other format (relocation sender/receiver in miniature). InstallGroup
// sniffs the encoding, so each direction must round-trip losslessly.

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key, Tick ts) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.timestamp = ts;
  t.value = seq * 3 - 40;
  t.category = static_cast<int32_t>(seq % 5);
  t.payload.assign(static_cast<size_t>(8 + seq % 23),
                   static_cast<char>('a' + seq % 26));
  return t;
}

// Fills `manager` with a deterministic mix over two partitions and
// returns the number of tuples inserted.
int64_t Populate(StateManager* manager) {
  std::vector<JoinResult> results;
  int64_t count = 0;
  for (int64_t seq = 0; seq < 240; ++seq) {
    const PartitionId partition = seq % 2 == 0 ? 3 : 9;
    const StreamId stream = static_cast<StreamId>(seq % manager->num_streams());
    manager->ProcessTuple(partition,
                          MakeTuple(stream, seq, /*key=*/seq % 12,
                                    /*ts=*/1000 + seq),
                          &results);
    ++count;
  }
  return count;
}

std::vector<Tuple> CanonicalTuples(const PartitionGroup& group) {
  std::vector<Tuple> all;
  for (StreamId s = 0; s < group.num_streams(); ++s) {
    for (const auto& [key, tuples] : group.TableForStream(s)) {
      all.insert(all.end(), tuples.begin(), tuples.end());
    }
  }
  std::sort(all.begin(), all.end(), [](const Tuple& a, const Tuple& b) {
    if (a.stream_id != b.stream_id) return a.stream_id < b.stream_id;
    if (a.join_key != b.join_key) return a.join_key < b.join_key;
    return a.seq < b.seq;
  });
  return all;
}

void CheckCrossInstall(SegmentFormat sender_format,
                       SegmentFormat receiver_format) {
  StateManager sender(/*num_streams=*/3, std::nullopt, /*window_ticks=*/0,
                      sender_format);
  const int64_t inserted = Populate(&sender);
  ASSERT_EQ(sender.total_tuples(), inserted);

  // Snapshot the sender's groups before extraction destroys them.
  std::vector<std::vector<Tuple>> want;
  for (PartitionId p : {3, 9}) {
    const PartitionGroup* group = sender.FindGroup(p);
    ASSERT_NE(group, nullptr);
    want.push_back(CanonicalTuples(*group));
  }

  std::vector<StateManager::ExtractedGroup> extracted =
      sender.ExtractGroups({3, 9});
  ASSERT_EQ(extracted.size(), 2u);
  EXPECT_EQ(sender.total_tuples(), 0);
  for (const StateManager::ExtractedGroup& g : extracted) {
    if (sender_format == SegmentFormat::kV1) {
      // v1 is the fixed-width raw encoding: blob size == raw size.
      EXPECT_EQ(static_cast<int64_t>(g.blob.size()), g.raw_bytes);
    } else {
      EXPECT_LT(static_cast<int64_t>(g.blob.size()), g.raw_bytes);
    }
  }

  StateManager receiver(/*num_streams=*/3, std::nullopt, /*window_ticks=*/0,
                        receiver_format);
  for (const StateManager::ExtractedGroup& g : extracted) {
    ASSERT_TRUE(receiver.InstallGroup(g.blob).ok());
  }
  EXPECT_EQ(receiver.total_tuples(), inserted);

  for (size_t i = 0; i < 2; ++i) {
    const PartitionId p = i == 0 ? 3 : 9;
    const PartitionGroup* group = receiver.FindGroup(p);
    ASSERT_NE(group, nullptr);
    const std::vector<Tuple> got = CanonicalTuples(*group);
    ASSERT_EQ(got.size(), want[i].size());
    for (size_t j = 0; j < got.size(); ++j) EXPECT_EQ(got[j], want[i][j]);
  }

  // The receiver re-extracts in *its own* format — the state survives a
  // second hop (e.g. relocated again, or spilled at the new owner).
  std::vector<StateManager::ExtractedGroup> rehop =
      receiver.ExtractGroups({3});
  ASSERT_EQ(rehop.size(), 1u);
  StateManager third(/*num_streams=*/3, std::nullopt, /*window_ticks=*/0,
                     receiver_format);
  ASSERT_TRUE(third.InstallGroup(rehop[0].blob).ok());
  const PartitionGroup* group = third.FindGroup(3);
  ASSERT_NE(group, nullptr);
  EXPECT_EQ(CanonicalTuples(*group).size(), want[0].size());
}

TEST(CrossFormatRelocationTest, V1SenderToV2Receiver) {
  CheckCrossInstall(SegmentFormat::kV1, SegmentFormat::kV2);
}

TEST(CrossFormatRelocationTest, V2SenderToV1Receiver) {
  CheckCrossInstall(SegmentFormat::kV2, SegmentFormat::kV1);
}

// ----- Cluster level: a mixed-format cluster with skewed placement, so
// the relocation protocol ships blobs between engines of different
// segment formats. Results must match the all-mem reference exactly.

ClusterConfig MixedFormatConfig(std::vector<SegmentFormat> formats,
                                std::vector<double> placement) {
  ClusterConfig config = SmallClusterConfig();
  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.per_engine_segment_format = std::move(formats);
  config.placement_fractions = std::move(placement);
  config.relocation.theta_r = 0.9;
  config.relocation.min_time_between = SecondsToTicks(3);
  config.relocation.min_relocate_bytes = 2 * kKiB;
  return config;
}

void CheckMixedCluster(std::vector<SegmentFormat> formats,
                       std::vector<double> placement) {
  ClusterConfig config = MixedFormatConfig(std::move(formats),
                                           std::move(placement));
  Cluster cluster(config);
  RunResult result = cluster.Run();
  // The skew must actually force relocations, or the test checks nothing.
  ASSERT_GE(result.coordinator.relocations_completed, 1);
  EXPECT_EQ(ToMultiset(AllResults(result)),
            ToMultiset(ReferenceResults(config)));
}

TEST(CrossFormatRelocationTest, ClusterRelocatesV1StateOntoV2Engine) {
  // Engine 0 (v1) starts overloaded; relocation ships v1 blobs to the
  // v2 engine.
  CheckMixedCluster({SegmentFormat::kV1, SegmentFormat::kV2}, {0.85, 0.15});
}

TEST(CrossFormatRelocationTest, ClusterRelocatesV2StateOntoV1Engine) {
  // Mirror image: engine 0 (v2) overloaded, v2 blobs land on the v1
  // engine.
  CheckMixedCluster({SegmentFormat::kV2, SegmentFormat::kV1}, {0.85, 0.15});
}

}  // namespace
}  // namespace dcape
