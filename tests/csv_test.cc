#include "metrics/csv.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace dcape {
namespace {

TEST(CsvTest, HeaderAndRows) {
  TimeSeries a("throughput");
  a.Add(0, 0);
  a.Add(100, 5);
  TimeSeries b("memory");
  b.Add(0, 10);
  b.Add(50, 20);

  std::string csv = SeriesToCsv({&a, &b});
  EXPECT_NE(csv.find("tick,throughput,memory\n"), std::string::npos);
  // Union of ticks: 0, 50, 100.
  EXPECT_NE(csv.find("0,0,10\n"), std::string::npos);
  EXPECT_NE(csv.find("50,0,20\n"), std::string::npos);
  EXPECT_NE(csv.find("100,5,20\n"), std::string::npos);
}

TEST(CsvTest, UnnamedSeriesGetPlaceholder) {
  TimeSeries anonymous;
  anonymous.Add(1, 2);
  std::string csv = SeriesToCsv({&anonymous});
  EXPECT_NE(csv.find("tick,series\n"), std::string::npos);
}

TEST(CsvTest, WriteToFile) {
  TimeSeries a("x");
  a.Add(0, 1);
  std::string path =
      (std::filesystem::temp_directory_path() / "dcape_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteSeriesCsv(path, {&a}).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace dcape
