#include "bench_common.h"

#include <cstdio>
#include <iostream>

#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {

ClusterConfig PaperBaseConfig() {
  ClusterConfig config;
  config.num_engines = 1;
  config.workload.num_streams = 3;
  config.workload.num_partitions = 60;
  config.workload.inter_arrival_ticks = 10;
  config.workload.payload_bytes = 64;
  // Join rate 3 as in §3.1; the tuple range is scaled so each partition
  // has ~1000 distinct keys, keeping total output in the millions.
  config.workload.classes = {PartitionClass{3.0, 180000}};
  config.workload.seed = 2007;
  config.seed = 2007;

  config.run_duration = MinutesToTicks(40);
  config.sample_period = SecondsToTicks(30);
  config.stats_period = SecondsToTicks(5);
  config.collect_results = false;
  config.run_cleanup = true;
  config.cleanup.collect_results = false;

  config.spill.memory_threshold_bytes = 24 * kMiB;
  config.spill.spill_fraction = 0.30;
  config.spill.policy = SpillPolicy::kLeastProductiveFirst;
  config.spill.ss_timer_period = SecondsToTicks(5);

  config.relocation.theta_r = 0.8;
  config.relocation.min_time_between = SecondsToTicks(45);
  config.relocation.sr_timer_period = SecondsToTicks(10);
  config.relocation.min_relocate_bytes = 512 * kKiB;

  config.active_disk.lambda = 2.0;
  config.active_disk.lb_timer_period = SecondsToTicks(30);
  config.active_disk.memory_pressure = 0.5;
  config.active_disk.max_forced_spill_bytes = 12 * kMiB;
  config.active_disk.forced_spill_fraction = 0.30;
  return config;
}

void PrintFigureHeader(const std::string& figure, const std::string& title,
                       const std::string& setup,
                       const std::string& paper_expectation) {
  std::cout << "\n================================================================\n"
            << figure << " — " << title << "\n"
            << "----------------------------------------------------------------\n"
            << "setup: " << setup << "\n"
            << "paper: " << paper_expectation << "\n"
            << "================================================================\n";
}

RunResult RunLabeled(const ClusterConfig& config, const std::string& label) {
  RunResult result = Cluster(config).Run();
  std::cout << "[" << label << "] ";
  result.PrintSummary(std::cout);
  return result;
}

void PrintThroughputTables(const std::vector<RunResult>& runs,
                           const std::vector<std::string>& labels,
                           int64_t end_minute, int64_t step_minutes) {
  std::vector<TimeSeries> cumulative;
  std::vector<TimeSeries> rates;
  cumulative.reserve(runs.size());
  rates.reserve(runs.size());
  for (size_t i = 0; i < runs.size(); ++i) {
    TimeSeries c = runs[i].throughput;
    c.set_name(labels[i]);
    rates.push_back(ToRatePerMinute(c));
    cumulative.push_back(std::move(c));
  }

  std::cout << "\ncumulative output tuples:\n";
  std::vector<const TimeSeries*> cumulative_ptrs;
  for (const TimeSeries& s : cumulative) cumulative_ptrs.push_back(&s);
  PrintSeriesByMinute(std::cout, "minute", cumulative_ptrs, 0, end_minute,
                      step_minutes);

  std::cout << "\noutput rate (tuples/minute):\n";
  std::vector<const TimeSeries*> rate_ptrs;
  for (const TimeSeries& s : rates) rate_ptrs.push_back(&s);
  PrintSeriesByMinute(std::cout, "minute", rate_ptrs, step_minutes,
                      end_minute, step_minutes);
}

void PrintMemoryTables(const std::vector<const TimeSeries*>& series,
                       const std::vector<std::string>& labels,
                       int64_t end_minute, int64_t step_minutes) {
  std::vector<TimeSeries> scaled;
  scaled.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    TimeSeries s(labels[i]);
    for (const auto& [tick, value] : series[i]->samples()) {
      s.Add(tick, value / static_cast<double>(kKiB));
    }
    scaled.push_back(std::move(s));
  }
  std::cout << "\nmemory usage (KiB):\n";
  std::vector<const TimeSeries*> ptrs;
  for (const TimeSeries& s : scaled) ptrs.push_back(&s);
  PrintSeriesByMinute(std::cout, "minute", ptrs, 0, end_minute, step_minutes);
}

}  // namespace bench
}  // namespace dcape
