// Reproduces Figure 11: the benefit of state relocation over local state
// spill when only part of the cluster is overloaded.
//
// Setup (paper §4.2): three engines; one initially owns 60% of the
// partitions, the other two 20% each. The spill threshold is set so only
// the overloaded machine crosses it. "no-relocation" spills locally when
// that happens (throughput drops, paper: after ~40 min); "with-relocation"
// moves state to the under-utilized machines and keeps producing at the
// maximal (all-memory) rate.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 3;
  config.placement_fractions = {0.6, 0.2, 0.2};
  // Only the 60% machine can cross this threshold within the run.
  config.spill.memory_threshold_bytes = 26 * kMiB;
  return config;
}

int Main() {
  PrintFigureHeader(
      "Figure 11", "Relocation vs spill under skewed placement",
      "3-way join, 3 engines, initial placement 60/20/20, spill threshold "
      "only reachable by the big machine",
      "no-relocation throughput drops once the 60% machine starts "
      "spilling; with-relocation keeps everything in memory and sustains "
      "the maximal output rate");

  std::vector<RunResult> runs;
  std::vector<std::string> labels = {"no-relocation", "with-relocation"};

  ClusterConfig no_reloc = Config();
  no_reloc.strategy = AdaptationStrategy::kSpillOnly;
  runs.push_back(RunLabeled(no_reloc, labels[0]));

  ClusterConfig with_reloc = Config();
  with_reloc.strategy = AdaptationStrategy::kLazyDisk;
  runs.push_back(RunLabeled(with_reloc, labels[1]));

  PrintThroughputTables(runs, labels, 40, 4);

  std::cout << "\nper-engine spills (no-relocation): ";
  for (const auto& c : runs[0].engines) std::cout << c.spill_events << " ";
  std::cout << "| (with-relocation): ";
  for (const auto& c : runs[1].engines) std::cout << c.spill_events << " ";
  std::cout << "\nrelocations (with-relocation): "
            << runs[1].coordinator.relocations_completed << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
