#ifndef DCAPE_BENCH_BENCH_COMMON_H_
#define DCAPE_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "metrics/time_series.h"
#include "runtime/cluster.h"
#include "runtime/cluster_config.h"
#include "runtime/run_result.h"

namespace dcape {
namespace bench {

/// The scaled-down equivalent of the paper's experimental setup (§3.1):
/// 3-way symmetric hash join, 60 partitions, one tuple per stream every
/// 10 virtual ms, join rate 3, 40 virtual minutes. Budgets scale with the
/// input rate exactly as the paper's 200 MB threshold scales with its
/// 30 ms inter-arrival; the *shape* of every curve is preserved while a
/// full run takes seconds of wall-clock.
ClusterConfig PaperBaseConfig();

/// Prints the figure banner: experiment id, setup, and what the paper
/// reports so readers can compare shapes.
void PrintFigureHeader(const std::string& figure, const std::string& title,
                       const std::string& setup,
                       const std::string& paper_expectation);

/// Runs one configuration, echoing a one-line summary tagged `label`.
RunResult RunLabeled(const ClusterConfig& config, const std::string& label);

/// Prints the cumulative-throughput table (one row per `step` minutes,
/// one column per run) followed by the per-minute output *rate* table —
/// the paper's throughput figures plot the latter.
void PrintThroughputTables(const std::vector<RunResult>& runs,
                           const std::vector<std::string>& labels,
                           int64_t end_minute, int64_t step_minutes = 4);

/// Prints the per-engine memory usage table of one or more runs
/// (Figs. 6/10), in KiB.
void PrintMemoryTables(const std::vector<const TimeSeries*>& series,
                       const std::vector<std::string>& labels,
                       int64_t end_minute, int64_t step_minutes = 2);

}  // namespace bench
}  // namespace dcape

#endif  // DCAPE_BENCH_BENCH_COMMON_H_
