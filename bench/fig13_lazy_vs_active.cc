// Reproduces Figure 13: lazy-disk vs active-disk when machines differ in
// partition productivity.
//
// Setup (paper §5.4): three engines with even memory growth, but machine
// m1's partitions have join rate 4 while the other machines' partitions
// have join rate 1. Memory thresholds are tight (60 MB in the paper),
// θ_r = 0.8, τ_m = 45 s, productivity threshold λ = 2. Lazy-disk sees
// balanced memory and does nothing globally; active-disk forces the
// low-productivity machines to spill, freeing cluster memory into which
// the productive state relocates. The paper: a slight dip when the forced
// spills start, then active-disk gradually overtakes lazy-disk.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 3;
  // Uniform placement; productivity skew comes from per-owner classes.
  std::vector<EngineId> placement = Cluster::PlacementFor(config);
  config.workload.classes = {PartitionClass{4.0, 180000},
                             PartitionClass{1.0, 180000}};
  config.workload.partition_class =
      AssignClassesByOwner(placement, {0, 1, 1});
  config.spill.memory_threshold_bytes = 18 * kMiB;
  config.relocation.theta_r = 0.8;
  config.relocation.min_time_between = SecondsToTicks(45);
  config.active_disk.lambda = 2.0;
  config.active_disk.memory_pressure = 0.5;
  config.active_disk.max_forced_spill_bytes = 20 * kMiB;
  return config;
}

int Main() {
  PrintFigureHeader(
      "Figure 13", "Lazy-disk vs active-disk, setup 1",
      "3 engines, even memory growth; m1's partitions join rate 4, others "
      "rate 1; tight thresholds; θ_r = 0.8, τ_m = 45 s, λ = 2",
      "active-disk dips slightly when it starts forcing spills, then "
      "outperforms lazy-disk as productive partitions stay in memory");

  std::vector<RunResult> runs;
  std::vector<std::string> labels = {"lazy-disk", "active-disk"};

  ClusterConfig lazy = Config();
  lazy.strategy = AdaptationStrategy::kLazyDisk;
  runs.push_back(RunLabeled(lazy, labels[0]));

  ClusterConfig active = Config();
  active.strategy = AdaptationStrategy::kActiveDisk;
  runs.push_back(RunLabeled(active, labels[1]));

  PrintThroughputTables(runs, labels, 40, 4);

  std::cout << "\nforced spills (active-disk): "
            << runs[1].coordinator.forced_spills << " ("
            << runs[1].coordinator.forced_spill_bytes / 1024
            << " KiB), relocations lazy="
            << runs[0].coordinator.relocations_completed << " active="
            << runs[1].coordinator.relocations_completed << "\n";
  const double gain =
      100.0 * (runs[1].throughput.Last() - runs[0].throughput.Last()) /
      std::max(1.0, runs[0].throughput.Last());
  std::cout << "active-disk output advantage at 40 min: "
            << FormatDouble(gain, 1) << "%\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
