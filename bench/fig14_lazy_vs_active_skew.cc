// Reproduces Figure 14: lazy-disk vs active-disk with an even larger
// productivity differential between machines.
//
// Setup (paper §5.4): as Figure 13, but m1's high-rate partitions also
// have a small tuple range (15 K in the paper — fewer distinct keys, so
// the join factor climbs faster) while the other machines' partitions
// have a large tuple range (45 K). The average productivity gap between
// machines widens, and the paper reports a major throughput improvement
// for active-disk.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 3;
  std::vector<EngineId> placement = Cluster::PlacementFor(config);
  // Small tuple range + high rate on m1 (few keys, hot); large range +
  // low rate elsewhere (many keys, cold): 90 K/(4·60) = 375 keys vs
  // 270 K/(1·60) = 4500 keys per partition.
  config.workload.classes = {PartitionClass{4.0, 90000},
                             PartitionClass{1.0, 270000}};
  config.workload.partition_class =
      AssignClassesByOwner(placement, {0, 1, 1});
  config.spill.memory_threshold_bytes = 18 * kMiB;
  config.relocation.theta_r = 0.8;
  config.relocation.min_time_between = SecondsToTicks(45);
  config.active_disk.lambda = 2.0;
  config.active_disk.memory_pressure = 0.5;
  config.active_disk.max_forced_spill_bytes = 20 * kMiB;
  return config;
}

int Main() {
  PrintFigureHeader(
      "Figure 14", "Lazy-disk vs active-disk, setup 2 (wider skew)",
      "as Figure 13, plus tuple range 90 K on m1 vs 270 K elsewhere — a "
      "much larger productivity differential between machines",
      "the active-disk advantage grows substantially compared to "
      "Figure 13 (a major throughput improvement in the paper)");

  std::vector<RunResult> runs;
  std::vector<std::string> labels = {"lazy-disk", "active-disk"};

  ClusterConfig lazy = Config();
  lazy.strategy = AdaptationStrategy::kLazyDisk;
  runs.push_back(RunLabeled(lazy, labels[0]));

  ClusterConfig active = Config();
  active.strategy = AdaptationStrategy::kActiveDisk;
  runs.push_back(RunLabeled(active, labels[1]));

  PrintThroughputTables(runs, labels, 40, 4);

  std::cout << "\nforced spills (active-disk): "
            << runs[1].coordinator.forced_spills << " ("
            << runs[1].coordinator.forced_spill_bytes / 1024 << " KiB)\n";
  const double gain =
      100.0 * (runs[1].throughput.Last() - runs[0].throughput.Last()) /
      std::max(1.0, runs[0].throughput.Last());
  std::cout << "active-disk output advantage at 40 min: "
            << FormatDouble(gain, 1)
            << "%  (compare with the Figure 13 run — expected larger)\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
