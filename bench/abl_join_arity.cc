// Ablation: join arity (DESIGN.md; the paper's techniques apply to any
// m-way symmetric hash join — its evaluation uses m = 3).
//
// Sweeps m from 2 to 5 under lazy-disk with fixed per-stream input rate
// and per-partition key counts. Output volume grows with the arity
// (≈ c^m per key), so the same memory budget saturates sooner; the
// adaptation machinery must keep memory bounded at every arity.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

int Main() {
  PrintFigureHeader(
      "Ablation: join arity", "m-way symmetric hash join, m = 2 … 5",
      "2 engines, lazy-disk, 8 MiB thresholds, 20 virtual minutes, fixed "
      "key count per partition",
      "(our extension) — higher arity multiplies both output volume and "
      "the per-tuple probe cost; memory stays within the threshold band "
      "at every m");

  TablePrinter table({"m", "results", "cleanup", "tuples", "spills",
                      "relocations", "peak-mem(KiB)"});
  for (int m = 2; m <= 5; ++m) {
    ClusterConfig config = PaperBaseConfig();
    config.num_engines = 2;
    config.strategy = AdaptationStrategy::kLazyDisk;
    config.spill.memory_threshold_bytes = 8 * kMiB;
    config.run_duration = MinutesToTicks(20);
    config.workload.num_streams = m;
    // Keep ~500 keys per partition regardless of m.
    config.workload.classes = {PartitionClass{3.0, 90000}};
    RunResult result = RunLabeled(config, "m=" + std::to_string(m));

    double peak = 0;
    for (const TimeSeries& s : result.engine_memory) {
      peak = std::max(peak, s.Max());
    }
    table.AddRow({std::to_string(m), std::to_string(result.runtime_results),
                  std::to_string(result.cleanup.result_count),
                  std::to_string(result.tuples_generated),
                  std::to_string(result.spill_events),
                  std::to_string(result.coordinator.relocations_completed),
                  FormatDouble(peak / kKiB, 0)});
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
