// Micro-benchmarks (google-benchmark) for the core mechanisms: the m-way
// symmetric hash-join probe, partition-group serialization (the cost
// behind both spill and relocation), spill-store I/O, victim selection,
// the simulated network, and the workload generator. These quantify the
// constants behind the figure-level experiments and serve as ablations
// for the design choices called out in DESIGN.md.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "cleanup/cleanup.h"
#include "common/rng.h"
#include "core/victim_policy.h"
#include "runtime/exec_pool.h"
#include "net/network.h"
#include "runtime/cluster.h"
#include "state/partition_group.h"
#include "state/state_manager.h"
#include "storage/disk_backend.h"
#include "storage/spill_store.h"
#include "stream/stream_generator.h"
#include "tuple/serde.h"

namespace dcape {
namespace {

Tuple MakeTuple(StreamId stream, int64_t seq, JoinKey key, int payload) {
  Tuple t;
  t.stream_id = stream;
  t.seq = seq;
  t.join_key = key;
  t.payload.assign(static_cast<size_t>(payload), 'x');
  return t;
}

/// Probe+insert with a configurable number of matches per other stream.
void BM_ProbeAndInsert(benchmark::State& state) {
  const int matches = static_cast<int>(state.range(0));
  PartitionGroup group(0, 3);
  for (int i = 0; i < matches; ++i) {
    group.InsertOnly(MakeTuple(1, i, 7, 32));
    group.InsertOnly(MakeTuple(2, i, 7, 32));
  }
  std::vector<JoinResult> results;
  int64_t seq = 1000;
  for (auto _ : state) {
    results.clear();
    Tuple t = MakeTuple(0, seq++, 7, 32);
    benchmark::DoNotOptimize(group.ProbeAndInsert(t, &results));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(matches) * matches);
}
BENCHMARK(BM_ProbeAndInsert)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_ProbeMiss(benchmark::State& state) {
  PartitionGroup group(0, 3);
  for (int i = 0; i < 1000; ++i) {
    group.InsertOnly(MakeTuple(1, i, i, 32));
  }
  int64_t seq = 0;
  for (auto _ : state) {
    // Stream 2 is empty → no results regardless of stream-1 matches.
    Tuple t = MakeTuple(0, seq, seq % 1000, 32);
    ++seq;
    benchmark::DoNotOptimize(group.ProbeAndInsert(t, nullptr));
  }
}
BENCHMARK(BM_ProbeMiss);

PartitionGroup BuildGroup(int tuples_per_stream, int payload) {
  PartitionGroup group(0, 3);
  for (int i = 0; i < tuples_per_stream; ++i) {
    for (StreamId s = 0; s < 3; ++s) {
      group.InsertOnly(MakeTuple(s, i, i % 50, payload));
    }
  }
  return group;
}

void BM_GroupSerialize(benchmark::State& state) {
  PartitionGroup group = BuildGroup(static_cast<int>(state.range(0)), 64);
  std::string blob;
  for (auto _ : state) {
    blob.clear();
    group.Serialize(&blob);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_GroupSerialize)->Arg(100)->Arg(1000)->Arg(10000);

/// Compact (v2) segment encoding, with the v2/v1 size ratio reported as
/// a counter — this is the on-disk saving the format buys.
void BM_SegmentEncodeV2(benchmark::State& state) {
  PartitionGroup group = BuildGroup(static_cast<int>(state.range(0)), 64);
  std::string v1;
  group.Serialize(&v1, SegmentFormat::kV1);
  std::string blob;
  for (auto _ : state) {
    blob.clear();
    group.Serialize(&blob, SegmentFormat::kV2);
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
  state.counters["v2_v1_size_ratio"] =
      static_cast<double>(blob.size()) / static_cast<double>(v1.size());
}
BENCHMARK(BM_SegmentEncodeV2)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SegmentDecodeV2(benchmark::State& state) {
  PartitionGroup group = BuildGroup(static_cast<int>(state.range(0)), 64);
  std::string blob;
  group.Serialize(&blob, SegmentFormat::kV2);
  for (auto _ : state) {
    StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(blob);
    benchmark::DoNotOptimize(restored.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_SegmentDecodeV2)->Arg(100)->Arg(1000)->Arg(10000);

void BM_GroupDeserialize(benchmark::State& state) {
  PartitionGroup group = BuildGroup(static_cast<int>(state.range(0)), 64);
  std::string blob;
  group.Serialize(&blob);
  for (auto _ : state) {
    StatusOr<PartitionGroup> restored = PartitionGroup::Deserialize(blob);
    benchmark::DoNotOptimize(restored.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_GroupDeserialize)->Arg(100)->Arg(1000)->Arg(10000);

/// Batch serialization — the data-plane cost of every split → engine
/// hop. items/s is tuples encoded per second.
void BM_TupleBatchEncode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TupleBatch batch;
  batch.stream_id = 0;
  for (int i = 0; i < n; ++i) {
    batch.tuples.push_back(MakeTuple(0, i, i % 50, 64));
  }
  std::string out;
  for (auto _ : state) {
    out.clear();
    EncodeTupleBatch(batch, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(out.size()));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TupleBatchEncode)->Arg(16)->Arg(256)->Arg(4096);

void BM_TupleBatchDecode(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TupleBatch batch;
  batch.stream_id = 0;
  for (int i = 0; i < n; ++i) {
    batch.tuples.push_back(MakeTuple(0, i, i % 50, 64));
  }
  std::string blob;
  EncodeTupleBatch(batch, &blob);
  for (auto _ : state) {
    StatusOr<TupleBatch> decoded = DecodeTupleBatch(blob);
    benchmark::DoNotOptimize(decoded.ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TupleBatchDecode)->Arg(16)->Arg(256)->Arg(4096);

void BM_SpillStoreWrite(benchmark::State& state) {
  SpillStore store(0, SpillStore::Config{},
                   std::make_unique<MemoryDiskBackend>());
  PartitionGroup group = BuildGroup(static_cast<int>(state.range(0)), 64);
  std::string blob;
  group.Serialize(&blob);
  Tick now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.WriteSegment(0, now++, blob, group.tuple_count()).ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(blob.size()));
}
BENCHMARK(BM_SpillStoreWrite)->Arg(100)->Arg(1000);

void BM_VictimSelection(benchmark::State& state) {
  const int groups = static_cast<int>(state.range(0));
  std::vector<GroupStats> stats;
  Rng rng(5);
  for (int p = 0; p < groups; ++p) {
    GroupStats g;
    g.partition = p;
    g.bytes = 1000 + static_cast<int64_t>(rng.Uniform(9000));
    g.outputs = static_cast<int64_t>(rng.Uniform(1000));
    g.productivity = static_cast<double>(g.outputs) / g.bytes;
    stats.push_back(g);
  }
  const int64_t target = groups * 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectSpillVictims(
        stats, SpillPolicy::kLeastProductiveFirst, target, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * groups);
}
BENCHMARK(BM_VictimSelection)->Arg(60)->Arg(500)->Arg(5000);

void BM_NetworkSendDeliver(benchmark::State& state) {
  Network::Config config;
  config.latency_ticks = 1;
  Network net(config);
  int64_t delivered = 0;
  net.RegisterNode(1, [&delivered](Tick, const Message&) { ++delivered; });
  StatsReport report;
  Tick now = 0;
  for (auto _ : state) {
    net.Send(MakeStatsReportMessage(0, 1, report), now);
    net.DeliverUntil(now + 2);
    ++now;
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_StreamGeneratorEmit(benchmark::State& state) {
  WorkloadConfig config;
  config.num_streams = 3;
  config.num_partitions = 60;
  config.inter_arrival_ticks = 1;  // emit every tick
  config.classes = {PartitionClass{3.0, 180000}};
  StreamGenerator gen(config);
  Tick now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.EmitForTick(now++));
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_StreamGeneratorEmit);

/// Full cluster stepping: generator → splits → engines → sink, 100
/// virtual ticks per iteration, with the worker-thread count as the
/// benchmark argument. items/s is end-to-end tuples per wall second.
/// The sliding window bounds state so long benchmark runs stay flat.
void BM_ClusterTick(benchmark::State& state) {
  ClusterConfig config;
  config.num_engines = 4;
  config.num_threads = static_cast<int>(state.range(0));
  config.workload.num_streams = 3;
  config.workload.num_partitions = 24;
  config.workload.inter_arrival_ticks = 1;
  config.workload.payload_bytes = 40;
  config.workload.classes = {PartitionClass{1.0, 4800}};
  config.join_window_ticks = SecondsToTicks(5);
  config.strategy = AdaptationStrategy::kNoAdaptation;
  config.collect_results = false;
  config.run_cleanup = false;
  Cluster cluster(config);
  Tick now = cluster.now();
  for (auto _ : state) {
    now += 100;
    cluster.RunUntil(now);
  }
  state.SetItemsProcessed(cluster.source().total_emitted());
}
BENCHMARK(BM_ClusterTick)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// BM_ClusterTick with structured tracing on: bounds the observability
/// plane's overhead (instrumentation sites are live; the data plane
/// itself stays untraced unless trace_verbose). Compare against
/// BM_ClusterTick/1 — the contract is <= 10% (and <= 2% with tracing
/// off, which BM_ClusterTick itself measures, since every site is then
/// a null check).
void BM_ClusterTickTraced(benchmark::State& state) {
  ClusterConfig config;
  config.num_engines = 4;
  config.num_threads = 1;
  config.workload.num_streams = 3;
  config.workload.num_partitions = 24;
  config.workload.inter_arrival_ticks = 1;
  config.workload.payload_bytes = 40;
  config.workload.classes = {PartitionClass{1.0, 4800}};
  config.join_window_ticks = SecondsToTicks(5);
  config.strategy = AdaptationStrategy::kNoAdaptation;
  config.collect_results = false;
  config.run_cleanup = false;
  config.trace = true;
  Cluster cluster(config);
  Tick now = cluster.now();
  for (auto _ : state) {
    now += 100;
    cluster.RunUntil(now);
  }
  state.SetItemsProcessed(cluster.source().total_emitted());
}
BENCHMARK(BM_ClusterTickTraced)->Unit(benchmark::kMillisecond);

/// The cleanup phase end-to-end: read every spilled generation back,
/// coalesce, and expand cross-generation combos, with the ExecPool
/// width as the benchmark argument. items/s is cleanup results per
/// wall second.
void BM_CleanupPhase(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kPartitions = 32;
  constexpr int kGenerations = 3;
  constexpr int kTuplesPerGen = 40;  // per stream
  auto build_store = [] {
    return std::make_unique<SpillStore>(0, SpillStore::Config{},
                                        std::make_unique<MemoryDiskBackend>());
  };
  auto fill = [&](SpillStore* store, StateManager* manager) {
    for (int p = 0; p < kPartitions; ++p) {
      for (int g = 0; g < kGenerations; ++g) {
        PartitionGroup group(p, 3);
        for (int i = 0; i < kTuplesPerGen; ++i) {
          for (StreamId s = 0; s < 3; ++s) {
            group.InsertOnly(MakeTuple(
                s, (g * kTuplesPerGen + i),
                static_cast<JoinKey>(p) * StreamGenerator::kKeyStride + i % 8,
                64));
          }
        }
        std::string blob;
        group.Serialize(&blob);
        benchmark::DoNotOptimize(
            store->WriteSegment(p, g * 100, blob, group.tuple_count()).ok());
      }
      // A small in-memory remainder per partition.
      for (StreamId s = 0; s < 3; ++s) {
        manager->ProcessTuple(
            p,
            MakeTuple(s, 100000 + p,
                      static_cast<JoinKey>(p) * StreamGenerator::kKeyStride,
                      64),
            nullptr);
      }
    }
  };
  CleanupConfig config;
  config.collect_results = false;
  CleanupProcessor processor(config, 3);
  ExecPool pool(workers);
  int64_t results = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto store = build_store();
    StateManager manager(3);
    fill(store.get(), &manager);
    state.ResumeTiming();
    StatusOr<CleanupStats> stats =
        processor.Run({store.get()}, {&manager},
                      workers > 1 ? &pool : nullptr);
    benchmark::DoNotOptimize(stats.ok());
    results += stats->result_count;
  }
  state.SetItemsProcessed(results);
}
BENCHMARK(BM_CleanupPhase)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StateManagerProcess(benchmark::State& state) {
  StateManager manager(3);
  Rng rng(7);
  int64_t seq = 0;
  for (auto _ : state) {
    const PartitionId p = static_cast<PartitionId>(rng.Uniform(60));
    Tuple t = MakeTuple(static_cast<StreamId>(seq % 3), seq,
                        static_cast<JoinKey>(p) * StreamGenerator::kKeyStride +
                            static_cast<JoinKey>(rng.Uniform(100)),
                        64);
    ++seq;
    benchmark::DoNotOptimize(manager.ProcessTuple(p, t, nullptr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateManagerProcess);

}  // namespace
}  // namespace dcape
