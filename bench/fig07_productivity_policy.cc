// Reproduces Figure 7 (+ the §3.2 cleanup comparison): effectiveness of
// the partition-group productivity metric for choosing spill victims.
//
// Setup: one engine; 1/3 of the partitions have join rate 4, 1/3 rate 2,
// 1/3 rate 1. "push-less-productive" spills the smallest
// P_output/P_size first, "push-more-productive" the largest first.
// The paper reports ~70% higher output rate after 40 minutes for
// push-less-productive, and a far cheaper cleanup (26.9 s / 194 K tuples
// vs 359 s / 993 K tuples).

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.workload.classes = {PartitionClass{4.0, 180000},
                             PartitionClass{2.0, 180000},
                             PartitionClass{1.0, 180000}};
  config.workload.partition_class = AssignClassesByFraction(
      config.workload.num_partitions, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  return config;
}

int Main() {
  PrintFigureHeader(
      "Figure 7", "Throughput-oriented spill evaluation",
      "3-way join, 1 engine; partitions: 1/3 join rate 4, 1/3 rate 2, "
      "1/3 rate 1; spill 30% above threshold",
      "push-less-productive sustains a much higher run-time output rate "
      "(~70% at 40 min) and leaves far less work to the cleanup phase");

  std::vector<RunResult> runs;
  std::vector<std::string> labels = {"push-less-productive",
                                     "push-more-productive"};

  ClusterConfig less = Config();
  less.spill.policy = SpillPolicy::kLeastProductiveFirst;
  runs.push_back(RunLabeled(less, labels[0]));

  ClusterConfig more = Config();
  more.spill.policy = SpillPolicy::kMostProductiveFirst;
  runs.push_back(RunLabeled(more, labels[1]));

  PrintThroughputTables(runs, labels, 40, 4);

  const double gain =
      100.0 * (runs[0].throughput.Last() - runs[1].throughput.Last()) /
      runs[1].throughput.Last();
  std::cout << "\nrun-time output advantage of push-less-productive at 40 "
               "min: "
            << static_cast<int>(gain) << "%\n";

  std::cout << "\ncleanup comparison (paper: 26,879 ms / 194,308 tuples vs "
               "359,396 ms / 992,893 tuples):\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    std::cout << "  " << labels[i] << ": " << runs[i].cleanup.total_ticks
              << " ms to produce " << runs[i].cleanup.result_count
              << " tuples\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
