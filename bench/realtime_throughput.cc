// Realtime throughput benchmark: free-run the wall-clock driver
// (rt::RealtimeDriver) and report sustained tuples/sec, end-to-end
// latency percentiles, and backpressure pressure across a per-core
// scaling sweep of engine-thread counts.
//
// Usage:
//   realtime_throughput [--duration-sec=N] [--engines=a,b,c]
//                       [--rate=N] [--out=PATH]
//
// Defaults: 3 s per point, engines 1,2,4,8, free-run (rate 0), JSON to
// BENCH_realtime.json. The JSON schema is documented in
// docs/REALTIME.md ("Benchmark output").

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/realtime_driver.h"
#include "runtime/cluster_config.h"

namespace dcape {
namespace bench {
namespace {

/// A data-plane-bound workload: every virtual tick carries tuples (no
/// empty cursor spins), the key space is sparse (state pressure without
/// a result-count explosion), and partitions spread evenly over however
/// many engines the sweep point runs.
ClusterConfig BenchConfig(int num_engines) {
  ClusterConfig config;
  config.num_engines = num_engines;
  config.strategy = AdaptationStrategy::kNoAdaptation;
  config.workload.num_streams = 3;
  config.workload.num_partitions = 60;
  config.workload.inter_arrival_ticks = 1;
  config.workload.payload_bytes = 64;
  config.workload.classes = {PartitionClass{/*join_rate=*/1.0,
                                            /*tuple_range=*/1000000}};
  config.workload.seed = 42;
  config.collect_results = false;
  config.run_cleanup = false;
  config.cleanup.collect_results = false;
  return config;
}

struct SweepPoint {
  int engine_threads = 0;
  rt::RealtimeReport report;
};

std::string JsonReport(const std::vector<SweepPoint>& points,
                       const rt::RealtimeOptions& options) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"benchmark\": \"realtime_throughput\",\n";
  out << "  \"mode\": \"" << (options.rate > 0 ? "paced" : "free-run")
      << "\",\n";
  out << "  \"rate\": " << options.rate << ",\n";
  out << "  \"duration_sec\": " << options.duration_sec << ",\n";
  out << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"sweep\": [\n";
  const double base = points.empty() || points[0].report.tuples_per_sec <= 0
                          ? 1.0
                          : points[0].report.tuples_per_sec;
  for (size_t i = 0; i < points.size(); ++i) {
    const rt::RealtimeReport& r = points[i].report;
    out << "    {\"engine_threads\": " << points[i].engine_threads
        << ", \"total_threads\": " << r.total_threads
        << ", \"tuples_generated\": " << r.tuples_generated
        << ", \"ticks_run\": " << r.ticks_run
        << ", \"generate_wall_sec\": " << r.generate_wall_sec
        << ", \"tuples_per_sec\": " << static_cast<int64_t>(r.tuples_per_sec)
        << ", \"results_per_sec\": "
        << static_cast<int64_t>(r.results_per_sec)
        << ", \"scaling_vs_first\": " << r.tuples_per_sec / base
        << ", \"backpressure_parks\": " << r.backpressure_parks
        << ", \"latency_us\": {\"count\": " << r.latency_us.count()
        << ", \"p50\": " << r.latency_us.Quantile(0.5)
        << ", \"p90\": " << r.latency_us.Quantile(0.9)
        << ", \"p99\": " << r.latency_us.Quantile(0.99)
        << ", \"max\": " << r.latency_us.max() << "}}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.str();
}

int Main(const std::vector<std::string>& args) {
  rt::RealtimeOptions options;
  options.duration_sec = 3;
  std::vector<int> engine_counts = {1, 2, 4, 8};
  std::string out_path = "BENCH_realtime.json";
  for (const std::string& arg : args) {
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--duration-sec") {
      options.duration_sec = std::stoi(value);
    } else if (key == "--rate") {
      options.rate = std::stoll(value);
    } else if (key == "--out") {
      out_path = value;
    } else if (key == "--engines") {
      engine_counts.clear();
      std::istringstream list(value);
      std::string item;
      while (std::getline(list, item, ',')) {
        engine_counts.push_back(std::stoi(item));
      }
    } else {
      std::cerr << "unknown flag " << arg << "\n";
      return 2;
    }
  }

  std::cout << "realtime throughput sweep: "
            << (options.rate > 0
                    ? std::to_string(options.rate) + " tuples/sec paced"
                    : std::string("free-run"))
            << ", " << options.duration_sec << "s per point, host cores: "
            << std::thread::hardware_concurrency() << "\n\n";
  std::cout << "engines | tuples/sec | results/sec | lat p50/p99 (us) | "
               "parks | scaling\n";

  std::vector<SweepPoint> points;
  for (int engines : engine_counts) {
    rt::RealtimeDriver driver(BenchConfig(engines), options);
    driver.Run();
    SweepPoint point;
    point.engine_threads = engines;
    point.report = driver.report();
    points.push_back(point);
    const rt::RealtimeReport& r = points.back().report;
    const double base = points[0].report.tuples_per_sec > 0
                            ? points[0].report.tuples_per_sec
                            : 1.0;
    std::cout << engines << " | " << static_cast<int64_t>(r.tuples_per_sec)
              << " | " << static_cast<int64_t>(r.results_per_sec) << " | "
              << r.latency_us.Quantile(0.5) << "/"
              << r.latency_us.Quantile(0.99) << " | "
              << r.backpressure_parks << " | " << r.tuples_per_sec / base
              << "x\n";
  }

  const std::string json = JsonReport(points, options);
  std::ofstream out(out_path);
  out << json;
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  std::cout << "\nwritten to " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return dcape::bench::Main(args);
}
