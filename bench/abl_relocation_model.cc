// Ablation: relocation planning model (DESIGN.md; paper §4 notes that
// schemes beyond its pairwise model "could fairly easily be
// incorporated").
//
// With four engines and a strongly skewed initial placement, the
// pairwise model needs several timer rounds (each gated by τ_m) to
// drain the overloaded engine, while the global-rebalance model plans a
// whole round of moves on the first trigger and executes them back to
// back.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 4;
  config.placement_fractions = {0.55, 0.25, 0.1, 0.1};
  config.strategy = AdaptationStrategy::kRelocationOnly;
  config.spill.memory_threshold_bytes = 4 * kGiB;  // memory unconstrained
  return config;
}

/// First sampled minute at which all engines are within 25% of the mean.
int64_t MinuteBalanced(const RunResult& run) {
  for (int64_t minute = 1; minute <= 40; ++minute) {
    const Tick t = MinutesToTicks(minute);
    double total = 0;
    double min_v = 1e300;
    double max_v = 0;
    for (const TimeSeries& s : run.engine_memory) {
      const double v = s.ValueAtOrBefore(t);
      total += v;
      min_v = std::min(min_v, v);
      max_v = std::max(max_v, v);
    }
    const double mean = total / static_cast<double>(run.engine_memory.size());
    if (mean > 0 && min_v > 0.75 * mean && max_v < 1.25 * mean) return minute;
  }
  return -1;
}

int Main() {
  PrintFigureHeader(
      "Ablation: relocation model", "pairwise vs global-rebalance",
      "4 engines, placement 55/25/10/10, relocation-only, θ_r = 0.8, "
      "τ_m = 45 s",
      "(our extension) — global-rebalance reaches a balanced cluster in "
      "fewer timer rounds; throughput is equal (memory is unconstrained)");

  std::vector<RunResult> runs;
  std::vector<std::string> labels;
  for (RelocationModel model :
       {RelocationModel::kPairwise, RelocationModel::kGlobalRebalance}) {
    ClusterConfig config = Config();
    config.relocation.model = model;
    std::string label = RelocationModelName(model);
    runs.push_back(RunLabeled(config, label));
    labels.push_back(label);
  }

  std::cout << "\nper-engine memory at minute 6 (KiB):\n";
  TablePrinter table({"model", "M1", "M2", "M3", "M4", "balanced-at-min",
                      "relocations"});
  for (size_t i = 0; i < runs.size(); ++i) {
    std::vector<std::string> row = {labels[i]};
    for (const TimeSeries& s : runs[i].engine_memory) {
      row.push_back(FormatDouble(
          s.ValueAtOrBefore(MinutesToTicks(6)) / kKiB, 0));
    }
    row.push_back(std::to_string(MinuteBalanced(runs[i])));
    row.push_back(std::to_string(runs[i].coordinator.relocations_completed));
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
