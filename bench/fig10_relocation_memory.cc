// Reproduces Figure 10: per-machine memory usage with and without state
// relocation under the alternating workload of Figure 9 (θ_r = 0.9,
// τ_m = 45 s).
//
// Without relocation the two machines' memory alternates dramatically
// (the hot half of the input grows much faster); with relocation the
// usage stays largely balanced, maximizing the room for memory-resident
// processing.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 2;
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = MinutesToTicks(5);
  config.workload.fluctuation.hot_multiplier = 10.0;
  config.spill.memory_threshold_bytes = 4 * kGiB;
  config.relocation.theta_r = 0.9;
  config.relocation.min_time_between = SecondsToTicks(45);
  return config;
}

int Main() {
  PrintFigureHeader(
      "Figure 10", "Memory usage with vs without relocation",
      "Figure 9's alternating workload; θ_r = 0.9, τ_m = 45 s",
      "without relocation the machines' memory alternates far apart; with "
      "relocation both curves stay close together (balanced)");

  ClusterConfig no_reloc = Config();
  no_reloc.strategy = AdaptationStrategy::kNoAdaptation;
  RunResult without = RunLabeled(no_reloc, "no-relocation");

  ClusterConfig with_reloc = Config();
  with_reloc.strategy = AdaptationStrategy::kRelocationOnly;
  RunResult with = RunLabeled(with_reloc, "with-relocation");

  PrintMemoryTables(
      {&without.engine_memory[0], &without.engine_memory[1],
       &with.engine_memory[0], &with.engine_memory[1]},
      {"no-relocation-M1", "no-relocation-M2", "with-relocation-M1",
       "with-relocation-M2"},
      40, 2);

  // Quantify balance: the mean of |M1 − M2| / (M1 + M2) after the first
  // relocation opportunity has passed (skip the 5-minute warm-up).
  auto imbalance = [](const RunResult& run) {
    double total = 0;
    int samples = 0;
    const auto& m0 = run.engine_memory[0].samples();
    const auto& m1 = run.engine_memory[1];
    for (const auto& [tick, v0] : m0) {
      if (tick < MinutesToTicks(5)) continue;
      const double v1 = m1.ValueAtOrBefore(tick);
      if (v0 + v1 > 0) {
        total += std::abs(v0 - v1) / (v0 + v1);
        ++samples;
      }
    }
    return samples > 0 ? total / samples : 0.0;
  };
  std::cout << "\nmean memory imbalance |M1-M2|/(M1+M2) after warm-up: "
            << "no-relocation=" << FormatDouble(imbalance(without), 3)
            << ", with-relocation=" << FormatDouble(imbalance(with), 3)
            << "\nrelocations performed: "
            << with.coordinator.relocations_completed << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
