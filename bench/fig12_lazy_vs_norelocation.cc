// Reproduces Figure 12 (+ the §5.2 overloaded-cluster cleanup
// comparison): the lazy-disk strategy versus pure local spilling in a
// memory-constrained cluster.
//
// Setup: three engines; one initially owns 2/3 of all partitions, the
// other two split the remaining 1/3. Memory thresholds are low enough
// that the aggregate cluster memory cannot hold the query: even lazy-disk
// must eventually spill — but it relocates first, using all machines'
// memory and (crucially) spreading the disk-resident state, so the
// cleanup phase parallelizes. The paper reports similar total output but
// cleanup in < 400 s for lazy-disk vs > 1600 s for no-relocation.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 3;
  config.placement_fractions = {2.0 / 3, 1.0 / 6, 1.0 / 6};
  // Aggregate capacity (3 × 16 MiB) is below the query's ~70 MiB of
  // state: the cluster as a whole is overloaded.
  config.spill.memory_threshold_bytes = 16 * kMiB;
  return config;
}

int Main() {
  PrintFigureHeader(
      "Figure 12", "Lazy-disk vs no-relocation (memory-constrained)",
      "3-way join, 3 engines, placement 2/3 : 1/6 : 1/6, aggregate memory "
      "below the query's needs",
      "lazy-disk produces more run-time output by using all machines' "
      "memory; in the fully-overloaded regime total output is similar but "
      "cleanup is ~4x faster because disk state is spread (400 s vs "
      "1600 s in the paper)");

  std::vector<RunResult> runs;
  std::vector<std::string> labels = {"no-relocation", "lazy-disk"};

  ClusterConfig no_reloc = Config();
  no_reloc.strategy = AdaptationStrategy::kSpillOnly;
  runs.push_back(RunLabeled(no_reloc, labels[0]));

  ClusterConfig lazy = Config();
  lazy.strategy = AdaptationStrategy::kLazyDisk;
  runs.push_back(RunLabeled(lazy, labels[1]));

  PrintThroughputTables(runs, labels, 40, 4);

  std::cout << "\ncleanup-phase comparison (paper: >1600 s concentrated vs "
               "<400 s spread):\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    std::cout << "  " << labels[i] << ": " << runs[i].cleanup.total_ticks
              << " ms total (parallel over engines), per-engine busy [";
    for (Tick t : runs[i].cleanup.engine_ticks) std::cout << " " << t;
    std::cout << " ], " << runs[i].cleanup.result_count
              << " cleanup results\n";
  }
  const double speedup =
      static_cast<double>(runs[0].cleanup.total_ticks) /
      static_cast<double>(std::max<Tick>(1, runs[1].cleanup.total_ticks));
  std::cout << "cleanup speedup of lazy-disk: " << FormatDouble(speedup, 2)
            << "x\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
