// Reproduces Figure 6: memory usage over time while varying the spill
// volume k% — the same runs as Figure 5, now plotting each engine's
// tracked state bytes. Each drop ("zag") is one spill adaptation; larger
// k% means deeper drops and fewer adaptations.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"

namespace dcape {
namespace bench {
namespace {

int Main() {
  PrintFigureHeader(
      "Figure 6", "Varying k%: impact on memory usage",
      "same runs as Figure 5; tracked operator-state bytes on the single "
      "engine, sampled every 30 s",
      "memory is capped near the threshold for every k; higher k% gives "
      "deeper, less frequent zigzags (fewer adaptations)");

  std::vector<RunResult> runs;
  std::vector<std::string> labels;

  ClusterConfig config = PaperBaseConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  runs.push_back(RunLabeled(config, "All-Mem"));
  labels.push_back("All-Mem");

  for (double k : {0.10, 0.30, 0.50, 1.00}) {
    ClusterConfig variant = PaperBaseConfig();
    variant.strategy = AdaptationStrategy::kSpillOnly;
    variant.spill.policy = SpillPolicy::kRandom;
    variant.spill.spill_fraction = k;
    std::string label = std::to_string(static_cast<int>(k * 100)) + "%-push";
    runs.push_back(RunLabeled(variant, label));
    labels.push_back(label);
  }

  std::vector<const TimeSeries*> series;
  for (const RunResult& run : runs) series.push_back(&run.engine_memory[0]);
  PrintMemoryTables(series, labels, 40, 2);

  std::cout << "\nthreshold: "
            << FormatBytes(PaperBaseConfig().spill.memory_threshold_bytes)
            << "; adaptations: ";
  for (size_t i = 1; i < runs.size(); ++i) {
    std::cout << labels[i] << "=" << runs[i].spill_events << " ";
  }
  std::cout << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
