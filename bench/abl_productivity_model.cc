// Ablation: productivity estimation model (DESIGN.md §3.4).
//
// The paper's metric is the cumulative P_output/P_size ratio, and §2
// suggests an amortized (recency-weighted) variant for unstable
// workloads. This ablation runs spill-only under the alternating-load
// workload, where partition behaviour flips every phase: the cumulative
// model keeps ranking the formerly-hot partitions as productive long
// after they went cold, while the EWMA model tracks the shift.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 1;
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.spill.memory_threshold_bytes = 12 * kMiB;
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = MinutesToTicks(10);
  config.workload.fluctuation.hot_multiplier = 10.0;
  // Permanent shift: the first half of the partitions is hot for 10
  // minutes, then the load moves to the other half for good.
  config.workload.fluctuation.one_shot = true;
  // With one engine the fluctuation set defaults to its whole share;
  // split the partition space manually instead.
  for (PartitionId p = 0; p < config.workload.num_partitions / 2; ++p) {
    config.workload.fluctuation.set_a.push_back(p);
  }
  return config;
}

int Main() {
  PrintFigureHeader(
      "Ablation: productivity model",
      "cumulative P_output/P_size vs recency-weighted EWMA",
      "1 engine, spill-only, one-shot 10x load shift at minute 10, tight "
      "threshold",
      "(our extension of the paper's §2 remark) — the EWMA estimator "
      "should spill the partitions that went cold, keeping the currently "
      "hot ones resident");

  std::vector<RunResult> runs;
  std::vector<std::string> labels;
  for (ProductivityModel model :
       {ProductivityModel::kCumulative, ProductivityModel::kEwma}) {
    ClusterConfig config = Config();
    config.productivity.model = model;
    config.productivity.ewma_alpha = 0.5;
    std::string label = ProductivityModelName(model);
    runs.push_back(RunLabeled(config, label));
    labels.push_back(label);
  }

  PrintThroughputTables(runs, labels, 40, 4);

  const double gain =
      100.0 * (runs[1].throughput.Last() - runs[0].throughput.Last()) /
      std::max(1.0, runs[0].throughput.Last());
  std::cout << "\newma run-time output vs cumulative at 40 min: "
            << FormatDouble(gain, 1) << "%\n"
            << "cleanup debt: cumulative=" << runs[0].cleanup.result_count
            << " ewma=" << runs[1].cleanup.result_count << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
