// Reproduces Figure 9: sensitivity of state relocation to the threshold
// θ_r under a worst-case alternating workload.
//
// Setup (paper §4.2): two engines, each initially owning half the
// partitions; every 5 minutes the hot half of the input flips (10× load),
// so memory demand alternates dramatically. τ_m = 45 s. θ_r is swept from
// 0.5 to 0.9 and compared with All-Mem (no adaptation).
// The paper finds all θ_r values achieve ≈ All-Mem throughput — pairwise
// relocation is cheap on a fast LAN — while the relocation count rises
// with θ_r (24 at 0.9 vs 2 at 0.5 in their runs).

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 2;
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = MinutesToTicks(5);
  config.workload.fluctuation.hot_multiplier = 10.0;
  // Memory never constrained in this experiment.
  config.spill.memory_threshold_bytes = 4 * kGiB;
  config.relocation.min_time_between = SecondsToTicks(45);
  return config;
}

int Main() {
  PrintFigureHeader(
      "Figure 9", "Varying relocation threshold θ_r",
      "3-way join, 2 engines, alternating 10x load every 5 min, τ_m = 45 s, "
      "θ_r ∈ {0.5 … 0.9} vs All-Mem",
      "throughput is nearly identical for all θ_r and matches All-Mem; the "
      "number of relocations grows with θ_r (paper: 24 at 0.9 vs 2 at 0.5)");

  std::vector<RunResult> runs;
  std::vector<std::string> labels;

  ClusterConfig all_mem = Config();
  all_mem.strategy = AdaptationStrategy::kNoAdaptation;
  runs.push_back(RunLabeled(all_mem, "All-Mem"));
  labels.push_back("All-Mem");

  for (double theta : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    ClusterConfig variant = Config();
    variant.strategy = AdaptationStrategy::kRelocationOnly;
    variant.relocation.theta_r = theta;
    std::string label = "theta=" + FormatDouble(theta, 1);
    runs.push_back(RunLabeled(variant, label));
    labels.push_back(label);
  }

  PrintThroughputTables(runs, labels, 40, 4);

  std::cout << "\nrelocations performed:\n";
  for (size_t i = 1; i < runs.size(); ++i) {
    std::cout << "  " << labels[i] << ": "
              << runs[i].coordinator.relocations_completed << " relocations, "
              << runs[i].network.state_transfer_bytes / 1024
              << " KiB of state moved\n";
  }
  std::cout << "\nthroughput relative to All-Mem at 40 min:\n";
  for (size_t i = 1; i < runs.size(); ++i) {
    std::cout << "  " << labels[i] << ": "
              << FormatDouble(100.0 * runs[i].throughput.Last() /
                                  runs[0].throughput.Last(),
                              1)
              << "%\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
