// Ablation: sliding-window join semantics (the paper notes its
// techniques "could also be applied to cases with infinite data streams
// as long as operators have finite window sizes").
//
// Sweeps the window size under the all-memory strategy: eviction keeps
// resident state near one window of input, so memory plateaus instead of
// growing monotonically — the property that makes truly infinite runs
// feasible. Output shrinks with the window (fewer qualifying
// combinations).

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/units.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

int Main() {
  PrintFigureHeader(
      "Ablation: window size", "sliding-window join, W ∈ {1, 5, 20, ∞} min",
      "1 engine, no adaptation; eviction keeps state near one window of "
      "input",
      "(our extension) — state plateaus at ~rate x window instead of "
      "growing with the run; output shrinks as the window tightens");

  TablePrinter table({"window", "results", "evicted-tuples", "peak-mem",
                      "final-mem"});
  for (int64_t window_min : {1, 5, 20, 0}) {
    ClusterConfig config = PaperBaseConfig();
    config.num_engines = 1;
    config.strategy = AdaptationStrategy::kNoAdaptation;
    config.join_window_ticks = MinutesToTicks(window_min);
    std::string label =
        window_min == 0 ? "unbounded" : std::to_string(window_min) + "min";
    RunResult result = RunLabeled(config, "W=" + label);

    int64_t evicted = 0;
    for (const auto& c : result.engines) evicted += c.evicted_tuples;
    table.AddRow({label, std::to_string(result.runtime_results),
                  std::to_string(evicted),
                  FormatBytes(static_cast<int64_t>(
                      result.engine_memory[0].Max())),
                  FormatBytes(static_cast<int64_t>(
                      result.engine_memory[0].Last()))});
  }
  std::cout << "\n";
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
