// Ablation: online state restore (DESIGN.md; paper §3 notes the cleanup
// "can be performed at any time when memory becomes available").
//
// Under the alternating workload, each engine's memory demand breathes:
// during its cold phases room opens up, and the restore policy reads
// spilled generations back, producing their deferred results during the
// run-time phase. Total output is identical either way (exactness);
// restore shifts results from the post-run cleanup into the run itself
// and shrinks the cleanup debt.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "metrics/table_printer.h"

namespace dcape {
namespace bench {
namespace {

ClusterConfig Config() {
  ClusterConfig config = PaperBaseConfig();
  config.num_engines = 2;
  config.strategy = AdaptationStrategy::kSpillOnly;
  config.spill.memory_threshold_bytes = 10 * kMiB;
  config.workload.fluctuation.enabled = true;
  config.workload.fluctuation.phase_ticks = MinutesToTicks(5);
  config.workload.fluctuation.hot_multiplier = 10.0;
  return config;
}

int Main() {
  PrintFigureHeader(
      "Ablation: online state restore",
      "spill-only with vs without run-time restore of disk generations",
      "2 engines, alternating 10x load, tight thresholds; restore below "
      "90% of threshold",
      "(our extension) — same total results; restore delivers more of "
      "them during the run-time phase and leaves less cleanup work");

  std::vector<RunResult> runs;
  std::vector<std::string> labels = {"no-restore", "with-restore"};

  ClusterConfig without = Config();
  runs.push_back(RunLabeled(without, labels[0]));

  ClusterConfig with = Config();
  with.restore.enabled = true;
  with.restore.low_watermark = 0.9;
  with.restore.check_period = SecondsToTicks(10);
  runs.push_back(RunLabeled(with, labels[1]));

  PrintThroughputTables(runs, labels, 40, 4);

  int64_t restored_segments = 0;
  int64_t restored_results = 0;
  for (const auto& c : runs[1].engines) {
    restored_segments += c.restored_segments;
    restored_results += c.restored_results;
  }
  std::cout << "\nrestores: " << restored_segments << " generations, "
            << restored_results << " deferred results produced online\n";
  std::cout << "runtime results: no-restore=" << runs[0].runtime_results
            << " with-restore=" << runs[1].runtime_results << "\n";
  std::cout << "cleanup debt:    no-restore=" << runs[0].cleanup.result_count
            << " with-restore=" << runs[1].cleanup.result_count << "\n";
  std::cout << "total (identical by exactness): "
            << runs[0].TotalResults() << " vs " << runs[1].TotalResults()
            << "\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
