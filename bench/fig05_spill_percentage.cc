// Reproduces Figure 5: sensitivity of run-time throughput to the spill
// volume k% (percentage of memory-resident state pushed per adaptation).
//
// Setup (paper §3.2): three-way join on a single machine, spill triggered
// above the memory threshold, victims chosen RANDOMLY so only the pushed
// amount matters. Series: All-Mem baseline plus k ∈ {10, 30, 50, 100}.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"

namespace dcape {
namespace bench {
namespace {

int Main() {
  PrintFigureHeader(
      "Figure 5", "Varying k%: impact on run-time throughput",
      "3-way join, 1 engine, random victims, spill above threshold; "
      "k% of state pushed per spill",
      "the more state pushed per spill, the lower the overall throughput; "
      "All-Mem is the upper bound and 100%-push the lower bound");

  std::vector<RunResult> runs;
  std::vector<std::string> labels;

  ClusterConfig config = PaperBaseConfig();
  config.strategy = AdaptationStrategy::kNoAdaptation;
  runs.push_back(RunLabeled(config, "All-Mem"));
  labels.push_back("All-Mem");

  for (double k : {0.10, 0.30, 0.50, 1.00}) {
    ClusterConfig variant = PaperBaseConfig();
    variant.strategy = AdaptationStrategy::kSpillOnly;
    variant.spill.policy = SpillPolicy::kRandom;
    variant.spill.spill_fraction = k;
    std::string label = std::to_string(static_cast<int>(k * 100)) + "%-push";
    runs.push_back(RunLabeled(variant, label));
    labels.push_back(label);
  }

  PrintThroughputTables(runs, labels, 40, 4);

  std::cout << "\nspill adaptations triggered:\n";
  for (size_t i = 1; i < runs.size(); ++i) {
    std::cout << "  " << labels[i] << ": " << runs[i].spill_events
              << " spills, deferred " << runs[i].cleanup.result_count
              << " results to cleanup\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dcape

int main() { return dcape::bench::Main(); }
