#include "cleanup/cleanup.h"

#include <algorithm>
#include <iterator>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "runtime/exec_pool.h"
#include "state/partition_group.h"

namespace dcape {
namespace {

/// One member tuple's identity plus the typed columns the projection
/// needs.
struct MemberRef {
  int64_t seq = 0;
  int64_t value = 0;
  int64_t category = 0;
  Tick timestamp = 0;
};

/// One generation of a partition during cleanup: per stream, the member
/// refs seen per join key.
struct Generation {
  EngineId home = 0;
  /// Eviction *fragments*: window-expired tuples preserved when their
  /// partition had disk generations. A fragment belongs to the logical
  /// generation it was evicted from, which ends at the next spill (or
  /// the memory remainder); fragments are coalesced into that ending
  /// generation before the incremental merge, so that intra-logical-
  /// generation combinations — produced at run time or outside the
  /// window — are exactly the excluded all-Δ term.
  bool evicted = false;
  /// Ordering key: spill time for disk generations; memory remainders
  /// sort last.
  Tick order_time = 0;
  int64_t order_tiebreak = 0;
  int64_t bytes = 0;
  int64_t tuple_count = 0;
  std::vector<std::unordered_map<JoinKey, std::vector<MemberRef>>> keys;
};

/// Converts a deserialized partition group into a Generation.
Generation FromGroup(const PartitionGroup& group, EngineId home,
                     Tick order_time, int64_t tiebreak, int64_t bytes) {
  Generation gen;
  gen.home = home;
  gen.order_time = order_time;
  gen.order_tiebreak = tiebreak;
  gen.bytes = bytes;
  gen.tuple_count = group.tuple_count();
  gen.keys.resize(static_cast<size_t>(group.num_streams()));
  for (StreamId s = 0; s < group.num_streams(); ++s) {
    auto& out = gen.keys[static_cast<size_t>(s)];
    for (const auto& [key, tuples] : group.TableForStream(s)) {
      std::vector<MemberRef>& refs = out[key];
      refs.reserve(tuples.size());
      for (const Tuple& t : tuples) {
        refs.push_back(MemberRef{t.seq, t.value, t.category, t.timestamp});
      }
    }
  }
  return gen;
}

/// What one partition's merge contributes to the global CleanupStats.
/// Accumulated privately per partition so the merge loop can run on any
/// ExecPool lane, then folded into the stats in fixed partition order.
struct PartitionOutcome {
  EngineId home = 0;
  /// Busy time charged to the home engine (network fetch + join CPU).
  Tick home_ticks = 0;
  int64_t produced = 0;
  std::vector<JoinResult> results;
};

/// Tasks (2)+(3) of §3 for one partition: order its generations,
/// coalesce eviction fragments, pick the cleanup home, and emit the
/// cross-generation results. Consumes `generations`. Pure function of
/// its inputs — partitions share nothing, which is what makes the
/// parallel dispatch race-free.
PartitionOutcome ProcessPartition(const CleanupConfig& config, int num_streams,
                                  PartitionId partition,
                                  std::vector<Generation>* generations_in) {
  PartitionOutcome outcome;
  std::vector<Generation>& generations = *generations_in;
  if (generations.size() < 2) return outcome;
  std::sort(generations.begin(), generations.end(),
            [](const Generation& a, const Generation& b) {
              if (a.order_time != b.order_time) {
                return a.order_time < b.order_time;
              }
              if (a.home != b.home) return a.home < b.home;
              return a.order_tiebreak < b.order_tiebreak;
            });

  // Coalesce eviction fragments into the generation that ends their
  // logical generation: the next non-evicted generation in time order
  // (a spill or the memory remainder). Trailing fragments with no
  // later non-evicted generation form one unit of their own.
  {
    std::vector<Generation> coalesced;
    std::vector<Generation> pending;
    auto merge_into = [num_streams](Generation* target,
                                    Generation&& fragment) {
      for (int s = 0; s < num_streams; ++s) {
        auto& dst = target->keys[static_cast<size_t>(s)];
        for (auto& [key, refs] : fragment.keys[static_cast<size_t>(s)]) {
          std::vector<MemberRef>& bucket = dst[key];
          bucket.insert(bucket.end(), refs.begin(), refs.end());
        }
      }
      target->bytes += fragment.bytes;
      target->tuple_count += fragment.tuple_count;
    };
    for (Generation& gen : generations) {
      if (gen.evicted) {
        pending.push_back(std::move(gen));
        continue;
      }
      for (Generation& fragment : pending) {
        merge_into(&gen, std::move(fragment));
      }
      pending.clear();
      coalesced.push_back(std::move(gen));
    }
    if (!pending.empty()) {
      Generation unit = std::move(pending.front());
      for (size_t i = 1; i < pending.size(); ++i) {
        merge_into(&unit, std::move(pending[i]));
      }
      coalesced.push_back(std::move(unit));
    }
    generations = std::move(coalesced);
  }
  if (generations.size() < 2) return outcome;

  // The partition's cleanup home: the engine holding most of its bytes.
  std::map<EngineId, int64_t> bytes_at;
  for (const Generation& gen : generations) bytes_at[gen.home] += gen.bytes;
  EngineId home = generations.front().home;
  int64_t best = -1;
  for (const auto& [engine, bytes] : bytes_at) {
    if (bytes > best) {
      best = bytes;
      home = engine;
    }
  }
  outcome.home = home;
  // Remote generations must travel to the home over the network.
  for (const Generation& gen : generations) {
    if (gen.home != home) {
      outcome.home_ticks += (gen.bytes + config.network_bytes_per_tick - 1) /
                            config.network_bytes_per_tick;
    }
  }

  // Cumulative tables C per stream.
  std::vector<std::unordered_map<JoinKey, std::vector<MemberRef>>> cumulative(
      static_cast<size_t>(num_streams));

  for (size_t g = 0; g < generations.size(); ++g) {
    const Generation& delta = generations[g];
    if (g > 0) {
      // Emit Π(C∪Δ) − Π(C) − Π(Δ): every non-empty, non-full choice of
      // "this stream's member comes from Δ".
      const uint32_t full = (1u << num_streams) - 1;
      for (uint32_t mask = 1; mask < full; ++mask) {
        // Iterate keys of the smallest Δ-side stream in the mask.
        int seed_stream = -1;
        for (int s = 0; s < num_streams; ++s) {
          if ((mask >> s) & 1u) {
            if (seed_stream < 0 ||
                delta.keys[static_cast<size_t>(s)].size() <
                    delta.keys[static_cast<size_t>(seed_stream)].size()) {
              seed_stream = s;
            }
          }
        }
        DCAPE_CHECK_GE(seed_stream, 0);
        for (const auto& [key, seed_refs] :
             delta.keys[static_cast<size_t>(seed_stream)]) {
          // Gather the member lists per stream for this key.
          std::vector<const std::vector<MemberRef>*> lists(
              static_cast<size_t>(num_streams), nullptr);
          bool all_present = true;
          for (int s = 0; s < num_streams && all_present; ++s) {
            const auto& source = ((mask >> s) & 1u)
                                     ? delta.keys[static_cast<size_t>(s)]
                                     : cumulative[static_cast<size_t>(s)];
            auto it = source.find(key);
            if (it == source.end() || it->second.empty()) {
              all_present = false;
            } else {
              lists[static_cast<size_t>(s)] = &it->second;
            }
          }
          if (!all_present) continue;

          // Odometer over the m lists.
          std::vector<size_t> cursor(static_cast<size_t>(num_streams), 0);
          JoinResult result;
          result.partition = partition;
          result.join_key = key;
          result.member_seqs.assign(static_cast<size_t>(num_streams), 0);
          while (true) {
            int64_t agg = 0;
            bool first_member = true;
            Tick min_ts = 0;
            Tick max_ts = 0;
            bool first_ts = true;
            for (int s = 0; s < num_streams; ++s) {
              const MemberRef& member =
                  (*lists[static_cast<size_t>(s)])[cursor[
                      static_cast<size_t>(s)]];
              result.member_seqs[static_cast<size_t>(s)] = member.seq;
              if (first_ts) {
                min_ts = max_ts = member.timestamp;
                first_ts = false;
              } else {
                min_ts = std::min(min_ts, member.timestamp);
                max_ts = std::max(max_ts, member.timestamp);
              }
              if (config.projection.has_value()) {
                if (s == config.projection->group_stream) {
                  result.group_key = member.category;
                }
                agg = FoldAggregate(config.projection->op, agg, member.value,
                                    first_member);
                first_member = false;
              }
            }
            if (config.window_ticks <= 0 ||
                max_ts - min_ts <= config.window_ticks) {
              if (config.projection.has_value()) result.agg_value = agg;
              result.latest_member_ts = max_ts;
              outcome.produced += 1;
              if (config.collect_results) outcome.results.push_back(result);
            }

            int s = num_streams - 1;
            for (; s >= 0; --s) {
              size_t& c = cursor[static_cast<size_t>(s)];
              if (++c < lists[static_cast<size_t>(s)]->size()) break;
              c = 0;
            }
            if (s < 0) break;
          }
        }
      }
    }
    // Merge Δ into C.
    for (int s = 0; s < num_streams; ++s) {
      auto& dst = cumulative[static_cast<size_t>(s)];
      for (const auto& [key, refs] : delta.keys[static_cast<size_t>(s)]) {
        std::vector<MemberRef>& bucket = dst[key];
        bucket.insert(bucket.end(), refs.begin(), refs.end());
      }
    }
  }

  if (outcome.produced > 0) {
    outcome.home_ticks += (outcome.produced + config.results_per_tick - 1) /
                          config.results_per_tick;
  }
  return outcome;
}

}  // namespace

CleanupProcessor::CleanupProcessor(const CleanupConfig& config,
                                   int num_streams)
    : config_(config), num_streams_(num_streams) {
  DCAPE_CHECK_GE(num_streams, 2);
  // Subset expansion enumerates 2^m masks; keep m sane.
  DCAPE_CHECK_LE(num_streams, 16);
  DCAPE_CHECK_GT(config_.results_per_tick, 0);
  DCAPE_CHECK_GT(config_.network_bytes_per_tick, 0);
}

StatusOr<CleanupStats> CleanupProcessor::Run(
    const std::vector<const SpillStore*>& spill_stores,
    const std::vector<const StateManager*>& state_managers,
    ExecPool* pool) const {
  CleanupStats stats;
  const size_t num_engines =
      std::max(spill_stores.size(), state_managers.size());
  stats.engine_ticks.assign(num_engines, 0);

  // ---- Task (1) of §3: organize disk-resident generations by partition.
  std::map<PartitionId, std::vector<Generation>> partitions;
  for (size_t e = 0; e < spill_stores.size(); ++e) {
    const SpillStore* store = spill_stores[e];
    if (store == nullptr) continue;
    for (const SpillSegmentMeta& meta : store->segments()) {
      Tick io_ticks = 0;
      DCAPE_ASSIGN_OR_RETURN(std::string blob,
                             store->ReadSegment(meta, &io_ticks));
      DCAPE_ASSIGN_OR_RETURN(PartitionGroup group,
                             PartitionGroup::Deserialize(blob));
      if (group.num_streams() != num_streams_) {
        return Status::InvalidArgument(
            "spilled group stream count mismatch during cleanup");
      }
      // Disk read happens at the engine owning the segment.
      stats.engine_ticks[e] += io_ticks;
      stats.segments_read += 1;
      stats.bytes_read += meta.bytes;
      if (group.tuple_count() == 0) continue;
      Generation gen =
          FromGroup(group, static_cast<EngineId>(e), meta.spill_time,
                    meta.segment_id, meta.bytes);
      gen.evicted = meta.evicted;
      partitions[meta.partition].push_back(std::move(gen));
    }
  }

  // Memory-resident remainders participate as the final generation.
  for (size_t e = 0; e < state_managers.size(); ++e) {
    const StateManager* state = state_managers[e];
    if (state == nullptr) continue;
    for (PartitionId p : state->PartitionIds()) {
      const PartitionGroup* group = state->FindGroup(p);
      if (group == nullptr || group->tuple_count() == 0) continue;
      // A partition id this engine holds in memory only matters if disk
      // generations exist somewhere; single-generation partitions have no
      // missing results and are skipped below.
      partitions[p].push_back(FromGroup(
          *group, static_cast<EngineId>(e),
          std::numeric_limits<Tick>::max(), static_cast<int64_t>(e),
          group->bytes()));
    }
  }

  // ---- Tasks (2)+(3): per partition, merge generations in order and
  // emit the cross-generation results. Each partition is independent, so
  // the merges dispatch across the pool; outcomes fold back into the
  // stats in ascending-partition order (the std::map order the serial
  // loop used), keeping stats and result ordering bit-identical for any
  // worker count.
  std::vector<std::pair<PartitionId, std::vector<Generation>>> work;
  work.reserve(partitions.size());
  for (auto& [partition, generations] : partitions) {
    work.emplace_back(partition, std::move(generations));
  }
  std::vector<PartitionOutcome> outcomes(work.size());
  const auto process = [&](int i) {
    outcomes[static_cast<size_t>(i)] =
        ProcessPartition(config_, num_streams_,
                         work[static_cast<size_t>(i)].first,
                         &work[static_cast<size_t>(i)].second);
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<int>(work.size()), process);
  } else {
    for (int i = 0; i < static_cast<int>(work.size()); ++i) process(i);
  }

  for (PartitionOutcome& outcome : outcomes) {
    if (outcome.home_ticks > 0) {
      stats.engine_ticks[static_cast<size_t>(outcome.home)] +=
          outcome.home_ticks;
    }
    stats.result_count += outcome.produced;
    if (outcome.produced > 0) stats.partitions_cleaned += 1;
    if (config_.collect_results) {
      stats.results.insert(stats.results.end(),
                           std::make_move_iterator(outcome.results.begin()),
                           std::make_move_iterator(outcome.results.end()));
    }
  }

  for (Tick t : stats.engine_ticks) {
    stats.total_ticks = std::max(stats.total_ticks, t);
  }
  return stats;
}

}  // namespace dcape
