#ifndef DCAPE_CLEANUP_CLEANUP_H_
#define DCAPE_CLEANUP_CLEANUP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "state/state_manager.h"
#include "storage/spill_store.h"
#include "tuple/projection.h"
#include "tuple/tuple.h"

namespace dcape {

class ExecPool;

/// Cost model and options for the cleanup phase.
struct CleanupConfig {
  /// Post-join projection; must match the runtime engines' projection so
  /// cleanup results carry the same (group_key, agg_value).
  std::optional<ResultProjection> projection;
  /// Sliding-window bound on member timestamp spans; must match the
  /// engines' window. 0 = unbounded.
  Tick window_ticks = 0;
  /// Join CPU during cleanup: results generated per virtual tick.
  int64_t results_per_tick = 1000;
  /// Bandwidth for fetching another engine's disk generations to the
  /// partition's cleanup home (bytes per tick).
  int64_t network_bytes_per_tick = 125000;
  /// Retain the produced results (tests / small runs). Counting always
  /// happens.
  bool collect_results = true;
};

/// Outcome of the cleanup phase.
struct CleanupStats {
  int64_t result_count = 0;
  /// Wall-clock of the cleanup: engines clean their partitions in
  /// parallel, so this is the maximum per-engine busy time — which is how
  /// the paper's Fig. 12 cleanup comparison (1600 s concentrated vs 400 s
  /// spread) arises.
  Tick total_ticks = 0;
  /// Busy virtual time per engine.
  std::vector<Tick> engine_ticks;
  int64_t segments_read = 0;
  int64_t bytes_read = 0;
  /// Partitions that actually had missing results to produce.
  int64_t partitions_cleaned = 0;
  /// Produced results, when `collect_results` is set.
  std::vector<JoinResult> results;
};

/// The state cleanup processor (paper §3): after the run-time phase it
/// merges every partition's disk-resident generations (possibly spread
/// over several engines' disks) with its memory-resident remainder and
/// produces exactly the join results the run-time phase could not —
/// combinations whose member tuples span two or more generations — with
/// no duplicates.
///
/// Processing per partition follows the incremental-view-maintenance
/// scheme the paper cites [13]: generations are visited in spill order
/// while cumulative per-input key tables grow; for each generation the
/// cross-generation terms Π(C∪Δ) − Π(C) − Π(Δ) are enumerated by subset
/// expansion (the all-Δ term is what the run-time phase already emitted).
class CleanupProcessor {
 public:
  CleanupProcessor(const CleanupConfig& config, int num_streams);

  /// Runs cleanup over every engine's spill store and memory remainder.
  /// `spill_stores[e]` / `state_managers[e]` belong to engine e; null
  /// entries are allowed (engine without disk or already-drained state).
  ///
  /// With `pool`, the per-partition merge loop is distributed over the
  /// pool's lanes. Partitions are independent (each owns its
  /// generations), and per-partition outcomes are merged back in fixed
  /// partition order, so CleanupStats and the result vector are
  /// bit-identical to the serial run for any worker count.
  [[nodiscard]] StatusOr<CleanupStats> Run(
      const std::vector<const SpillStore*>& spill_stores,
      const std::vector<const StateManager*>& state_managers,
      ExecPool* pool = nullptr) const;

 private:
  CleanupConfig config_;
  int num_streams_;
};

}  // namespace dcape

#endif  // DCAPE_CLEANUP_CLEANUP_H_
