#ifndef DCAPE_STREAM_TRACE_H_
#define DCAPE_STREAM_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/virtual_clock.h"
#include "stream/input_source.h"
#include "tuple/tuple.h"

namespace dcape {

/// Binary stream-trace format: a header (magic, stream count, record
/// count) followed by (arrival tick, serialized tuple) records in
/// non-decreasing arrival order. Traces let experiments replay captured
/// input instead of the synthetic workload — and make any run exactly
/// repeatable across configurations.
class TraceWriter {
 public:
  /// Starts a trace for `num_streams` input streams, writing into `out`
  /// (owned by the caller; finalized by Finish()).
  TraceWriter(int num_streams, std::string* out);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Appends one record. Arrival ticks must be non-decreasing.
  void Append(Tick arrival, const Tuple& tuple);

  /// Patches the header with the final record count. Must be called once,
  /// after the last Append.
  void Finish();

  int64_t count() const { return count_; }

 private:
  std::string* out_;
  int64_t count_ = 0;
  Tick last_arrival_ = 0;
  bool finished_ = false;
};

/// One decoded trace record.
struct TraceRecord {
  Tick arrival = 0;
  Tuple tuple;
};

/// Parses a full trace. Fails with InvalidArgument/OutOfRange on corrupt
/// input.
StatusOr<std::vector<TraceRecord>> DecodeTrace(std::string_view data,
                                               int* num_streams = nullptr);

/// Writes/reads traces as files.
[[nodiscard]] Status WriteTraceFile(const std::string& path,
                                    std::string_view data);
[[nodiscard]] StatusOr<std::string> ReadTraceFile(const std::string& path);

/// Replays a trace as an InputSource: each record is emitted at its
/// recorded arrival tick.
class TraceSource : public InputSource {
 public:
  /// Parses and validates `data`.
  [[nodiscard]] static StatusOr<TraceSource> FromBytes(std::string_view data);

  std::vector<Tuple> EmitForTick(Tick now) override;
  int64_t total_emitted() const override { return emitted_; }
  int num_streams() const override { return num_streams_; }

  /// Records remaining to replay.
  int64_t remaining() const {
    return static_cast<int64_t>(records_.size()) -
           static_cast<int64_t>(next_);
  }

 private:
  TraceSource(std::vector<TraceRecord> records, int num_streams)
      : records_(std::move(records)), num_streams_(num_streams) {}

  std::vector<TraceRecord> records_;
  int num_streams_;
  size_t next_ = 0;
  int64_t emitted_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_STREAM_TRACE_H_
