#ifndef DCAPE_STREAM_INPUT_SOURCE_H_
#define DCAPE_STREAM_INPUT_SOURCE_H_

#include <vector>

#include "common/virtual_clock.h"
#include "tuple/tuple.h"

namespace dcape {

/// Where the split host's input tuples come from. The synthetic
/// StreamGenerator is the default implementation; TraceSource replays a
/// recorded trace — the substitution hook for driving the system with
/// real captured streams instead of the paper's synthetic model.
class InputSource {
 public:
  virtual ~InputSource() = default;

  /// All tuples (across streams) arriving exactly at tick `now`. Called
  /// once per tick with non-decreasing `now`.
  virtual std::vector<Tuple> EmitForTick(Tick now) = 0;

  /// Tuples emitted so far across all streams.
  virtual int64_t total_emitted() const = 0;

  /// Number of input streams this source produces.
  virtual int num_streams() const = 0;
};

}  // namespace dcape

#endif  // DCAPE_STREAM_INPUT_SOURCE_H_
