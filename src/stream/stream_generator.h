#ifndef DCAPE_STREAM_STREAM_GENERATOR_H_
#define DCAPE_STREAM_STREAM_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/virtual_clock.h"
#include "stream/input_source.h"
#include "stream/workload.h"
#include "tuple/tuple.h"

namespace dcape {

/// Produces the synthetic input streams of the paper's evaluation (§3.1).
///
/// Every `inter_arrival_ticks` each stream emits one tuple. The tuple's
/// partition is drawn uniformly (or with the fluctuation skew of
/// Figs. 9–10), and its join key uniformly from the partition's key
/// domain, whose size realizes the configured join rate / tuple range:
/// the *join multiplicative factor* of each key grows linearly with the
/// processed input exactly as the paper describes, so output rates (and
/// state) increase monotonically over the run.
///
/// Join keys encode their partition (`key = partition * 2^20 + index`), so
/// the split operators recover the partition with `PartitionOfKey` — the
/// moral equivalent of hashing the join column, but exactly invertible,
/// which the tests exploit.
class StreamGenerator : public InputSource {
 public:
  /// Key-domain stride per partition; keys of partition p lie in
  /// [p * kKeyStride, (p+1) * kKeyStride).
  static constexpr int64_t kKeyStride = 1 << 20;

  explicit StreamGenerator(const WorkloadConfig& config);

  StreamGenerator(const StreamGenerator&) = delete;
  StreamGenerator& operator=(const StreamGenerator&) = delete;

  /// All tuples (across streams) arriving exactly at tick `now`. The
  /// driver must call this once per tick, with non-decreasing `now`.
  std::vector<Tuple> EmitForTick(Tick now) override;

  /// The partitioning function used by the split operators.
  static PartitionId PartitionOfKey(JoinKey key) {
    return static_cast<PartitionId>(key / kKeyStride);
  }

  /// Tuples emitted so far across all streams.
  int64_t total_emitted() const override { return total_emitted_; }
  int num_streams() const override { return config_.num_streams; }

  const WorkloadConfig& config() const { return config_; }

 private:
  PartitionId ChoosePartition(Tick now);

  WorkloadConfig config_;
  Rng rng_;
  std::vector<int64_t> next_seq_;        // per stream
  std::vector<int64_t> keys_per_part_;   // per partition
  std::vector<PartitionId> set_a_;       // fluctuation set A
  std::vector<PartitionId> set_b_;       // complement of set A
  int64_t total_emitted_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_STREAM_STREAM_GENERATOR_H_
