#ifndef DCAPE_STREAM_WORKLOAD_H_
#define DCAPE_STREAM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"

namespace dcape {

/// One workload class of partitions, in the paper's terms (§3.1):
/// the *join multiplicative factor* of a partition in this class grows by
/// `join_rate` after every `tuple_range` input tuples of the stream.
/// Internally that fixes the number of distinct join keys per partition:
///   keys_per_partition = tuple_range / (join_rate * num_partitions)
/// so that after n stream tuples each key has seen ≈ n*join_rate/
/// tuple_range tuples per stream.
struct PartitionClass {
  double join_rate = 3.0;
  int64_t tuple_range = 30000;
};

/// Time-varying load skew between two disjoint partition sets, used by the
/// relocation experiments (Figs. 9–10): for `phase_ticks`, set A receives
/// `hot_multiplier`× the per-partition tuple share of set B, then they
/// swap, and so on.
struct FluctuationConfig {
  bool enabled = false;
  Tick phase_ticks = MinutesToTicks(5);
  double hot_multiplier = 10.0;
  /// When set, the hot set switches from A to B once (after the first
  /// phase) and never switches back — a permanent workload shift, unlike
  /// the paper's alternating pattern.
  bool one_shot = false;
  /// Partitions forming set A; all others form set B.
  std::vector<PartitionId> set_a;
};

/// Full description of the synthetic input streams.
struct WorkloadConfig {
  /// Number of join inputs (m of the m-way join).
  int num_streams = 3;
  /// Number of hash partitions each split produces (n >> #machines).
  int num_partitions = 60;
  /// Virtual ticks between consecutive tuples of one stream (the paper
  /// uses a 30 ms inter-arrival per stream).
  Tick inter_arrival_ticks = 30;
  /// Payload bytes per tuple (stands in for non-join columns).
  int payload_bytes = 64;
  /// Domain size of the categorical column (Tuple::category), drawn
  /// uniformly — the brokers of QUERY 1.
  int64_t num_categories = 50;
  /// Range of the numeric column (Tuple::value), drawn uniformly in
  /// [value_min, value_max] — the offer price of QUERY 1.
  int64_t value_min = 1;
  int64_t value_max = 1000;
  /// Workload classes; `partition_class[p]` indexes into this vector.
  std::vector<PartitionClass> classes = {PartitionClass{}};
  /// Class index per partition (size == num_partitions). Empty means
  /// "all partitions in class 0".
  std::vector<int> partition_class;
  FluctuationConfig fluctuation;
  uint64_t seed = 42;
};

/// Assigns classes to partitions in proportion to `fractions` (which must
/// sum to ~1), interleaved round-robin so every machine's slice contains
/// the same mix — the setup of Fig. 7 ("1/3 of the partitions with join
/// rate 4, 1/3 with 2, ...").
std::vector<int> AssignClassesByFraction(int num_partitions,
                                         const std::vector<double>& fractions);

/// Assigns each partition the class of its initially-placed engine — the
/// setup of Figs. 13–14 ("partitions assigned to machine m1 have join rate
/// 4, the others 1"). `placement[p]` is the initial engine of partition p
/// and `class_of_engine[e]` the class index for engine e.
std::vector<int> AssignClassesByOwner(const std::vector<EngineId>& placement,
                                      const std::vector<int>& class_of_engine);

/// Distinct join keys for partition `p` under `config` (see
/// PartitionClass). Always >= 1.
int64_t KeysPerPartition(const WorkloadConfig& config, PartitionId p);

}  // namespace dcape

#endif  // DCAPE_STREAM_WORKLOAD_H_
