#include "stream/workload.h"

#include <cmath>

#include "common/check.h"

namespace dcape {

std::vector<int> AssignClassesByFraction(
    int num_partitions, const std::vector<double>& fractions) {
  DCAPE_CHECK_GT(num_partitions, 0);
  DCAPE_CHECK(!fractions.empty());
  // Largest-remainder apportionment, then interleave by striding so that
  // classes mix across the id space (ids are placed in contiguous blocks
  // per engine, and each engine should see the configured mix).
  std::vector<int> counts(fractions.size(), 0);
  int assigned = 0;
  for (size_t c = 0; c < fractions.size(); ++c) {
    counts[c] = static_cast<int>(fractions[c] * num_partitions);
    assigned += counts[c];
  }
  for (size_t c = 0; assigned < num_partitions; c = (c + 1) % counts.size()) {
    ++counts[c];
    ++assigned;
  }
  std::vector<int> classes(static_cast<size_t>(num_partitions), 0);
  std::vector<int> remaining = counts;
  size_t next_class = 0;
  for (int p = 0; p < num_partitions; ++p) {
    // Round-robin over classes that still have quota.
    size_t tried = 0;
    while (remaining[next_class] == 0 && tried < remaining.size()) {
      next_class = (next_class + 1) % remaining.size();
      ++tried;
    }
    classes[static_cast<size_t>(p)] = static_cast<int>(next_class);
    --remaining[next_class];
    next_class = (next_class + 1) % remaining.size();
  }
  return classes;
}

std::vector<int> AssignClassesByOwner(const std::vector<EngineId>& placement,
                                      const std::vector<int>& class_of_engine) {
  std::vector<int> classes(placement.size(), 0);
  for (size_t p = 0; p < placement.size(); ++p) {
    const EngineId e = placement[p];
    DCAPE_CHECK_GE(e, 0);
    DCAPE_CHECK_LT(static_cast<size_t>(e), class_of_engine.size());
    classes[p] = class_of_engine[static_cast<size_t>(e)];
  }
  return classes;
}

int64_t KeysPerPartition(const WorkloadConfig& config, PartitionId p) {
  DCAPE_CHECK_GE(p, 0);
  DCAPE_CHECK_LT(p, config.num_partitions);
  int class_index = 0;
  if (!config.partition_class.empty()) {
    DCAPE_CHECK_EQ(config.partition_class.size(),
                   static_cast<size_t>(config.num_partitions));
    class_index = config.partition_class[static_cast<size_t>(p)];
  }
  DCAPE_CHECK_GE(class_index, 0);
  DCAPE_CHECK_LT(static_cast<size_t>(class_index), config.classes.size());
  const PartitionClass& cls = config.classes[static_cast<size_t>(class_index)];
  DCAPE_CHECK_GT(cls.join_rate, 0.0);
  DCAPE_CHECK_GT(cls.tuple_range, 0);
  const double keys = static_cast<double>(cls.tuple_range) /
                      (cls.join_rate * config.num_partitions);
  return std::max<int64_t>(1, std::llround(keys));
}

}  // namespace dcape
