#include "stream/stream_generator.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {

StreamGenerator::StreamGenerator(const WorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  DCAPE_CHECK_GE(config_.num_streams, 2);
  DCAPE_CHECK_GT(config_.num_partitions, 0);
  DCAPE_CHECK_GT(config_.inter_arrival_ticks, 0);
  next_seq_.assign(static_cast<size_t>(config_.num_streams), 0);

  keys_per_part_.reserve(static_cast<size_t>(config_.num_partitions));
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    const int64_t keys = KeysPerPartition(config_, p);
    DCAPE_CHECK_LT(keys, kKeyStride);
    keys_per_part_.push_back(keys);
  }

  if (config_.fluctuation.enabled) {
    std::vector<bool> in_a(static_cast<size_t>(config_.num_partitions), false);
    for (PartitionId p : config_.fluctuation.set_a) {
      DCAPE_CHECK_GE(p, 0);
      DCAPE_CHECK_LT(p, config_.num_partitions);
      in_a[static_cast<size_t>(p)] = true;
    }
    for (PartitionId p = 0; p < config_.num_partitions; ++p) {
      (in_a[static_cast<size_t>(p)] ? set_a_ : set_b_).push_back(p);
    }
    DCAPE_CHECK(!set_a_.empty());
    DCAPE_CHECK(!set_b_.empty());
  }
}

PartitionId StreamGenerator::ChoosePartition(Tick now) {
  if (!config_.fluctuation.enabled) {
    return static_cast<PartitionId>(
        rng_.Uniform(static_cast<uint64_t>(config_.num_partitions)));
  }
  const FluctuationConfig& fluct = config_.fluctuation;
  const Tick phase = now / fluct.phase_ticks;
  const bool a_hot = fluct.one_shot ? (phase == 0) : (phase % 2 == 0);
  const double weight_a = a_hot ? fluct.hot_multiplier : 1.0;
  const double weight_b = a_hot ? 1.0 : fluct.hot_multiplier;
  const double mass_a = weight_a * static_cast<double>(set_a_.size());
  const double mass_b = weight_b * static_cast<double>(set_b_.size());
  const bool pick_a = rng_.Bernoulli(mass_a / (mass_a + mass_b));
  const std::vector<PartitionId>& set = pick_a ? set_a_ : set_b_;
  return set[rng_.Uniform(set.size())];
}

std::vector<Tuple> StreamGenerator::EmitForTick(Tick now) {
  std::vector<Tuple> tuples;
  if (now % config_.inter_arrival_ticks != 0) return tuples;
  tuples.reserve(static_cast<size_t>(config_.num_streams));
  for (StreamId s = 0; s < config_.num_streams; ++s) {
    const PartitionId partition = ChoosePartition(now);
    const int64_t keys = keys_per_part_[static_cast<size_t>(partition)];
    const int64_t index = static_cast<int64_t>(
        rng_.Uniform(static_cast<uint64_t>(keys)));

    Tuple t;
    t.stream_id = s;
    t.seq = next_seq_[static_cast<size_t>(s)]++;
    t.join_key = static_cast<JoinKey>(partition) * kKeyStride + index;
    t.timestamp = now;
    t.value = config_.value_min +
              static_cast<int64_t>(rng_.Uniform(static_cast<uint64_t>(
                  config_.value_max - config_.value_min + 1)));
    t.category =
        static_cast<int64_t>(rng_.Uniform(
            static_cast<uint64_t>(config_.num_categories)));
    t.payload.assign(static_cast<size_t>(config_.payload_bytes),
                     static_cast<char>('a' + (t.seq % 26)));
    tuples.push_back(std::move(t));
    ++total_emitted_;
  }
  return tuples;
}

}  // namespace dcape
