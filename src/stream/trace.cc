#include "stream/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "tuple/serde.h"

namespace dcape {
namespace {

constexpr uint32_t kTraceMagic = 0xDCA9E7AC;
constexpr size_t kCountOffset = 8;  // magic(4) + num_streams(4)

}  // namespace

TraceWriter::TraceWriter(int num_streams, std::string* out) : out_(out) {
  DCAPE_CHECK(out_ != nullptr);
  DCAPE_CHECK(out_->empty());
  DCAPE_CHECK_GE(num_streams, 2);
  ByteWriter writer(out_);
  writer.PutU32(kTraceMagic);
  writer.PutI32(num_streams);
  writer.PutI64(0);  // record count, patched by Finish()
}

void TraceWriter::Append(Tick arrival, const Tuple& tuple) {
  DCAPE_CHECK(!finished_);
  DCAPE_CHECK_GE(arrival, last_arrival_);
  last_arrival_ = arrival;
  ByteWriter writer(out_);
  writer.PutI64(arrival);
  EncodeTuple(tuple, out_);
  ++count_;
}

void TraceWriter::Finish() {
  DCAPE_CHECK(!finished_);
  finished_ = true;
  // Patch the record count in place (little-endian i64 at kCountOffset).
  uint64_t v = static_cast<uint64_t>(count_);
  for (int i = 0; i < 8; ++i) {
    (*out_)[kCountOffset + static_cast<size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

StatusOr<std::vector<TraceRecord>> DecodeTrace(std::string_view data,
                                               int* num_streams) {
  ByteReader reader(data);
  DCAPE_ASSIGN_OR_RETURN(uint32_t magic, reader.GetU32());
  if (magic != kTraceMagic) {
    return Status::InvalidArgument("not a dcape trace (bad magic)");
  }
  DCAPE_ASSIGN_OR_RETURN(int32_t streams, reader.GetI32());
  if (streams < 2) {
    return Status::InvalidArgument("trace declares fewer than 2 streams");
  }
  if (num_streams != nullptr) *num_streams = streams;
  DCAPE_ASSIGN_OR_RETURN(int64_t count, reader.GetI64());
  if (count < 0) {
    return Status::InvalidArgument("trace declares negative record count");
  }

  std::vector<TraceRecord> records;
  // Never trust the declared count for allocation; each record is at
  // least ~40 bytes on the wire, so cap the reserve by the input size.
  records.reserve(std::min<size_t>(static_cast<size_t>(count),
                                   data.size() / 40 + 16));
  Tick last_arrival = 0;
  for (int64_t i = 0; i < count; ++i) {
    TraceRecord record;
    DCAPE_ASSIGN_OR_RETURN(record.arrival, reader.GetI64());
    if (record.arrival < last_arrival) {
      return Status::InvalidArgument("trace arrivals out of order");
    }
    last_arrival = record.arrival;
    DCAPE_ASSIGN_OR_RETURN(record.tuple, DecodeTuple(&reader));
    if (record.tuple.stream_id < 0 || record.tuple.stream_id >= streams) {
      return Status::InvalidArgument("trace tuple has invalid stream id");
    }
    records.push_back(std::move(record));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after trace records");
  }
  return records;
}

Status WriteTraceFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open trace file: " + path);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) return Status::Internal("short write to trace file: " + path);
  return Status::OK();
}

StatusOr<std::string> ReadTraceFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no trace file: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return std::move(contents).str();
}

StatusOr<TraceSource> TraceSource::FromBytes(std::string_view data) {
  int num_streams = 0;
  DCAPE_ASSIGN_OR_RETURN(std::vector<TraceRecord> records,
                         DecodeTrace(data, &num_streams));
  return TraceSource(std::move(records), num_streams);
}

std::vector<Tuple> TraceSource::EmitForTick(Tick now) {
  std::vector<Tuple> tuples;
  while (next_ < records_.size() && records_[next_].arrival <= now) {
    tuples.push_back(records_[next_].tuple);
    ++next_;
    ++emitted_;
  }
  return tuples;
}

}  // namespace dcape
