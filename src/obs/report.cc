#include "obs/report.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace dcape {
namespace obs {
namespace {

void AppendTime(std::string* out, Tick tick) {
  // Virtual ticks are milliseconds.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[%9.1fs] ",
                static_cast<double>(tick) / 1000.0);
  out->append(buf);
}

void AppendLane(std::string* out, const Tracer& tracer, int lane) {
  const std::string& name = tracer.lane_name(lane);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%-12s ",
                name.empty() ? "?" : name.c_str());
  out->append(buf);
}

void AppendArgs(std::string* out, const TraceEvent& e) {
  for (const TraceArg& a : e.args) {
    out->push_back(' ');
    out->append(a.key);
    out->push_back('=');
    if (a.is_double) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", a.d);
      out->append(buf);
    } else {
      out->append(std::to_string(a.i));
    }
  }
}

bool IsName(const TraceEvent& e, const char* name) {
  // Taxonomy constants are unique addresses, but compare content so
  // traces rebuilt from parsed JSON (tests) behave the same.
  return e.name == name || std::strcmp(e.name, name) == 0;
}

}  // namespace

std::string RenderTimeline(const Tracer& tracer) {
  std::string out;
  out.append("adaptation timeline (virtual time)\n");

  // Open async spans by (name, scope) -> begin tick, for durations.
  std::map<std::pair<std::string, int64_t>, Tick> open;
  int64_t relocations = 0, completed = 0, aborted = 0;
  int64_t spills = 0, forced_spills = 0, evictions = 0, restores = 0;
  int64_t force_spill_decisions = 0, cleanups = 0;
  int64_t lines = 0;

  for (const TraceEvent* e : tracer.Merged()) {
    const char* verb = nullptr;
    Tick duration = -1;
    bool count_line = true;
    // TracePhase is a rendering shape, not protocol state; all five
    // values are handled. // dcape-lint: allow(phase-switch)
    switch (e->phase) {
      case TracePhase::kBegin:
        open[{e->name, e->scope}] = e->tick;
        if (IsName(*e, ev::kRelocation)) {
          ++relocations;
          verb = "begin";
        } else {
          count_line = false;  // phase opens render at their close
        }
        break;
      case TracePhase::kEnd: {
        auto it = open.find({e->name, e->scope});
        if (it != open.end()) {
          duration = e->tick - it->second;
          open.erase(it);
        }
        verb = "done";
        if (IsName(*e, ev::kRelocation)) ++completed;
        break;
      }
      case TracePhase::kInstant:
        if (IsName(*e, ev::kBatch)) {
          count_line = false;  // hot-path noise in verbose traces
          break;
        }
        if (IsName(*e, ev::kRelocAbort)) {
          ++aborted;
          --completed;  // its kEnd still follows; don't double-count
        }
        if (IsName(*e, ev::kForceSpillDecide)) ++force_spill_decisions;
        break;
      case TracePhase::kComplete:
        duration = e->duration;
        if (IsName(*e, ev::kSpill)) ++spills;
        if (IsName(*e, ev::kEvict)) ++evictions;
        if (IsName(*e, ev::kRestore)) ++restores;
        if (IsName(*e, ev::kCleanup)) ++cleanups;
        break;
      case TracePhase::kCounter:
        count_line = false;  // sampled series; the CSVs carry these
        break;
    }
    if (!count_line) continue;
    ++lines;
    out.append("  ");
    AppendTime(&out, e->tick);
    AppendLane(&out, tracer, e->lane);
    out.append(e->name);
    if (verb != nullptr) {
      out.push_back(' ');
      out.append(verb);
    }
    if (e->scope >= 0) {
      out.append(" #");
      out.append(std::to_string(e->scope));
    }
    if (duration >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " (%.1fs)",
                    static_cast<double>(duration) / 1000.0);
      out.append(buf);
    }
    AppendArgs(&out, *e);
    out.push_back('\n');

    // Count forced spills from the spill span's own args.
    if (e->phase == TracePhase::kComplete && IsName(*e, ev::kSpill)) {
      for (const TraceArg& a : e->args) {
        if (std::strcmp(a.key, "forced") == 0 && a.i != 0) ++forced_spills;
      }
    }
  }

  if (lines == 0) out.append("  (no adaptation events)\n");
  out.append("summary: ");
  out.append(std::to_string(relocations));
  out.append(" relocations (");
  out.append(std::to_string(completed));
  out.append(" completed, ");
  out.append(std::to_string(aborted));
  out.append(" aborted), ");
  out.append(std::to_string(spills));
  out.append(" spills (");
  out.append(std::to_string(forced_spills));
  out.append(" forced, ");
  out.append(std::to_string(force_spill_decisions));
  out.append(" coordinator-directed), ");
  out.append(std::to_string(evictions));
  out.append(" evictions, ");
  out.append(std::to_string(restores));
  out.append(" restores, ");
  out.append(std::to_string(cleanups));
  out.append(" cleanup passes\n");
  return out;
}

}  // namespace obs
}  // namespace dcape
