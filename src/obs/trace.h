#ifndef DCAPE_OBS_TRACE_H_
#define DCAPE_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/virtual_clock.h"
#include "obs/taxonomy.h"

namespace dcape {
namespace obs {

/// One typed argument of a trace event. Keys must be string literals
/// (they are kept by pointer); values are int64 or double.
struct TraceArg {
  const char* key = nullptr;
  bool is_double = false;
  int64_t i = 0;
  double d = 0.0;

  static TraceArg Int(const char* key, int64_t value) {
    TraceArg a;
    a.key = key;
    a.i = value;
    return a;
  }
  static TraceArg Double(const char* key, double value) {
    TraceArg a;
    a.key = key;
    a.is_double = true;
    a.d = value;
    return a;
  }
};

/// The shape of a trace event, mirroring Chrome trace_event phases.
enum class TracePhase : uint8_t {
  kInstant,   // "i": a point event
  kComplete,  // "X": a span whose (virtual) duration is known at emit time
  kBegin,     // "b": async span open, keyed by (name, scope)
  kEnd,       // "e": async span close
  kCounter,   // "C": a sampled counter value
};

/// One structured trace event, stamped with the virtual-clock tick and
/// the emitting node's lane. `name` MUST be an obs::ev:: taxonomy
/// constant (see obs/taxonomy.h) — enforced by dcape-lint's trace-name
/// check at the Emit* call sites.
struct TraceEvent {
  Tick tick = 0;
  int32_t lane = 0;
  TracePhase phase = TracePhase::kInstant;
  const char* name = nullptr;
  /// Async-span key (relocation id, …); -1 = none.
  int64_t scope = -1;
  /// Virtual duration, kComplete only.
  Tick duration = 0;
  /// Sampled value, kCounter only.
  int64_t value = 0;
  std::vector<TraceArg> args;
};

/// The deterministic structured trace.
///
/// Buffering discipline (the same one that makes the parallel cluster
/// step bit-identical to the serial one, see net::Network's outboxes and
/// runtime/exec_pool.h): events append to a per-lane buffer, where a
/// lane is one simulated node (engines, coordinator, split hosts, sink,
/// generator) plus one extra *driver* lane for the cluster itself. Each
/// lane is only ever appended to by the single task stepping that node,
/// so concurrent emission during the parallel phase of a tick needs no
/// locks, and the merged stream — ordered by (tick, lane, per-lane emit
/// order) — is a pure function of the simulation, independent of
/// `--threads` and of wall-clock scheduling. That is the whole
/// determinism argument: per-lane order is deterministic because each
/// node's step sequence is, and the merge key contains no wall-clock or
/// thread-dependent component.
///
/// Cost when disabled: the cluster simply holds no Tracer, and every
/// instrumentation site is behind `DCAPE_TRACE_ACTIVE(tracer)` — a null
/// check, or constant false when compiled out with DCAPE_OBS_NO_TRACING.
class Tracer {
 public:
  /// `num_lanes` = highest node id + 2 (the last lane is the driver's).
  /// `verbose` additionally records hot-path data-plane events
  /// (per-batch engine.batch instants).
  explicit Tracer(int num_lanes, bool verbose = false);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Human-readable lane (process) name for the exported trace.
  void SetLaneName(int lane, std::string name);
  const std::string& lane_name(int lane) const {
    return lane_names_[static_cast<size_t>(lane)];
  }

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  int driver_lane() const { return static_cast<int>(lanes_.size()) - 1; }
  bool verbose() const { return verbose_; }

  /// Appends `event` to its lane's buffer. Thread contract: at most one
  /// task emits on a given lane at any instant (the cluster's per-node
  /// stepping discipline).
  void Emit(TraceEvent event);

  // Convenience emitters. `name` MUST be an obs::ev:: constant.
  void EmitInstant(int lane, Tick tick, const char* name,
                   std::vector<TraceArg> args = {}, int64_t scope = -1);
  void EmitComplete(int lane, Tick tick, const char* name, Tick duration,
                    std::vector<TraceArg> args = {}, int64_t scope = -1);
  void BeginSpan(int lane, Tick tick, const char* name, int64_t scope,
                 std::vector<TraceArg> args = {});
  void EndSpan(int lane, Tick tick, const char* name, int64_t scope,
               std::vector<TraceArg> args = {});
  void EmitCounter(int lane, Tick tick, const char* name, int64_t value);

  int64_t event_count() const;

  /// The merged deterministic stream: pointers into the lane buffers,
  /// ordered by (tick, lane, per-lane emit order). Valid until the next
  /// Emit.
  std::vector<const TraceEvent*> Merged() const;

  /// Serializes the merged stream as Chrome trace_event JSON (the
  /// "traceEvents" array format), loadable in Perfetto / chrome://tracing.
  /// Virtual ticks (ms) map to microsecond timestamps. Byte-identical
  /// for byte-identical traces.
  std::string ToChromeJson() const;

  /// Async spans opened (BeginSpan) but never closed, or closed without
  /// opening — one human-readable line each, in deterministic order.
  /// Empty on a well-formed trace; the chaos harness asserts this even
  /// under injected faults.
  std::vector<std::string> OpenSpans() const;

 private:
  std::vector<std::vector<TraceEvent>> lanes_;
  std::vector<std::string> lane_names_;
  bool verbose_;
};

/// Compile-time + runtime gate for every instrumentation site:
/// `if (DCAPE_TRACE_ACTIVE(tracer)) tracer->...`. Defining
/// DCAPE_OBS_NO_TRACING turns the whole expression into constant false,
/// compiling the instrumentation out entirely.
#if defined(DCAPE_OBS_NO_TRACING)
#define DCAPE_TRACE_ACTIVE(tracer) false
#else
#define DCAPE_TRACE_ACTIVE(tracer) ((tracer) != nullptr)
#endif

}  // namespace obs
}  // namespace dcape

#endif  // DCAPE_OBS_TRACE_H_
