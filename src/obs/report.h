#ifndef DCAPE_OBS_REPORT_H_
#define DCAPE_OBS_REPORT_H_

#include <string>

#include "obs/trace.h"

namespace dcape {
namespace obs {

/// Renders the structured trace as a human-readable adaptation timeline
/// (`dcape_run --report=timeline`): one line per adaptation event —
/// relocation decisions and protocol phases, spills, evictions,
/// restores, forced-spill decisions, cleanup — in the deterministic
/// merge order, stamped with virtual seconds and the emitting node, with
/// the triggering statistics from the event's args. Ends with a count
/// summary. Byte-identical for byte-identical traces.
std::string RenderTimeline(const Tracer& tracer);

}  // namespace obs
}  // namespace dcape

#endif  // DCAPE_OBS_REPORT_H_
