#ifndef DCAPE_OBS_METRICS_H_
#define DCAPE_OBS_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/histogram.h"
#include "obs/taxonomy.h"

namespace dcape {
namespace obs {

/// A monotonically increasing int64 cell owned by the registry. Updates
/// are plain stores: each cell belongs to exactly one simulated node and
/// is only ever touched by the task stepping that node (the same
/// disjointness discipline that keeps the parallel cluster step
/// race-free), so no atomics are needed and values are bit-identical for
/// every --threads.
class Counter {
 public:
  void Add(int64_t delta) { value_ += delta; }
  void Increment() { value_ += 1; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Like Counter, but may decrease (resident bytes, queue depths).
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// The unified metrics registry: every counter/gauge/histogram in the
/// system is registered here by (name, entity, index) and updated through
/// the returned cell pointer. The registry is the single source that
/// feeds RunResult's compatibility counters, the `.storage.csv` output,
/// and the sampled counter events of the structured trace.
///
/// `name` MUST be an obs::m:: taxonomy constant (compile-time string;
/// kept by pointer). `entity` is the owning engine id, or kCluster for
/// cluster-wide metrics; `index` is an optional second dimension (e.g.
/// stream id), -1 when unused.
///
/// Registration happens at construction time on one thread; updates
/// follow the per-node ownership contract above; snapshots are taken at
/// tick barriers (never concurrently with updates).
class MetricsRegistry {
 public:
  static constexpr int kCluster = -1;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers a new cell. Aborts on a duplicate (name, entity, index) —
  /// every metric has exactly one writer.
  Counter* AddCounter(const char* name, int entity = kCluster,
                      int index = -1);
  Gauge* AddGauge(const char* name, int entity = kCluster, int index = -1);
  Histogram* AddHistogram(const char* name, int entity = kCluster);

  /// One registered scalar cell's identity and current value.
  struct Sample {
    const char* name = nullptr;
    int entity = kCluster;
    int index = -1;
    int64_t value = 0;
  };

  /// All counters and gauges, in registration order, with their values
  /// at call time. Deterministic: registration order is construction
  /// order, which is a pure function of the configuration.
  std::vector<Sample> Snapshot() const;

  /// Value of one scalar cell; 0 when not registered.
  int64_t Value(std::string_view name, int entity = kCluster,
                int index = -1) const;

  /// The registered histogram, or null.
  const Histogram* FindHistogram(std::string_view name,
                                 int entity = kCluster) const;

  /// `name,entity,index,value` CSV of Snapshot() plus a header row.
  std::string ToCsv() const;

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    const char* name;
    int entity;
    int index;
    const Counter* counter;  // exactly one of counter/gauge set
    const Gauge* gauge;
  };
  struct HistogramEntry {
    const char* name;
    int entity;
    const Histogram* histogram;
  };

  void CheckUnregistered(const char* name, int entity, int index) const;

  /// Deques: cell pointers handed to callers must survive later
  /// registrations.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::vector<Entry> entries_;
  std::vector<HistogramEntry> histogram_entries_;
};

}  // namespace obs
}  // namespace dcape

#endif  // DCAPE_OBS_METRICS_H_
