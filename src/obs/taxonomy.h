#ifndef DCAPE_OBS_TAXONOMY_H_
#define DCAPE_OBS_TAXONOMY_H_

#include <cstddef>

namespace dcape {
namespace obs {

/// The registered trace-event taxonomy (namespace `ev`) and metric names
/// (namespace `m`).
///
/// Every event handed to the tracer and every metric registered with the
/// registry MUST name itself with one of these compile-time constants —
/// never a dynamically built string. Two tools depend on that:
///
///   * trace diffing: the determinism contract ("`--trace-out` output is
///     bit-identical across `--threads=N`") is only checkable if event
///     names are stable identities, and
///   * `tools/dcape_lint.py`'s `trace-name` check, which rejects any
///     Emit/Begin/End call whose name argument is not an `ev::k*` /
///     `m::k*` constant, and `tools/check_trace.py`, which validates
///     exported JSON against this header.
///
/// Naming convention: `<subsystem>.<action>` with optional
/// `.phase.<phase>` for protocol-phase spans. Add new names here (and to
/// the table in docs/OBSERVABILITY.md); both checkers parse this header.
namespace ev {

// --- 8-step relocation protocol (coordinator lane; async spans keyed by
// relocation id). The outer `relocation` span covers start -> complete /
// abort; each phase gets its own nested async span.
inline constexpr char kRelocation[] = "relocation";
inline constexpr char kRelocPhaseCompute[] = "relocation.phase.compute_partitions";
inline constexpr char kRelocPhasePause[] = "relocation.phase.pause";
inline constexpr char kRelocPhaseTransfer[] = "relocation.phase.transfer";
inline constexpr char kRelocPhaseRouting[] = "relocation.phase.update_routing";
/// Decision instant: the §4 imbalance rule fired (args carry the
/// statistics that triggered it).
inline constexpr char kRelocDecide[] = "relocation.decide";
/// Abort instant (sender had no movable groups).
inline constexpr char kRelocAbort[] = "relocation.abort";

// --- Relocation participants (engine / split-host lanes, keyed by
// relocation id).
/// Sender shipped its extracted state (args: groups, bytes, receiver).
inline constexpr char kRelocShip[] = "relocation.ship";
/// One partition group leaving the sender (args: partition, bytes).
inline constexpr char kRelocShipGroup[] = "relocation.ship_group";
/// Receiver installed the transferred state (args: bytes).
inline constexpr char kRelocInstall[] = "relocation.install";
/// One partition group installed at the receiver (args: partition).
inline constexpr char kRelocInstallGroup[] = "relocation.install_group";
/// A split host paused routing for the moving partitions.
inline constexpr char kRelocPauseSplit[] = "relocation.pause_split";
/// A split host re-routed and flushed its buffered tuples (args:
/// buffered).
inline constexpr char kRelocFlushSplit[] = "relocation.flush_split";

// --- Spill / evict / restore lifecycle (engine lanes; complete spans
// whose duration is the virtual I/O cost).
inline constexpr char kSpill[] = "engine.spill";
inline constexpr char kEvict[] = "engine.evict";
inline constexpr char kRestore[] = "engine.restore";
/// Active-disk decision instant at the coordinator (args carry the
/// productivity statistics that triggered the forced spill).
inline constexpr char kForceSpillDecide[] = "active_disk.force_spill";

// --- Per-operator cost (engine lanes).
/// One processed tuple batch (verbose tracing only — hot path).
inline constexpr char kBatch[] = "engine.batch";

// --- Cleanup phase (driver lane; complete spans in virtual time).
inline constexpr char kCleanup[] = "cleanup.run";
inline constexpr char kCleanupEngine[] = "cleanup.engine";

// --- Sampled counters (Chrome "C" events, one per sample period).
inline constexpr char kStateBytes[] = "engine.state_bytes";
inline constexpr char kSinkResults[] = "sink.results";
inline constexpr char kDiskResidentBytes[] = "engine.disk_resident_bytes";

}  // namespace ev

/// Metric names for the registry. Entity is the engine id (or
/// MetricsRegistry::kCluster for cluster-wide metrics); `index` carries a
/// second dimension where needed (per-stream counters).
namespace m {

// Engine data plane.
inline constexpr char kTuplesProcessed[] = "engine.tuples_processed";
inline constexpr char kResultsProduced[] = "engine.results_produced";
inline constexpr char kTuplesPerStream[] = "engine.tuples_per_stream";
/// Virtual ticks the engine spent busy on disk I/O (spill/evict/restore).
inline constexpr char kBusyIoTicks[] = "engine.busy_io_ticks";

// Spill lifecycle.
inline constexpr char kSpillEvents[] = "engine.spill_events";
inline constexpr char kForcedSpillEvents[] = "engine.forced_spill_events";
inline constexpr char kSpilledBytes[] = "engine.spilled_bytes";
inline constexpr char kSpillWriteFailures[] = "engine.spill_write_failures";
inline constexpr char kSpillIoTicks[] = "engine.spill_io_ticks";

// Relocation, engine side.
inline constexpr char kRelocationsOut[] = "engine.relocations_out";
inline constexpr char kRelocationsIn[] = "engine.relocations_in";
inline constexpr char kBytesRelocatedOut[] = "engine.bytes_relocated_out";
inline constexpr char kBytesRelocatedIn[] = "engine.bytes_relocated_in";

// Online restore.
inline constexpr char kRestoredSegments[] = "engine.restored_segments";
inline constexpr char kRestoredBytes[] = "engine.restored_bytes";
inline constexpr char kRestoredResults[] = "engine.restored_results";

// Window eviction.
inline constexpr char kEvictedTuples[] = "engine.evicted_tuples";
inline constexpr char kEvictionSegments[] = "engine.eviction_segments";

// Storage plane (spill store, per engine).
inline constexpr char kSegmentsWritten[] = "storage.segments_written";
inline constexpr char kEncodedBytes[] = "storage.encoded_bytes";
inline constexpr char kRawBytes[] = "storage.raw_bytes";
inline constexpr char kResidentBytes[] = "storage.resident_bytes";

// Realtime plane (wall-clock driver only; absent from simulator runs).
/// End-to-end result latency in microseconds: sink arrival wall time
/// minus the emission stamp of the input batch that produced it.
inline constexpr char kRtLatencyUs[] = "rt.latency_us";

// Coordinator decisions (cluster-wide).
inline constexpr char kRelocationsStarted[] = "coordinator.relocations_started";
inline constexpr char kRelocationsCompleted[] =
    "coordinator.relocations_completed";
inline constexpr char kRelocationsAborted[] =
    "coordinator.relocations_aborted";
inline constexpr char kBytesRelocated[] = "coordinator.bytes_relocated";
inline constexpr char kForcedSpills[] = "coordinator.forced_spills";
inline constexpr char kForcedSpillBytes[] = "coordinator.forced_spill_bytes";

}  // namespace m

/// Every registered trace-event name, for schema checks and tests.
/// (tools/check_trace.py re-parses the header instead; this table keeps
/// C++ tests in sync without file I/O.)
inline constexpr const char* kAllEventNames[] = {
    ev::kRelocation,       ev::kRelocPhaseCompute, ev::kRelocPhasePause,
    ev::kRelocPhaseTransfer, ev::kRelocPhaseRouting, ev::kRelocDecide,
    ev::kRelocAbort,       ev::kRelocShip,         ev::kRelocShipGroup,
    ev::kRelocInstall,     ev::kRelocInstallGroup, ev::kRelocPauseSplit,
    ev::kRelocFlushSplit,  ev::kSpill,             ev::kEvict,
    ev::kRestore,          ev::kForceSpillDecide,  ev::kBatch,
    ev::kCleanup,          ev::kCleanupEngine,     ev::kStateBytes,
    ev::kSinkResults,      ev::kDiskResidentBytes,
};
inline constexpr size_t kNumEventNames =
    sizeof(kAllEventNames) / sizeof(kAllEventNames[0]);

}  // namespace obs
}  // namespace dcape

#endif  // DCAPE_OBS_TAXONOMY_H_
