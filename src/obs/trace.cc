#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

#include "common/check.h"

namespace dcape {
namespace obs {
namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendArgs(std::string* out, const std::vector<TraceArg>& args) {
  out->append("\"args\":{");
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->push_back('"');
    out->append(args[i].key);
    out->append("\":");
    if (args[i].is_double) {
      char buf[32];
      // %.6g of the same double is byte-stable on one platform, which is
      // what the trace-determinism contract compares.
      std::snprintf(buf, sizeof(buf), "%.6g", args[i].d);
      out->append(buf);
    } else {
      out->append(std::to_string(args[i].i));
    }
  }
  out->push_back('}');
}

const char* PhaseCode(TracePhase phase) {
  switch (phase) {
    case TracePhase::kInstant:
      return "i";
    case TracePhase::kComplete:
      return "X";
    case TracePhase::kBegin:
      return "b";
    case TracePhase::kEnd:
      return "e";
    case TracePhase::kCounter:
      return "C";
    default:
      DCAPE_CHECK(false);
      return "?";
  }
}

}  // namespace

Tracer::Tracer(int num_lanes, bool verbose)
    : lanes_(static_cast<size_t>(num_lanes)),
      lane_names_(static_cast<size_t>(num_lanes)),
      verbose_(verbose) {
  DCAPE_CHECK_GT(num_lanes, 0);
}

void Tracer::SetLaneName(int lane, std::string name) {
  lane_names_[static_cast<size_t>(lane)] = std::move(name);
}

void Tracer::Emit(TraceEvent event) {
  DCAPE_CHECK(event.name != nullptr);
  DCAPE_CHECK_GE(event.lane, 0);
  DCAPE_CHECK_LT(static_cast<size_t>(event.lane), lanes_.size());
  lanes_[static_cast<size_t>(event.lane)].push_back(std::move(event));
}

void Tracer::EmitInstant(int lane, Tick tick, const char* name,
                         std::vector<TraceArg> args, int64_t scope) {
  TraceEvent e;
  e.tick = tick;
  e.lane = lane;
  e.phase = TracePhase::kInstant;
  e.name = name;
  e.scope = scope;
  e.args = std::move(args);
  Emit(std::move(e));
}

void Tracer::EmitComplete(int lane, Tick tick, const char* name,
                          Tick duration, std::vector<TraceArg> args,
                          int64_t scope) {
  TraceEvent e;
  e.tick = tick;
  e.lane = lane;
  e.phase = TracePhase::kComplete;
  e.name = name;
  e.scope = scope;
  e.duration = duration;
  e.args = std::move(args);
  Emit(std::move(e));
}

void Tracer::BeginSpan(int lane, Tick tick, const char* name, int64_t scope,
                       std::vector<TraceArg> args) {
  TraceEvent e;
  e.tick = tick;
  e.lane = lane;
  e.phase = TracePhase::kBegin;
  e.name = name;
  e.scope = scope;
  e.args = std::move(args);
  Emit(std::move(e));
}

void Tracer::EndSpan(int lane, Tick tick, const char* name, int64_t scope,
                     std::vector<TraceArg> args) {
  TraceEvent e;
  e.tick = tick;
  e.lane = lane;
  e.phase = TracePhase::kEnd;
  e.name = name;
  e.scope = scope;
  e.args = std::move(args);
  Emit(std::move(e));
}

void Tracer::EmitCounter(int lane, Tick tick, const char* name,
                         int64_t value) {
  TraceEvent e;
  e.tick = tick;
  e.lane = lane;
  e.phase = TracePhase::kCounter;
  e.name = name;
  e.value = value;
  Emit(std::move(e));
}

int64_t Tracer::event_count() const {
  int64_t n = 0;
  for (const auto& lane : lanes_) n += static_cast<int64_t>(lane.size());
  return n;
}

std::vector<const TraceEvent*> Tracer::Merged() const {
  struct Key {
    const TraceEvent* event;
    size_t index;  // per-lane emit order
  };
  std::vector<Key> keys;
  keys.reserve(static_cast<size_t>(event_count()));
  for (const auto& lane : lanes_) {
    for (size_t i = 0; i < lane.size(); ++i) keys.push_back({&lane[i], i});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.event->tick != b.event->tick) return a.event->tick < b.event->tick;
    if (a.event->lane != b.event->lane) return a.event->lane < b.event->lane;
    return a.index < b.index;
  });
  std::vector<const TraceEvent*> merged;
  merged.reserve(keys.size());
  for (const Key& k : keys) merged.push_back(k.event);
  return merged;
}

std::string Tracer::ToChromeJson() const {
  std::string out;
  out.reserve(256 + static_cast<size_t>(event_count()) * 96);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  bool first = true;
  for (size_t lane = 0; lane < lane_names_.size(); ++lane) {
    if (lane_names_[lane].empty()) continue;
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":");
    out.append(std::to_string(lane));
    out.append(",\"tid\":0,\"args\":{\"name\":");
    AppendJsonString(&out, lane_names_[lane]);
    out.append("}}");
  }
  for (const TraceEvent* e : Merged()) {
    if (!first) out.append(",\n");
    first = false;
    out.append("{\"name\":\"");
    out.append(e->name);
    out.append("\",\"ph\":\"");
    out.append(PhaseCode(e->phase));
    out.append("\",\"pid\":");
    out.append(std::to_string(e->lane));
    out.append(",\"tid\":0,\"ts\":");
    out.append(std::to_string(e->tick * 1000));  // virtual ms -> µs
    if (e->phase == TracePhase::kComplete) {
      out.append(",\"dur\":");
      out.append(std::to_string(e->duration * 1000));
    }
    if (e->phase == TracePhase::kBegin || e->phase == TracePhase::kEnd) {
      out.append(",\"cat\":\"dcape\",\"id\":\"0x");
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llx",
                    static_cast<unsigned long long>(e->scope));
      out.append(buf);
      out.append("\"");
    }
    if (e->phase == TracePhase::kInstant) {
      out.append(",\"s\":\"p\"");
    }
    out.push_back(',');
    if (e->phase == TracePhase::kCounter) {
      out.append("\"args\":{\"value\":");
      out.append(std::to_string(e->value));
      out.append("}");
    } else {
      std::vector<TraceArg> args = e->args;
      if (e->scope >= 0 && e->phase != TracePhase::kBegin &&
          e->phase != TracePhase::kEnd) {
        args.push_back(TraceArg::Int("scope", e->scope));
      }
      AppendArgs(&out, args);
    }
    out.append("}");
  }
  out.append("\n]}\n");
  return out;
}

std::vector<std::string> Tracer::OpenSpans() const {
  // Async spans are keyed by (lane, name, scope); begin/end must pair up
  // exactly. std::map keeps the report order deterministic.
  std::map<std::tuple<int32_t, std::string, int64_t>, int64_t> balance;
  for (const auto& lane : lanes_) {
    for (const TraceEvent& e : lane) {
      if (e.phase == TracePhase::kBegin) {
        balance[{e.lane, e.name, e.scope}] += 1;
      } else if (e.phase == TracePhase::kEnd) {
        balance[{e.lane, e.name, e.scope}] -= 1;
      }
    }
  }
  std::vector<std::string> open;
  for (const auto& [key, count] : balance) {
    if (count == 0) continue;
    const auto& [lane, name, scope] = key;
    open.push_back((count > 0 ? "unclosed span " : "unopened end ") + name +
                   " scope=" + std::to_string(scope) + " lane=" +
                   std::to_string(lane) + " (balance " +
                   std::to_string(count) + ")");
  }
  return open;
}

}  // namespace obs
}  // namespace dcape
