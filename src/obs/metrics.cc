#include "obs/metrics.h"

#include <sstream>

#include "common/check.h"

namespace dcape {
namespace obs {

void MetricsRegistry::CheckUnregistered(const char* name, int entity,
                                        int index) const {
  for (const Entry& e : entries_) {
    // Duplicate (name, entity, index) registration: every metric has
    // exactly one writer.
    DCAPE_CHECK(!(std::string_view(e.name) == name && e.entity == entity &&
                  e.index == index));
  }
}

Counter* MetricsRegistry::AddCounter(const char* name, int entity,
                                     int index) {
  DCAPE_CHECK(name != nullptr);
  CheckUnregistered(name, entity, index);
  counters_.emplace_back();
  Counter* cell = &counters_.back();
  entries_.push_back(Entry{name, entity, index, cell, nullptr});
  return cell;
}

Gauge* MetricsRegistry::AddGauge(const char* name, int entity, int index) {
  DCAPE_CHECK(name != nullptr);
  CheckUnregistered(name, entity, index);
  gauges_.emplace_back();
  Gauge* cell = &gauges_.back();
  entries_.push_back(Entry{name, entity, index, nullptr, cell});
  return cell;
}

Histogram* MetricsRegistry::AddHistogram(const char* name, int entity) {
  DCAPE_CHECK(name != nullptr);
  for (const HistogramEntry& e : histogram_entries_) {
    DCAPE_CHECK(!(std::string_view(e.name) == name && e.entity == entity));
  }
  histograms_.emplace_back();
  Histogram* cell = &histograms_.back();
  histogram_entries_.push_back(HistogramEntry{name, entity, cell});
  return cell;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> samples;
  samples.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Sample s;
    s.name = e.name;
    s.entity = e.entity;
    s.index = e.index;
    s.value = e.counter != nullptr ? e.counter->value() : e.gauge->value();
    samples.push_back(s);
  }
  return samples;
}

int64_t MetricsRegistry::Value(std::string_view name, int entity,
                               int index) const {
  for (const Entry& e : entries_) {
    if (std::string_view(e.name) == name && e.entity == entity &&
        e.index == index) {
      return e.counter != nullptr ? e.counter->value() : e.gauge->value();
    }
  }
  return 0;
}

const Histogram* MetricsRegistry::FindHistogram(std::string_view name,
                                                int entity) const {
  for (const HistogramEntry& e : histogram_entries_) {
    if (std::string_view(e.name) == name && e.entity == entity) {
      return e.histogram;
    }
  }
  return nullptr;
}

std::string MetricsRegistry::ToCsv() const {
  std::ostringstream os;
  os << "name,entity,index,value\n";
  for (const Sample& s : Snapshot()) {
    os << s.name << ',' << s.entity << ',' << s.index << ',' << s.value
       << '\n';
  }
  return os.str();
}

}  // namespace obs
}  // namespace dcape
