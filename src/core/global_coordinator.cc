#include "core/global_coordinator.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "sim/invariants.h"

namespace dcape {

GlobalCoordinator::GlobalCoordinator(const CoordinatorConfig& config,
                                     Transport* network)
    : config_(config),
      network_(network),
      owned_metrics_(config.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(config.metrics != nullptr ? config.metrics
                                         : owned_metrics_.get()),
      tracer_(config.tracer),
      sr_timer_(config.relocation.sr_timer_period),
      lb_timer_(config.active.lb_timer_period),
      last_relocation_start_(
          -config.relocation.min_time_between) {  // allow an early first one
  DCAPE_CHECK(network_ != nullptr);
  DCAPE_CHECK(!config_.engine_nodes.empty());
  DCAPE_CHECK_EQ(config_.engine_nodes.size(),
                 config_.engine_memory_thresholds.size());
  c_.relocations_started = metrics_->AddCounter(obs::m::kRelocationsStarted);
  c_.relocations_completed =
      metrics_->AddCounter(obs::m::kRelocationsCompleted);
  c_.relocations_aborted = metrics_->AddCounter(obs::m::kRelocationsAborted);
  c_.bytes_relocated = metrics_->AddCounter(obs::m::kBytesRelocated);
  c_.forced_spills = metrics_->AddCounter(obs::m::kForcedSpills);
  c_.forced_spill_bytes = metrics_->AddCounter(obs::m::kForcedSpillBytes);
}

GlobalCoordinator::Counters GlobalCoordinator::counters() const {
  Counters c;
  c.relocations_started = c_.relocations_started->value();
  c.relocations_completed = c_.relocations_completed->value();
  c.relocations_aborted = c_.relocations_aborted->value();
  c.bytes_relocated = c_.bytes_relocated->value();
  c.forced_spills = c_.forced_spills->value();
  c.forced_spill_bytes = c_.forced_spill_bytes->value();
  return c;
}

const char* GlobalCoordinator::PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kAwaitPartitions:
      return "await-partitions";
    case Phase::kAwaitPauseAcks:
      return "await-pause-acks";
    case Phase::kAwaitInstall:
      return "await-install";
    case Phase::kAwaitRoutingAcks:
      return "await-routing-acks";
    default:
      // Every switch over the relocation protocol phase carries this
      // arm (enforced by dcape_lint's phase-switch check): a phase
      // value outside the enum means protocol-state corruption, which
      // must abort, not fall through to arbitrary behavior.
      DCAPE_CHECK(false);
      return "corrupt-phase";
  }
}

bool GlobalCoordinator::GuardProtocol(const char* what, int64_t id,
                                      Phase expected) {
  if (inflight_.has_value() && inflight_->id == id &&
      inflight_->phase == expected) {
    return true;
  }
  if (config_.invariants != nullptr) {
    config_.invariants->Report(
        std::string("coordinator received ") + what + " for relocation " +
        std::to_string(id) +
        (inflight_.has_value()
             ? std::string(" in phase ") + PhaseName(inflight_->phase) +
                   " (expected " + PhaseName(expected) + ")"
             : std::string(" with no relocation in flight")));
  }
  return false;
}

void GlobalCoordinator::OnMessage(Tick now, const Message& message) {
  switch (message.type) {
    case MessageType::kStatsReport: {
      const auto& report = std::get<StatsReport>(message.payload);
      latest_stats_[report.engine] = report;
      return;
    }
    case MessageType::kPartitionsToMove: {
      const auto& reply = std::get<PartitionsToMove>(message.payload);
      if (!GuardProtocol("partitions-to-move", reply.relocation_id,
                         Phase::kAwaitPartitions)) {
        return;
      }
      if (reply.partitions.empty()) {
        DCAPE_LOG(kInfo) << "relocation " << reply.relocation_id
                         << " aborted: sender has no movable groups";
        c_.relocations_aborted->Increment();
        if (DCAPE_TRACE_ACTIVE(tracer_)) {
          const int64_t id = inflight_->id;
          tracer_->EndSpan(lane(), now, obs::ev::kRelocPhaseCompute, id);
          tracer_->EmitInstant(
              lane(), now, obs::ev::kRelocAbort,
              {obs::TraceArg::Int("sender", inflight_->sender)}, id);
          tracer_->EndSpan(lane(), now, obs::ev::kRelocation, id);
        }
        inflight_.reset();
        MaybeStartQueued(now);
        return;
      }
      inflight_->partitions = reply.partitions;
      inflight_->bytes = reply.bytes;
      inflight_->phase = Phase::kAwaitPauseAcks;
      inflight_->acks = 0;
      if (DCAPE_TRACE_ACTIVE(tracer_)) {
        tracer_->EndSpan(
            lane(), now, obs::ev::kRelocPhaseCompute, inflight_->id,
            {obs::TraceArg::Int(
                 "groups", static_cast<int64_t>(reply.partitions.size())),
             obs::TraceArg::Int("bytes", reply.bytes)});
        tracer_->BeginSpan(lane(), now, obs::ev::kRelocPhasePause,
                           inflight_->id);
      }
      for (NodeId host : config_.split_hosts) {
        PausePartitions pause;
        pause.relocation_id = inflight_->id;
        pause.partitions = inflight_->partitions;
        pause.sender_node =
            config_.engine_nodes[static_cast<size_t>(inflight_->sender)];
        Message msg;
        msg.type = MessageType::kPausePartitions;
        msg.from = config_.node_id;
        msg.to = host;
        msg.payload = std::move(pause);
        network_->Send(std::move(msg), now);
      }
      return;
    }
    case MessageType::kPauseAck: {
      const auto& ack = std::get<PauseAck>(message.payload);
      if (!GuardProtocol("pause-ack", ack.relocation_id,
                         Phase::kAwaitPauseAcks)) {
        return;
      }
      inflight_->acks += 1;
      if (inflight_->acks <
          static_cast<int>(config_.split_hosts.size())) {
        return;
      }
      TransferStates cmd;
      cmd.relocation_id = inflight_->id;
      cmd.receiver = inflight_->receiver;
      cmd.partitions = inflight_->partitions;
      Message msg;
      msg.type = MessageType::kTransferStates;
      msg.from = config_.node_id;
      msg.to = config_.engine_nodes[static_cast<size_t>(inflight_->sender)];
      msg.payload = std::move(cmd);
      network_->Send(std::move(msg), now);
      inflight_->phase = Phase::kAwaitInstall;
      if (DCAPE_TRACE_ACTIVE(tracer_)) {
        tracer_->EndSpan(lane(), now, obs::ev::kRelocPhasePause,
                         inflight_->id);
        tracer_->BeginSpan(lane(), now, obs::ev::kRelocPhaseTransfer,
                           inflight_->id);
      }
      return;
    }
    case MessageType::kStatesInstalled: {
      const auto& installed = std::get<StatesInstalled>(message.payload);
      if (!GuardProtocol("states-installed", installed.relocation_id,
                         Phase::kAwaitInstall)) {
        return;
      }
      inflight_->phase = Phase::kAwaitRoutingAcks;
      inflight_->acks = 0;
      if (DCAPE_TRACE_ACTIVE(tracer_)) {
        tracer_->EndSpan(
            lane(), now, obs::ev::kRelocPhaseTransfer, inflight_->id,
            {obs::TraceArg::Int("bytes", installed.bytes)});
        tracer_->BeginSpan(lane(), now, obs::ev::kRelocPhaseRouting,
                           inflight_->id);
      }
      for (NodeId host : config_.split_hosts) {
        UpdateRouting update;
        update.relocation_id = inflight_->id;
        update.partitions = inflight_->partitions;
        update.new_owner = inflight_->receiver;
        Message msg;
        msg.type = MessageType::kUpdateRouting;
        msg.from = config_.node_id;
        msg.to = host;
        msg.payload = std::move(update);
        network_->Send(std::move(msg), now);
      }
      return;
    }
    case MessageType::kRoutingUpdated: {
      const auto& updated = std::get<RoutingUpdated>(message.payload);
      if (!GuardProtocol("routing-updated", updated.relocation_id,
                         Phase::kAwaitRoutingAcks)) {
        return;
      }
      inflight_->acks += 1;
      if (inflight_->acks < static_cast<int>(config_.split_hosts.size())) {
        return;
      }
      c_.relocations_completed->Increment();
      c_.bytes_relocated->Add(inflight_->bytes);
      if (DCAPE_TRACE_ACTIVE(tracer_)) {
        const int64_t id = inflight_->id;
        tracer_->EndSpan(lane(), now, obs::ev::kRelocPhaseRouting, id);
        tracer_->EndSpan(
            lane(), now, obs::ev::kRelocation, id,
            {obs::TraceArg::Int(
                 "groups", static_cast<int64_t>(inflight_->partitions.size())),
             obs::TraceArg::Int("bytes", inflight_->bytes)});
      }
      DCAPE_LOG(kInfo) << "relocation " << inflight_->id << " completed: "
                       << inflight_->partitions.size() << " groups, "
                       << inflight_->bytes << " bytes, engine "
                       << inflight_->sender << " -> " << inflight_->receiver;
      inflight_.reset();
      MaybeStartQueued(now);
      return;
    }
    case MessageType::kSpillComplete: {
      const auto& done = std::get<SpillComplete>(message.payload);
      forced_spill_in_flight_ = false;
      c_.forced_spill_bytes->Add(done.bytes_spilled);
      return;
    }
    default:
      DCAPE_LOG(kWarning) << "coordinator ignoring unexpected message "
                          << MessageTypeName(message.type);
      return;
  }
}

bool GlobalCoordinator::CheckRelocation(Tick now) {
  if (!StrategyRelocates(config_.strategy)) return false;
  if (inflight_.has_value()) return false;
  if (!queued_moves_.empty()) {
    // A rebalance round is still executing; don't plan a new one.
    MaybeStartQueued(now);
    return true;
  }
  if (now - last_relocation_start_ < config_.relocation.min_time_between) {
    return false;
  }
  if (latest_stats_.size() < 2) return false;

  EngineId max_engine = -1;
  EngineId min_engine = -1;
  int64_t max_load = std::numeric_limits<int64_t>::min();
  int64_t min_load = std::numeric_limits<int64_t>::max();
  for (const auto& [engine, report] : latest_stats_) {
    if (report.state_bytes > max_load) {
      max_load = report.state_bytes;
      max_engine = engine;
    }
    if (report.state_bytes < min_load) {
      min_load = report.state_bytes;
      min_engine = engine;
    }
  }
  if (max_engine == min_engine || max_load <= 0) return false;
  const double ratio =
      static_cast<double>(min_load) / static_cast<double>(max_load);
  if (ratio >= config_.relocation.theta_r) return false;

  if (config_.relocation.model == RelocationModel::kPairwise) {
    const int64_t amount = (max_load - min_load) / 2;
    if (amount < config_.relocation.min_relocate_bytes) return false;
    last_relocation_start_ = now;
    if (DCAPE_TRACE_ACTIVE(tracer_)) {
      tracer_->EmitInstant(
          lane(), now, obs::ev::kRelocDecide,
          {obs::TraceArg::Int("max_engine", max_engine),
           obs::TraceArg::Int("min_engine", min_engine),
           obs::TraceArg::Int("max_load", max_load),
           obs::TraceArg::Int("min_load", min_load),
           obs::TraceArg::Double("ratio", ratio),
           obs::TraceArg::Double("theta_r", config_.relocation.theta_r),
           obs::TraceArg::Int("amount", amount)});
    }
    StartRelocation(now, PlannedMove{max_engine, min_engine, amount});
    return true;
  }

  // kGlobalRebalance: plan a greedy round of moves from every surplus
  // engine toward deficit engines until all approach the mean.
  int64_t total = 0;
  for (const auto& [engine, report] : latest_stats_) {
    total += report.state_bytes;
  }
  const int64_t mean = total / static_cast<int64_t>(latest_stats_.size());
  std::vector<std::pair<EngineId, int64_t>> surplus;   // above mean
  std::vector<std::pair<EngineId, int64_t>> deficit;   // below mean
  for (const auto& [engine, report] : latest_stats_) {
    const int64_t diff = report.state_bytes - mean;
    if (diff > 0) surplus.emplace_back(engine, diff);
    if (diff < 0) deficit.emplace_back(engine, -diff);
  }
  std::sort(surplus.begin(), surplus.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::sort(deficit.begin(), deficit.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::deque<PlannedMove> plan;
  size_t si = 0;
  size_t di = 0;
  while (si < surplus.size() && di < deficit.size()) {
    const int64_t amount = std::min(surplus[si].second, deficit[di].second);
    if (amount >= config_.relocation.min_relocate_bytes) {
      plan.push_back(
          PlannedMove{surplus[si].first, deficit[di].first, amount});
    }
    surplus[si].second -= amount;
    deficit[di].second -= amount;
    if (surplus[si].second <= 0) ++si;
    if (deficit[di].second <= 0) ++di;
  }
  if (plan.empty()) return false;

  last_relocation_start_ = now;
  queued_moves_ = std::move(plan);
  if (DCAPE_TRACE_ACTIVE(tracer_)) {
    tracer_->EmitInstant(
        lane(), now, obs::ev::kRelocDecide,
        {obs::TraceArg::Int("moves",
                            static_cast<int64_t>(queued_moves_.size())),
         obs::TraceArg::Int("mean", mean),
         obs::TraceArg::Double("ratio", ratio),
         obs::TraceArg::Double("theta_r", config_.relocation.theta_r)});
  }
  DCAPE_LOG(kInfo) << "global rebalance planned: " << queued_moves_.size()
                   << " moves at t=" << now;
  MaybeStartQueued(now);
  return true;
}

void GlobalCoordinator::StartRelocation(Tick now, const PlannedMove& move) {
  DCAPE_CHECK(!inflight_.has_value());
  InFlightRelocation relocation;
  relocation.id = next_relocation_id_++;
  relocation.sender = move.sender;
  relocation.receiver = move.receiver;
  relocation.phase = Phase::kAwaitPartitions;
  inflight_ = relocation;
  c_.relocations_started->Increment();
  if (DCAPE_TRACE_ACTIVE(tracer_)) {
    tracer_->BeginSpan(
        lane(), now, obs::ev::kRelocation, relocation.id,
        {obs::TraceArg::Int("sender", move.sender),
         obs::TraceArg::Int("receiver", move.receiver),
         obs::TraceArg::Int("amount", move.amount_bytes)});
    tracer_->BeginSpan(lane(), now, obs::ev::kRelocPhaseCompute,
                       relocation.id);
  }

  ComputePartitionsToMove request;
  request.relocation_id = relocation.id;
  request.amount_bytes = move.amount_bytes;
  request.receiver = move.receiver;
  Message msg;
  msg.type = MessageType::kComputePartitionsToMove;
  msg.from = config_.node_id;
  msg.to = config_.engine_nodes[static_cast<size_t>(move.sender)];
  msg.payload = request;
  network_->Send(std::move(msg), now);

  DCAPE_LOG(kInfo) << "relocation " << relocation.id << " started: engine "
                   << move.sender << " -> engine " << move.receiver
                   << ", amount " << move.amount_bytes << " B at t=" << now;
}

void GlobalCoordinator::MaybeStartQueued(Tick now) {
  if (inflight_.has_value() || queued_moves_.empty()) return;
  PlannedMove move = queued_moves_.front();
  queued_moves_.pop_front();
  StartRelocation(now, move);
}

void GlobalCoordinator::CheckProductivity(Tick now) {
  if (config_.strategy != AdaptationStrategy::kActiveDisk) return;
  if (forced_spill_in_flight_ || inflight_.has_value()) return;
  if (latest_stats_.size() < 2) return;
  if (c_.forced_spill_bytes->value() >=
      config_.active.max_forced_spill_bytes) {
    return;  // the M_query − M_cluster volume guard
  }

  // "Only if extra memory is needed": aggregate usage must be pressing
  // against the aggregate thresholds.
  int64_t total_used = 0;
  for (const auto& [engine, report] : latest_stats_) {
    total_used += report.state_bytes;
  }
  int64_t total_capacity = 0;
  for (int64_t threshold : config_.engine_memory_thresholds) {
    total_capacity += threshold;
  }
  if (static_cast<double>(total_used) <
      config_.active.memory_pressure * static_cast<double>(total_capacity)) {
    return;
  }

  // Average productivity rate R per engine: outputs in the sampling
  // window divided by the number of resident groups (§5.3).
  EngineId min_engine = -1;
  double min_rate = 0.0;
  double max_rate = 0.0;
  bool first = true;
  for (const auto& [engine, report] : latest_stats_) {
    if (report.num_groups <= 0 || report.state_bytes <= 0) continue;
    const double rate = static_cast<double>(report.outputs_in_window) /
                        static_cast<double>(report.num_groups);
    if (first) {
      min_rate = max_rate = rate;
      min_engine = engine;
      first = false;
      continue;
    }
    if (rate < min_rate) {
      min_rate = rate;
      min_engine = engine;
    }
    max_rate = std::max(max_rate, rate);
  }
  if (first || min_engine < 0) return;
  const bool skewed =
      (min_rate <= 0.0) ? (max_rate > 0.0)
                        : (max_rate / min_rate > config_.active.lambda);
  if (!skewed) return;

  const StatsReport& victim = latest_stats_[min_engine];
  int64_t amount = static_cast<int64_t>(
      config_.active.forced_spill_fraction *
      static_cast<double>(victim.state_bytes));
  amount = std::min(amount, config_.active.max_forced_spill_bytes -
                                c_.forced_spill_bytes->value());
  if (amount <= 0) return;

  forced_spill_in_flight_ = true;
  c_.forced_spills->Increment();
  if (DCAPE_TRACE_ACTIVE(tracer_)) {
    tracer_->EmitInstant(
        lane(), now, obs::ev::kForceSpillDecide,
        {obs::TraceArg::Int("engine", min_engine),
         obs::TraceArg::Int("amount", amount),
         obs::TraceArg::Double("r_min", min_rate),
         obs::TraceArg::Double("r_max", max_rate),
         obs::TraceArg::Double("lambda", config_.active.lambda)});
  }
  ForceSpill cmd;
  cmd.amount_bytes = amount;
  Message msg;
  msg.type = MessageType::kForceSpill;
  msg.from = config_.node_id;
  msg.to = config_.engine_nodes[static_cast<size_t>(min_engine)];
  msg.payload = cmd;
  network_->Send(std::move(msg), now);

  DCAPE_LOG(kInfo) << "active-disk forced spill of " << amount
                   << " B at engine " << min_engine << " (R_min=" << min_rate
                   << ", R_max=" << max_rate << ") at t=" << now;
}

void GlobalCoordinator::OnTick(Tick now) {
  bool relocated = false;
  if (sr_timer_.Expired(now)) {
    relocated = CheckRelocation(now);
  }
  if (lb_timer_.Expired(now) && !relocated) {
    CheckProductivity(now);
  }
}

}  // namespace dcape
