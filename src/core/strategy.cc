#include "core/strategy.h"

#include <string>

namespace dcape {
namespace {

template <typename Enum>
StatusOr<Enum> ParseByName(std::string_view name,
                           std::initializer_list<Enum> values,
                           const char* (*to_name)(Enum), const char* what) {
  for (Enum value : values) {
    if (name == to_name(value)) return value;
  }
  return Status::InvalidArgument("unknown " + std::string(what) + ": '" +
                                 std::string(name) + "'");
}

}  // namespace

const char* StrategyName(AdaptationStrategy strategy) {
  switch (strategy) {
    case AdaptationStrategy::kNoAdaptation:
      return "all-mem";
    case AdaptationStrategy::kSpillOnly:
      return "spill-only";
    case AdaptationStrategy::kRelocationOnly:
      return "relocation-only";
    case AdaptationStrategy::kLazyDisk:
      return "lazy-disk";
    case AdaptationStrategy::kActiveDisk:
      return "active-disk";
  }
  return "unknown";
}

const char* RelocationModelName(RelocationModel model) {
  switch (model) {
    case RelocationModel::kPairwise:
      return "pairwise";
    case RelocationModel::kGlobalRebalance:
      return "global-rebalance";
  }
  return "unknown";
}

const char* SpillPolicyName(SpillPolicy policy) {
  switch (policy) {
    case SpillPolicy::kLeastProductiveFirst:
      return "push-less-productive";
    case SpillPolicy::kMostProductiveFirst:
      return "push-more-productive";
    case SpillPolicy::kLargestFirst:
      return "push-largest";
    case SpillPolicy::kSmallestFirst:
      return "push-smallest";
    case SpillPolicy::kRandom:
      return "push-random";
  }
  return "unknown";
}

StatusOr<AdaptationStrategy> ParseStrategy(std::string_view name) {
  return ParseByName(
      name,
      {AdaptationStrategy::kNoAdaptation, AdaptationStrategy::kSpillOnly,
       AdaptationStrategy::kRelocationOnly, AdaptationStrategy::kLazyDisk,
       AdaptationStrategy::kActiveDisk},
      &StrategyName, "strategy");
}

StatusOr<RelocationModel> ParseRelocationModel(std::string_view name) {
  return ParseByName(
      name, {RelocationModel::kPairwise, RelocationModel::kGlobalRebalance},
      &RelocationModelName, "relocation model");
}

StatusOr<SpillPolicy> ParseSpillPolicy(std::string_view name) {
  return ParseByName(
      name,
      {SpillPolicy::kLeastProductiveFirst, SpillPolicy::kMostProductiveFirst,
       SpillPolicy::kLargestFirst, SpillPolicy::kSmallestFirst,
       SpillPolicy::kRandom},
      &SpillPolicyName, "spill policy");
}

}  // namespace dcape
