#ifndef DCAPE_CORE_GLOBAL_COORDINATOR_H_
#define DCAPE_CORE_GLOBAL_COORDINATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"
#include "core/strategy.h"
#include "net/message.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace dcape {

namespace sim {
class InvariantRecorder;
}  // namespace sim

/// Configuration of the global coordinator node.
struct CoordinatorConfig {
  NodeId node_id = kInvalidNode;
  /// engine id -> network node (identity by cluster convention).
  std::vector<NodeId> engine_nodes;
  /// Nodes hosting split operators (tuples buffer there during
  /// relocations); usually the stream-generator node.
  std::vector<NodeId> split_hosts;
  AdaptationStrategy strategy = AdaptationStrategy::kNoAdaptation;
  RelocationConfig relocation;
  ActiveDiskConfig active;
  /// Per-engine local spill thresholds, used by the active-disk memory-
  /// pressure guard (aggregate usage vs aggregate capacity).
  std::vector<int64_t> engine_memory_thresholds;
  /// Chaos-harness invariant sink (unowned; null in production). When
  /// set, protocol messages that arrive for an unknown relocation or in
  /// the wrong phase are reported instead of silently dropped — in a
  /// correct run under tolerated faults, none ever do.
  sim::InvariantRecorder* invariants = nullptr;
  /// Unified metrics registry (unowned). The coordinator registers its
  /// coordinator.* cells there (entity = kCluster); when null it owns a
  /// private registry (standalone use in unit tests).
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured tracer (unowned; null = tracing disabled). The
  /// coordinator emits on lane `node_id`: the outer `relocation` async
  /// span, one nested span per protocol phase, and the decision
  /// instants with their triggering statistics.
  obs::Tracer* tracer = nullptr;
};

/// The global adaptation controller (paper Fig. 4).
///
/// Collects each engine's lightweight statistics and makes the
/// coarse-grained decisions: *when* to relocate, from which engine to
/// which, and how much (pairwise (M_max − M_least)/2 rule, §4); and under
/// active-disk, *when to force a spill* at the least productive engine
/// (§5.3). Which concrete partition groups move or spill is delegated to
/// the engines' local controllers — the tiered decision making the paper
/// credits for coordinator scalability.
///
/// The coordinator also drives the 8-step relocation protocol state
/// machine; at most one relocation is in flight at a time.
class GlobalCoordinator {
 public:
  /// Cumulative decision counters for experiment summaries. Snapshot
  /// view: the authoritative cells live in the metrics registry and
  /// `counters()` materializes them on demand.
  struct Counters {
    int64_t relocations_started = 0;
    int64_t relocations_completed = 0;
    int64_t relocations_aborted = 0;
    int64_t bytes_relocated = 0;
    int64_t forced_spills = 0;
    int64_t forced_spill_bytes = 0;
  };

  GlobalCoordinator(const CoordinatorConfig& config, Transport* network);

  GlobalCoordinator(const GlobalCoordinator&) = delete;
  GlobalCoordinator& operator=(const GlobalCoordinator&) = delete;

  /// Network delivery callback.
  void OnMessage(Tick now, const Message& message);

  /// Periodic decision making (sr_timer and lb_timer).
  void OnTick(Tick now);

  /// Snapshot of the registry-backed counters (by value).
  Counters counters() const;
  bool relocation_in_flight() const { return inflight_.has_value(); }
  const CoordinatorConfig& config() const { return config_; }

  /// Latest stats per engine (for tests and summaries).
  const std::map<EngineId, StatsReport>& latest_stats() const {
    return latest_stats_;
  }

 private:
  /// Phases of the in-flight relocation, coordinator side.
  enum class Phase {
    kAwaitPartitions,   // waiting for the sender's group choice
    kAwaitPauseAcks,    // waiting for every split host to pause
    kAwaitInstall,      // transfer authorized; waiting for the receiver
    kAwaitRoutingAcks,  // waiting for every split host to re-route
  };
  struct InFlightRelocation {
    int64_t id = 0;
    EngineId sender = 0;
    EngineId receiver = 0;
    std::vector<PartitionId> partitions;
    Phase phase = Phase::kAwaitPartitions;
    int acks = 0;
    int64_t bytes = 0;
  };

  /// A planned pairwise move (one 8-step protocol run).
  struct PlannedMove {
    EngineId sender = 0;
    EngineId receiver = 0;
    int64_t amount_bytes = 0;
  };

  /// Stable human-readable name of a protocol phase, for invariant and
  /// log messages. Aborts on a value outside the enum.
  static const char* PhaseName(Phase phase);

  /// True when `id` matches the in-flight relocation in phase
  /// `expected`; otherwise reports to the invariant recorder (when
  /// configured) and returns false.
  bool GuardProtocol(const char* what, int64_t id, Phase expected);

  /// The §4 relocation rule; returns true when a relocation was started
  /// this round. Under kGlobalRebalance a whole round of moves is planned
  /// and executed back to back.
  bool CheckRelocation(Tick now);
  /// Kicks off one planned move (protocol step 1).
  void StartRelocation(Tick now, const PlannedMove& move);
  /// Starts the next queued move, if any.
  void MaybeStartQueued(Tick now);
  /// The §5.3 productivity rule (active-disk forced spill).
  void CheckProductivity(Tick now);

  /// The coordinator's trace lane is its network node id.
  int lane() const { return static_cast<int>(config_.node_id); }

  CoordinatorConfig config_;
  Transport* network_;
  /// Private registry when the config did not supply one; declared
  /// before the cells below, which point into it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  PeriodicTimer sr_timer_;
  PeriodicTimer lb_timer_;
  std::map<EngineId, StatsReport> latest_stats_;
  std::optional<InFlightRelocation> inflight_;
  std::deque<PlannedMove> queued_moves_;
  Tick last_relocation_start_;
  int64_t next_relocation_id_ = 1;
  bool forced_spill_in_flight_ = false;
  /// Registry-owned cells backing the Counters snapshot (entity =
  /// MetricsRegistry::kCluster).
  struct Cells {
    obs::Counter* relocations_started;
    obs::Counter* relocations_completed;
    obs::Counter* relocations_aborted;
    obs::Counter* bytes_relocated;
    obs::Counter* forced_spills;
    obs::Counter* forced_spill_bytes;
  };
  Cells c_;
};

}  // namespace dcape

#endif  // DCAPE_CORE_GLOBAL_COORDINATOR_H_
