#include "core/productivity.h"

#include <set>
#include <string>

#include "common/check.h"

namespace dcape {

const char* ProductivityModelName(ProductivityModel model) {
  switch (model) {
    case ProductivityModel::kCumulative:
      return "cumulative";
    case ProductivityModel::kEwma:
      return "ewma";
  }
  return "unknown";
}

StatusOr<ProductivityModel> ParseProductivityModel(std::string_view name) {
  if (name == "cumulative") return ProductivityModel::kCumulative;
  if (name == "ewma") return ProductivityModel::kEwma;
  return Status::InvalidArgument("unknown productivity model: '" +
                                 std::string(name) + "'");
}

void ProductivityTracker::Roll(const std::vector<GroupStats>& stats) {
  if (config_.model != ProductivityModel::kEwma) return;
  DCAPE_CHECK_GT(config_.ewma_alpha, 0.0);
  DCAPE_CHECK_LE(config_.ewma_alpha, 1.0);

  std::set<PartitionId> alive;
  for (const GroupStats& g : stats) {
    alive.insert(g.partition);
    GroupWindow& window = windows_[g.partition];
    const int64_t delta =
        g.outputs - (window.seen ? window.last_outputs : 0);
    const double instant =
        g.bytes > 0 ? static_cast<double>(delta) / static_cast<double>(g.bytes)
                    : 0.0;
    if (!window.seen) {
      window.ewma = instant;
    } else {
      window.ewma = config_.ewma_alpha * instant +
                    (1.0 - config_.ewma_alpha) * window.ewma;
    }
    window.last_outputs = g.outputs;
    window.seen = true;
  }
  // Drop state for groups no longer resident (spilled/relocated); if the
  // partition regrows it starts a fresh window.
  for (auto it = windows_.begin(); it != windows_.end();) {
    if (alive.count(it->first) == 0) {
      it = windows_.erase(it);
    } else {
      ++it;
    }
  }
}

void ProductivityTracker::Refine(std::vector<GroupStats>* stats) const {
  if (config_.model != ProductivityModel::kEwma) return;
  for (GroupStats& g : *stats) {
    auto it = windows_.find(g.partition);
    g.productivity = (it != windows_.end()) ? it->second.ewma : 0.0;
  }
}

}  // namespace dcape
