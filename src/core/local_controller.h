#ifndef DCAPE_CORE_LOCAL_CONTROLLER_H_
#define DCAPE_CORE_LOCAL_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/virtual_clock.h"
#include "core/productivity.h"
#include "core/strategy.h"
#include "state/state_manager.h"

namespace dcape {

/// The per-engine local adaptation controller (paper §2, Fig. 4).
///
/// It owns the *fine-grained* decisions: which partition groups to spill
/// when the engine's memory overflows (least productive first, k% of
/// state), and which groups to offer when the global coordinator asks for
/// `amount` bytes to relocate (most productive first). The *coarse*
/// decisions — when to relocate, between which engines, and when to force
/// a spill — belong to the GlobalCoordinator.
class LocalController {
 public:
  LocalController(const SpillConfig& config,
                  const ProductivityConfig& productivity, uint64_t seed)
      : config_(config),
        tracker_(productivity),
        rng_(seed),
        ss_timer_(config.ss_timer_period) {}

  LocalController(const LocalController&) = delete;
  LocalController& operator=(const LocalController&) = delete;

  /// The ss_timer check (Algorithm 1, "ss_timer_expired"): if the tracked
  /// memory exceeds threshold^mem, returns the spill victims — k% of the
  /// resident state ranked by the configured policy, excluding groups
  /// locked by an in-flight relocation. Empty result means "no spill".
  std::vector<PartitionId> CheckSpill(Tick now, const StateManager& state);

  /// Victim selection for a coordinator-forced spill (active-disk
  /// "start_ss"): `amount_bytes` of the least productive unlocked groups.
  std::vector<PartitionId> ChooseForcedSpillVictims(const StateManager& state,
                                                    int64_t amount_bytes);

  /// Selection for relocation step 2 ("computePartsToMove"): the most
  /// productive unlocked groups totaling `amount_bytes`.
  std::vector<PartitionId> ChoosePartitionsToMove(const StateManager& state,
                                                  int64_t amount_bytes);

  /// Advances the productivity estimator by one statistics window (the
  /// engine calls this on its stats timer). A no-op for the cumulative
  /// model.
  void RollProductivityWindow(const StateManager& state);

  const SpillConfig& config() const { return config_; }
  const ProductivityTracker& tracker() const { return tracker_; }

 private:
  /// Stats snapshot with model-refined productivity values.
  std::vector<GroupStats> RefinedStats(const StateManager& state) const;

  SpillConfig config_;
  ProductivityTracker tracker_;
  Rng rng_;
  PeriodicTimer ss_timer_;
};

}  // namespace dcape

#endif  // DCAPE_CORE_LOCAL_CONTROLLER_H_
