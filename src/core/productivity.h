#ifndef DCAPE_CORE_PRODUCTIVITY_H_
#define DCAPE_CORE_PRODUCTIVITY_H_

#include <cstdint>
#include <map>
#include <string_view>

#include "common/ids.h"
#include "common/status.h"
#include "state/partition_group.h"

namespace dcape {

/// How partition-group productivity is estimated for the adaptation
/// policies. The paper's default is the cumulative P_output/P_size
/// ratio; §2 explicitly suggests "snapshots of historical values with
/// higher weights on more recent values using an amortized weight
/// function" for workloads whose behaviour shifts over time — that is
/// the EWMA model.
enum class ProductivityModel {
  /// Cumulative outputs per state byte (the paper's metric).
  kCumulative,
  /// Exponentially weighted moving average of the *windowed* output per
  /// byte: groups that stopped producing decay toward 0 even if they
  /// were productive long ago.
  kEwma,
};

/// Returns a stable display name ("cumulative", "ewma").
const char* ProductivityModelName(ProductivityModel model);

/// Parses a display name back to the enum.
[[nodiscard]] StatusOr<ProductivityModel> ParseProductivityModel(
    std::string_view name);

/// Estimator settings.
struct ProductivityConfig {
  ProductivityModel model = ProductivityModel::kCumulative;
  /// EWMA weight of the newest window (0 < alpha <= 1).
  double ewma_alpha = 0.5;
};

/// Maintains per-group productivity estimates across sampling windows.
///
/// Mechanically separate from PartitionGroup so the group stays a pure
/// state container: the engine calls `Roll` once per statistics window
/// with the current raw stats, and `Refine` rewrites each snapshot's
/// `productivity` field according to the configured model before the
/// policies rank groups.
class ProductivityTracker {
 public:
  explicit ProductivityTracker(const ProductivityConfig& config)
      : config_(config) {}

  /// Advances one sampling window: folds each group's output delta since
  /// the previous Roll into its EWMA. Groups absent from `stats` (spilled
  /// or relocated away) are forgotten.
  void Roll(const std::vector<GroupStats>& stats);

  /// Overwrites `stats[i].productivity` with the model's estimate. For
  /// kCumulative this is the identity.
  void Refine(std::vector<GroupStats>* stats) const;

  const ProductivityConfig& config() const { return config_; }

 private:
  struct GroupWindow {
    int64_t last_outputs = 0;
    double ewma = 0.0;
    bool seen = false;
  };

  ProductivityConfig config_;
  std::map<PartitionId, GroupWindow> windows_;
};

}  // namespace dcape

#endif  // DCAPE_CORE_PRODUCTIVITY_H_
