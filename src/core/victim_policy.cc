#include "core/victim_policy.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {
namespace {

/// Takes the ranked prefix reaching `target_bytes`.
std::vector<PartitionId> TakePrefix(const std::vector<GroupStats>& stats,
                                    int64_t target_bytes) {
  std::vector<PartitionId> selected;
  int64_t accumulated = 0;
  for (const GroupStats& g : stats) {
    if (accumulated >= target_bytes && !selected.empty()) break;
    if (g.bytes <= 0) continue;
    selected.push_back(g.partition);
    accumulated += g.bytes;
  }
  return selected;
}

}  // namespace

std::vector<PartitionId> SelectSpillVictims(std::vector<GroupStats> stats,
                                            SpillPolicy policy,
                                            int64_t target_bytes, Rng* rng) {
  if (target_bytes <= 0 || stats.empty()) return {};
  switch (policy) {
    case SpillPolicy::kLeastProductiveFirst:
      std::sort(stats.begin(), stats.end(),
                [](const GroupStats& a, const GroupStats& b) {
                  if (a.productivity != b.productivity) {
                    return a.productivity < b.productivity;
                  }
                  return a.partition < b.partition;
                });
      break;
    case SpillPolicy::kMostProductiveFirst:
      std::sort(stats.begin(), stats.end(),
                [](const GroupStats& a, const GroupStats& b) {
                  if (a.productivity != b.productivity) {
                    return a.productivity > b.productivity;
                  }
                  return a.partition < b.partition;
                });
      break;
    case SpillPolicy::kLargestFirst:
      std::sort(stats.begin(), stats.end(),
                [](const GroupStats& a, const GroupStats& b) {
                  if (a.bytes != b.bytes) return a.bytes > b.bytes;
                  return a.partition < b.partition;
                });
      break;
    case SpillPolicy::kSmallestFirst:
      std::sort(stats.begin(), stats.end(),
                [](const GroupStats& a, const GroupStats& b) {
                  if (a.bytes != b.bytes) return a.bytes < b.bytes;
                  return a.partition < b.partition;
                });
      break;
    case SpillPolicy::kRandom: {
      DCAPE_CHECK(rng != nullptr);
      // Sort by id first so the shuffle depends only on the rng sequence.
      std::sort(stats.begin(), stats.end(),
                [](const GroupStats& a, const GroupStats& b) {
                  return a.partition < b.partition;
                });
      for (size_t i = stats.size(); i > 1; --i) {
        std::swap(stats[i - 1], stats[rng->Uniform(i)]);
      }
      break;
    }
  }
  return TakePrefix(stats, target_bytes);
}

std::vector<PartitionId> SelectRelocationCandidates(
    std::vector<GroupStats> stats, int64_t target_bytes) {
  if (target_bytes <= 0 || stats.empty()) return {};
  std::sort(stats.begin(), stats.end(),
            [](const GroupStats& a, const GroupStats& b) {
              if (a.productivity != b.productivity) {
                return a.productivity > b.productivity;
              }
              return a.partition < b.partition;
            });
  return TakePrefix(stats, target_bytes);
}

}  // namespace dcape
