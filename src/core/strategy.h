#ifndef DCAPE_CORE_STRATEGY_H_
#define DCAPE_CORE_STRATEGY_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "common/units.h"
#include "common/virtual_clock.h"

namespace dcape {

/// The run-time adaptation strategies evaluated by the paper.
enum class AdaptationStrategy {
  /// No adaptation at all — the "All-Mem" baseline (memory unbounded).
  kNoAdaptation,
  /// Local state spill only — the "no-relocation" baseline of
  /// Figs. 11–12: each engine spills k% of its state when its memory
  /// threshold is exceeded.
  kSpillOnly,
  /// Pairwise state relocation only (§4) — no disk is ever touched.
  kRelocationOnly,
  /// Lazy-disk (§5.1, Algorithm 1): relocation preferred globally, spill
  /// as a purely local last resort.
  kLazyDisk,
  /// Active-disk (§5.3, Algorithm 2): lazy-disk plus globally coordinated
  /// forced spills at the least-productive engine.
  kActiveDisk,
};

/// Returns a stable display name ("lazy-disk", ...).
const char* StrategyName(AdaptationStrategy strategy);

/// Parses a display name back to the enum (InvalidArgument on unknown).
[[nodiscard]] StatusOr<AdaptationStrategy> ParseStrategy(std::string_view name);

/// True when the strategy lets engines spill locally on memory overflow.
constexpr bool StrategySpillsLocally(AdaptationStrategy s) {
  return s == AdaptationStrategy::kSpillOnly ||
         s == AdaptationStrategy::kLazyDisk ||
         s == AdaptationStrategy::kActiveDisk;
}

/// True when the global coordinator runs the relocation rule.
constexpr bool StrategyRelocates(AdaptationStrategy s) {
  return s == AdaptationStrategy::kRelocationOnly ||
         s == AdaptationStrategy::kLazyDisk ||
         s == AdaptationStrategy::kActiveDisk;
}

/// How the local controller ranks spill victims.
enum class SpillPolicy {
  /// Push the smallest P_output/P_size first — the paper's
  /// throughput-oriented policy ("push-less-productive").
  kLeastProductiveFirst,
  /// Push the largest P_output/P_size first — the adversarial baseline
  /// of Fig. 7 ("push-more-productive").
  kMostProductiveFirst,
  /// Push the largest partition first — XJoin's flush policy [25].
  kLargestFirst,
  /// Push the smallest partition first.
  kSmallestFirst,
  /// Uniformly random victims — used by the k% sensitivity experiment
  /// (Figs. 5–6), which isolates the *amount* pushed from the choice.
  kRandom,
};

/// Returns a stable display name ("push-less-productive", ...).
const char* SpillPolicyName(SpillPolicy policy);

/// Parses a display name back to the enum.
[[nodiscard]] StatusOr<SpillPolicy> ParseSpillPolicy(std::string_view name);

/// Local spill controller settings (the paper's threshold^mem, s_timer and
/// the k% push volume of §3.2).
struct SpillConfig {
  /// Memory threshold triggering a local spill (200 MB in §3.2; benches
  /// scale this down together with the input rate).
  int64_t memory_threshold_bytes = 200 * kMiB;
  /// Fraction of resident state pushed per spill (k%; 30% default per the
  /// paper's sensitivity result).
  double spill_fraction = 0.30;
  SpillPolicy policy = SpillPolicy::kLeastProductiveFirst;
  /// How often each engine checks its memory (s_timer).
  Tick ss_timer_period = SecondsToTicks(5);
};

/// Online state restore (paper §3: the state cleanup "can be performed at
/// any time when memory becomes available"). When enabled, an engine
/// whose tracked memory falls below `low_watermark ×
/// memory_threshold_bytes` reads its oldest disk generation back (if the
/// whole generation fits), immediately produces the cross-generation
/// results it owes, and merges it into the memory-resident group —
/// shrinking the end-of-run cleanup debt while resources are idle.
struct RestoreConfig {
  /// Ignored (inert) when window semantics are enabled: restoring a
  /// generation removes it from the disk inventory, but under windows an
  /// *eviction generation* may still owe cross results against it —
  /// those are only produced by the end-of-run cleanup.
  bool enabled = false;
  /// Restore only below this fraction of the spill threshold.
  double low_watermark = 0.5;
  /// How often the engine checks for restore opportunities.
  Tick check_period = SecondsToTicks(10);
};

/// How the coordinator plans relocations once the θ_r rule triggers.
enum class RelocationModel {
  /// The paper's scheme: one move of (M_max − M_least)/2 from the most-
  /// to the least-loaded engine per round.
  kPairwise,
  /// A full rebalance round: a greedy sequence of pairwise moves from
  /// every above-average engine toward below-average engines until all
  /// are near the mean (the moves still execute one at a time through
  /// the same 8-step protocol). The paper notes such alternate models
  /// "could fairly easily be incorporated" — this is one.
  kGlobalRebalance,
};

/// Returns a stable display name ("pairwise", "global-rebalance").
const char* RelocationModelName(RelocationModel model);

/// Parses a display name back to the enum.
[[nodiscard]] StatusOr<RelocationModel> ParseRelocationModel(
    std::string_view name);

/// Global relocation settings (threshold^sr = θ_r, sr_timer, τ_m of §4.2).
struct RelocationConfig {
  RelocationModel model = RelocationModel::kPairwise;
  /// Relocate when M_least / M_max < θ_r.
  double theta_r = 0.8;
  /// Minimal time span between two consecutive relocations (τ_m).
  Tick min_time_between = SecondsToTicks(45);
  /// How often the coordinator evaluates the rule (sr_timer).
  Tick sr_timer_period = SecondsToTicks(10);
  /// Ignore imbalances smaller than this (avoids thrashing on noise).
  int64_t min_relocate_bytes = 256 * kKiB;
};

/// Active-disk settings (threshold^prod = λ, lb_timer, and the paper's
/// cap on coordinator-forced spill volume, §5.3–5.4).
struct ActiveDiskConfig {
  /// Force a spill when R_max / R_min > λ (λ = 2 in Fig. 13).
  double lambda = 2.0;
  /// How often the coordinator evaluates productivity (lb_timer).
  Tick lb_timer_period = SecondsToTicks(30);
  /// Forced spills only fire when aggregate cluster memory use exceeds
  /// this fraction of the aggregate thresholds ("only if extra memory is
  /// needed").
  double memory_pressure = 0.5;
  /// Total cap on coordinator-forced spill volume — the paper's
  /// M_query − M_cluster guard (100 MB in their runs).
  int64_t max_forced_spill_bytes = 100 * kMiB;
  /// Amount per forced spill, as a fraction of the target engine's state.
  double forced_spill_fraction = 0.30;
};

}  // namespace dcape

#endif  // DCAPE_CORE_STRATEGY_H_
