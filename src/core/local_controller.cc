#include "core/local_controller.h"

#include "core/victim_policy.h"

namespace dcape {

std::vector<GroupStats> LocalController::RefinedStats(
    const StateManager& state) const {
  std::vector<GroupStats> stats =
      state.SnapshotStats(/*exclude_locked=*/true);
  tracker_.Refine(&stats);
  return stats;
}

void LocalController::RollProductivityWindow(const StateManager& state) {
  tracker_.Roll(state.SnapshotStats(/*exclude_locked=*/false));
}

std::vector<PartitionId> LocalController::CheckSpill(Tick now,
                                                     const StateManager& state) {
  if (!ss_timer_.Expired(now)) return {};
  if (state.total_bytes() <= config_.memory_threshold_bytes) return {};
  const int64_t target = static_cast<int64_t>(
      config_.spill_fraction * static_cast<double>(state.total_bytes()));
  return SelectSpillVictims(RefinedStats(state), config_.policy, target,
                            &rng_);
}

std::vector<PartitionId> LocalController::ChooseForcedSpillVictims(
    const StateManager& state, int64_t amount_bytes) {
  return SelectSpillVictims(RefinedStats(state),
                            SpillPolicy::kLeastProductiveFirst, amount_bytes,
                            &rng_);
}

std::vector<PartitionId> LocalController::ChoosePartitionsToMove(
    const StateManager& state, int64_t amount_bytes) {
  return SelectRelocationCandidates(RefinedStats(state), amount_bytes);
}

}  // namespace dcape
