#ifndef DCAPE_CORE_VICTIM_POLICY_H_
#define DCAPE_CORE_VICTIM_POLICY_H_

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "core/strategy.h"
#include "state/partition_group.h"

namespace dcape {

/// Ranks partition groups under `policy` and selects a prefix whose
/// cumulative size reaches `target_bytes` (at least one group when any is
/// available and `target_bytes > 0`). Ties break on partition id so runs
/// are deterministic. `rng` is required for SpillPolicy::kRandom and
/// ignored otherwise.
///
/// This implements the paper's spill victim selection: the productivity
/// metric P_output/P_size decides which state leaves memory (§3,
/// "Throughput-Oriented Spill").
std::vector<PartitionId> SelectSpillVictims(std::vector<GroupStats> stats,
                                            SpillPolicy policy,
                                            int64_t target_bytes, Rng* rng);

/// Selects partition groups to *relocate*: most productive first, until
/// `target_bytes` is reached (§5.1 — productive state should stay in main
/// memory, so it is what gets moved to the machine that still has room).
std::vector<PartitionId> SelectRelocationCandidates(
    std::vector<GroupStats> stats, int64_t target_bytes);

}  // namespace dcape

#endif  // DCAPE_CORE_VICTIM_POLICY_H_
