#ifndef DCAPE_METRICS_CSV_H_
#define DCAPE_METRICS_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "metrics/time_series.h"

namespace dcape {

/// Renders several time series to CSV against a shared tick axis: one
/// row per distinct sample tick across all series, one column per series
/// (value at-or-before that tick). Header row uses the series names.
std::string SeriesToCsv(const std::vector<const TimeSeries*>& series);

/// Writes SeriesToCsv output to a file.
[[nodiscard]] Status WriteSeriesCsv(const std::string& path,
                      const std::vector<const TimeSeries*>& series);

}  // namespace dcape

#endif  // DCAPE_METRICS_CSV_H_
