#include "metrics/histogram.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {

int Histogram::BucketOf(int64_t value) {
  if (value <= 0) return 0;
  // Bucket i (i >= 1) holds [2^(i-1), 2^i).
  int bucket = 1;
  while (bucket < 63 && (int64_t{1} << bucket) <= value) ++bucket;
  return bucket;
}

void Histogram::Add(int64_t value) {
  value = std::max<int64_t>(0, value);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
  buckets_[static_cast<size_t>(BucketOf(value))] += 1;
}

int64_t Histogram::Quantile(double q) const {
  DCAPE_CHECK_GE(q, 0.0);
  DCAPE_CHECK_LE(q, 1.0);
  if (count_ == 0) return 0;
  const int64_t rank =
      std::max<int64_t>(1, static_cast<int64_t>(q * static_cast<double>(count_)));
  int64_t seen = 0;
  for (size_t bucket = 0; bucket < buckets_.size(); ++bucket) {
    seen += buckets_[bucket];
    if (seen >= rank) {
      // Upper bound of this bucket, clamped to the observed max.
      const int64_t upper =
          bucket == 0 ? 0 : (int64_t{1} << bucket);
      return std::min(upper, max_);
    }
  }
  return max_;
}

}  // namespace dcape
