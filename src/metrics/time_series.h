#ifndef DCAPE_METRICS_TIME_SERIES_H_
#define DCAPE_METRICS_TIME_SERIES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/virtual_clock.h"

namespace dcape {

/// An append-only sampled series of (virtual time, value). The runtime
/// driver samples engine memory and sink throughput into these; bench
/// binaries turn them into the paper's figure tables.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  /// Appends a sample; ticks must be non-decreasing.
  void Add(Tick tick, double value);

  /// Latest sample value at or before `tick`; `fallback` when none.
  double ValueAtOrBefore(Tick tick, double fallback = 0.0) const;

  /// Value of the last sample; `fallback` when empty.
  double Last(double fallback = 0.0) const;

  /// Maximum sample value; `fallback` when empty.
  double Max(double fallback = 0.0) const;

  const std::vector<std::pair<Tick, double>>& samples() const {
    return samples_;
  }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::string name_;
  std::vector<std::pair<Tick, double>> samples_;
};

/// Converts a cumulative-count series into a windowed rate series
/// (difference over each sampling window divided by the window length in
/// minutes) — the "output rate" the paper's throughput figures plot.
TimeSeries ToRatePerMinute(const TimeSeries& cumulative);

}  // namespace dcape

#endif  // DCAPE_METRICS_TIME_SERIES_H_
