#include "metrics/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace dcape {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  DCAPE_CHECK(!columns_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DCAPE_CHECK_EQ(cells.size(), columns_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return std::string(buf);
}

void PrintSeriesByMinute(std::ostream& os, const std::string& axis_label,
                         const std::vector<const TimeSeries*>& series,
                         int64_t start_minute, int64_t end_minute,
                         int64_t step_minutes) {
  std::vector<std::string> columns;
  columns.push_back(axis_label);
  for (const TimeSeries* s : series) columns.push_back(s->name());
  TablePrinter table(std::move(columns));
  for (int64_t minute = start_minute; minute <= end_minute;
       minute += step_minutes) {
    std::vector<std::string> row;
    row.push_back(std::to_string(minute));
    for (const TimeSeries* s : series) {
      row.push_back(FormatDouble(
          s->ValueAtOrBefore(MinutesToTicks(minute)), 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print(os);
}

}  // namespace dcape
