#include "metrics/time_series.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {

void TimeSeries::Add(Tick tick, double value) {
  if (!samples_.empty()) {
    DCAPE_CHECK_GE(tick, samples_.back().first);
  }
  samples_.emplace_back(tick, value);
}

double TimeSeries::ValueAtOrBefore(Tick tick, double fallback) const {
  // Samples are sorted by tick; find the last one <= tick.
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), tick,
      [](Tick t, const std::pair<Tick, double>& s) { return t < s.first; });
  if (it == samples_.begin()) return fallback;
  return std::prev(it)->second;
}

double TimeSeries::Last(double fallback) const {
  return samples_.empty() ? fallback : samples_.back().second;
}

double TimeSeries::Max(double fallback) const {
  double max = fallback;
  bool any = false;
  for (const auto& [tick, value] : samples_) {
    if (!any || value > max) {
      max = value;
      any = true;
    }
  }
  return any ? max : fallback;
}

TimeSeries ToRatePerMinute(const TimeSeries& cumulative) {
  TimeSeries rate(cumulative.name());
  const auto& samples = cumulative.samples();
  for (size_t i = 1; i < samples.size(); ++i) {
    const double delta = samples[i].second - samples[i - 1].second;
    const double window_minutes =
        static_cast<double>(samples[i].first - samples[i - 1].first) /
        static_cast<double>(MinutesToTicks(1));
    if (window_minutes > 0) {
      rate.Add(samples[i].first, delta / window_minutes);
    }
  }
  return rate;
}

}  // namespace dcape
