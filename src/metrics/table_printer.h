#ifndef DCAPE_METRICS_TABLE_PRINTER_H_
#define DCAPE_METRICS_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/time_series.h"

namespace dcape {

/// Renders fixed-width text tables for the bench binaries' figure output.
class TablePrinter {
 public:
  /// `columns` are header labels; the first column is the row label.
  explicit TablePrinter(std::vector<std::string> columns);

  /// Adds one row; `cells.size()` must equal the column count.
  void AddRow(std::vector<std::string> cells);

  /// Writes the table with aligned columns.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fraction digits.
std::string FormatDouble(double value, int digits);

/// Prints several time series against a shared per-minute time axis:
/// one row per sampled minute from `start_minute` to `end_minute`, one
/// column per series (value at-or-before that minute). This is the shape
/// of the paper's throughput/memory figures.
void PrintSeriesByMinute(std::ostream& os, const std::string& axis_label,
                         const std::vector<const TimeSeries*>& series,
                         int64_t start_minute, int64_t end_minute,
                         int64_t step_minutes = 2);

}  // namespace dcape

#endif  // DCAPE_METRICS_TABLE_PRINTER_H_
