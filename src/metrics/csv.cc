#include "metrics/csv.h"

#include <cstdio>
#include <fstream>
#include <set>

namespace dcape {

std::string SeriesToCsv(const std::vector<const TimeSeries*>& series) {
  std::string csv = "tick";
  for (const TimeSeries* s : series) {
    csv += ",";
    csv += s->name().empty() ? "series" : s->name();
  }
  csv += "\n";

  std::set<Tick> ticks;
  for (const TimeSeries* s : series) {
    for (const auto& [tick, value] : s->samples()) ticks.insert(tick);
  }
  char buf[64];
  for (Tick tick : ticks) {
    csv += std::to_string(tick);
    for (const TimeSeries* s : series) {
      std::snprintf(buf, sizeof(buf), ",%.6g", s->ValueAtOrBefore(tick));
      csv += buf;
    }
    csv += "\n";
  }
  return csv;
}

Status WriteSeriesCsv(const std::string& path,
                      const std::vector<const TimeSeries*>& series) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open csv file: " + path);
  out << SeriesToCsv(series);
  if (!out) return Status::Internal("short write to csv file: " + path);
  return Status::OK();
}

}  // namespace dcape
