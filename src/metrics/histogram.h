#ifndef DCAPE_METRICS_HISTOGRAM_H_
#define DCAPE_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace dcape {

/// A log-bucketed histogram of non-negative int64 samples (latencies,
/// sizes). Buckets double in width: [0,1), [1,2), [2,4), [4,8), …, so
/// percentile queries are exact to within a factor of two at any scale,
/// with O(64) memory.
class Histogram {
 public:
  Histogram() : buckets_(64, 0) {}

  /// Records one sample (negatives clamp to 0).
  void Add(int64_t value);

  /// Number of samples.
  int64_t count() const { return count_; }
  /// Sum of samples.
  int64_t sum() const { return sum_; }
  /// Mean of samples (0 when empty).
  double Mean() const {
    return count_ > 0 ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
  }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return count_ > 0 ? max_ : 0; }

  /// Upper bound of the bucket containing the q-quantile (q in [0, 1]).
  /// Exact to within 2x; 0 when empty.
  int64_t Quantile(double q) const;

 private:
  static int BucketOf(int64_t value);

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_METRICS_HISTOGRAM_H_
