#ifndef DCAPE_COMMON_UNITS_H_
#define DCAPE_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace dcape {

/// Byte-size literals used across configs.
constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

/// Formats a byte count with a binary-unit suffix, e.g. "1.50 MiB".
std::string FormatBytes(int64_t bytes);

}  // namespace dcape

#endif  // DCAPE_COMMON_UNITS_H_
