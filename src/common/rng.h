#ifndef DCAPE_COMMON_RNG_H_
#define DCAPE_COMMON_RNG_H_

#include <cstdint>

#include "common/check.h"

namespace dcape {

/// Deterministic, seedable pseudo-random generator (splitmix64 core).
///
/// Every stochastic choice in the library (workload generation, random
/// spill victims) flows through an explicitly seeded Rng so that runs are
/// exactly reproducible — a requirement for regenerating the paper's
/// figures bit-for-bit across machines.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal sequences.
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound) {
    DCAPE_CHECK_GT(bound, 0u);
    return Next() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability `p` of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace dcape

#endif  // DCAPE_COMMON_RNG_H_
