#ifndef DCAPE_COMMON_VIRTUAL_CLOCK_H_
#define DCAPE_COMMON_VIRTUAL_CLOCK_H_

#include <cstdint>

#include "common/check.h"

namespace dcape {

/// Virtual time, measured in ticks. One tick is one virtual millisecond
/// throughout the library; helpers below convert from coarser units.
using Tick = int64_t;

/// Converts seconds of virtual time to ticks.
constexpr Tick SecondsToTicks(int64_t seconds) { return seconds * 1000; }

/// Converts minutes of virtual time to ticks.
constexpr Tick MinutesToTicks(int64_t minutes) { return minutes * 60 * 1000; }

/// The cluster-wide virtual clock. The runtime driver owns the single
/// instance and advances it monotonically; every component reads it.
class VirtualClock {
 public:
  VirtualClock() : now_(0) {}

  /// Current virtual time.
  Tick now() const { return now_; }

  /// Advances the clock. Time never moves backwards.
  void AdvanceTo(Tick t) {
    DCAPE_CHECK_GE(t, now_);
    now_ = t;
  }

 private:
  Tick now_;
};

/// A recurring timer in virtual time, used for the paper's ss_timer,
/// sr_timer and lb_timer. `Expired(now)` returns true at most once per
/// period; callers reset implicitly by the call itself.
class PeriodicTimer {
 public:
  /// A timer firing every `period` ticks, first at `period` (not at 0).
  explicit PeriodicTimer(Tick period) : period_(period), last_fire_(0) {
    DCAPE_CHECK_GT(period, 0);
  }

  /// True once per elapsed period. Advancing multiple periods at once
  /// still fires a single time (catch-up semantics are not needed by the
  /// controllers, which act on current state only).
  bool Expired(Tick now) {
    if (now - last_fire_ >= period_) {
      last_fire_ = now;
      return true;
    }
    return false;
  }

  /// Re-arms the timer so the next expiry is a full period after `now`.
  void Reset(Tick now) { last_fire_ = now; }

  Tick period() const { return period_; }

 private:
  Tick period_;
  Tick last_fire_;
};

}  // namespace dcape

#endif  // DCAPE_COMMON_VIRTUAL_CLOCK_H_
