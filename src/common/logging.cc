#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace dcape {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* file) {
  const char* slash = std::strrchr(file, '/');
  return slash != nullptr ? slash + 1 : file;
}

}  // namespace

void Logging::SetLevel(LogLevel level) { g_level = level; }

LogLevel Logging::level() { return g_level; }

bool Logging::Enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}

void Logging::Emit(LogLevel level, const char* file, int line,
                   const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level), Basename(file),
               line, message.c_str());
}

}  // namespace dcape
