#ifndef DCAPE_COMMON_IDS_H_
#define DCAPE_COMMON_IDS_H_

#include <cstdint>

namespace dcape {

/// Index of an input stream of the partitioned operator (0-based). A
/// three-way join has streams 0, 1, 2.
using StreamId = int32_t;

/// Identifier of one of the `n` hash partitions produced by the split
/// operators (0-based). `n` is much larger than the machine count so that
/// adaptation never re-hashes (§2 of the paper; e.g. 500 partitions over
/// 10 machines).
using PartitionId = int32_t;

/// A value of the join column. The synthetic workload draws keys from a
/// per-partition domain so that partition-by-key routing is consistent.
using JoinKey = int64_t;

/// Index of a query engine (machine) in the cluster (0-based).
using EngineId = int32_t;

/// Address of a node on the simulated network. Engines occupy
/// [0, num_engines); the coordinator, stream-generator and application-
/// server nodes get dedicated ids above that range (see runtime/cluster).
using NodeId = int32_t;

/// Sentinel for "no node".
constexpr NodeId kInvalidNode = -1;

}  // namespace dcape

#endif  // DCAPE_COMMON_IDS_H_
