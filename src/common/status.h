#ifndef DCAPE_COMMON_STATUS_H_
#define DCAPE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace dcape {

/// Canonical error codes, modeled after the common database-library
/// convention (Arrow / absl). The library never throws; fallible
/// operations return `Status` or `StatusOr<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
};

/// Returns a stable human-readable name for `code` ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap value type carrying success or an error code plus message.
///
/// Usage:
///   Status s = DoThing();
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: silently dropping a returned Status is a
/// compile error under -Werror — on the spill/relocation paths every
/// ignored error is lost state. Deliberately ignoring one (e.g. a
/// best-effort barrier in a destructor) must be spelled `(void)Call();`
/// so the decision stays visible at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. An OK code must
  /// not carry a message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers for each error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  /// True iff this status represents success.
  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`. Accessing the value of
/// an errored StatusOr aborts the process (library invariant violation).
/// [[nodiscard]] like Status: a dropped StatusOr is a dropped error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : rep_(std::move(status)) {
    DCAPE_CHECK(!std::get<Status>(rep_).ok());
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; `Status::OK()` when a value is held.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// The held value. Requires `ok()`.
  const T& value() const& {
    DCAPE_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    DCAPE_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    DCAPE_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status from an expression to the caller.
#define DCAPE_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::dcape::Status dcape_status_macro_s_ = (expr);  \
    if (!dcape_status_macro_s_.ok()) {               \
      return dcape_status_macro_s_;                  \
    }                                                \
  } while (false)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// move-assigns the value into `lhs`.
#define DCAPE_ASSIGN_OR_RETURN(lhs, expr)                 \
  DCAPE_ASSIGN_OR_RETURN_IMPL_(                           \
      DCAPE_STATUS_MACRO_CONCAT_(dcape_sor_, __LINE__), lhs, expr)

#define DCAPE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define DCAPE_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define DCAPE_STATUS_MACRO_CONCAT_(x, y) DCAPE_STATUS_MACRO_CONCAT_INNER_(x, y)

}  // namespace dcape

#endif  // DCAPE_COMMON_STATUS_H_
