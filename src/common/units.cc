#include "common/units.h"

#include <cstdio>

namespace dcape {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  const bool negative = bytes < 0;
  const double magnitude = negative ? -static_cast<double>(bytes)
                                    : static_cast<double>(bytes);
  const char* sign = negative ? "-" : "";
  if (magnitude >= static_cast<double>(kGiB)) {
    std::snprintf(buf, sizeof(buf), "%s%.2f GiB", sign,
                  magnitude / static_cast<double>(kGiB));
  } else if (magnitude >= static_cast<double>(kMiB)) {
    std::snprintf(buf, sizeof(buf), "%s%.2f MiB", sign,
                  magnitude / static_cast<double>(kMiB));
  } else if (magnitude >= static_cast<double>(kKiB)) {
    std::snprintf(buf, sizeof(buf), "%s%.2f KiB", sign,
                  magnitude / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.0f B", sign, magnitude);
  }
  return std::string(buf);
}

}  // namespace dcape
