#ifndef DCAPE_COMMON_MUTEX_H_
#define DCAPE_COMMON_MUTEX_H_

#include <chrono>  // dcape-lint: allow(wall-clock)
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace dcape {

/// A std::mutex annotated as a Clang thread-safety capability.
///
/// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
/// attributes, so `-Wthread-safety` cannot see acquisitions through
/// them and every GUARDED_BY member would warn even in correct code.
/// This wrapper (plus MutexLock and CondVar below) is the annotated
/// vocabulary all concurrent DCAPE code uses instead.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable interface (lowercase), required by
  /// std::condition_variable_any; prefer Lock/Unlock at call sites.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII critical section over a Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex.
///
/// Wait releases `mu` while blocked and reacquires it before
/// returning, like std::condition_variable; the REQUIRES annotation
/// makes the analysis enforce that callers hold the mutex around the
/// wait loop. There is deliberately no predicate overload: the
/// `while (!cond) cv.Wait(mu);` form keeps the predicate in the
/// enclosing (annotated) function where the analysis can check the
/// guarded reads it performs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait; returns after a notification or after `micros`
  /// microseconds, whichever comes first (true = notified). Only the
  /// free-running realtime plane (src/rt/) uses this — virtual-clock
  /// code has no business blocking on real time, which dcape-lint
  /// enforces at the call sites; the implementation here is the one
  /// sanctioned hole.
  bool WaitFor(Mutex& mu, int64_t micros) REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::microseconds(micros)) ==  // dcape-lint: allow(wall-clock)
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace dcape

#endif  // DCAPE_COMMON_MUTEX_H_
