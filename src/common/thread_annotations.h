#ifndef DCAPE_COMMON_THREAD_ANNOTATIONS_H_
#define DCAPE_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attribute macros.
///
/// Annotating a member with GUARDED_BY(mu_) (and the locking functions
/// with ACQUIRE/RELEASE/REQUIRES) lets `clang -Wthread-safety` reject
/// lock-discipline races at compile time — every access to the member
/// outside a critical section of `mu_` becomes a hard error under
/// -Werror, instead of a data race for the weekly TSan sweep to
/// (hopefully) hit. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
///
/// The macros expand to nothing on compilers without the attributes
/// (GCC, MSVC), so annotated code builds everywhere; only the Clang CI
/// job enforces them. Use `common/mutex.h` for the annotated Mutex /
/// MutexLock / CondVar types — the std:: ones are not annotated under
/// libstdc++, so the analysis cannot see through them.

#if defined(__clang__) && !defined(SWIG)
#define DCAPE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DCAPE_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares that a data member is protected by the given capability
/// (mutex). Reads require the capability held shared or exclusive;
/// writes require it exclusive.
#define GUARDED_BY(x) DCAPE_THREAD_ANNOTATION_(guarded_by(x))

/// Like GUARDED_BY, for the data pointed to by a pointer member.
#define PT_GUARDED_BY(x) DCAPE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Declares that the calling thread must hold the given capability to
/// call this function (the function neither acquires nor releases it).
#define REQUIRES(...) \
  DCAPE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the given capability
/// (prevents self-deadlock on a non-reentrant mutex).
#define EXCLUDES(...) DCAPE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Declares that the function acquires the capability and holds it on
/// return.
#define ACQUIRE(...) \
  DCAPE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Declares that the function releases a held capability.
#define RELEASE(...) \
  DCAPE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Declares that the function tries to acquire the capability and
/// returns `ret` on success.
#define TRY_ACQUIRE(ret, ...) \
  DCAPE_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Marks a type as a lockable capability ("mutex").
#define CAPABILITY(name) DCAPE_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define SCOPED_CAPABILITY DCAPE_THREAD_ANNOTATION_(scoped_lockable)

/// Returns the capability itself, for functions exposing a member mutex
/// (e.g. `Mutex& mu() RETURN_CAPABILITY(mu_)`).
#define RETURN_CAPABILITY(x) DCAPE_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use
/// needs a comment explaining why the discipline cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  DCAPE_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Double-checked-locking style assertion: tells the analysis the
/// capability is held here (checked dynamically by the caller).
#define ASSERT_CAPABILITY(x) \
  DCAPE_THREAD_ANNOTATION_(assert_capability(x))

#endif  // DCAPE_COMMON_THREAD_ANNOTATIONS_H_
