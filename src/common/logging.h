#ifndef DCAPE_COMMON_LOGGING_H_
#define DCAPE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dcape {

/// Severity levels for the library logger, ordered by verbosity.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Process-wide logger configuration. The default level is kWarning so
/// that tests and benchmarks stay quiet; examples raise it to kInfo to
/// narrate adaptations.
class Logging {
 public:
  /// Sets the minimum level that will be emitted.
  static void SetLevel(LogLevel level);
  /// Current minimum emitted level.
  static LogLevel level();
  /// True when messages at `level` would be emitted.
  static bool Enabled(LogLevel level);
  /// Emits one formatted line to stderr. Called by the DCAPE_LOG macro.
  static void Emit(LogLevel level, const char* file, int line,
                   const std::string& message);
};

namespace internal_logging {

/// Accumulates one log statement's stream and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Logging::Emit(level_, file_, line_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace dcape

/// Streams a log line at the given severity:
///   DCAPE_LOG(kInfo) << "relocated " << n << " groups";
#define DCAPE_LOG(severity)                                              \
  if (!::dcape::Logging::Enabled(::dcape::LogLevel::severity)) {         \
  } else                                                                 \
    ::dcape::internal_logging::LogMessage(::dcape::LogLevel::severity,   \
                                          __FILE__, __LINE__)            \
        .stream()

#endif  // DCAPE_COMMON_LOGGING_H_
