#ifndef DCAPE_COMMON_CHECK_H_
#define DCAPE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dcape {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "DCAPE_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal_check
}  // namespace dcape

/// Aborts the process with a diagnostic when `cond` is false. Used for
/// library invariants that indicate programmer error (never for
/// data-dependent conditions — those return Status).
#define DCAPE_CHECK(cond)                                                \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::dcape::internal_check::CheckFailed(#cond, __FILE__, __LINE__);   \
    }                                                                    \
  } while (false)

/// Binary comparison checks with slightly better ergonomics at call sites.
#define DCAPE_CHECK_EQ(a, b) DCAPE_CHECK((a) == (b))
#define DCAPE_CHECK_NE(a, b) DCAPE_CHECK((a) != (b))
#define DCAPE_CHECK_LT(a, b) DCAPE_CHECK((a) < (b))
#define DCAPE_CHECK_LE(a, b) DCAPE_CHECK((a) <= (b))
#define DCAPE_CHECK_GT(a, b) DCAPE_CHECK((a) > (b))
#define DCAPE_CHECK_GE(a, b) DCAPE_CHECK((a) >= (b))

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define DCAPE_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define DCAPE_DCHECK(cond) DCAPE_CHECK(cond)
#endif

#endif  // DCAPE_COMMON_CHECK_H_
