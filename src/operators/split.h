#ifndef DCAPE_OPERATORS_SPLIT_H_
#define DCAPE_OPERATORS_SPLIT_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "stream/stream_generator.h"
#include "tuple/tuple.h"

namespace dcape {

/// The split operator inserted in front of one input stream of the
/// partitioned join (Volcano exchange style, as in Flux [20]).
///
/// It owns the routing table (partition id → engine) and implements the
/// pause/buffer/resume behaviour the relocation protocol requires: while
/// a partition is paused its tuples are buffered here, and when the
/// coordinator publishes the new owner they are released, in arrival
/// order, toward that owner.
class Split {
 public:
  /// `routing[p]` is the engine initially owning partition p.
  Split(StreamId stream_id, std::vector<EngineId> routing);

  Split(const Split&) = delete;
  Split& operator=(const Split&) = delete;

  /// Routes one tuple: returns the owning engine, or nullopt when the
  /// tuple's partition is paused (the tuple is then buffered internally).
  std::optional<EngineId> Route(const Tuple& tuple);

  /// Pauses the given partitions (idempotent).
  void Pause(const std::vector<PartitionId>& partitions);

  /// Points the given partitions at `new_owner`, unpauses them, and
  /// returns the buffered tuples for them in arrival order. The caller
  /// must forward those tuples to `new_owner` *before* any newly routed
  /// tuple (FIFO links make that automatic when sent first).
  std::vector<Tuple> UpdateRoutingAndRelease(
      const std::vector<PartitionId>& partitions, EngineId new_owner);

  /// Current owner of a partition.
  EngineId OwnerOf(PartitionId partition) const;

  bool IsPaused(PartitionId partition) const {
    return paused_.count(partition) > 0;
  }

  /// Tuples currently buffered across all paused partitions.
  int64_t buffered_count() const {
    return static_cast<int64_t>(buffered_.size());
  }

  /// Partitions currently paused (0 outside a relocation).
  int64_t paused_count() const {
    return static_cast<int64_t>(paused_.size());
  }

  StreamId stream_id() const { return stream_id_; }
  const std::vector<EngineId>& routing() const { return routing_; }

 private:
  StreamId stream_id_;
  std::vector<EngineId> routing_;
  std::set<PartitionId> paused_;
  /// Buffered tuples in arrival order (across paused partitions; filtered
  /// per partition set on release).
  std::vector<Tuple> buffered_;
};

}  // namespace dcape

#endif  // DCAPE_OPERATORS_SPLIT_H_
