#ifndef DCAPE_OPERATORS_MJOIN_H_
#define DCAPE_OPERATORS_MJOIN_H_

#include <cstdint>
#include <vector>

#include <optional>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "state/state_manager.h"
#include "storage/spill_store.h"
#include "tuple/tuple.h"

namespace dcape {

/// One instance of the partitioned symmetric m-way hash join operator
/// (Viglas et al. [26]) — the paper's representative state-intensive
/// operator. Each query engine hosts one instance processing its share of
/// the partitions.
///
/// The operator couples a StateManager (memory-resident partition groups)
/// with an optional SpillStore; `SpillPartitions` freezes the chosen
/// groups to disk as new generations. Policy decisions (which partitions,
/// when) are made by the controllers in `core/`.
class MJoin {
 public:
  /// `spill_store` may be null for engines that never spill (pure
  /// relocation or all-memory setups); SpillPartitions then fails with
  /// FailedPrecondition. `projection` (optional) computes each result's
  /// (group_key, agg_value) from its member tuples.
  MJoin(int num_streams, SpillStore* spill_store,
        std::optional<ResultProjection> projection = std::nullopt,
        Tick window_ticks = 0,
        SegmentFormat segment_format = SegmentFormat::kV2)
      : state_(num_streams, projection, window_ticks, segment_format),
        spill_store_(spill_store) {}

  MJoin(const MJoin&) = delete;
  MJoin& operator=(const MJoin&) = delete;

  /// Processes one input tuple through its partition group, appending any
  /// produced m-way results. Returns the number of results.
  int64_t Process(PartitionId partition, const Tuple& tuple,
                  std::vector<JoinResult>* results) {
    return state_.ProcessTuple(partition, tuple, results);
  }

  /// Outcome of one spill adaptation.
  struct SpillOutcome {
    int64_t bytes = 0;
    int64_t tuples = 0;
    int groups = 0;
    /// Total virtual disk-write time; the engine stays busy this long.
    Tick io_ticks = 0;
    /// Groups whose segment write failed; each was reinstalled into
    /// memory unchanged (no state was lost, nothing was charged to
    /// bytes/tuples/io_ticks). `first_error` carries the first failure.
    int failed_groups = 0;
    Status first_error;
  };

  /// Serializes the given partitions' groups to the spill store (one
  /// generation each) and drops them from memory. Locked (relocating)
  /// partitions are skipped. A failed segment write is survivable: the
  /// extracted group is reinstalled and reported via
  /// `SpillOutcome::failed_groups` (a later spill check retries).
  [[nodiscard]] StatusOr<SpillOutcome> SpillPartitions(
      const std::vector<PartitionId>& partitions, Tick now);

  StateManager& state() { return state_; }
  const StateManager& state() const { return state_; }
  SpillStore* spill_store() { return spill_store_; }
  const SpillStore* spill_store() const { return spill_store_; }

  int num_streams() const { return state_.num_streams(); }

 private:
  StateManager state_;
  SpillStore* spill_store_;
};

}  // namespace dcape

#endif  // DCAPE_OPERATORS_MJOIN_H_
