#ifndef DCAPE_OPERATORS_SINK_H_
#define DCAPE_OPERATORS_SINK_H_

#include <cstdint>
#include <vector>

#include "common/virtual_clock.h"
#include "metrics/histogram.h"
#include "tuple/tuple.h"

namespace dcape {

/// The application server's result consumer: counts results and, when
/// `collect` is set (tests and small examples), retains them for
/// set-comparison against a reference join.
class ResultSink {
 public:
  /// `collect` retains every result in memory; enable only for bounded
  /// runs (tests, examples).
  explicit ResultSink(bool collect) : collect_(collect) {}

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  /// Consumes one batch arriving at `now`, recording each result's
  /// end-to-end latency (delivery minus the latest member's arrival).
  void Consume(Tick now, const std::vector<JoinResult>& results) {
    last_arrival_ = now;
    total_ += static_cast<int64_t>(results.size());
    for (const JoinResult& r : results) {
      latency_.Add(now - r.latest_member_ts);
    }
    if (collect_) {
      collected_.insert(collected_.end(), results.begin(), results.end());
    }
  }

  /// Cumulative results received.
  int64_t total() const { return total_; }
  /// Arrival tick of the most recent batch.
  Tick last_arrival() const { return last_arrival_; }
  /// Retained results; empty unless constructed with `collect`.
  const std::vector<JoinResult>& collected() const { return collected_; }
  /// End-to-end result latency distribution (virtual ms).
  const Histogram& latency() const { return latency_; }

 private:
  bool collect_;
  int64_t total_ = 0;
  Tick last_arrival_ = 0;
  Histogram latency_;
  std::vector<JoinResult> collected_;
};

}  // namespace dcape

#endif  // DCAPE_OPERATORS_SINK_H_
