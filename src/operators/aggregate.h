#ifndef DCAPE_OPERATORS_AGGREGATE_H_
#define DCAPE_OPERATORS_AGGREGATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "tuple/projection.h"
#include "tuple/tuple.h"

namespace dcape {

/// The grouped aggregation operator sitting on the application server
/// behind the union — the `SELECT brokerName, min(price) … GROUP BY
/// brokerName` tail of the paper's QUERY 1. It consumes join results
/// whose (group_key, agg_value) were projected by the engines (and by
/// the cleanup phase), maintaining one running aggregate per group.
///
/// All supported aggregates (min/max/sum, plus the implicit count) are
/// insensitive to result order, so the out-of-order delivery the paper
/// permits (footnote 1) and the late cleanup results fold in correctly.
class GroupByAggregate {
 public:
  struct GroupState {
    int64_t aggregate = 0;
    int64_t count = 0;
  };

  explicit GroupByAggregate(AggregateOp op) : op_(op) {}

  /// Folds one join result into its group.
  void Consume(const JoinResult& result) {
    auto [it, inserted] = groups_.try_emplace(result.group_key);
    GroupState& state = it->second;
    state.aggregate =
        FoldAggregate(op_, state.aggregate, result.agg_value, inserted);
    state.count += 1;
    total_ += 1;
  }

  /// Folds a batch.
  void ConsumeAll(const std::vector<JoinResult>& results) {
    for (const JoinResult& r : results) Consume(r);
  }

  /// Current per-group states, keyed by group key.
  const std::map<int64_t, GroupState>& groups() const { return groups_; }
  /// Results consumed.
  int64_t total() const { return total_; }
  AggregateOp op() const { return op_; }

  /// The `limit` groups with the smallest aggregate (ties by key) — the
  /// "which brokers sell at the lowest price" question of the paper's
  /// introduction.
  std::vector<std::pair<int64_t, GroupState>> TopByAggregate(
      size_t limit, bool smallest_first = true) const;

 private:
  AggregateOp op_;
  std::map<int64_t, GroupState> groups_;
  int64_t total_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_OPERATORS_AGGREGATE_H_
