#include "operators/split.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {

Split::Split(StreamId stream_id, std::vector<EngineId> routing)
    : stream_id_(stream_id), routing_(std::move(routing)) {
  DCAPE_CHECK(!routing_.empty());
}

std::optional<EngineId> Split::Route(const Tuple& tuple) {
  DCAPE_CHECK_EQ(tuple.stream_id, stream_id_);
  const PartitionId partition = StreamGenerator::PartitionOfKey(tuple.join_key);
  DCAPE_CHECK_GE(partition, 0);
  DCAPE_CHECK_LT(static_cast<size_t>(partition), routing_.size());
  if (paused_.count(partition) > 0) {
    buffered_.push_back(tuple);
    return std::nullopt;
  }
  return routing_[static_cast<size_t>(partition)];
}

void Split::Pause(const std::vector<PartitionId>& partitions) {
  for (PartitionId p : partitions) {
    DCAPE_CHECK_GE(p, 0);
    DCAPE_CHECK_LT(static_cast<size_t>(p), routing_.size());
    paused_.insert(p);
  }
}

std::vector<Tuple> Split::UpdateRoutingAndRelease(
    const std::vector<PartitionId>& partitions, EngineId new_owner) {
  std::set<PartitionId> releasing(partitions.begin(), partitions.end());
  for (PartitionId p : partitions) {
    DCAPE_CHECK_GE(p, 0);
    DCAPE_CHECK_LT(static_cast<size_t>(p), routing_.size());
    routing_[static_cast<size_t>(p)] = new_owner;
    paused_.erase(p);
  }

  std::vector<Tuple> released;
  std::vector<Tuple> still_buffered;
  released.reserve(buffered_.size());
  for (Tuple& t : buffered_) {
    const PartitionId partition = StreamGenerator::PartitionOfKey(t.join_key);
    if (releasing.count(partition) > 0) {
      released.push_back(std::move(t));
    } else {
      still_buffered.push_back(std::move(t));
    }
  }
  buffered_ = std::move(still_buffered);
  return released;
}

EngineId Split::OwnerOf(PartitionId partition) const {
  DCAPE_CHECK_GE(partition, 0);
  DCAPE_CHECK_LT(static_cast<size_t>(partition), routing_.size());
  return routing_[static_cast<size_t>(partition)];
}

}  // namespace dcape
