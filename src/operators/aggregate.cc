#include "operators/aggregate.h"

#include <algorithm>

namespace dcape {

std::vector<std::pair<int64_t, GroupByAggregate::GroupState>>
GroupByAggregate::TopByAggregate(size_t limit, bool smallest_first) const {
  std::vector<std::pair<int64_t, GroupState>> entries(groups_.begin(),
                                                      groups_.end());
  std::sort(entries.begin(), entries.end(),
            [smallest_first](const auto& a, const auto& b) {
              if (a.second.aggregate != b.second.aggregate) {
                return smallest_first
                           ? a.second.aggregate < b.second.aggregate
                           : a.second.aggregate > b.second.aggregate;
              }
              return a.first < b.first;
            });
  if (entries.size() > limit) entries.resize(limit);
  return entries;
}

}  // namespace dcape
