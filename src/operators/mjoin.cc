#include "operators/mjoin.h"

namespace dcape {

StatusOr<MJoin::SpillOutcome> MJoin::SpillPartitions(
    const std::vector<PartitionId>& partitions, Tick now) {
  if (spill_store_ == nullptr) {
    return Status::FailedPrecondition(
        "this MJoin instance has no spill store");
  }
  std::vector<PartitionId> unlocked;
  unlocked.reserve(partitions.size());
  for (PartitionId p : partitions) {
    if (!state_.IsLocked(p)) unlocked.push_back(p);
  }

  SpillOutcome outcome;
  std::vector<StateManager::ExtractedGroup> extracted =
      state_.ExtractGroups(unlocked);
  for (StateManager::ExtractedGroup& group : extracted) {
    DCAPE_ASSIGN_OR_RETURN(
        Tick io_ticks,
        spill_store_->WriteSegment(group.partition, now, group.blob,
                                   group.tuple_count, /*evicted=*/false,
                                   group.raw_bytes));
    outcome.bytes += group.bytes;
    outcome.tuples += group.tuple_count;
    outcome.groups += 1;
    outcome.io_ticks += io_ticks;
  }
  return outcome;
}

}  // namespace dcape
