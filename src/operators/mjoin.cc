#include "operators/mjoin.h"

namespace dcape {

StatusOr<MJoin::SpillOutcome> MJoin::SpillPartitions(
    const std::vector<PartitionId>& partitions, Tick now) {
  if (spill_store_ == nullptr) {
    return Status::FailedPrecondition(
        "this MJoin instance has no spill store");
  }
  std::vector<PartitionId> unlocked;
  unlocked.reserve(partitions.size());
  for (PartitionId p : partitions) {
    if (!state_.IsLocked(p)) unlocked.push_back(p);
  }

  SpillOutcome outcome;
  std::vector<StateManager::ExtractedGroup> extracted =
      state_.ExtractGroups(unlocked);
  for (StateManager::ExtractedGroup& group : extracted) {
    StatusOr<Tick> io_ticks = spill_store_->WriteSegment(
        group.partition, now, group.blob, group.tuple_count,
        /*evicted=*/false, group.raw_bytes);
    if (!io_ticks.ok()) {
      // The group is already out of the state manager; losing it here
      // would silently drop its future join results. Reinstall our own
      // serialized blob (which cannot fail) and let a later spill check
      // retry once the disk recovers.
      DCAPE_CHECK(state_.InstallGroup(group.blob).ok());
      outcome.failed_groups += 1;
      if (outcome.first_error.ok()) outcome.first_error = io_ticks.status();
      continue;
    }
    outcome.bytes += group.bytes;
    outcome.tuples += group.tuple_count;
    outcome.groups += 1;
    outcome.io_ticks += *io_ticks;
  }
  return outcome;
}

}  // namespace dcape
