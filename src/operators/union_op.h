#ifndef DCAPE_OPERATORS_UNION_OP_H_
#define DCAPE_OPERATORS_UNION_OP_H_

#include <cstdint>
#include <vector>

#include "tuple/tuple.h"

namespace dcape {

/// Merges the output streams of all instances of the partitioned operator
/// into a single stream (paper §2). Since partitions are disjoint, the
/// union is a plain order-of-arrival merge — no duplicate elimination is
/// required, which tests assert separately.
class UnionOp {
 public:
  UnionOp() = default;

  UnionOp(const UnionOp&) = delete;
  UnionOp& operator=(const UnionOp&) = delete;

  /// Appends one producer's batch to the merged output buffer.
  void Add(std::vector<JoinResult> results) {
    total_ += static_cast<int64_t>(results.size());
    merged_.insert(merged_.end(), std::make_move_iterator(results.begin()),
                   std::make_move_iterator(results.end()));
  }

  /// Removes and returns everything merged so far.
  std::vector<JoinResult> Drain() {
    std::vector<JoinResult> out;
    out.swap(merged_);
    return out;
  }

  /// Results merged over the operator's lifetime.
  int64_t total() const { return total_; }
  /// Results currently buffered (added but not drained).
  int64_t pending() const { return static_cast<int64_t>(merged_.size()); }

 private:
  std::vector<JoinResult> merged_;
  int64_t total_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_OPERATORS_UNION_OP_H_
