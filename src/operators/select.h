#ifndef DCAPE_OPERATORS_SELECT_H_
#define DCAPE_OPERATORS_SELECT_H_

#include <cstdint>
#include <limits>
#include <optional>

#include "tuple/tuple.h"

namespace dcape {

/// A conjunctive predicate over the typed columns, e.g. "price between
/// 100 and 500" or "broker = 7". Data-only so it can live in configs.
struct SelectPredicate {
  int64_t min_value = std::numeric_limits<int64_t>::min();
  int64_t max_value = std::numeric_limits<int64_t>::max();
  std::optional<int64_t> category_equals;

  bool Matches(const Tuple& tuple) const {
    if (tuple.value < min_value || tuple.value > max_value) return false;
    if (category_equals.has_value() && tuple.category != *category_equals) {
      return false;
    }
    return true;
  }
};

/// The stateless selection operator, placed in front of the splits (the
/// paper distributes stateless operators freely since they are never the
/// resource bottleneck). Filters tuples and counts selectivity.
class SelectOp {
 public:
  explicit SelectOp(const SelectPredicate& predicate)
      : predicate_(predicate) {}

  /// True when the tuple passes the predicate.
  bool Process(const Tuple& tuple) {
    ++seen_;
    if (predicate_.Matches(tuple)) {
      ++passed_;
      return true;
    }
    return false;
  }

  int64_t seen() const { return seen_; }
  int64_t passed() const { return passed_; }
  /// Fraction of tuples passing so far (1.0 before any input).
  double selectivity() const {
    return seen_ > 0 ? static_cast<double>(passed_) /
                           static_cast<double>(seen_)
                     : 1.0;
  }
  const SelectPredicate& predicate() const { return predicate_; }

 private:
  SelectPredicate predicate_;
  int64_t seen_ = 0;
  int64_t passed_ = 0;
};

/// The stateless projection operator: truncates the opaque payload to the
/// columns the query actually needs, shrinking every downstream state
/// byte count (a real system would drop unneeded columns; we model the
/// byte effect).
class ProjectOp {
 public:
  /// Keeps at most `payload_limit` payload bytes per tuple.
  explicit ProjectOp(size_t payload_limit) : payload_limit_(payload_limit) {}

  /// Applies the projection in place; returns bytes saved.
  int64_t Process(Tuple* tuple) {
    if (tuple->payload.size() <= payload_limit_) return 0;
    const int64_t saved =
        static_cast<int64_t>(tuple->payload.size() - payload_limit_);
    tuple->payload.resize(payload_limit_);
    bytes_saved_ += saved;
    return saved;
  }

  int64_t bytes_saved() const { return bytes_saved_; }
  size_t payload_limit() const { return payload_limit_; }

 private:
  size_t payload_limit_;
  int64_t bytes_saved_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_OPERATORS_SELECT_H_
