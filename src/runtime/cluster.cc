#include "runtime/cluster.h"

#include <string>
#include <utility>

#include <algorithm>

#include "common/check.h"
#include "common/logging.h"
#include "sim/faulty_backend.h"
#include "storage/disk_backend.h"

namespace dcape {

std::vector<EngineId> Cluster::PlacementFor(const ClusterConfig& config) {
  return ComputePlacement(config.workload.num_partitions, config.num_engines,
                          config.placement_fractions);
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      coordinator_node_(config.num_engines),
      sink_node_(config.num_engines + 1),
      generator_node_(config.num_engines + 2),
      pool_(std::max(1, config.num_threads)),
      network_(config.network),
      placement_(PlacementFor(config)),
      sink_(config.collect_results) {
  DCAPE_CHECK_GT(config_.num_engines, 0);
  const int num_streams = config_.workload.num_streams;
  const int num_hosts =
      std::clamp(config_.num_split_hosts, 1, num_streams);

  if (config_.trace) {
    // Lanes: engines 0..N-1, coordinator, sink, generator, split hosts,
    // plus one driver lane (cleanup spans, run-level events).
    const int highest_node = generator_node_ + num_hosts;
    tracer_ = std::make_unique<obs::Tracer>(highest_node + 2,
                                            config_.trace_verbose);
    for (EngineId e = 0; e < config_.num_engines; ++e) {
      tracer_->SetLaneName(e, "engine " + std::to_string(e));
    }
    tracer_->SetLaneName(coordinator_node_, "coordinator");
    tracer_->SetLaneName(sink_node_, "sink");
    tracer_->SetLaneName(generator_node_, "generator");
    for (int h = 0; h < num_hosts; ++h) {
      tracer_->SetLaneName(generator_node_ + 1 + h,
                           "split host " + std::to_string(h));
    }
    tracer_->SetLaneName(tracer_->driver_lane(), "cluster");
  }
  // The cleanup phase must project and window results identically to
  // the engines.
  config_.cleanup.projection = config_.projection;
  config_.cleanup.window_ticks = config_.join_window_ticks;

  // Default the fluctuation set to engine 0's partitions (the paper's
  // alternating-load setup toggles between the two machines' shares).
  if (config_.workload.fluctuation.enabled &&
      config_.workload.fluctuation.set_a.empty()) {
    config_.workload.fluctuation.set_a = PartitionsOfEngine(placement_, 0);
  }

  // Query engines.
  if (config_.async_spill_io) {
    io_executor_ = std::make_unique<IoExecutor>();
  }
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    EngineConfig engine_config;
    engine_config.engine_id = e;
    engine_config.node_id = e;
    engine_config.coordinator_node = coordinator_node_;
    engine_config.sink_node = sink_node_;
    engine_config.num_streams = num_streams;
    engine_config.num_split_hosts = num_hosts;
    engine_config.strategy = config_.strategy;
    engine_config.spill = config_.spill;
    engine_config.productivity = config_.productivity;
    engine_config.restore = config_.restore;
    engine_config.window_ticks = config_.join_window_ticks;
    if (!config_.per_engine_thresholds.empty()) {
      DCAPE_CHECK_EQ(config_.per_engine_thresholds.size(),
                     static_cast<size_t>(config_.num_engines));
      engine_config.spill.memory_threshold_bytes =
          config_.per_engine_thresholds[static_cast<size_t>(e)];
    }
    engine_config.stats_period = config_.stats_period;
    engine_config.projection = config_.projection;
    engine_config.segment_format = config_.segment_format;
    if (!config_.per_engine_segment_format.empty()) {
      DCAPE_CHECK_EQ(config_.per_engine_segment_format.size(),
                     static_cast<size_t>(config_.num_engines));
      engine_config.segment_format =
          config_.per_engine_segment_format[static_cast<size_t>(e)];
    }
    engine_config.seed = config_.seed + 1000 + static_cast<uint64_t>(e);
    engine_config.invariants = config_.invariants.get();
    engine_config.metrics = &metrics_;
    engine_config.tracer = tracer_.get();

    std::unique_ptr<DiskBackend> backend;
    if (config_.use_file_backend) {
      backend = MakeTempFileBackend(config_.file_backend_prefix + "_e" +
                                    std::to_string(e));
    } else {
      backend = std::make_unique<MemoryDiskBackend>();
    }
    if (config_.fault_plan != nullptr) {
      backend = std::make_unique<sim::FaultyBackend>(
          std::move(backend), config_.fault_plan.get(), e);
    }
    engines_.push_back(std::make_unique<QueryEngine>(
        engine_config, &network_, config_.disk, std::move(backend),
        io_executor_.get()));
  }
  if (config_.fault_plan != nullptr) {
    sim::FaultPlan* plan = config_.fault_plan.get();
    network_.SetFaultHooks(
        [plan](const Message& m) { return plan->SampleExtraDelay(m); },
        [plan](const Message& m) { return plan->SampleDuplicate(m); });
  }

  // Global coordinator.
  CoordinatorConfig coord_config;
  coord_config.node_id = coordinator_node_;
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    coord_config.engine_nodes.push_back(e);
    coord_config.engine_memory_thresholds.push_back(
        engines_[static_cast<size_t>(e)]->config().spill
            .memory_threshold_bytes);
  }
  for (int h = 0; h < num_hosts; ++h) {
    coord_config.split_hosts.push_back(generator_node_ + 1 + h);
  }
  coord_config.strategy = config_.strategy;
  coord_config.relocation = config_.relocation;
  coord_config.active = config_.active_disk;
  coord_config.invariants = config_.invariants.get();
  coord_config.metrics = &metrics_;
  coord_config.tracer = tracer_.get();
  coordinator_ = std::make_unique<GlobalCoordinator>(coord_config, &network_);

  // Split hosts: streams assigned round-robin over the hosts.
  if (!config_.select_per_stream.empty()) {
    DCAPE_CHECK_EQ(config_.select_per_stream.size(),
                   static_cast<size_t>(num_streams));
  }
  std::vector<NodeId> host_of_stream(static_cast<size_t>(num_streams));
  for (int h = 0; h < num_hosts; ++h) {
    SplitHostConfig split_config;
    split_config.node_id = generator_node_ + 1 + h;
    split_config.coordinator_node = coordinator_node_;
    for (StreamId s = h; s < num_streams; s += num_hosts) {
      split_config.streams.push_back(s);
      host_of_stream[static_cast<size_t>(s)] = split_config.node_id;
      if (!config_.select_per_stream.empty()) {
        split_config.select_per_stream.push_back(
            config_.select_per_stream[static_cast<size_t>(s)]);
      }
    }
    split_config.project_payload_to = config_.project_payload_to;
    split_config.invariants = config_.invariants.get();
    split_config.tracer = tracer_.get();
    split_hosts_.push_back(std::make_unique<SplitHost>(
        split_config, placement_, &network_));
  }

  // Stream generator node (synthetic workload or trace replay).
  std::unique_ptr<InputSource> source;
  if (config_.replay_trace != nullptr) {
    StatusOr<TraceSource> trace = TraceSource::FromBytes(*config_.replay_trace);
    DCAPE_CHECK(trace.ok());
    DCAPE_CHECK_EQ(trace->num_streams(), num_streams);
    source = std::make_unique<TraceSource>(*std::move(trace));
  } else {
    source = std::make_unique<StreamGenerator>(config_.workload);
  }
  generator_ = std::make_unique<GeneratorNode>(
      generator_node_, std::move(source), host_of_stream, &network_,
      config_.record_trace != nullptr ? config_.record_trace.get() : nullptr);

  // Wire delivery handlers. Data-plane messages (tuple batches, result
  // batches) are moved out of the delivered message instead of copied.
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    QueryEngine* engine = engines_[static_cast<size_t>(e)].get();
    network_.RegisterNode(e, [engine](Tick now, Message& m) {
      if (m.type == MessageType::kTupleBatch) {
        engine->OnTupleBatch(now, std::move(std::get<TupleBatch>(m.payload)));
      } else {
        engine->OnMessage(now, m);
      }
    });
  }
  network_.RegisterNode(coordinator_node_,
                        [this](Tick now, const Message& m) {
                          coordinator_->OnMessage(now, m);
                        });
  for (int h = 0; h < num_hosts; ++h) {
    SplitHost* host = split_hosts_[static_cast<size_t>(h)].get();
    network_.RegisterNode(generator_node_ + 1 + h,
                          [host](Tick now, Message& m) {
                            if (m.type == MessageType::kTupleBatch) {
                              host->OnTupleBatch(
                                  now,
                                  std::move(std::get<TupleBatch>(m.payload)));
                            } else {
                              host->OnMessage(now, m);
                            }
                          });
  }
  if (config_.aggregate_op.has_value()) {
    aggregate_ = std::make_unique<GroupByAggregate>(*config_.aggregate_op);
  }
  network_.RegisterNode(sink_node_, [this](Tick now, Message& m) {
    DCAPE_CHECK(m.type == MessageType::kResultBatch);
    auto& batch = std::get<ResultBatch>(m.payload);
    if (aggregate_ != nullptr) aggregate_->ConsumeAll(batch.results);
    union_op_.Add(std::move(batch.results));
    sink_.Consume(now, union_op_.Drain());
  });

  memory_series_.resize(static_cast<size_t>(config_.num_engines));
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    memory_series_[static_cast<size_t>(e)].set_name(
        "engine" + std::to_string(e) + "_bytes");
  }
  throughput_series_.set_name("cumulative_results");
}

void Cluster::DeliverWaves(Tick now) {
  // Delivery supersteps: each wave removes every message due by `now`,
  // drains the engine/split-host inboxes concurrently on the pool, the
  // coordinator/sink inboxes on the caller, and merges all sends in
  // (node id, send order) order at the barrier. Handlers only touch
  // their own node's state, so disjoint inboxes never race; the merge
  // rule makes the schedule identical for every pool size. The loop
  // repeats for zero-latency sends that fall due within the same tick.
  while (true) {
    const Tick next = network_.NextArrival();
    if (next < 0 || next > now) break;
    std::vector<Network::Inbox> inboxes = network_.TakeArrivals(now);
    network_.BeginBuffered();
    std::vector<Network::Inbox*> concurrent;
    concurrent.reserve(inboxes.size());
    for (Network::Inbox& inbox : inboxes) {
      if (IsConcurrentNode(inbox.node)) concurrent.push_back(&inbox);
    }
    pool_.ParallelFor(static_cast<int>(concurrent.size()),
                      [&](int i) { network_.Deliver(*concurrent[i]); });
    for (Network::Inbox& inbox : inboxes) {
      if (!IsConcurrentNode(inbox.node)) network_.Deliver(inbox);
    }
    network_.FlushBuffered();
  }
}

void Cluster::StepTick(Tick now, bool generate) {
  DeliverWaves(now);
  generator_->OnTick(now, generate);
  // Injected stalls are sampled here, in engine-id order on the main
  // thread, so the fault sequence is identical for every --threads
  // value.
  if (config_.fault_plan != nullptr) {
    for (EngineId e = 0; e < config_.num_engines; ++e) {
      const Tick stall = config_.fault_plan->SampleStall(e);
      if (stall > 0) engines_[static_cast<size_t>(e)]->InjectStall(now, stall);
    }
  }
  // Engine housekeeping (pending batches, spill checks, stats) is
  // per-engine state only; their sends buffer and merge like a wave.
  network_.BeginBuffered();
  pool_.ParallelFor(static_cast<int>(engines_.size()), [&](int i) {
    engines_[static_cast<size_t>(i)]->OnTick(now);
  });
  network_.FlushBuffered();
  if (!draining_) coordinator_->OnTick(now);
}

void Cluster::SampleIfDue(Tick now, bool force) {
  // Precomputed next-due tick keeps the common (not due) case to one
  // comparison; RunUntil calls this every tick.
  if (!force && now < next_sample_) return;
  next_sample_ = now + config_.sample_period;
  throughput_series_.Add(now, static_cast<double>(sink_.total()));
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    memory_series_[static_cast<size_t>(e)].Add(
        now,
        static_cast<double>(engines_[static_cast<size_t>(e)]->state_bytes()));
  }
  // Sampled counter events ride the trace at the same cadence as the
  // series. This runs serially between ticks, so emitting on other
  // nodes' lanes honors the one-writer-per-lane contract.
  if (DCAPE_TRACE_ACTIVE(tracer_.get())) {
    for (EngineId e = 0; e < config_.num_engines; ++e) {
      const QueryEngine& engine = *engines_[static_cast<size_t>(e)];
      tracer_->EmitCounter(e, now, obs::ev::kStateBytes,
                           engine.state_bytes());
      tracer_->EmitCounter(e, now, obs::ev::kDiskResidentBytes,
                           engine.spill_store().resident_bytes());
    }
    tracer_->EmitCounter(sink_node_, now, obs::ev::kSinkResults,
                         sink_.total());
  }
}

void Cluster::RunUntil(Tick end) {
  for (Tick t = clock_.now(); t <= end; ++t) {
    clock_.AdvanceTo(t);
    StepTick(t, /*generate=*/true);
    SampleIfDue(t);
  }
}

bool Cluster::Quiescent(Tick now) const {
  // Ordered cheapest-first: the O(1) network check fails on almost every
  // mid-drain tick, short-circuiting the host/engine walks.
  if (!network_.idle()) return false;
  for (const auto& host : split_hosts_) {
    if (host->total_buffered() != 0) return false;
  }
  for (const auto& engine : engines_) {
    if (!engine->Idle(now)) return false;
  }
  return true;
}

void Cluster::Drain() {
  draining_ = true;
  const Tick start = clock_.now();
  const Tick cap = start + MinutesToTicks(30);
  Tick t = start;
  // No sampling inside the loop: the series get one forced point at the
  // quiescence tick below.
  while (t < cap) {
    ++t;
    clock_.AdvanceTo(t);
    StepTick(t, /*generate=*/false);
    if (Quiescent(t)) break;
  }
  DCAPE_CHECK_LT(t, cap);  // pipeline failed to quiesce
  SampleIfDue(clock_.now(), /*force=*/true);
  draining_ = false;
}

StatusOr<CleanupStats> Cluster::RunCleanup() {
  std::vector<const SpillStore*> stores;
  std::vector<const StateManager*> states;
  for (auto& engine : engines_) {
    stores.push_back(&engine->spill_store());
    states.push_back(&engine->mjoin().state());
  }
  CleanupProcessor processor(config_.cleanup, config_.workload.num_streams);
  StatusOr<CleanupStats> stats = processor.Run(stores, states, &pool_);
  // The cleanup pass has no per-node event loop; its spans are emitted
  // post-hoc from the driver lane out of the stats it reports.
  if (stats.ok() && DCAPE_TRACE_ACTIVE(tracer_.get())) {
    const Tick start = clock_.now();
    tracer_->EmitComplete(
        tracer_->driver_lane(), start, obs::ev::kCleanup, stats->total_ticks,
        {obs::TraceArg::Int("results", stats->result_count),
         obs::TraceArg::Int("segments_read", stats->segments_read),
         obs::TraceArg::Int("bytes_read", stats->bytes_read),
         obs::TraceArg::Int("partitions_cleaned",
                            stats->partitions_cleaned)});
    for (size_t e = 0; e < stats->engine_ticks.size(); ++e) {
      tracer_->EmitComplete(
          static_cast<int>(e), start, obs::ev::kCleanupEngine,
          stats->engine_ticks[e],
          {obs::TraceArg::Int("engine", static_cast<int64_t>(e))});
    }
  }
  return stats;
}

RunResult Cluster::Collect() {
  RunResult result;
  result.throughput = throughput_series_;
  result.engine_memory = memory_series_;
  result.runtime_results = sink_.total();
  result.runtime_latency = sink_.latency();
  result.tuples_generated = generator_->source().total_emitted();
  result.runtime_end = clock_.now();
  result.coordinator = coordinator_->counters();
  result.network = network_.stats();
  const int64_t queue_high_water =
      io_executor_ != nullptr ? io_executor_->queue_high_water() : 0;
  for (auto& engine : engines_) {
    QueryEngine::Counters ec = engine->counters();
    result.spilled_bytes += ec.spilled_bytes;
    result.spill_events += ec.spill_events + ec.forced_spill_events;
    result.engines.push_back(std::move(ec));
    const SpillStore& store = engine->spill_store();
    StorageCounters storage;
    storage.segments_written = store.segments_written();
    storage.segments_resident = store.segment_count();
    storage.resident_bytes = store.resident_bytes();
    storage.encoded_bytes = store.total_spilled_bytes();
    storage.raw_bytes = store.total_raw_bytes();
    storage.io_queue_high_water = queue_high_water;
    result.engine_storage.push_back(storage);
    result.storage.segments_written += storage.segments_written;
    result.storage.segments_resident += storage.segments_resident;
    result.storage.resident_bytes += storage.resident_bytes;
    result.storage.encoded_bytes += storage.encoded_bytes;
    result.storage.raw_bytes += storage.raw_bytes;
  }
  result.storage.io_queue_high_water = queue_high_water;
  if (config_.collect_results) {
    result.collected = sink_.collected();
  }
  return result;
}

RunResult Cluster::Run() {
  RunUntil(config_.run_duration);
  Drain();
  generator_->FinishTrace();
  RunResult result = Collect();
  if (config_.run_cleanup) {
    StatusOr<CleanupStats> cleanup = RunCleanup();
    DCAPE_CHECK(cleanup.ok());
    result.cleanup = std::move(cleanup).value();
  }
  return result;
}

}  // namespace dcape
