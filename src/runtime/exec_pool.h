#ifndef DCAPE_RUNTIME_EXEC_POOL_H_
#define DCAPE_RUNTIME_EXEC_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dcape {

/// A fixed-size worker pool with a fork/join barrier, used to step the
/// cluster's independent nodes (query engines, split hosts) concurrently
/// within one virtual tick.
///
/// The pool deliberately has no queues, futures, or task ownership: one
/// ParallelFor call is one barrier. The caller's thread participates in
/// the work, so `num_workers` is the total parallelism (a pool of 1 runs
/// everything inline on the caller and never spawns a thread — the serial
/// mode every run must be bit-identical to).
///
/// Determinism contract: ParallelFor guarantees only that fn(0..n-1) all
/// complete before it returns. Tasks must not share mutable state; the
/// cluster gives each task one node and buffers its network sends
/// per-node (see net::Network's outboxes), so the merged outcome is
/// independent of how tasks interleave.
class ExecPool {
 public:
  /// A pool with `num_workers` total execution lanes (>= 1). Lane 0 is
  /// the calling thread; `num_workers - 1` background threads are
  /// spawned.
  explicit ExecPool(int num_workers);

  ExecPool(const ExecPool&) = delete;
  ExecPool& operator=(const ExecPool&) = delete;

  ~ExecPool();

  /// Invokes `fn(i)` for every i in [0, n), distributed over the lanes,
  /// and returns once all n invocations completed (the join barrier).
  /// With one lane (or n <= 1) the calls run inline in index order.
  void ParallelFor(int n, const std::function<void(int)>& fn) EXCLUDES(mu_);

  int num_workers() const { return num_workers_; }

 private:
  void WorkerLoop() EXCLUDES(mu_);
  /// Claims and runs task indices until the current batch is exhausted.
  void RunBatch() EXCLUDES(mu_);

  const int num_workers_;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar batch_ready_;
  CondVar batch_done_;
  /// Batch state, all guarded by mu_.
  const std::function<void(int)>* fn_ GUARDED_BY(mu_) = nullptr;
  int batch_size_ GUARDED_BY(mu_) = 0;
  int next_index_ GUARDED_BY(mu_) = 0;
  int remaining_ GUARDED_BY(mu_) = 0;
  int64_t epoch_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace dcape

#endif  // DCAPE_RUNTIME_EXEC_POOL_H_
