#include "runtime/experiment_flags.h"

#include <cstdlib>
#include <set>
#include <string>
#include <string_view>

#include "core/productivity.h"
#include "core/strategy.h"

namespace dcape {
namespace {

StatusOr<int64_t> ParseInt(std::string_view key, std::string_view value) {
  char* end = nullptr;
  std::string copy(value);
  const int64_t parsed = std::strtoll(copy.c_str(), &end, 10);
  if (end == copy.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag " + std::string(key) +
                                   " expects an integer, got '" + copy + "'");
  }
  return parsed;
}

StatusOr<double> ParseDouble(std::string_view key, std::string_view value) {
  char* end = nullptr;
  std::string copy(value);
  const double parsed = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0') {
    return Status::InvalidArgument("flag " + std::string(key) +
                                   " expects a number, got '" + copy + "'");
  }
  return parsed;
}

StatusOr<std::vector<double>> ParseDoubleList(std::string_view key,
                                              std::string_view value) {
  std::vector<double> values;
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    const std::string_view item =
        value.substr(start, comma == std::string_view::npos
                                ? std::string_view::npos
                                : comma - start);
    DCAPE_ASSIGN_OR_RETURN(double v, ParseDouble(key, item));
    values.push_back(v);
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return values;
}

}  // namespace

StatusOr<ExperimentOptions> ParseExperimentFlags(
    const std::vector<std::string>& args) {
  ExperimentOptions options;
  ClusterConfig config;
  // dcape_run defaults: shorter run than the paper's 40 minutes.
  config.run_duration = MinutesToTicks(10);
  config.spill.memory_threshold_bytes = 24 * kMiB;
  config.workload.classes = {PartitionClass{3.0, 180000}};

  double join_rate = 3.0;
  int64_t tuple_range = 180000;
  // Flags seen so far, by name: rejects duplicates and drives the
  // strategy-consistency checks after the loop.
  std::set<std::string, std::less<>> seen;

  for (const std::string& arg : args) {
    std::string_view view = arg;
    if (view == "--help" || view == "-h") {
      return Status::InvalidArgument(ExperimentFlagsHelp());
    }
    {
      const std::string_view name = view.substr(0, view.find('='));
      if (!seen.insert(std::string(name)).second) {
        return Status::InvalidArgument("duplicate flag " + std::string(name));
      }
    }
    if (view == "--quiet") {
      options.tables = false;
      continue;
    }
    if (view == "--verbose") {
      options.verbose = true;
      continue;
    }
    if (view == "--fluctuation") {
      config.workload.fluctuation.enabled = true;
      continue;
    }
    if (view == "--restore") {
      config.restore.enabled = true;
      continue;
    }
    if (view == "--trace") {
      config.trace = true;
      continue;
    }
    if (view == "--trace-verbose") {
      config.trace_verbose = true;
      continue;
    }
    if (view == "--async-io") {
      config.async_spill_io = true;
      continue;
    }
    if (view == "--file-backend") {
      config.use_file_backend = true;
      continue;
    }
    if (view == "--realtime") {
      options.realtime = true;
      continue;
    }
    if (view == "--check-oracle") {
      options.rt_check_oracle = true;
      continue;
    }
    if (view.substr(0, 2) != "--" || view.find('=') == std::string_view::npos) {
      return Status::InvalidArgument("unrecognized argument '" + arg +
                                     "' (expected --key=value; see --help)");
    }
    const size_t eq = view.find('=');
    const std::string_view key = view.substr(0, eq);
    const std::string_view value = view.substr(eq + 1);

    // Range checks for the fields below live in
    // ClusterConfig::Builder::Validate(), which runs after the loop.
    if (key == "--strategy") {
      DCAPE_ASSIGN_OR_RETURN(config.strategy, ParseStrategy(value));
    } else if (key == "--engines") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.num_engines = static_cast<int>(v);
    } else if (key == "--split-hosts") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.num_split_hosts = static_cast<int>(v);
    } else if (key == "--threads") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.num_threads = static_cast<int>(v);
    } else if (key == "--streams") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.workload.num_streams = static_cast<int>(v);
    } else if (key == "--partitions") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.workload.num_partitions = static_cast<int>(v);
    } else if (key == "--duration-min") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.run_duration = MinutesToTicks(v);
    } else if (key == "--inter-arrival-ms") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.workload.inter_arrival_ticks = v;
    } else if (key == "--join-rate") {
      DCAPE_ASSIGN_OR_RETURN(join_rate, ParseDouble(key, value));
      if (join_rate <= 0) {
        return Status::InvalidArgument("--join-rate must be > 0");
      }
    } else if (key == "--tuple-range") {
      DCAPE_ASSIGN_OR_RETURN(tuple_range, ParseInt(key, value));
      if (tuple_range < 1) {
        return Status::InvalidArgument("--tuple-range must be >= 1");
      }
    } else if (key == "--payload-bytes") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.workload.payload_bytes = static_cast<int>(v);
    } else if (key == "--seed") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.seed = static_cast<uint64_t>(v);
      config.workload.seed = static_cast<uint64_t>(v);
    } else if (key == "--placement") {
      DCAPE_ASSIGN_OR_RETURN(config.placement_fractions,
                             ParseDoubleList(key, value));
    } else if (key == "--threshold-kib") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.spill.memory_threshold_bytes = v * kKiB;
    } else if (key == "--spill-fraction") {
      DCAPE_ASSIGN_OR_RETURN(config.spill.spill_fraction,
                             ParseDouble(key, value));
    } else if (key == "--spill-policy") {
      DCAPE_ASSIGN_OR_RETURN(config.spill.policy, ParseSpillPolicy(value));
    } else if (key == "--theta") {
      DCAPE_ASSIGN_OR_RETURN(config.relocation.theta_r,
                             ParseDouble(key, value));
    } else if (key == "--tau-sec") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.relocation.min_time_between = SecondsToTicks(v);
    } else if (key == "--relocation-model") {
      DCAPE_ASSIGN_OR_RETURN(config.relocation.model,
                             ParseRelocationModel(value));
    } else if (key == "--lambda") {
      DCAPE_ASSIGN_OR_RETURN(config.active_disk.lambda,
                             ParseDouble(key, value));
    } else if (key == "--productivity") {
      DCAPE_ASSIGN_OR_RETURN(config.productivity.model,
                             ParseProductivityModel(value));
    } else if (key == "--ewma-alpha") {
      DCAPE_ASSIGN_OR_RETURN(config.productivity.ewma_alpha,
                             ParseDouble(key, value));
    } else if (key == "--phase-min") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      if (v < 1) return Status::InvalidArgument("--phase-min must be >= 1");
      config.workload.fluctuation.phase_ticks = MinutesToTicks(v);
    } else if (key == "--hot-mult") {
      DCAPE_ASSIGN_OR_RETURN(config.workload.fluctuation.hot_multiplier,
                             ParseDouble(key, value));
    } else if (key == "--window-sec") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      config.join_window_ticks = SecondsToTicks(v);
    } else if (key == "--segment-format") {
      if (value == "v1") {
        config.segment_format = SegmentFormat::kV1;
      } else if (value == "v2") {
        config.segment_format = SegmentFormat::kV2;
      } else {
        return Status::InvalidArgument(
            "--segment-format must be v1 or v2");
      }
    } else if (key == "--duration-sec") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      if (v < 1) return Status::InvalidArgument("--duration-sec must be >= 1");
      options.rt_duration_sec = static_cast<int>(v);
    } else if (key == "--rate") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      if (v < 0) return Status::InvalidArgument("--rate must be >= 0");
      options.rt_rate = v;
    } else if (key == "--rt-queue-capacity") {
      DCAPE_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      if (v < 2) {
        return Status::InvalidArgument("--rt-queue-capacity must be >= 2");
      }
      options.rt_queue_capacity = static_cast<size_t>(v);
    } else if (key == "--csv") {
      options.csv_path = std::string(value);
    } else if (key == "--record-trace") {
      options.record_trace_path = std::string(value);
    } else if (key == "--replay-trace") {
      options.replay_trace_path = std::string(value);
    } else if (key == "--trace-out") {
      options.trace_out_path = std::string(value);
      config.trace = true;
    } else if (key == "--report") {
      if (value != "timeline") {
        return Status::InvalidArgument("--report must be timeline");
      }
      options.report = std::string(value);
      config.trace = true;
    } else {
      return Status::InvalidArgument("unknown flag '" + std::string(key) +
                                     "' (see --help)");
    }
  }

  config.workload.classes = {PartitionClass{join_rate, tuple_range}};

  // Realtime-mode consistency. Every conflict names the offending flag
  // so the error is actionable (PR 3 convention).
  if (options.realtime) {
    // Simulator-only machinery that has no wall-clock meaning (or whose
    // export contract is tick-based).
    for (const char* conflict :
         {"--threads", "--duration-min", "--window-sec", "--trace-out",
          "--report"}) {
      if (seen.count(conflict) != 0) {
        return Status::InvalidArgument(
            std::string(conflict) +
            " is simulator-only and incompatible with --realtime (see "
            "docs/REALTIME.md)");
      }
    }
  } else {
    for (const char* rt_only :
         {"--duration-sec", "--rate", "--check-oracle",
          "--rt-queue-capacity"}) {
      if (seen.count(rt_only) != 0) {
        return Status::InvalidArgument(std::string(rt_only) +
                                       " requires --realtime");
      }
    }
  }

  // All range and strategy-consistency validation lives in
  // ClusterConfig::Builder::Validate(); hand it the set of explicitly
  // given flags so consistency checks fire only for those.
  ClusterConfig::Builder builder(std::move(config));
  for (const std::string& flag : seen) builder.MarkSet(flag);
  DCAPE_ASSIGN_OR_RETURN(options.cluster, builder.Build());
  return options;
}

std::string ExperimentFlagsHelp() {
  return R"(dcape_run — run one DCAPE experiment

usage: dcape_run [--key=value ...]

query / workload:
  --streams=N            join inputs (m of the m-way join)       [3]
  --partitions=N         hash partitions across the cluster      [60]
  --inter-arrival-ms=N   virtual ms between tuples per stream    [10]
  --join-rate=F          join multiplicative factor increase     [3]
  --tuple-range=N        tuples per join-rate increment          [180000]
  --payload-bytes=N      payload bytes per tuple                 [64]
  --fluctuation          alternate 10x load between halves
  --phase-min=N          fluctuation phase length                [5]
  --hot-mult=F           fluctuation hot multiplier              [10]
  --seed=N               workload + policy seed                  [42]

cluster / run:
  --engines=N            query engines                           [2]
  --split-hosts=N        nodes hosting the split operators       [1]
  --threads=N            worker threads stepping the cluster
                         (results are identical for any value)   [1]
  --placement=F,F,...    initial partition shares per engine     [uniform]
  --duration-min=N       run-time phase length (virtual)         [10]

adaptation:
  --strategy=S           all-mem | spill-only | relocation-only |
                         lazy-disk | active-disk                 [all-mem]
  --threshold-kib=N      per-engine spill threshold              [24576]
  --spill-fraction=F     k% of state pushed per spill            [0.3]
  --spill-policy=P       push-less-productive | push-more-productive |
                         push-largest | push-smallest | push-random
  --theta=F              relocation threshold θ_r                [0.8]
  --tau-sec=N            min seconds between relocations τ_m     [45]
  --relocation-model=M   pairwise | global-rebalance             [pairwise]
  --lambda=F             active-disk productivity threshold λ    [2]
  --productivity=M       cumulative | ewma                       [cumulative]
  --ewma-alpha=F         EWMA weight of the newest window        [0.5]
  --restore              enable online state restore
  --window-sec=N         sliding-window join semantics (0 = unbounded)

storage:
  --segment-format=F     spill/relocation encoding: v1 | v2       [v2]
  --file-backend         spill to real files under a temp dir
  --async-io             background thread for real spill writes
                         (virtual-time results are identical)

realtime (docs/REALTIME.md):
  --realtime             free-running wall-clock driver: one thread per
                         node, lock-free SPSC links, real timers.
                         Incompatible with --threads, --duration-min,
                         --window-sec, --trace-out, --report
  --duration-sec=N       wall-clock generation seconds             [5]
  --rate=N               target input tuples/sec; 0 = free-run     [0]
  --check-oracle         replay the same input on the deterministic
                         simulator and require identical output
  --rt-queue-capacity=N  SPSC ring slots per link                  [8192]

output:
  --csv=PATH             write throughput/memory series as CSV
                         (also PATH-derived .storage.csv counters)
  --record-trace=PATH    record the generated input as a trace
  --replay-trace=PATH    replay a recorded trace instead
  --trace                structured adaptation trace (obs/trace.h)
  --trace-verbose        also trace per-batch data-plane events
  --trace-out=PATH       write the trace as Chrome trace_event JSON
                         (open in Perfetto; implies --trace)
  --report=timeline      print the adaptation timeline after the
                         summary (implies --trace)
  --quiet                summary only, no tables
  --verbose              narrate adaptations
)";
}

}  // namespace dcape
