#ifndef DCAPE_RUNTIME_GENERATOR_NODE_H_
#define DCAPE_RUNTIME_GENERATOR_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"
#include "net/transport.h"
#include "stream/input_source.h"
#include "stream/trace.h"

namespace dcape {

/// The stream-generator machine (the paper dedicates one cluster node to
/// it, §3.1). Each tick it pulls the due tuples from its InputSource
/// (synthetic generator or trace replay), optionally records them to a
/// trace, and ships one batch per (split host, stream) — the split
/// operators themselves may be spread over several machines (paper §2:
/// stateless operators are distributed freely).
class GeneratorNode {
 public:
  /// `split_host_of_stream[s]` is the node hosting stream s's split.
  /// `record_trace`, when non-null, receives the emitted trace.
  GeneratorNode(NodeId node_id, std::unique_ptr<InputSource> source,
                std::vector<NodeId> split_host_of_stream, Transport* network,
                std::string* record_trace);

  GeneratorNode(const GeneratorNode&) = delete;
  GeneratorNode& operator=(const GeneratorNode&) = delete;

  ~GeneratorNode() { FinishTrace(); }

  /// Emits this tick's tuples toward the split hosts. `generate=false`
  /// silences the source (drain phase).
  void OnTick(Tick now, bool generate = true);

  /// Realtime only: wall-clock stamp (microseconds since run start)
  /// copied onto every batch the *next* OnTick emits, so the sink can
  /// measure end-to-end latency. The virtual-clock driver never calls
  /// this and batches carry 0.
  void StampNextEmit(int64_t wall_us) { emit_wall_us_ = wall_us; }

  /// Finalizes the recording trace (idempotent).
  void FinishTrace();

  const InputSource& source() const { return *source_; }

 private:
  NodeId node_id_;
  std::unique_ptr<InputSource> source_;
  std::vector<NodeId> split_host_of_stream_;
  Transport* network_;
  std::unique_ptr<TraceWriter> trace_writer_;
  int64_t emit_wall_us_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_RUNTIME_GENERATOR_NODE_H_
