#ifndef DCAPE_RUNTIME_GENERATOR_NODE_H_
#define DCAPE_RUNTIME_GENERATOR_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"
#include "net/network.h"
#include "stream/input_source.h"
#include "stream/trace.h"

namespace dcape {

/// The stream-generator machine (the paper dedicates one cluster node to
/// it, §3.1). Each tick it pulls the due tuples from its InputSource
/// (synthetic generator or trace replay), optionally records them to a
/// trace, and ships one batch per (split host, stream) — the split
/// operators themselves may be spread over several machines (paper §2:
/// stateless operators are distributed freely).
class GeneratorNode {
 public:
  /// `split_host_of_stream[s]` is the node hosting stream s's split.
  /// `record_trace`, when non-null, receives the emitted trace.
  GeneratorNode(NodeId node_id, std::unique_ptr<InputSource> source,
                std::vector<NodeId> split_host_of_stream, Network* network,
                std::string* record_trace);

  GeneratorNode(const GeneratorNode&) = delete;
  GeneratorNode& operator=(const GeneratorNode&) = delete;

  ~GeneratorNode() { FinishTrace(); }

  /// Emits this tick's tuples toward the split hosts. `generate=false`
  /// silences the source (drain phase).
  void OnTick(Tick now, bool generate = true);

  /// Finalizes the recording trace (idempotent).
  void FinishTrace();

  const InputSource& source() const { return *source_; }

 private:
  NodeId node_id_;
  std::unique_ptr<InputSource> source_;
  std::vector<NodeId> split_host_of_stream_;
  Network* network_;
  std::unique_ptr<TraceWriter> trace_writer_;
};

}  // namespace dcape

#endif  // DCAPE_RUNTIME_GENERATOR_NODE_H_
