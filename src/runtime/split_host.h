#ifndef DCAPE_RUNTIME_SPLIT_HOST_H_
#define DCAPE_RUNTIME_SPLIT_HOST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"
#include "net/message.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "operators/select.h"
#include "operators/split.h"

namespace dcape {

namespace sim {
class InvariantRecorder;
}  // namespace sim

/// Configuration of one split-host node.
struct SplitHostConfig {
  NodeId node_id = kInvalidNode;
  NodeId coordinator_node = kInvalidNode;
  /// The input streams whose split operators live on this host. The
  /// paper distributes the stateless splits over the cluster machines
  /// (Â§2); a single host carrying all streams is the degenerate case.
  std::vector<StreamId> streams;
  /// Optional WHERE predicate per hosted stream (parallel to `streams`;
  /// empty = no selection).
  std::vector<SelectPredicate> select_per_stream;
  /// Optional projection: truncate payloads to this many bytes before
  /// routing.
  std::optional<int> project_payload_to;
  /// Chaos-harness invariant sink (unowned; null in production). When
  /// set, the host reports pause/release protocol violations: duplicate
  /// pauses, routing updates for unknown relocations, partitions left
  /// paused after release, buffered tuples leaked outside a relocation.
  sim::InvariantRecorder* invariants = nullptr;
  /// Structured tracer (unowned; null = tracing disabled). The host
  /// emits pause/flush instants on lane `node_id`.
  obs::Tracer* tracer = nullptr;
};

/// A node hosting split operators for a subset of the input streams.
///
/// Tuples arrive as batches from the generator node; the host applies the
/// stateless pre-split operators (selection, projection), routes by
/// partition to the owning engine, and implements the split side of the
/// relocation protocol: pause + buffer, drain markers toward the old
/// owner, and buffered-tuple flush to the new owner on UpdateRouting.
class SplitHost {
 public:
  /// `placement[p]` is the initial engine of partition p.
  SplitHost(const SplitHostConfig& config, std::vector<EngineId> placement,
            Transport* network);

  SplitHost(const SplitHost&) = delete;
  SplitHost& operator=(const SplitHost&) = delete;

  /// Network delivery callback (tuple batches + protocol messages).
  void OnMessage(Tick now, const Message& message);

  /// Data-plane fast path: routes the batch without copying its tuples.
  void OnTupleBatch(Tick now, TupleBatch&& batch);

  Split& split(StreamId stream);
  const Split& split(StreamId stream) const;
  bool HostsStream(StreamId stream) const {
    return splits_.count(stream) > 0;
  }
  const std::vector<StreamId>& streams() const { return config_.streams; }

  /// Tuples buffered across this host's splits (nonzero mid-relocation).
  int64_t total_buffered() const;

  /// Paused partitions across this host's splits (0 at quiescence).
  int64_t paused_partition_count() const;

  /// The selection operator of one hosted stream (null when none).
  const SelectOp* select(StreamId stream) const {
    auto it = selects_.find(stream);
    return it == selects_.end() ? nullptr : it->second.get();
  }
  /// The projection operator (null when not configured).
  const ProjectOp* project() const { return project_.get(); }

 private:
  /// Applies select/project and routes fresh tuples. `emit_wall_us`
  /// (realtime runs) is copied onto every outgoing batch.
  void FilterAndRoute(Tick now, std::vector<Tuple> tuples,
                      int64_t emit_wall_us);
  /// Routes tuples (no filtering â used for buffered re-release too).
  void RouteAndSend(Tick now, std::vector<Tuple> tuples,
                    int64_t emit_wall_us);

  SplitHostConfig config_;
  Transport* network_;
  /// Relocation ids paused here and not yet released (invariant
  /// bookkeeping; only maintained when config_.invariants is set).
  std::set<int64_t> paused_relocations_;
  std::map<StreamId, std::unique_ptr<Split>> splits_;
  std::map<StreamId, std::unique_ptr<SelectOp>> selects_;
  std::unique_ptr<ProjectOp> project_;
};

}  // namespace dcape

#endif  // DCAPE_RUNTIME_SPLIT_HOST_H_
