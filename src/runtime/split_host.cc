#include "runtime/split_host.h"

#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "sim/invariants.h"

namespace dcape {

SplitHost::SplitHost(const SplitHostConfig& config,
                     std::vector<EngineId> placement, Transport* network)
    : config_(config), network_(network) {
  DCAPE_CHECK(network_ != nullptr);
  DCAPE_CHECK(!config_.streams.empty());
  for (StreamId s : config_.streams) {
    splits_.emplace(s, std::make_unique<Split>(s, placement));
  }
  if (!config_.select_per_stream.empty()) {
    DCAPE_CHECK_EQ(config_.select_per_stream.size(), config_.streams.size());
    for (size_t i = 0; i < config_.streams.size(); ++i) {
      selects_.emplace(config_.streams[i], std::make_unique<SelectOp>(
                                               config_.select_per_stream[i]));
    }
  }
  if (config_.project_payload_to.has_value()) {
    DCAPE_CHECK_GE(*config_.project_payload_to, 0);
    project_ = std::make_unique<ProjectOp>(
        static_cast<size_t>(*config_.project_payload_to));
  }
}

Split& SplitHost::split(StreamId stream) {
  auto it = splits_.find(stream);
  DCAPE_CHECK(it != splits_.end());
  return *it->second;
}

const Split& SplitHost::split(StreamId stream) const {
  auto it = splits_.find(stream);
  DCAPE_CHECK(it != splits_.end());
  return *it->second;
}

void SplitHost::RouteAndSend(Tick now, std::vector<Tuple> tuples,
                             int64_t emit_wall_us) {
  std::map<std::pair<EngineId, StreamId>, TupleBatch> batches;
  for (Tuple& tuple : tuples) {
    Split& split = this->split(tuple.stream_id);
    std::optional<EngineId> engine = split.Route(tuple);
    if (!engine.has_value()) continue;  // buffered (paused partition)
    TupleBatch& batch = batches[{*engine, tuple.stream_id}];
    batch.stream_id = tuple.stream_id;
    batch.tuples.push_back(std::move(tuple));
  }
  for (auto& [key, batch] : batches) {
    batch.emit_wall_us = emit_wall_us;
    network_->Send(MakeTupleBatchMessage(config_.node_id,
                                         static_cast<NodeId>(key.first),
                                         std::move(batch)),
                   now);
  }
}

void SplitHost::FilterAndRoute(Tick now, std::vector<Tuple> tuples,
                               int64_t emit_wall_us) {
  if (!selects_.empty()) {
    std::vector<Tuple> selected;
    selected.reserve(tuples.size());
    for (Tuple& t : tuples) {
      auto it = selects_.find(t.stream_id);
      if (it == selects_.end() || it->second->Process(t)) {
        selected.push_back(std::move(t));
      }
    }
    tuples = std::move(selected);
  }
  if (project_ != nullptr) {
    for (Tuple& t : tuples) project_->Process(&t);
  }
  if (!tuples.empty()) RouteAndSend(now, std::move(tuples), emit_wall_us);
}

void SplitHost::OnTupleBatch(Tick now, TupleBatch&& batch) {
  DCAPE_CHECK(HostsStream(batch.stream_id));
  FilterAndRoute(now, std::move(batch.tuples), batch.emit_wall_us);
}

void SplitHost::OnMessage(Tick now, const Message& message) {
  switch (message.type) {
    case MessageType::kTupleBatch: {
      OnTupleBatch(now, TupleBatch(std::get<TupleBatch>(message.payload)));
      return;
    }
    case MessageType::kPausePartitions: {
      const auto& pause = std::get<PausePartitions>(message.payload);
      if (config_.invariants != nullptr &&
          !paused_relocations_.insert(pause.relocation_id).second) {
        config_.invariants->Report(
            "split host " + std::to_string(config_.node_id) +
            " received duplicate pause for relocation " +
            std::to_string(pause.relocation_id));
      }
      for (auto& [stream, split] : splits_) split->Pause(pause.partitions);
      if (DCAPE_TRACE_ACTIVE(config_.tracer)) {
        config_.tracer->EmitInstant(
            static_cast<int>(config_.node_id), now, obs::ev::kRelocPauseSplit,
            {obs::TraceArg::Int(
                "partitions",
                static_cast<int64_t>(pause.partitions.size()))},
            pause.relocation_id);
      }

      // Drain marker rides the tuple link to the old owner; FIFO delivery
      // guarantees every pre-pause tuple precedes it.
      DrainMarker marker;
      marker.relocation_id = pause.relocation_id;
      marker.split_host = config_.node_id;
      Message marker_msg;
      marker_msg.type = MessageType::kDrainMarker;
      marker_msg.from = config_.node_id;
      marker_msg.to = pause.sender_node;
      marker_msg.payload = marker;
      network_->Send(std::move(marker_msg), now);

      PauseAck ack;
      ack.relocation_id = pause.relocation_id;
      ack.split_host = config_.node_id;
      Message ack_msg;
      ack_msg.type = MessageType::kPauseAck;
      ack_msg.from = config_.node_id;
      ack_msg.to = config_.coordinator_node;
      ack_msg.payload = ack;
      network_->Send(std::move(ack_msg), now);
      return;
    }
    case MessageType::kUpdateRouting: {
      const auto& update = std::get<UpdateRouting>(message.payload);
      if (config_.invariants != nullptr &&
          paused_relocations_.erase(update.relocation_id) == 0) {
        config_.invariants->Report(
            "split host " + std::to_string(config_.node_id) +
            " received routing update for unknown relocation " +
            std::to_string(update.relocation_id));
      }
      // Flush buffered tuples to the new owner before acking; they travel
      // the same FIFO link as all future tuples to that engine.
      std::vector<Tuple> released;
      for (auto& [stream, split] : splits_) {
        std::vector<Tuple> r = split->UpdateRoutingAndRelease(
            update.partitions, update.new_owner);
        released.insert(released.end(), std::make_move_iterator(r.begin()),
                        std::make_move_iterator(r.end()));
      }
      if (DCAPE_TRACE_ACTIVE(config_.tracer)) {
        config_.tracer->EmitInstant(
            static_cast<int>(config_.node_id), now, obs::ev::kRelocFlushSplit,
            {obs::TraceArg::Int("buffered",
                                static_cast<int64_t>(released.size())),
             obs::TraceArg::Int("new_owner", update.new_owner)},
            update.relocation_id);
      }
      if (!released.empty()) {
        DCAPE_LOG(kDebug) << "split host " << config_.node_id << " flushing "
                          << released.size() << " buffered tuples to engine "
                          << update.new_owner;
        RouteAndSend(now, std::move(released), /*emit_wall_us=*/0);
      }

      if (config_.invariants != nullptr) {
        for (PartitionId p : update.partitions) {
          for (auto& [stream, split] : splits_) {
            if (split->IsPaused(p)) {
              config_.invariants->Report(
                  "split host " + std::to_string(config_.node_id) +
                  " left partition " + std::to_string(p) +
                  " paused after routing update");
            }
          }
        }
        if (paused_relocations_.empty() && total_buffered() != 0) {
          config_.invariants->Report(
              "split host " + std::to_string(config_.node_id) + " leaked " +
              std::to_string(total_buffered()) +
              " buffered tuples outside any relocation");
        }
      }

      RoutingUpdated ack;
      ack.relocation_id = update.relocation_id;
      ack.split_host = config_.node_id;
      Message ack_msg;
      ack_msg.type = MessageType::kRoutingUpdated;
      ack_msg.from = config_.node_id;
      ack_msg.to = config_.coordinator_node;
      ack_msg.payload = ack;
      network_->Send(std::move(ack_msg), now);
      return;
    }
    default:
      DCAPE_LOG(kWarning) << "split host " << config_.node_id
                          << " ignoring unexpected message "
                          << MessageTypeName(message.type);
      return;
  }
}

int64_t SplitHost::total_buffered() const {
  int64_t total = 0;
  for (const auto& [stream, split] : splits_) total += split->buffered_count();
  return total;
}

int64_t SplitHost::paused_partition_count() const {
  int64_t total = 0;
  for (const auto& [stream, split] : splits_) total += split->paused_count();
  return total;
}

}  // namespace dcape
