#ifndef DCAPE_RUNTIME_CLUSTER_H_
#define DCAPE_RUNTIME_CLUSTER_H_

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/global_coordinator.h"
#include "engine/query_engine.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "operators/aggregate.h"
#include "operators/sink.h"
#include "operators/union_op.h"
#include "runtime/cluster_config.h"
#include "runtime/exec_pool.h"
#include "runtime/run_result.h"
#include "runtime/generator_node.h"
#include "runtime/split_host.h"
#include "stream/stream_generator.h"

namespace dcape {

/// The assembled distributed system (paper Fig. 4): N query engines, the
/// global coordinator, the stream-generator node hosting the splits, and
/// the application-server node hosting union + sink, all wired over the
/// simulated network and driven by the virtual clock.
///
/// Node addressing convention: engine e is node e; then the coordinator,
/// the application server (sink), the stream generator, and the split
/// hosts occupy the following ids.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs the full experiment: run-time phase of `run_duration`, pipeline
  /// drain, then (if configured) the cleanup phase. Returns all series
  /// and counters.
  RunResult Run();

  /// Advances virtual time to `end` with the generator on. May be called
  /// repeatedly (tests drive phases manually).
  void RunUntil(Tick end);

  /// Stops generation and advances time until the pipeline is quiescent
  /// (no queued messages, no queued batches, no buffered tuples).
  void Drain();

  /// Runs the cleanup phase over the engines' current disks and states.
  [[nodiscard]] StatusOr<CleanupStats> RunCleanup();

  /// Builds the RunResult from the current series/counters (Run() does
  /// this automatically).
  RunResult Collect();

  /// The initial partition placement this cluster uses; also available
  /// statically so benches can derive per-owner workload classes before
  /// construction.
  static std::vector<EngineId> PlacementFor(const ClusterConfig& config);

  QueryEngine& engine(EngineId e) { return *engines_[static_cast<size_t>(e)]; }
  const QueryEngine& engine(EngineId e) const {
    return *engines_[static_cast<size_t>(e)];
  }
  int num_engines() const { return static_cast<int>(engines_.size()); }
  GlobalCoordinator& coordinator() { return *coordinator_; }
  /// The first split host (hosts every stream when num_split_hosts == 1).
  SplitHost& split_host() { return *split_hosts_[0]; }
  SplitHost& split_host(int host) {
    return *split_hosts_[static_cast<size_t>(host)];
  }
  int num_split_hosts() const {
    return static_cast<int>(split_hosts_.size());
  }
  /// The split host carrying `stream`'s split operator.
  SplitHost& split_host_for_stream(StreamId stream) {
    return *split_hosts_[static_cast<size_t>(stream) % split_hosts_.size()];
  }
  /// The input source feeding the cluster (generator or trace).
  const InputSource& source() const { return generator_->source(); }
  ResultSink& sink() { return sink_; }
  /// The application server's grouped aggregate (null unless
  /// `aggregate_op` was configured). Note: runtime results only; fold the
  /// cleanup results in with ConsumeAll to get the final answer.
  GroupByAggregate* aggregate() { return aggregate_.get(); }
  Network& network() { return network_; }
  Tick now() const { return clock_.now(); }
  const std::vector<EngineId>& placement() const { return placement_; }
  const ClusterConfig& config() const { return config_; }

  NodeId coordinator_node() const { return coordinator_node_; }
  NodeId sink_node() const { return sink_node_; }
  NodeId generator_node() const { return generator_node_; }

  /// The unified metrics registry: every engine/coordinator/storage
  /// counter in the cluster lives here (single source for RunResult and
  /// the trace's sampled counter events).
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The structured trace, or null when `config.trace` is off.
  const obs::Tracer* tracer() const { return tracer_.get(); }

 private:
  void StepTick(Tick now, bool generate);
  void SampleIfDue(Tick now, bool force = false);
  /// Delivers every message due at `now` in deterministic waves: engine
  /// and split-host inboxes drain concurrently on the pool, the
  /// coordinator/sink inboxes drain on the caller, and all sends merge at
  /// the wave barrier in (node id, send order) order.
  void DeliverWaves(Tick now);
  /// True when the whole pipeline is idle: no queued messages, no
  /// buffered split tuples, no busy/backlogged engines.
  bool Quiescent(Tick now) const;
  /// True for nodes whose inboxes may be drained concurrently (each such
  /// node's state is touched only by its own task).
  bool IsConcurrentNode(NodeId node) const {
    return node < static_cast<NodeId>(config_.num_engines) ||
           node > generator_node_;
  }

  ClusterConfig config_;
  NodeId coordinator_node_;
  NodeId sink_node_;
  NodeId generator_node_;
  /// Declared before the engines/coordinator, whose metric cells point
  /// into it (and are therefore destroyed first).
  obs::MetricsRegistry metrics_;
  /// Null unless config_.trace; lanes = every node + one driver lane.
  std::unique_ptr<obs::Tracer> tracer_;
  ExecPool pool_;
  Network network_;
  std::vector<EngineId> placement_;
  /// Background spill-write thread (config_.async_spill_io). Declared
  /// before engines_ so it outlives them: each engine's SpillStore
  /// drains its queued writes on destruction.
  std::unique_ptr<IoExecutor> io_executor_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::unique_ptr<GlobalCoordinator> coordinator_;
  std::unique_ptr<GeneratorNode> generator_;
  std::vector<std::unique_ptr<SplitHost>> split_hosts_;
  UnionOp union_op_;
  ResultSink sink_;
  std::unique_ptr<GroupByAggregate> aggregate_;
  VirtualClock clock_;
  Tick next_sample_ = 0;
  TimeSeries throughput_series_;
  std::vector<TimeSeries> memory_series_;
  bool draining_ = false;
};

}  // namespace dcape

#endif  // DCAPE_RUNTIME_CLUSTER_H_
