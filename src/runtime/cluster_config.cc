#include "runtime/cluster_config.h"

#include <cmath>

#include "common/check.h"

namespace dcape {

std::vector<EngineId> ComputePlacement(int num_partitions, int num_engines,
                                       const std::vector<double>& fractions) {
  DCAPE_CHECK_GT(num_partitions, 0);
  DCAPE_CHECK_GT(num_engines, 0);
  std::vector<double> shares = fractions;
  if (shares.empty()) {
    shares.assign(static_cast<size_t>(num_engines),
                  1.0 / static_cast<double>(num_engines));
  }
  DCAPE_CHECK_EQ(shares.size(), static_cast<size_t>(num_engines));

  // Cumulative boundaries, rounding each prefix so the blocks partition
  // the id space exactly.
  std::vector<EngineId> placement(static_cast<size_t>(num_partitions), 0);
  double cumulative = 0.0;
  int start = 0;
  for (int e = 0; e < num_engines; ++e) {
    cumulative += shares[static_cast<size_t>(e)];
    int end = (e == num_engines - 1)
                  ? num_partitions
                  : static_cast<int>(std::llround(cumulative *
                                                  num_partitions));
    end = std::min(end, num_partitions);
    for (int p = start; p < end; ++p) {
      placement[static_cast<size_t>(p)] = e;
    }
    start = std::max(start, end);
  }
  return placement;
}

std::vector<PartitionId> PartitionsOfEngine(
    const std::vector<EngineId>& placement, EngineId engine) {
  std::vector<PartitionId> ids;
  for (size_t p = 0; p < placement.size(); ++p) {
    if (placement[p] == engine) ids.push_back(static_cast<PartitionId>(p));
  }
  return ids;
}

}  // namespace dcape
