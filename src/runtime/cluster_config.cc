#include "runtime/cluster_config.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"

namespace dcape {

std::vector<EngineId> ComputePlacement(int num_partitions, int num_engines,
                                       const std::vector<double>& fractions) {
  DCAPE_CHECK_GT(num_partitions, 0);
  DCAPE_CHECK_GT(num_engines, 0);
  std::vector<double> shares = fractions;
  if (shares.empty()) {
    shares.assign(static_cast<size_t>(num_engines),
                  1.0 / static_cast<double>(num_engines));
  }
  DCAPE_CHECK_EQ(shares.size(), static_cast<size_t>(num_engines));

  // Cumulative boundaries, rounding each prefix so the blocks partition
  // the id space exactly.
  std::vector<EngineId> placement(static_cast<size_t>(num_partitions), 0);
  double cumulative = 0.0;
  int start = 0;
  for (int e = 0; e < num_engines; ++e) {
    cumulative += shares[static_cast<size_t>(e)];
    int end = (e == num_engines - 1)
                  ? num_partitions
                  : static_cast<int>(std::llround(cumulative *
                                                  num_partitions));
    end = std::min(end, num_partitions);
    for (int p = start; p < end; ++p) {
      placement[static_cast<size_t>(p)] = e;
    }
    start = std::max(start, end);
  }
  return placement;
}

std::vector<PartitionId> PartitionsOfEngine(
    const std::vector<EngineId>& placement, EngineId engine) {
  std::vector<PartitionId> ids;
  for (size_t p = 0; p < placement.size(); ++p) {
    if (placement[p] == engine) ids.push_back(static_cast<PartitionId>(p));
  }
  return ids;
}

ClusterConfig::Builder& ClusterConfig::Builder::MarkSet(
    std::string_view flag) {
  if (!IsSet(flag)) set_flags_.emplace_back(flag);
  return *this;
}

bool ClusterConfig::Builder::IsSet(std::string_view flag) const {
  return std::find(set_flags_.begin(), set_flags_.end(), flag) !=
         set_flags_.end();
}

ClusterConfig::Builder& ClusterConfig::Builder::SetStrategy(
    AdaptationStrategy strategy) {
  config_.strategy = strategy;
  return MarkSet("--strategy");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetNumEngines(int n) {
  config_.num_engines = n;
  return MarkSet("--engines");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetNumSplitHosts(int n) {
  config_.num_split_hosts = n;
  return MarkSet("--split-hosts");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetNumThreads(int n) {
  config_.num_threads = n;
  return MarkSet("--threads");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetNumStreams(int n) {
  config_.workload.num_streams = n;
  return MarkSet("--streams");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetNumPartitions(int n) {
  config_.workload.num_partitions = n;
  return MarkSet("--partitions");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetRunDuration(Tick ticks) {
  config_.run_duration = ticks;
  return MarkSet("--duration-min");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetSeed(uint64_t seed) {
  config_.seed = seed;
  config_.workload.seed = seed;
  return MarkSet("--seed");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetJoinWindowTicks(
    Tick ticks) {
  config_.join_window_ticks = ticks;
  return MarkSet("--window-sec");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetPlacementFractions(
    std::vector<double> fractions) {
  config_.placement_fractions = std::move(fractions);
  return MarkSet("--placement");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetMemoryThresholdBytes(
    int64_t bytes) {
  config_.spill.memory_threshold_bytes = bytes;
  return MarkSet("--threshold-kib");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetSpillFraction(
    double fraction) {
  config_.spill.spill_fraction = fraction;
  return MarkSet("--spill-fraction");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetSpillPolicy(
    SpillPolicy policy) {
  config_.spill.policy = policy;
  return MarkSet("--spill-policy");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetRestoreEnabled(
    bool enabled) {
  config_.restore.enabled = enabled;
  return MarkSet("--restore");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetThetaR(double theta) {
  config_.relocation.theta_r = theta;
  return MarkSet("--theta");
}

ClusterConfig::Builder&
ClusterConfig::Builder::SetMinTimeBetweenRelocations(Tick ticks) {
  config_.relocation.min_time_between = ticks;
  return MarkSet("--tau-sec");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetRelocationModel(
    RelocationModel model) {
  config_.relocation.model = model;
  return MarkSet("--relocation-model");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetLambda(double lambda) {
  config_.active_disk.lambda = lambda;
  return MarkSet("--lambda");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetProductivityModel(
    ProductivityModel model) {
  config_.productivity.model = model;
  return MarkSet("--productivity");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetEwmaAlpha(double alpha) {
  config_.productivity.ewma_alpha = alpha;
  return MarkSet("--ewma-alpha");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetTrace(bool enabled) {
  config_.trace = enabled;
  return MarkSet("--trace");
}

ClusterConfig::Builder& ClusterConfig::Builder::SetTraceVerbose(
    bool enabled) {
  config_.trace_verbose = enabled;
  return MarkSet("--trace-verbose");
}

Status ClusterConfig::Builder::Validate() const {
  const ClusterConfig& c = config_;
  // Unconditional range checks (defaults all pass; these catch both CLI
  // values and programmatic construction errors).
  if (c.num_engines < 1 || c.num_engines > 64) {
    return Status::InvalidArgument("--engines must be in [1, 64]");
  }
  if (c.num_split_hosts < 1) {
    return Status::InvalidArgument("--split-hosts must be >= 1");
  }
  if (c.num_threads < 1 || c.num_threads > 256) {
    return Status::InvalidArgument("--threads must be in [1, 256]");
  }
  if (c.workload.num_streams < 2 || c.workload.num_streams > 16) {
    return Status::InvalidArgument("--streams must be in [2, 16]");
  }
  if (c.workload.num_partitions < 1) {
    return Status::InvalidArgument("--partitions must be >= 1");
  }
  if (c.workload.inter_arrival_ticks < 1) {
    return Status::InvalidArgument("--inter-arrival-ms must be >= 1");
  }
  if (c.workload.payload_bytes < 0) {
    return Status::InvalidArgument("--payload-bytes must be >= 0");
  }
  if (c.run_duration < 1) {
    return Status::InvalidArgument("--duration-min must be >= 1");
  }
  if (c.join_window_ticks < 0) {
    return Status::InvalidArgument("--window-sec must be >= 0");
  }
  if (c.spill.memory_threshold_bytes < 1) {
    return Status::InvalidArgument("--threshold-kib must be >= 1");
  }
  if (c.spill.spill_fraction <= 0 || c.spill.spill_fraction > 1) {
    return Status::InvalidArgument("--spill-fraction must be in (0, 1]");
  }
  if (c.relocation.theta_r <= 0 || c.relocation.theta_r >= 1) {
    return Status::InvalidArgument("--theta must be in (0, 1)");
  }
  if (c.relocation.min_time_between < 0) {
    return Status::InvalidArgument("--tau-sec must be >= 0");
  }
  if (c.active_disk.lambda <= 1) {
    return Status::InvalidArgument("--lambda must be > 1");
  }
  if (c.productivity.ewma_alpha <= 0 || c.productivity.ewma_alpha > 1) {
    return Status::InvalidArgument("--ewma-alpha must be in (0, 1]");
  }
  if (c.workload.fluctuation.hot_multiplier < 1) {
    return Status::InvalidArgument("--hot-mult must be >= 1");
  }
  if (!c.placement_fractions.empty() &&
      c.placement_fractions.size() != static_cast<size_t>(c.num_engines)) {
    return Status::InvalidArgument(
        "--placement must list one share per engine");
  }
  if (!c.per_engine_thresholds.empty() &&
      c.per_engine_thresholds.size() != static_cast<size_t>(c.num_engines)) {
    return Status::InvalidArgument(
        "per_engine_thresholds must list one threshold per engine");
  }
  if (!c.per_engine_segment_format.empty() &&
      c.per_engine_segment_format.size() !=
          static_cast<size_t>(c.num_engines)) {
    return Status::InvalidArgument(
        "per_engine_segment_format must list one format per engine");
  }
  if (c.trace_verbose && !c.trace) {
    return Status::InvalidArgument("--trace-verbose requires --trace");
  }

  // Strategy-consistency checks: spill/relocation tuning knobs are
  // silently inert under a strategy that never consults them; reject the
  // combination instead, naming the offending field — but only when it
  // was set explicitly (defaults are always consistent).
  if (!StrategySpillsLocally(c.strategy)) {
    for (const char* flag :
         {"--restore", "--spill-fraction", "--spill-policy"}) {
      if (IsSet(flag)) {
        return Status::InvalidArgument(
            std::string(flag) + " requires a spilling strategy "
            "(--strategy=spill-only|lazy-disk|active-disk), got --strategy=" +
            StrategyName(c.strategy));
      }
    }
  }
  if (!StrategyRelocates(c.strategy)) {
    for (const char* flag : {"--theta", "--tau-sec", "--relocation-model"}) {
      if (IsSet(flag)) {
        return Status::InvalidArgument(
            std::string(flag) + " requires a relocating strategy "
            "(--strategy=relocation-only|lazy-disk|active-disk), got "
            "--strategy=" +
            StrategyName(c.strategy));
      }
    }
  }
  if (c.strategy != AdaptationStrategy::kActiveDisk && IsSet("--lambda")) {
    return Status::InvalidArgument(
        "--lambda requires --strategy=active-disk, got --strategy=" +
        std::string(StrategyName(c.strategy)));
  }
  return Status::OK();
}

StatusOr<ClusterConfig> ClusterConfig::Builder::Build() const {
  DCAPE_RETURN_IF_ERROR(Validate());
  return config_;
}

}  // namespace dcape
