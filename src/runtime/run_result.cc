#include "runtime/run_result.h"

#include <sstream>

#include "common/units.h"

namespace dcape {
namespace {

void StorageCsvRow(std::ostream& os, const std::string& label,
                   const StorageCounters& c) {
  os << label << ',' << c.segments_written << ',' << c.segments_resident
     << ',' << c.resident_bytes << ',' << c.encoded_bytes << ','
     << c.raw_bytes << ',' << c.CompressionRatio() << ','
     << c.io_queue_high_water << '\n';
}

}  // namespace

void RunResult::PrintSummary(std::ostream& os) const {
  os << "runtime results: " << runtime_results
     << " (latency p50/p99: " << runtime_latency.Quantile(0.5) << "/"
     << runtime_latency.Quantile(0.99) << " ms)"
     << " | cleanup results: " << cleanup.result_count
     << " | tuples ingested: " << tuples_generated
     << " | relocations: " << coordinator.relocations_completed
     << " | spill events: " << spill_events << " ("
     << FormatBytes(spilled_bytes) << ")"
     << " | forced spills: " << coordinator.forced_spills
     << " | cleanup time: " << cleanup.total_ticks / 1000.0 << " s\n";
  if (storage.segments_written > 0) {
    os << "storage: " << storage.segments_written << " segments ("
       << FormatBytes(storage.encoded_bytes) << " encoded / "
       << FormatBytes(storage.raw_bytes) << " raw, ratio "
       << storage.CompressionRatio() << "), resident "
       << storage.segments_resident << " segments ("
       << FormatBytes(storage.resident_bytes) << ")"
       << " | io queue high-water: " << storage.io_queue_high_water << "\n";
  }
}

std::string RunResult::StorageCsv() const {
  std::ostringstream os;
  os << "engine,segments_written,segments_resident,resident_bytes,"
        "encoded_bytes,raw_bytes,compression_ratio,io_queue_high_water\n";
  for (size_t e = 0; e < engine_storage.size(); ++e) {
    StorageCsvRow(os, "engine" + std::to_string(e), engine_storage[e]);
  }
  StorageCsvRow(os, "total", storage);
  return os.str();
}

}  // namespace dcape
