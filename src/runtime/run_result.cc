#include "runtime/run_result.h"

#include "common/units.h"

namespace dcape {

void RunResult::PrintSummary(std::ostream& os) const {
  os << "runtime results: " << runtime_results
     << " (latency p50/p99: " << runtime_latency.Quantile(0.5) << "/"
     << runtime_latency.Quantile(0.99) << " ms)"
     << " | cleanup results: " << cleanup.result_count
     << " | tuples ingested: " << tuples_generated
     << " | relocations: " << coordinator.relocations_completed
     << " | spill events: " << spill_events << " ("
     << FormatBytes(spilled_bytes) << ")"
     << " | forced spills: " << coordinator.forced_spills
     << " | cleanup time: " << cleanup.total_ticks / 1000.0 << " s\n";
}

}  // namespace dcape
