#include "runtime/exec_pool.h"

#include "common/check.h"

namespace dcape {

ExecPool::ExecPool(int num_workers) : num_workers_(num_workers) {
  DCAPE_CHECK_GE(num_workers, 1);
  threads_.reserve(static_cast<size_t>(num_workers - 1));
  for (int i = 1; i < num_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ExecPool::~ExecPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  batch_ready_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ExecPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (threads_.empty() || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(mu_);
    fn_ = &fn;
    batch_size_ = n;
    next_index_ = 0;
    remaining_ = n;
    ++epoch_;
  }
  batch_ready_.NotifyAll();
  RunBatch();
  MutexLock lock(mu_);
  while (remaining_ != 0) batch_done_.Wait(mu_);
  fn_ = nullptr;
}

void ExecPool::RunBatch() {
  while (true) {
    const std::function<void(int)>* fn;
    int index;
    {
      MutexLock lock(mu_);
      if (next_index_ >= batch_size_) return;
      index = next_index_++;
      fn = fn_;
    }
    (*fn)(index);
    {
      MutexLock lock(mu_);
      if (--remaining_ == 0) batch_done_.NotifyAll();
    }
  }
}

void ExecPool::WorkerLoop() {
  int64_t seen_epoch = 0;
  while (true) {
    {
      MutexLock lock(mu_);
      while (!stopping_ && epoch_ == seen_epoch) batch_ready_.Wait(mu_);
      if (stopping_) return;
      seen_epoch = epoch_;
    }
    RunBatch();
  }
}

}  // namespace dcape
