#ifndef DCAPE_RUNTIME_EXPERIMENT_FLAGS_H_
#define DCAPE_RUNTIME_EXPERIMENT_FLAGS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/cluster_config.h"

namespace dcape {

/// A parsed command line for the `dcape_run` experiment driver.
struct ExperimentOptions {
  ClusterConfig cluster;
  /// Write throughput + per-engine memory series to this CSV file.
  std::string csv_path;
  /// Record the generated input to this trace file.
  std::string record_trace_path;
  /// Replay input from this trace file instead of generating.
  std::string replay_trace_path;
  /// Write the structured adaptation trace as Chrome trace_event JSON
  /// (implies cluster.trace).
  std::string trace_out_path;
  /// Extra report to print after the summary ("timeline" renders the
  /// adaptation timeline from the structured trace; implies
  /// cluster.trace).
  std::string report;
  /// Narrate adaptations (kInfo logging).
  bool verbose = false;
  /// Print the throughput/memory tables (summary always prints).
  bool tables = true;

  /// Run on the free-running realtime driver (rt::RealtimeDriver): one
  /// real thread per node, SPSC links, wall-clock timers. Incompatible
  /// with the simulator-only flags (--threads, --duration-min,
  /// --window-sec, --trace-out, --report); see docs/REALTIME.md.
  bool realtime = false;
  /// Wall-clock seconds of the generation phase (--duration-sec).
  int rt_duration_sec = 5;
  /// Target input rate in tuples/sec; 0 = free-run (--rate).
  int64_t rt_rate = 0;
  /// After the realtime run, replay the same input on the deterministic
  /// simulator and require identical final output (--check-oracle).
  bool rt_check_oracle = false;
  /// SPSC ring capacity per link, in messages (--rt-queue-capacity).
  size_t rt_queue_capacity = 8192;
};

/// Parses `--key=value` flags into an ExperimentOptions. Unknown flags,
/// malformed values, and out-of-range settings yield InvalidArgument
/// with a human-readable message. `args` excludes argv[0].
///
/// Supported flags (defaults in brackets):
///   --strategy=all-mem|spill-only|relocation-only|lazy-disk|active-disk
///   --engines=N [2]           --split-hosts=N [1]
///   --threads=N [1]           (worker threads; results identical)
///   --streams=N [3]           --partitions=N [60]
///   --duration-min=N [10]     --inter-arrival-ms=N [10]
///   --join-rate=F [3]         --tuple-range=N [180000]
///   --payload-bytes=N [64]    --seed=N [42]
///   --placement=F,F,...       (initial partition shares per engine)
///   --threshold-kib=N [24576] (per-engine spill threshold)
///   --spill-fraction=F [0.3]
///   --spill-policy=push-less-productive|push-more-productive|
///                  push-largest|push-smallest|push-random
///   --theta=F [0.8]           --tau-sec=N [45]
///   --relocation-model=pairwise|global-rebalance
///   --lambda=F [2]            --productivity=cumulative|ewma
///   --ewma-alpha=F [0.5]      --restore (enable online restore)
///   --fluctuation             --phase-min=N [5]  --hot-mult=F [10]
///   --segment-format=v1|v2 [v2]  --file-backend  --async-io
///   --csv=PATH  --record-trace=PATH  --replay-trace=PATH
///   --trace (structured adaptation trace)  --trace-verbose
///   --trace-out=PATH (Chrome trace_event JSON; implies --trace)
///   --report=timeline (adaptation timeline; implies --trace)
///   --quiet (no tables)       --verbose (narrate adaptations)
///   --realtime                (wall-clock driver; see docs/REALTIME.md)
///   --duration-sec=N [5]      --rate=N [0 = free-run]
///   --check-oracle            --rt-queue-capacity=N [8192]
[[nodiscard]] StatusOr<ExperimentOptions> ParseExperimentFlags(
    const std::vector<std::string>& args);

/// The flag reference shown by `dcape_run --help`.
std::string ExperimentFlagsHelp();

}  // namespace dcape

#endif  // DCAPE_RUNTIME_EXPERIMENT_FLAGS_H_
