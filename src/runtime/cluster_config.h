#ifndef DCAPE_RUNTIME_CLUSTER_CONFIG_H_
#define DCAPE_RUNTIME_CLUSTER_CONFIG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cleanup/cleanup.h"
#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/productivity.h"
#include "core/strategy.h"
#include "net/network.h"
#include "operators/select.h"
#include "sim/fault_plan.h"
#include "sim/invariants.h"
#include "storage/spill_store.h"
#include "stream/workload.h"
#include "tuple/projection.h"
#include "tuple/serde.h"

namespace dcape {

/// Full description of one experiment: the simulated cluster, the query
/// workload, and the adaptation strategy under test.
struct ClusterConfig {
  /// Number of query-engine machines (the paper's processors; the
  /// coordinator, stream generator and application server get their own
  /// dedicated nodes, as in §3.1).
  int num_engines = 2;
  /// Number of nodes hosting the split operators (clamped to the stream
  /// count; streams are assigned round-robin). 1 colocates every split
  /// with the generator node, the paper's described deployment.
  int num_split_hosts = 1;
  /// Worker threads stepping the engines and split hosts within each
  /// virtual tick (see runtime/exec_pool.h). Results are bit-identical
  /// for every value: sends are buffered per node and merged in
  /// deterministic order at the tick barrier. 1 = fully serial.
  int num_threads = 1;
  WorkloadConfig workload;
  /// When non-empty, replay this recorded trace instead of generating the
  /// synthetic workload (workload.num_partitions still sizes the routing
  /// tables; the trace fixes the stream count). See stream/trace.h.
  std::shared_ptr<const std::string> replay_trace;
  /// When non-null, record every emitted tuple into this buffer as a
  /// trace (finalized when the run's cluster is destroyed).
  std::shared_ptr<std::string> record_trace;
  /// Optional post-join projection (group key + aggregate input), applied
  /// consistently by the engines and the cleanup phase — the SELECT line
  /// of the paper's QUERY 1.
  std::optional<ResultProjection> projection;
  /// Optional per-stream WHERE predicates applied before the splits.
  std::vector<SelectPredicate> select_per_stream;
  /// Optional payload truncation before the splits (project away unused
  /// columns).
  std::optional<int> project_payload_to;
  /// When set, the application server additionally folds every result
  /// into a GroupByAggregate with this function (GROUP BY group_key).
  std::optional<AggregateOp> aggregate_op;
  /// Sliding-window join semantics: > 0 bounds every result's member
  /// timestamp span and enables run-time eviction of expired state —
  /// the paper's "infinite streams with finite windows" regime. 0 joins
  /// over the full history (the paper's long-running finite query).
  Tick join_window_ticks = 0;
  /// Initial share of the partitions per engine (must sum to ~1). Empty
  /// means uniform. Partitions are placed in contiguous id blocks, so
  /// "the partitions of engine 0" is a well-defined set for the
  /// fluctuation and per-owner class configs.
  std::vector<double> placement_fractions;

  AdaptationStrategy strategy = AdaptationStrategy::kNoAdaptation;
  SpillConfig spill;
  /// Productivity estimation model for every engine's local controller.
  ProductivityConfig productivity;
  /// Online state restore settings for every engine.
  RestoreConfig restore;
  /// Optional per-engine memory thresholds; empty means
  /// `spill.memory_threshold_bytes` everywhere.
  std::vector<int64_t> per_engine_thresholds;
  RelocationConfig relocation;
  ActiveDiskConfig active_disk;

  Network::Config network;
  SpillStore::Config disk;
  CleanupConfig cleanup;
  /// Spill to real files under a temp dir instead of the in-memory
  /// backend.
  bool use_file_backend = false;
  std::string file_backend_prefix = "dcape_spill";
  /// Encoding for spilled / relocated partition groups (tuple/serde.h).
  /// v2 (default) is the compact format; decoders sniff, so either
  /// format reads blobs written by the other.
  SegmentFormat segment_format = SegmentFormat::kV2;
  /// Optional per-engine encoding override (size == num_engines when
  /// non-empty); lets a mixed cluster exercise cross-format relocation.
  std::vector<SegmentFormat> per_engine_segment_format;
  /// Perform the spill stores' real backend writes on a background I/O
  /// thread shared by all engines. Virtual-clock accounting — and thus
  /// every result and counter — is identical with this on or off; only
  /// wall-clock changes.
  bool async_spill_io = false;

  /// Length of the run-time phase.
  Tick run_duration = MinutesToTicks(40);
  /// Sampling period for the memory / throughput time series.
  Tick sample_period = SecondsToTicks(30);
  /// Engines' statistics reporting period toward the coordinator.
  Tick stats_period = SecondsToTicks(5);

  /// Retain all runtime results at the sink (tests only; memory-heavy).
  bool collect_results = false;
  /// Run the cleanup phase after the run-time phase.
  bool run_cleanup = true;

  /// Structured adaptation tracing (obs/trace.h): when on, the cluster
  /// owns a deterministic Tracer, every adaptation decision, relocation
  /// protocol phase, spill/evict/restore, and cleanup pass emits a
  /// virtual-clock-stamped event, and the trace is exportable as Chrome
  /// trace_event JSON (dcape_run --trace-out). Bit-identical for every
  /// `num_threads`; off = zero cost (no tracer is constructed).
  bool trace = false;
  /// Additionally record hot-path data-plane events (per-batch engine
  /// instants). Large traces; off by default.
  bool trace_verbose = false;

  uint64_t seed = 42;

  /// Chaos hooks (sim/). When `fault_plan` is set the network injects
  /// bounded delivery jitter, every engine's disk backend is wrapped in a
  /// sim::FaultyBackend, and engines suffer seeded stalls. When
  /// `invariants` is set the protocol participants report violations of
  /// the relocation/pause/drain invariants into it instead of assuming
  /// them. Both null in production runs — zero overhead.
  std::shared_ptr<sim::FaultPlan> fault_plan;
  std::shared_ptr<sim::InvariantRecorder> invariants;

  /// Fluent, validated construction (declared below). ClusterConfig
  /// itself stays an aggregate — `ClusterConfig c; c.num_engines = 4;`
  /// keeps working — the Builder adds range validation and the
  /// strategy-consistency checks the CLI enforces.
  class Builder;
};

/// Validated construction of a ClusterConfig.
///
/// Setters record the value and remember that the field was set
/// explicitly; `Validate()` then applies (a) unconditional range checks
/// and (b) strategy-consistency checks for the explicitly set fields
/// only — exactly the rules `dcape_run` enforces on its command line,
/// with identical wording (error messages name fields by their
/// canonical CLI flag spelling, e.g. "--theta").
///
///   DCAPE_ASSIGN_OR_RETURN(
///       ClusterConfig config,
///       ClusterConfig::Builder()
///           .SetStrategy(AdaptationStrategy::kLazyDisk)
///           .SetNumEngines(4)
///           .SetThetaR(0.75)
///           .Build());
class ClusterConfig::Builder {
 public:
  Builder() = default;
  /// Starts from an existing aggregate (its fields count as defaults,
  /// not as explicitly set).
  explicit Builder(ClusterConfig base) : config_(std::move(base)) {}

  Builder& SetStrategy(AdaptationStrategy strategy);
  Builder& SetNumEngines(int n);
  Builder& SetNumSplitHosts(int n);
  Builder& SetNumThreads(int n);
  Builder& SetNumStreams(int n);
  Builder& SetNumPartitions(int n);
  Builder& SetRunDuration(Tick ticks);
  Builder& SetSeed(uint64_t seed);
  Builder& SetJoinWindowTicks(Tick ticks);
  Builder& SetPlacementFractions(std::vector<double> fractions);
  Builder& SetMemoryThresholdBytes(int64_t bytes);
  Builder& SetSpillFraction(double fraction);
  Builder& SetSpillPolicy(SpillPolicy policy);
  Builder& SetRestoreEnabled(bool enabled);
  Builder& SetThetaR(double theta);
  Builder& SetMinTimeBetweenRelocations(Tick ticks);
  Builder& SetRelocationModel(RelocationModel model);
  Builder& SetLambda(double lambda);
  Builder& SetProductivityModel(ProductivityModel model);
  Builder& SetEwmaAlpha(double alpha);
  Builder& SetTrace(bool enabled);
  Builder& SetTraceVerbose(bool enabled);

  /// Escape hatch for fields without a dedicated setter (workload
  /// details, chaos hooks, output options). Fields changed through here
  /// get the unconditional range checks but no set-field consistency
  /// check.
  ClusterConfig& mutable_config() { return config_; }

  /// Marks a field as explicitly set by its canonical CLI flag spelling
  /// (e.g. "--theta") without changing its value; the CLI parser uses
  /// this to hand its flag bookkeeping to Validate().
  Builder& MarkSet(std::string_view flag);

  /// Range checks plus strategy-consistency checks for explicitly set
  /// fields. OK when the configuration is runnable.
  [[nodiscard]] Status Validate() const;

  /// Validate(), then the finished config.
  [[nodiscard]] StatusOr<ClusterConfig> Build() const;

 private:
  bool IsSet(std::string_view flag) const;

  ClusterConfig config_;
  /// Canonical flag spellings of explicitly set fields.
  std::vector<std::string> set_flags_;
};

/// Places partitions on engines in contiguous id blocks sized by
/// `fractions` (uniform when empty). Returns placement[partition] =
/// engine.
std::vector<EngineId> ComputePlacement(int num_partitions, int num_engines,
                                       const std::vector<double>& fractions);

/// The partitions initially placed on `engine` under `placement`.
std::vector<PartitionId> PartitionsOfEngine(
    const std::vector<EngineId>& placement, EngineId engine);

}  // namespace dcape

#endif  // DCAPE_RUNTIME_CLUSTER_CONFIG_H_
