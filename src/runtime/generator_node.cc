#include "runtime/generator_node.h"

#include <map>
#include <utility>

#include "common/check.h"
#include "net/message.h"

namespace dcape {

GeneratorNode::GeneratorNode(NodeId node_id,
                             std::unique_ptr<InputSource> source,
                             std::vector<NodeId> split_host_of_stream,
                             Transport* network, std::string* record_trace)
    : node_id_(node_id),
      source_(std::move(source)),
      split_host_of_stream_(std::move(split_host_of_stream)),
      network_(network) {
  DCAPE_CHECK(source_ != nullptr);
  DCAPE_CHECK(network_ != nullptr);
  DCAPE_CHECK_EQ(split_host_of_stream_.size(),
                 static_cast<size_t>(source_->num_streams()));
  if (record_trace != nullptr) {
    trace_writer_ =
        std::make_unique<TraceWriter>(source_->num_streams(), record_trace);
  }
}

void GeneratorNode::OnTick(Tick now, bool generate) {
  if (!generate) return;
  std::vector<Tuple> tuples = source_->EmitForTick(now);
  if (tuples.empty()) return;
  if (trace_writer_ != nullptr) {
    for (const Tuple& t : tuples) trace_writer_->Append(now, t);
  }

  std::map<std::pair<NodeId, StreamId>, TupleBatch> batches;
  for (Tuple& t : tuples) {
    const NodeId host =
        split_host_of_stream_[static_cast<size_t>(t.stream_id)];
    TupleBatch& batch = batches[{host, t.stream_id}];
    batch.stream_id = t.stream_id;
    batch.tuples.push_back(std::move(t));
  }
  for (auto& [key, batch] : batches) {
    batch.emit_wall_us = emit_wall_us_;
    network_->Send(MakeTupleBatchMessage(node_id_, key.first,
                                         std::move(batch)),
                   now);
  }
}

void GeneratorNode::FinishTrace() {
  if (trace_writer_ != nullptr) {
    trace_writer_->Finish();
    trace_writer_.reset();
  }
}

}  // namespace dcape
