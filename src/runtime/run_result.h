#ifndef DCAPE_RUNTIME_RUN_RESULT_H_
#define DCAPE_RUNTIME_RUN_RESULT_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "cleanup/cleanup.h"
#include "core/global_coordinator.h"
#include "engine/query_engine.h"
#include "metrics/histogram.h"
#include "metrics/time_series.h"
#include "net/network.h"
#include "tuple/tuple.h"

namespace dcape {

/// Storage-plane counters for one engine's spill area (plus a cluster
/// aggregate). Encoded vs raw bytes show what the compact segment format
/// saves; the queue high-water mark is wall-clock-dependent
/// observability (never compare it across runs).
struct StorageCounters {
  /// Cumulative segments written (spills + eviction generations).
  int64_t segments_written = 0;
  /// Segments still on disk at collection time.
  int64_t segments_resident = 0;
  /// Encoded bytes still on disk at collection time.
  int64_t resident_bytes = 0;
  /// Cumulative encoded (on-disk) bytes written.
  int64_t encoded_bytes = 0;
  /// Cumulative raw (v1 fixed-width equivalent) bytes of the same state.
  int64_t raw_bytes = 0;
  /// Deepest the shared async write queue got (0 without async I/O;
  /// cluster-wide value, repeated per engine).
  int64_t io_queue_high_water = 0;

  /// encoded/raw; 1.0 when nothing was written.
  double CompressionRatio() const {
    return raw_bytes > 0
               ? static_cast<double>(encoded_bytes) /
                     static_cast<double>(raw_bytes)
               : 1.0;
  }
};

/// Everything measured over one experiment run.
struct RunResult {
  /// Cumulative results received at the application server, sampled on
  /// the cluster's sample period. `ToRatePerMinute` turns this into the
  /// paper's throughput curves.
  TimeSeries throughput;
  /// Tracked state bytes per engine over time (the Figs. 6/10 series).
  std::vector<TimeSeries> engine_memory;

  /// Results produced during the run-time phase (sink count).
  int64_t runtime_results = 0;
  /// End-to-end latency (virtual ms) of run-time results: delivery at
  /// the application server minus the latest member tuple's arrival.
  Histogram runtime_latency;
  /// Tuples emitted by the generator across all streams.
  int64_t tuples_generated = 0;
  /// Virtual time at which the run-time phase (including pipeline drain)
  /// ended.
  Tick runtime_end = 0;

  GlobalCoordinator::Counters coordinator;
  std::vector<QueryEngine::Counters> engines;
  /// Per-engine spill-area counters, same order as `engines`.
  std::vector<StorageCounters> engine_storage;
  /// Sum over `engine_storage` (max for the high-water mark).
  StorageCounters storage;
  Network::Stats network;

  /// Total bytes spilled across engines.
  int64_t spilled_bytes = 0;
  /// Total spill events (threshold-triggered + forced) across engines.
  int64_t spill_events = 0;

  /// Cleanup phase outcome (zeros when cleanup was disabled).
  CleanupStats cleanup;

  /// Runtime results retained by the sink when collect_results was set.
  std::vector<JoinResult> collected;

  /// Runtime + cleanup result count.
  int64_t TotalResults() const { return runtime_results + cleanup.result_count; }

  /// One-paragraph human-readable summary for benches/examples.
  void PrintSummary(std::ostream& os) const;

  /// Storage-plane counters as CSV: one row per engine plus a "total"
  /// row (dcape_run writes this next to the series CSV).
  std::string StorageCsv() const;
};

}  // namespace dcape

#endif  // DCAPE_RUNTIME_RUN_RESULT_H_
