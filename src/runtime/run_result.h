#ifndef DCAPE_RUNTIME_RUN_RESULT_H_
#define DCAPE_RUNTIME_RUN_RESULT_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "cleanup/cleanup.h"
#include "core/global_coordinator.h"
#include "engine/query_engine.h"
#include "metrics/histogram.h"
#include "metrics/time_series.h"
#include "net/network.h"
#include "tuple/tuple.h"

namespace dcape {

/// Everything measured over one experiment run.
struct RunResult {
  /// Cumulative results received at the application server, sampled on
  /// the cluster's sample period. `ToRatePerMinute` turns this into the
  /// paper's throughput curves.
  TimeSeries throughput;
  /// Tracked state bytes per engine over time (the Figs. 6/10 series).
  std::vector<TimeSeries> engine_memory;

  /// Results produced during the run-time phase (sink count).
  int64_t runtime_results = 0;
  /// End-to-end latency (virtual ms) of run-time results: delivery at
  /// the application server minus the latest member tuple's arrival.
  Histogram runtime_latency;
  /// Tuples emitted by the generator across all streams.
  int64_t tuples_generated = 0;
  /// Virtual time at which the run-time phase (including pipeline drain)
  /// ended.
  Tick runtime_end = 0;

  GlobalCoordinator::Counters coordinator;
  std::vector<QueryEngine::Counters> engines;
  Network::Stats network;

  /// Total bytes spilled across engines.
  int64_t spilled_bytes = 0;
  /// Total spill events (threshold-triggered + forced) across engines.
  int64_t spill_events = 0;

  /// Cleanup phase outcome (zeros when cleanup was disabled).
  CleanupStats cleanup;

  /// Runtime results retained by the sink when collect_results was set.
  std::vector<JoinResult> collected;

  /// Runtime + cleanup result count.
  int64_t TotalResults() const { return runtime_results + cleanup.result_count; }

  /// One-paragraph human-readable summary for benches/examples.
  void PrintSummary(std::ostream& os) const;
};

}  // namespace dcape

#endif  // DCAPE_RUNTIME_RUN_RESULT_H_
