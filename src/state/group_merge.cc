#include "state/group_merge.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {

int64_t CrossJoinGenerations(const PartitionGroup& older,
                             const PartitionGroup& newer,
                             const ResultProjection* projection,
                             std::vector<JoinResult>* results,
                             Tick window_ticks) {
  DCAPE_CHECK_EQ(older.partition(), newer.partition());
  DCAPE_CHECK_EQ(older.num_streams(), newer.num_streams());
  const int m = older.num_streams();
  DCAPE_CHECK_LE(m, 16);

  int64_t produced = 0;
  const uint32_t full = (1u << m) - 1;
  // Mask bit s set → stream s's member comes from `newer`.
  for (uint32_t mask = 1; mask < full; ++mask) {
    // Iterate the keys of the smallest source table among the mask's
    // designated sides.
    int seed_stream = 0;
    size_t seed_size = SIZE_MAX;
    for (int s = 0; s < m; ++s) {
      const auto& table = ((mask >> s) & 1u) ? newer.TableForStream(s)
                                             : older.TableForStream(s);
      if (table.size() < seed_size) {
        seed_size = table.size();
        seed_stream = s;
      }
    }
    const auto& seed_table = ((mask >> seed_stream) & 1u)
                                 ? newer.TableForStream(seed_stream)
                                 : older.TableForStream(seed_stream);

    for (const auto& [key, seed_tuples] : seed_table) {
      std::vector<const std::vector<Tuple>*> lists(static_cast<size_t>(m),
                                                   nullptr);
      bool all_present = true;
      for (int s = 0; s < m && all_present; ++s) {
        const auto& table = ((mask >> s) & 1u) ? newer.TableForStream(s)
                                               : older.TableForStream(s);
        auto it = table.find(key);
        if (it == table.end() || it->second.empty()) {
          all_present = false;
        } else {
          lists[static_cast<size_t>(s)] = &it->second;
        }
      }
      if (!all_present) continue;

      JoinResult result;
      result.partition = older.partition();
      result.join_key = key;
      result.member_seqs.assign(static_cast<size_t>(m), 0);
      std::vector<size_t> cursor(static_cast<size_t>(m), 0);
      while (true) {
        int64_t agg = 0;
        bool first_member = true;
        Tick min_ts = 0;
        Tick max_ts = 0;
        bool first_ts = true;
        for (int s = 0; s < m; ++s) {
          const Tuple& member =
              (*lists[static_cast<size_t>(s)])[cursor[static_cast<size_t>(s)]];
          result.member_seqs[static_cast<size_t>(s)] = member.seq;
          if (first_ts) {
            min_ts = max_ts = member.timestamp;
            first_ts = false;
          } else {
            min_ts = std::min(min_ts, member.timestamp);
            max_ts = std::max(max_ts, member.timestamp);
          }
          if (projection != nullptr) {
            if (s == projection->group_stream) {
              result.group_key = member.category;
            }
            agg = FoldAggregate(projection->op, agg, member.value,
                                first_member);
            first_member = false;
          }
        }
        if (window_ticks <= 0 || max_ts - min_ts <= window_ticks) {
          if (projection != nullptr) result.agg_value = agg;
          result.latest_member_ts = max_ts;
          if (results != nullptr) results->push_back(result);
          ++produced;
        }

        int s = m - 1;
        for (; s >= 0; --s) {
          size_t& c = cursor[static_cast<size_t>(s)];
          if (++c < lists[static_cast<size_t>(s)]->size()) break;
          c = 0;
        }
        if (s < 0) break;
      }
    }
  }
  return produced;
}

}  // namespace dcape
