#ifndef DCAPE_STATE_GROUP_MERGE_H_
#define DCAPE_STATE_GROUP_MERGE_H_

#include <cstdint>
#include <vector>

#include "common/virtual_clock.h"
#include "state/partition_group.h"
#include "tuple/projection.h"
#include "tuple/tuple.h"

namespace dcape {

/// Emits exactly the join results whose member tuples span the two
/// generations `older` and `newer` of the same partition — i.e.
/// Π(older ∪ newer) − Π(older) − Π(newer) — with the optional projection
/// applied. Returns the number of results (appended to `results` when
/// non-null).
///
/// This is the building block of *online state restore* (§3 of the paper:
/// the state cleanup "can be performed at any time when memory becomes
/// available"): before a disk-resident generation is merged back into the
/// memory-resident group, the cross terms it owes are produced; the
/// merged group then behaves as a single generation for all later
/// processing, and the end-of-run cleanup never double-counts.
int64_t CrossJoinGenerations(const PartitionGroup& older,
                             const PartitionGroup& newer,
                             const ResultProjection* projection,
                             std::vector<JoinResult>* results,
                             Tick window_ticks = 0);

}  // namespace dcape

#endif  // DCAPE_STATE_GROUP_MERGE_H_
