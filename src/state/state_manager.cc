#include "state/state_manager.h"

#include <utility>

#include "common/check.h"

namespace dcape {

StateManager::StateManager(int num_streams,
                           std::optional<ResultProjection> projection,
                           Tick window_ticks, SegmentFormat segment_format)
    : num_streams_(num_streams),
      projection_(projection),
      window_ticks_(window_ticks),
      segment_format_(segment_format) {
  DCAPE_CHECK_GE(num_streams, 2);
  if (projection_.has_value()) {
    DCAPE_CHECK_GE(projection_->group_stream, 0);
    DCAPE_CHECK_LT(projection_->group_stream, num_streams);
  }
}

int64_t StateManager::ProcessTuple(PartitionId partition, const Tuple& tuple,
                                   std::vector<JoinResult>* results) {
  auto it = groups_.find(partition);
  if (it == groups_.end()) {
    it = groups_
             .emplace(partition,
                      std::make_unique<PartitionGroup>(partition, num_streams_))
             .first;
  }
  PartitionGroup& group = *it->second;
  const int64_t bytes_before = group.bytes();
  const int64_t produced = group.ProbeAndInsert(
      tuple, results, projection_.has_value() ? &*projection_ : nullptr,
      window_ticks_);
  total_bytes_ += group.bytes() - bytes_before;
  total_tuples_ += 1;
  total_outputs_ += produced;
  return produced;
}

std::vector<StateManager::ExtractedGroup> StateManager::ExtractGroups(
    const std::vector<PartitionId>& partitions) {
  std::vector<ExtractedGroup> extracted;
  extracted.reserve(partitions.size());
  for (PartitionId partition : partitions) {
    auto it = groups_.find(partition);
    if (it == groups_.end()) continue;
    PartitionGroup& group = *it->second;
    ExtractedGroup out;
    out.partition = partition;
    out.bytes = group.bytes();
    out.raw_bytes = group.SerializedByteSize();
    out.tuple_count = group.tuple_count();
    group.Serialize(&out.blob, segment_format_);
    total_bytes_ -= group.bytes();
    total_tuples_ -= group.tuple_count();
    groups_.erase(it);
    extracted.push_back(std::move(out));
  }
  return extracted;
}

Status StateManager::InstallGroup(std::string_view blob) {
  DCAPE_ASSIGN_OR_RETURN(PartitionGroup group,
                         PartitionGroup::Deserialize(blob));
  if (group.num_streams() != num_streams_) {
    return Status::InvalidArgument(
        "installed group has mismatched stream count");
  }
  total_bytes_ += group.bytes();
  total_tuples_ += group.tuple_count();
  auto it = groups_.find(group.partition());
  if (it == groups_.end()) {
    groups_.emplace(group.partition(),
                    std::make_unique<PartitionGroup>(std::move(group)));
  } else {
    it->second->MergeFrom(std::move(group));
  }
  return Status::OK();
}

std::vector<StateManager::ExtractedGroup> StateManager::EvictExpired(
    Tick cutoff) {
  std::vector<ExtractedGroup> evicted;
  std::vector<PartitionId> emptied;
  for (auto& [partition, group] : groups_) {
    PartitionGroup expired(partition, num_streams_);
    const int64_t bytes_before = group->bytes();
    const int64_t moved = group->EvictBefore(cutoff, &expired);
    if (moved == 0) continue;
    total_bytes_ -= bytes_before - group->bytes();
    total_tuples_ -= moved;
    ExtractedGroup out;
    out.partition = partition;
    out.bytes = expired.bytes();
    out.raw_bytes = expired.SerializedByteSize();
    out.tuple_count = expired.tuple_count();
    expired.Serialize(&out.blob, segment_format_);
    evicted.push_back(std::move(out));
    if (group->empty()) emptied.push_back(partition);
  }
  for (PartitionId p : emptied) groups_.erase(p);
  return evicted;
}

void StateManager::LockGroups(const std::vector<PartitionId>& partitions) {
  for (PartitionId p : partitions) locked_[p] = true;
}

void StateManager::UnlockGroups(const std::vector<PartitionId>& partitions) {
  for (PartitionId p : partitions) locked_.erase(p);
}

bool StateManager::IsLocked(PartitionId partition) const {
  auto it = locked_.find(partition);
  return it != locked_.end() && it->second;
}

std::vector<GroupStats> StateManager::SnapshotStats(
    bool exclude_locked) const {
  std::vector<GroupStats> stats;
  stats.reserve(groups_.size());
  for (const auto& [partition, group] : groups_) {
    if (exclude_locked && IsLocked(partition)) continue;
    stats.push_back(group->Stats());
  }
  return stats;
}

const PartitionGroup* StateManager::FindGroup(PartitionId partition) const {
  auto it = groups_.find(partition);
  return it == groups_.end() ? nullptr : it->second.get();
}

std::vector<PartitionId> StateManager::PartitionIds() const {
  std::vector<PartitionId> ids;
  ids.reserve(groups_.size());
  for (const auto& [partition, group] : groups_) ids.push_back(partition);
  return ids;
}

}  // namespace dcape
