#ifndef DCAPE_STATE_PARTITION_GROUP_H_
#define DCAPE_STATE_PARTITION_GROUP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "tuple/projection.h"
#include "tuple/serde.h"
#include "tuple/tuple.h"

namespace dcape {

/// Lightweight statistics snapshot for one partition group, consumed by
/// the adaptation policies (victim selection, productivity ranking).
struct GroupStats {
  PartitionId partition = 0;
  /// Current memory-resident state bytes (P_size in the paper).
  int64_t bytes = 0;
  /// Output tuples attributed to this group so far (P_output).
  int64_t outputs = 0;
  /// P_output / P_size; 0 when the group is empty.
  double productivity = 0.0;
  int64_t tuple_count = 0;
};

/// The paper's adaptation unit: all per-input-stream state with one
/// partition id, kept together so joins never span machines and cleanup
/// needs no per-tuple timestamps (§2, "Partition-Group Granularity").
///
/// Internally one hash table per input stream maps the join key to the
/// tuples seen with that key. An arriving tuple probes the *other*
/// streams' tables (m-way symmetric hash join, Viglas et al. [26]) and is
/// then inserted into its own stream's table.
class PartitionGroup {
 public:
  /// An empty group for `partition` over `num_streams` join inputs.
  PartitionGroup(PartitionId partition, int num_streams);

  PartitionGroup(const PartitionGroup&) = delete;
  PartitionGroup& operator=(const PartitionGroup&) = delete;
  PartitionGroup(PartitionGroup&&) = default;
  PartitionGroup& operator=(PartitionGroup&&) = default;

  /// Probes the other streams for matches with `tuple` and appends the
  /// produced m-way results to `results`, then inserts `tuple` into its
  /// stream's table. Returns the number of results produced. Updates
  /// byte accounting and productivity counters. When `projection` is
  /// non-null each result's (group_key, agg_value) is computed from the
  /// member tuples. When `window_ticks > 0` only combinations whose
  /// member timestamps span at most the window qualify (sliding-window
  /// join semantics for infinite streams).
  int64_t ProbeAndInsert(const Tuple& tuple, std::vector<JoinResult>* results,
                         const ResultProjection* projection = nullptr,
                         Tick window_ticks = 0);

  /// Moves every tuple with timestamp < `cutoff` into `evicted` (a group
  /// of the same partition/stream count). Returns the number of evicted
  /// tuples; byte/tuple accounting moves with them. Output counters stay
  /// with this group.
  int64_t EvictBefore(Tick cutoff, PartitionGroup* evicted);

  /// Inserts without probing (used when rebuilding state during cleanup).
  void InsertOnly(const Tuple& tuple);
  /// Move overload: takes ownership of the tuple's payload.
  void InsertOnly(Tuple&& tuple);

  /// Merges all state and counters of `other` into this group. Used when
  /// a relocated group lands on an engine that has since accumulated new
  /// tuples for the same partition (defensive; the protocol normally
  /// prevents this).
  void MergeFrom(PartitionGroup&& other);

  /// Exact number of bytes the v1 fixed-width Serialize appends. O(1):
  /// the tracked byte accounting already equals the tuples' raw
  /// serialized size. For v2 this is the reserve estimate and the "raw
  /// bytes" figure the storage counters compare the compact encoding
  /// against.
  int64_t SerializedByteSize() const;

  /// Serializes the full group (counters + all tuples) for spilling or
  /// relocation. Appends to `out`. v2 (default) is the compact segment
  /// format: varint/zigzag fields, one key header per bucket run instead
  /// of per tuple, and per-run delta-encoded seq/timestamps. v1 is the
  /// original fixed-width layout, kept for compatibility benchmarking.
  void Serialize(std::string* out,
                 SegmentFormat format = SegmentFormat::kV2) const;

  /// Reconstructs a group from Serialize output of either format (the
  /// version is sniffed: the v2 magic decodes as a negative v1 partition
  /// id, which no v1 encoder produces).
  [[nodiscard]] static StatusOr<PartitionGroup> Deserialize(
      std::string_view data);

  /// The tuples of one input stream, grouped by join key. Exposed for the
  /// cleanup processor, which joins across generations.
  const std::unordered_map<JoinKey, std::vector<Tuple>>& TableForStream(
      StreamId stream) const;

  PartitionId partition() const { return partition_; }
  int num_streams() const { return num_streams_; }
  int64_t bytes() const { return bytes_; }
  int64_t tuple_count() const { return tuple_count_; }
  int64_t outputs() const { return outputs_; }
  bool empty() const { return tuple_count_ == 0; }

  /// P_output / P_size (outputs per state byte); 0 for an empty group.
  double productivity() const {
    return bytes_ > 0 ? static_cast<double>(outputs_) /
                            static_cast<double>(bytes_)
                      : 0.0;
  }

  GroupStats Stats() const {
    return GroupStats{partition_, bytes_, outputs_, productivity(),
                      tuple_count_};
  }

 private:
  PartitionId partition_;
  int num_streams_;
  /// tables_[s][key] = tuples of stream s with that join key.
  std::vector<std::unordered_map<JoinKey, std::vector<Tuple>>> tables_;
  int64_t bytes_ = 0;
  int64_t tuple_count_ = 0;
  int64_t outputs_ = 0;
  /// Reusable probe scratch: match list per stream and the odometer
  /// cursor. Members so the per-tuple hot path never heap-allocates.
  std::vector<const std::vector<Tuple>*> probe_matches_;
  std::vector<size_t> probe_cursor_;
};

}  // namespace dcape

#endif  // DCAPE_STATE_PARTITION_GROUP_H_
