#include "state/partition_group.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <utility>

#include "common/check.h"
#include "tuple/serde.h"

namespace dcape {
namespace {

/// v2 partition-group magic. Read as the leading v1 field (i32 partition
/// id, little endian) it is negative, which no v1 encoder ever produces.
constexpr char kGroupMagic[4] = {0x44, 0x43, 0x50, static_cast<char>(0xB2)};

}  // namespace

PartitionGroup::PartitionGroup(PartitionId partition, int num_streams)
    : partition_(partition), num_streams_(num_streams) {
  DCAPE_CHECK_GE(num_streams, 2);
  tables_.resize(static_cast<size_t>(num_streams));
}

int64_t PartitionGroup::ProbeAndInsert(const Tuple& tuple,
                                       std::vector<JoinResult>* results,
                                       const ResultProjection* projection,
                                       Tick window_ticks) {
  DCAPE_CHECK_GE(tuple.stream_id, 0);
  DCAPE_CHECK_LT(tuple.stream_id, num_streams_);

  // Collect the match lists of every other stream; an m-way result needs
  // a partner from each of them. The scratch vectors are members: assign
  // reuses their capacity, so steady-state probes never allocate.
  std::vector<const std::vector<Tuple>*>& matches = probe_matches_;
  matches.assign(static_cast<size_t>(num_streams_), nullptr);
  bool all_matched = true;
  for (int s = 0; s < num_streams_; ++s) {
    if (s == tuple.stream_id) continue;
    auto it = tables_[static_cast<size_t>(s)].find(tuple.join_key);
    if (it == tables_[static_cast<size_t>(s)].end() || it->second.empty()) {
      all_matched = false;
      break;
    }
    matches[static_cast<size_t>(s)] = &it->second;
  }

  int64_t produced = 0;
  if (all_matched) {
    // Enumerate the cross product of the other streams' match lists.
    JoinResult result;
    result.partition = partition_;
    result.join_key = tuple.join_key;
    result.member_seqs.assign(static_cast<size_t>(num_streams_), 0);
    result.member_seqs[static_cast<size_t>(tuple.stream_id)] = tuple.seq;

    std::vector<size_t>& cursor = probe_cursor_;
    cursor.assign(static_cast<size_t>(num_streams_), 0);
    while (true) {
      int64_t agg = 0;
      bool first_member = true;
      Tick min_ts = tuple.timestamp;
      Tick max_ts = tuple.timestamp;
      for (int s = 0; s < num_streams_; ++s) {
        const Tuple& member =
            (s == tuple.stream_id)
                ? tuple
                : (*matches[static_cast<size_t>(s)])[cursor[
                      static_cast<size_t>(s)]];
        result.member_seqs[static_cast<size_t>(s)] = member.seq;
        min_ts = std::min(min_ts, member.timestamp);
        max_ts = std::max(max_ts, member.timestamp);
        if (projection != nullptr) {
          if (s == projection->group_stream) {
            result.group_key = member.category;
          }
          agg = FoldAggregate(projection->op, agg, member.value, first_member);
          first_member = false;
        }
      }
      if (window_ticks <= 0 || max_ts - min_ts <= window_ticks) {
        if (projection != nullptr) result.agg_value = agg;
        result.latest_member_ts = max_ts;
        if (results != nullptr) results->push_back(result);
        ++produced;
      }

      // Odometer increment over the non-arriving streams.
      int s = num_streams_ - 1;
      for (; s >= 0; --s) {
        if (s == tuple.stream_id) continue;
        size_t& c = cursor[static_cast<size_t>(s)];
        if (++c < matches[static_cast<size_t>(s)]->size()) break;
        c = 0;
      }
      if (s < 0) break;
    }
  }

  InsertOnly(tuple);
  outputs_ += produced;
  return produced;
}

int64_t PartitionGroup::EvictBefore(Tick cutoff, PartitionGroup* evicted) {
  DCAPE_CHECK(evicted != nullptr);
  DCAPE_CHECK_EQ(evicted->partition(), partition_);
  DCAPE_CHECK_EQ(evicted->num_streams(), num_streams_);
  int64_t moved = 0;
  for (int s = 0; s < num_streams_; ++s) {
    auto& table = tables_[static_cast<size_t>(s)];
    for (auto it = table.begin(); it != table.end();) {
      std::vector<Tuple>& tuples = it->second;
      // In-place stable compaction: expired tuples move to `evicted`,
      // survivors slide left. No temporary vector per bucket.
      size_t write = 0;
      for (size_t read = 0; read < tuples.size(); ++read) {
        Tuple& t = tuples[read];
        if (t.timestamp < cutoff) {
          bytes_ -= t.ByteSize();
          tuple_count_ -= 1;
          ++moved;
          evicted->InsertOnly(std::move(t));
        } else {
          if (write != read) tuples[write] = std::move(t);
          ++write;
        }
      }
      if (write == 0) {
        it = table.erase(it);
      } else {
        tuples.resize(write);
        ++it;
      }
    }
  }
  return moved;
}

void PartitionGroup::InsertOnly(const Tuple& tuple) {
  DCAPE_CHECK_GE(tuple.stream_id, 0);
  DCAPE_CHECK_LT(tuple.stream_id, num_streams_);
  bytes_ += tuple.ByteSize();
  tuple_count_ += 1;
  tables_[static_cast<size_t>(tuple.stream_id)][tuple.join_key].push_back(
      tuple);
}

void PartitionGroup::InsertOnly(Tuple&& tuple) {
  DCAPE_CHECK_GE(tuple.stream_id, 0);
  DCAPE_CHECK_LT(tuple.stream_id, num_streams_);
  bytes_ += tuple.ByteSize();
  tuple_count_ += 1;
  auto& bucket = tables_[static_cast<size_t>(tuple.stream_id)][tuple.join_key];
  bucket.push_back(std::move(tuple));
}

void PartitionGroup::MergeFrom(PartitionGroup&& other) {
  DCAPE_CHECK_EQ(partition_, other.partition_);
  DCAPE_CHECK_EQ(num_streams_, other.num_streams_);
  for (int s = 0; s < num_streams_; ++s) {
    auto& dst = tables_[static_cast<size_t>(s)];
    for (auto& [key, tuples] : other.tables_[static_cast<size_t>(s)]) {
      auto& bucket = dst[key];
      bucket.insert(bucket.end(), std::make_move_iterator(tuples.begin()),
                    std::make_move_iterator(tuples.end()));
    }
  }
  bytes_ += other.bytes_;
  tuple_count_ += other.tuple_count_;
  outputs_ += other.outputs_;
  other.tables_.clear();
  other.bytes_ = 0;
  other.tuple_count_ = 0;
  other.outputs_ = 0;
}

int64_t PartitionGroup::SerializedByteSize() const {
  // v1 layout: header (partition i32 + num_streams i32 + outputs i64),
  // one i64 tuple count per stream, then the tuples; bytes_ tracks
  // exactly the tuples' raw serialized size (Tuple::ByteSize ==
  // TupleSerializedSize).
  return 16 + 8 * static_cast<int64_t>(num_streams_) + bytes_;
}

namespace {

/// The hash tables' buckets in ascending key order. Serialization must
/// not follow hash-iteration order: it depends on the standard
/// library's table layout and on the group's insertion history, so the
/// same logical state would encode to different bytes on the spill
/// sender and on a receiver that merged it — blobs would be neither
/// canonical nor comparable across builds. Collecting into a sorted
/// vector makes the encoding a pure function of the state.
std::vector<const std::pair<const JoinKey, std::vector<Tuple>>*>
SortedBuckets(const std::unordered_map<JoinKey, std::vector<Tuple>>& table) {
  std::vector<const std::pair<const JoinKey, std::vector<Tuple>>*> buckets;
  buckets.reserve(table.size());
  // dcape-lint: allow(unordered-net) — iteration order is erased by the
  // sort below; emission is key-sorted, not hash-ordered.
  for (const auto& entry : table) buckets.push_back(&entry);
  std::sort(buckets.begin(), buckets.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return buckets;
}

}  // namespace

void PartitionGroup::Serialize(std::string* out, SegmentFormat format) const {
  out->reserve(out->size() + static_cast<size_t>(SerializedByteSize()));
  ByteWriter writer(out);
  if (format == SegmentFormat::kV1) {
    writer.PutI32(partition_);
    writer.PutI32(num_streams_);
    writer.PutI64(outputs_);
    for (int s = 0; s < num_streams_; ++s) {
      const auto buckets = SortedBuckets(tables_[static_cast<size_t>(s)]);
      int64_t stream_tuples = 0;
      for (const auto* bucket : buckets) {
        stream_tuples += static_cast<int64_t>(bucket->second.size());
      }
      writer.PutI64(stream_tuples);
      for (const auto* bucket : buckets) {
        for (const Tuple& t : bucket->second) EncodeTuple(t, out);
      }
    }
    return;
  }
  // v2: the stream id is implied by the section and the join key is
  // written once per bucket run; seq and timestamp delta-encode within
  // the run (arrival order makes the deltas small non-negative values).
  out->append(kGroupMagic, 4);
  writer.PutU8(static_cast<uint8_t>(SegmentFormat::kV2));
  writer.PutVarint(static_cast<uint64_t>(partition_));
  writer.PutVarint(static_cast<uint64_t>(num_streams_));
  writer.PutZigzag(outputs_);
  for (int s = 0; s < num_streams_; ++s) {
    const auto buckets = SortedBuckets(tables_[static_cast<size_t>(s)]);
    writer.PutVarint(buckets.size());
    for (const auto* bucket : buckets) {
      writer.PutZigzag(bucket->first);
      writer.PutVarint(bucket->second.size());
      int64_t prev_seq = 0;
      Tick prev_ts = 0;
      for (const Tuple& t : bucket->second) {
        writer.PutZigzag(t.seq - prev_seq);
        writer.PutZigzag(t.timestamp - prev_ts);
        writer.PutZigzag(t.value);
        writer.PutZigzag(t.category);
        writer.PutVString(t.payload);
        prev_seq = t.seq;
        prev_ts = t.timestamp;
      }
    }
  }
}

namespace {

StatusOr<int32_t> CheckedStreamCount(int64_t num_streams) {
  // Bound the stream count before allocating tables: adversarial or
  // corrupt input must fail with a Status, not exhaust memory.
  if (num_streams < 2 || num_streams > 1024) {
    return Status::InvalidArgument(
        "partition group stream count out of range: " +
        std::to_string(num_streams));
  }
  return static_cast<int32_t>(num_streams);
}

}  // namespace

StatusOr<PartitionGroup> PartitionGroup::Deserialize(std::string_view data) {
  if (data.size() >= 4 && std::memcmp(data.data(), kGroupMagic, 4) == 0) {
    ByteReader reader(data.substr(4));
    DCAPE_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
    if (version != static_cast<uint8_t>(SegmentFormat::kV2)) {
      return Status::InvalidArgument("unsupported partition group version " +
                                     std::to_string(version));
    }
    DCAPE_ASSIGN_OR_RETURN(uint64_t partition, reader.GetVarint());
    if (partition > static_cast<uint64_t>(
                        std::numeric_limits<int32_t>::max())) {
      return Status::InvalidArgument("partition id out of range");
    }
    DCAPE_ASSIGN_OR_RETURN(uint64_t raw_streams, reader.GetVarint());
    DCAPE_ASSIGN_OR_RETURN(
        int32_t num_streams,
        CheckedStreamCount(static_cast<int64_t>(raw_streams)));
    PartitionGroup group(static_cast<PartitionId>(partition), num_streams);
    DCAPE_ASSIGN_OR_RETURN(group.outputs_, reader.GetZigzag());
    for (int s = 0; s < num_streams; ++s) {
      DCAPE_ASSIGN_OR_RETURN(uint64_t num_keys, reader.GetVarint());
      if (num_keys > data.size()) {
        return Status::InvalidArgument("key count exceeds input size");
      }
      for (uint64_t k = 0; k < num_keys; ++k) {
        DCAPE_ASSIGN_OR_RETURN(JoinKey key, reader.GetZigzag());
        DCAPE_ASSIGN_OR_RETURN(uint64_t run_length, reader.GetVarint());
        if (run_length > data.size()) {
          return Status::InvalidArgument("run length exceeds input size");
        }
        int64_t prev_seq = 0;
        Tick prev_ts = 0;
        for (uint64_t i = 0; i < run_length; ++i) {
          Tuple t;
          t.stream_id = s;
          t.join_key = key;
          DCAPE_ASSIGN_OR_RETURN(int64_t seq_delta, reader.GetZigzag());
          t.seq = prev_seq + seq_delta;
          DCAPE_ASSIGN_OR_RETURN(Tick ts_delta, reader.GetZigzag());
          t.timestamp = prev_ts + ts_delta;
          DCAPE_ASSIGN_OR_RETURN(t.value, reader.GetZigzag());
          DCAPE_ASSIGN_OR_RETURN(t.category, reader.GetZigzag());
          DCAPE_ASSIGN_OR_RETURN(t.payload, reader.GetVString());
          prev_seq = t.seq;
          prev_ts = t.timestamp;
          group.InsertOnly(std::move(t));
        }
      }
    }
    if (!reader.exhausted()) {
      return Status::InvalidArgument("trailing bytes after partition group");
    }
    return group;
  }

  ByteReader reader(data);
  DCAPE_ASSIGN_OR_RETURN(int32_t partition, reader.GetI32());
  DCAPE_ASSIGN_OR_RETURN(int32_t raw_streams, reader.GetI32());
  DCAPE_ASSIGN_OR_RETURN(int32_t num_streams, CheckedStreamCount(raw_streams));
  PartitionGroup group(partition, num_streams);
  DCAPE_ASSIGN_OR_RETURN(group.outputs_, reader.GetI64());
  for (int s = 0; s < num_streams; ++s) {
    DCAPE_ASSIGN_OR_RETURN(int64_t stream_tuples, reader.GetI64());
    for (int64_t i = 0; i < stream_tuples; ++i) {
      DCAPE_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&reader));
      if (t.stream_id != s) {
        return Status::InvalidArgument(
            "tuple stream id does not match its serialized section");
      }
      group.InsertOnly(std::move(t));
    }
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after partition group");
  }
  return group;
}

const std::unordered_map<JoinKey, std::vector<Tuple>>&
PartitionGroup::TableForStream(StreamId stream) const {
  DCAPE_CHECK_GE(stream, 0);
  DCAPE_CHECK_LT(stream, num_streams_);
  return tables_[static_cast<size_t>(stream)];
}

}  // namespace dcape
