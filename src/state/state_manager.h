#ifndef DCAPE_STATE_STATE_MANAGER_H_
#define DCAPE_STATE_STATE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "common/ids.h"
#include "common/status.h"
#include "state/partition_group.h"
#include "tuple/projection.h"
#include "tuple/tuple.h"

namespace dcape {

/// Owns the memory-resident partition groups of one query-engine instance
/// of the partitioned m-way join operator.
///
/// The state manager is purely local mechanism: it processes tuples,
/// tracks sizes/productivity, and can extract (serialize + drop) or
/// install groups. All *policy* — which groups to spill or relocate, and
/// when — lives in `core/` (local controller and global coordinator).
class StateManager {
 public:
  /// `projection` (optional) computes each result's (group_key,
  /// agg_value) from its member tuples — the query's post-join SELECT.
  /// `window_ticks > 0` enables sliding-window join semantics: only
  /// member combinations whose timestamps span at most the window join.
  /// `segment_format` selects the encoding ExtractGroups / EvictExpired
  /// emit (InstallGroup sniffs, so mixed-format clusters interoperate).
  explicit StateManager(
      int num_streams,
      std::optional<ResultProjection> projection = std::nullopt,
      Tick window_ticks = 0,
      SegmentFormat segment_format = SegmentFormat::kV2);

  StateManager(const StateManager&) = delete;
  StateManager& operator=(const StateManager&) = delete;

  /// A group serialized out of memory (spill, relocation, eviction).
  struct ExtractedGroup {
    PartitionId partition = 0;
    std::string blob;
    int64_t bytes = 0;        // tracked state bytes before serialization
    /// v1 fixed-width serialized size of the same state — the "raw"
    /// figure the storage counters compare blob.size() against.
    int64_t raw_bytes = 0;
    int64_t tuple_count = 0;
  };

  /// Moves every tuple older than `cutoff` out of the resident groups.
  /// Such tuples can never join future arrivals (arrival timestamps are
  /// monotonic), so removing them is output-transparent for the run-time
  /// phase; the caller decides whether the evicted groups must be
  /// preserved for cleanup (they must iff disk generations exist for the
  /// partition). Returns one serialized evicted group per affected
  /// partition.
  std::vector<ExtractedGroup> EvictExpired(Tick cutoff);

  /// Routes `tuple` into its partition group (creating it on first touch),
  /// probing for join results first. Returns the number of results
  /// appended to `results`.
  int64_t ProcessTuple(PartitionId partition, const Tuple& tuple,
                       std::vector<JoinResult>* results);

  /// Serializes the named groups and removes them from memory. Used for
  /// both spill (blobs go to the SpillStore) and relocation (blobs go over
  /// the network). Unknown or locked partitions are skipped silently —
  /// the controllers pass validated lists, but races with concurrent
  /// adaptations resolve to "skip".
  std::vector<ExtractedGroup> ExtractGroups(
      const std::vector<PartitionId>& partitions);

  /// Installs a serialized group (from relocation). If a group for the
  /// same partition already exists, the states are merged.
  [[nodiscard]] Status InstallGroup(std::string_view blob);

  /// Marks groups as locked: locked groups are skipped by ExtractGroups
  /// calls with `respect_locks` semantics (spill must not race with an
  /// in-flight relocation of the same groups).
  void LockGroups(const std::vector<PartitionId>& partitions);
  void UnlockGroups(const std::vector<PartitionId>& partitions);
  bool IsLocked(PartitionId partition) const;

  /// Stats snapshot of every memory-resident group, unlocked ones only
  /// when `exclude_locked`.
  std::vector<GroupStats> SnapshotStats(bool exclude_locked) const;

  /// Direct access for the cleanup phase (memory-resident remainder).
  const PartitionGroup* FindGroup(PartitionId partition) const;
  /// Partition ids of all memory-resident groups, sorted.
  std::vector<PartitionId> PartitionIds() const;

  int64_t total_bytes() const { return total_bytes_; }
  int64_t group_count() const { return static_cast<int64_t>(groups_.size()); }
  int64_t total_tuples() const { return total_tuples_; }
  /// Cumulative join results produced by ProcessTuple.
  int64_t total_outputs() const { return total_outputs_; }
  int num_streams() const { return num_streams_; }
  const std::optional<ResultProjection>& projection() const {
    return projection_;
  }
  Tick window_ticks() const { return window_ticks_; }
  SegmentFormat segment_format() const { return segment_format_; }

 private:
  int num_streams_;
  std::optional<ResultProjection> projection_;
  Tick window_ticks_;
  SegmentFormat segment_format_;
  std::map<PartitionId, std::unique_ptr<PartitionGroup>> groups_;
  std::map<PartitionId, bool> locked_;
  int64_t total_bytes_ = 0;
  int64_t total_tuples_ = 0;
  int64_t total_outputs_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_STATE_STATE_MANAGER_H_
