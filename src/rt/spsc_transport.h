#ifndef DCAPE_RT_SPSC_TRANSPORT_H_
#define DCAPE_RT_SPSC_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/mutex.h"
#include "common/virtual_clock.h"
#include "net/message.h"
#include "net/transport.h"
#include "rt/spsc_queue.h"

namespace dcape {
namespace rt {

/// The realtime cluster interconnect: one bounded lock-free SPSC ring
/// per directed link (from -> to), created lazily on first send.
///
/// Why SPSC works here: the realtime driver runs exactly one thread per
/// node, so each directed link has exactly one producer (the sending
/// node's thread) and one consumer (the receiving node's thread). Each
/// link being its own FIFO ring preserves the per-link ordering contract
/// the relocation protocol's drain markers rely on — a marker sent on
/// the split-host -> engine link after the tuple traffic is delivered
/// after it, exactly as on the simulated network.
///
/// Backpressure: Send spins briefly on a full ring, then parks on the
/// link's producer gate until the consumer pops (bounded-spin-then-park).
/// The data-plane graph (generator -> split hosts -> engines -> sink) is
/// acyclic and the sink never sends, so blocking propagates upstream to
/// the generator instead of deadlocking; control traffic (stats,
/// relocation protocol) is orders of magnitude below link capacity. A
/// watchdog CHECK fires if a producer stays parked far beyond any sane
/// stall, turning a would-be silent deadlock into a loud failure.
///
/// Consumers poll their inbound links round-robin (Poll) and park on a
/// per-node gate (WaitForInbound) when idle; producers ring that gate
/// after every successful push. Waits are bounded so node loops keep
/// servicing their periodic timers even on a silent link.
class SpscTransport : public Transport {
 public:
  struct Config {
    /// Ring capacity (messages) per directed link; rounded up to a power
    /// of two. Sized for the data plane — control links use a tiny
    /// fraction of it.
    size_t link_capacity = 8192;
    /// TryPush attempts before a full-link producer parks. Kept modest:
    /// on an oversubscribed host, burning the consumer's timeslice in a
    /// spin loop only delays the pop that would free a slot.
    int spin_iters = 256;
    /// A producer parked longer than this aborts the run (deadlock
    /// watchdog).
    int64_t park_abort_micros = 120 * 1000 * 1000;
  };

  struct Stats {
    int64_t messages_sent = 0;
    int64_t bytes_sent = 0;
    /// Bytes in kStateTransfer messages (relocation traffic).
    int64_t state_transfer_bytes = 0;
    /// Times a producer exhausted its spin budget and parked.
    int64_t backpressure_parks = 0;
  };

  /// `num_nodes` is the cluster's node-id space (ids 0..num_nodes-1).
  SpscTransport(int num_nodes, const Config& config);
  ~SpscTransport() override;

  SpscTransport(const SpscTransport&) = delete;
  SpscTransport& operator=(const SpscTransport&) = delete;

  /// Wiring-time only (before threads start).
  void RegisterNode(NodeId node, Handler handler) override;

  /// Called by node threads; safe because each `message.from` is owned
  /// by exactly one thread. Blocks (spin-then-park) while the link is
  /// full.
  void Send(Message message, Tick now) override;

  /// Drains up to `max_messages` from `node`'s inbound links round-robin
  /// and invokes the registered handler with delivery time `now`.
  /// Returns the number delivered. Must be called only from `node`'s
  /// thread.
  int Poll(NodeId node, Tick now, int max_messages = 128);

  /// True when every inbound link of `node` is empty (exact from the
  /// consumer's side).
  bool InboundEmpty(NodeId node) const;

  /// Parks `node`'s thread until a producer pushes to one of its links
  /// or `micros` elapses — bounded so periodic timers keep firing.
  void WaitForInbound(NodeId node, int64_t micros);

  /// Messages sent but not yet handed to a handler. 0 together with
  /// per-node idleness means the pipeline is quiescent.
  int64_t Outstanding() const {
    // Acquire both so the caller's quiescence decision sees the payload
    // effects of everything counted.
    return sent_.load(std::memory_order_acquire) -
           delivered_.load(std::memory_order_acquire);
  }

  /// Aggregated traffic stats. Only exact after all node threads have
  /// been joined.
  Stats TotalStats() const;

 private:
  /// One directed link. Owned pointers are installed lazily by the
  /// producing thread and released in the destructor.
  struct Link {
    explicit Link(size_t capacity) : ring(capacity) {}
    SpscQueue<Message> ring;
    /// Producer park state (see Send). The flag is seq_cst on both
    /// sides: the producer stores it *before* re-checking the ring, the
    /// consumer loads it *after* popping — the Dekker pattern that makes
    /// a missed wakeup impossible.
    std::atomic<bool> producer_parked{false};
    Mutex mu;
    CondVar cv;
  };

  /// Per-consumer wake gate shared by all of a node's inbound links.
  struct Gate {
    std::atomic<bool> waiting{false};
    Mutex mu;
    CondVar cv;
  };

  /// Per-producer traffic counters (single-writer; folded by
  /// TotalStats after join).
  struct alignas(64) ProducerStats {
    int64_t messages_sent = 0;
    int64_t bytes_sent = 0;
    int64_t state_transfer_bytes = 0;
    int64_t backpressure_parks = 0;
  };

  Link* LinkFor(NodeId from, NodeId to);

  const int num_nodes_;
  const Config config_;
  /// links_[from * num_nodes_ + to], installed lazily by the `from`
  /// thread (release) and observed by the `to` thread (acquire).
  std::vector<std::atomic<Link*>> links_;
  std::vector<Handler> handlers_;
  std::vector<std::unique_ptr<Gate>> gates_;
  std::vector<ProducerStats> producer_stats_;
  /// Poll's round-robin cursor per consumer (consumer-thread-owned).
  std::vector<int> poll_cursor_;

  alignas(64) std::atomic<int64_t> sent_{0};
  alignas(64) std::atomic<int64_t> delivered_{0};
};

}  // namespace rt
}  // namespace dcape

#endif  // DCAPE_RT_SPSC_TRANSPORT_H_
