#ifndef DCAPE_RT_WALL_CLOCK_H_
#define DCAPE_RT_WALL_CLOCK_H_

#include <chrono>
#include <cstdint>

#include "common/virtual_clock.h"

namespace dcape {
namespace rt {

/// Monotonic wall clock anchored at construction — the time base of a
/// realtime run. All realtime timestamps are *relative to run start* so
/// they line up with the virtual-clock convention (tick 0 = run start)
/// and stay small.
///
/// The realtime driver passes NowMs() as the `Tick now` argument of
/// every node callback: one tick == one wall millisecond, which is
/// exactly the simulator's tick definition, so the engines' periodic
/// timers (stats reports, spill checks, adaptation cadence) fire on
/// real steady-clock periods without any operator-code change.
class WallClock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds since run start.
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Milliseconds since run start, as a Tick (1 tick == 1 wall ms).
  Tick NowMs() const { return static_cast<Tick>(NowMicros() / 1000); }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace rt
}  // namespace dcape

#endif  // DCAPE_RT_WALL_CLOCK_H_
