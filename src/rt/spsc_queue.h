#ifndef DCAPE_RT_SPSC_QUEUE_H_
#define DCAPE_RT_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace dcape {
namespace rt {

/// Bounded lock-free single-producer/single-consumer ring buffer — the
/// per-link queue of the realtime data plane.
///
/// Classic two-index design: the producer owns `tail_` (next write slot),
/// the consumer owns `head_` (next read slot); each publishes its index
/// with a release store and reads the other's with an acquire load, which
/// is all the synchronization a SPSC ring needs. Both indices are
/// monotonically increasing uint64s masked into the (power-of-two) slot
/// array, so full/empty are unambiguous without wasting a slot.
///
/// Two single-writer cache optimizations keep the hot path to one atomic
/// store per operation: each side caches its last view of the *other*
/// side's index and refreshes it only when the cached value implies
/// full/empty — the common case touches no shared cache line but its
/// own. head_/tail_ (and the cache fields) are cache-line-padded so the
/// producer's stores never invalidate the consumer's line.
///
/// TryPush/TryPop never block; backpressure (spin-then-park) is layered
/// on top by rt::SpscTransport, which owns the park/wake machinery.
template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to the next power of two (min 2).
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. Moves `value` into the ring and returns true, or
  /// returns false (value untouched) when the ring is full.
  bool TryPush(T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;  // full
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Moves the oldest element into `*out` and returns
  /// true, or returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;  // empty
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (exact for the consumer: a false
  /// return means an element is ready to pop right now).
  bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy; exact only when both sides are quiescent
  /// (which is when the drain logic reads it).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  // Slot storage is written by the producer and read by the consumer,
  // always on disjoint indices ordered by the head/tail publications.
  std::vector<T> slots_;
  size_t mask_ = 0;

  /// Consumer-owned: next slot to read.
  alignas(64) std::atomic<uint64_t> head_{0};
  /// Consumer's cached view of tail_ (plain: consumer-only).
  alignas(64) uint64_t cached_tail_ = 0;
  /// Producer-owned: next slot to write.
  alignas(64) std::atomic<uint64_t> tail_{0};
  /// Producer's cached view of head_ (plain: producer-only).
  alignas(64) uint64_t cached_head_ = 0;
};

}  // namespace rt
}  // namespace dcape

#endif  // DCAPE_RT_SPSC_QUEUE_H_
