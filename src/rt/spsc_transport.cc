#include "rt/spsc_transport.h"

#include <thread>
#include <utility>

#include "common/check.h"

namespace dcape {
namespace rt {

SpscTransport::SpscTransport(int num_nodes, const Config& config)
    : num_nodes_(num_nodes),
      config_(config),
      links_(static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes)),
      handlers_(static_cast<size_t>(num_nodes)),
      producer_stats_(static_cast<size_t>(num_nodes)),
      poll_cursor_(static_cast<size_t>(num_nodes), 0) {
  DCAPE_CHECK_GT(num_nodes, 0);
  for (auto& cell : links_) cell.store(nullptr, std::memory_order_relaxed);
  gates_.reserve(static_cast<size_t>(num_nodes));
  for (int n = 0; n < num_nodes; ++n) {
    gates_.push_back(std::make_unique<Gate>());
  }
}

SpscTransport::~SpscTransport() {
  for (auto& cell : links_) {
    delete cell.load(std::memory_order_acquire);
  }
}

void SpscTransport::RegisterNode(NodeId node, Handler handler) {
  DCAPE_CHECK_GE(node, 0);
  DCAPE_CHECK_LT(node, num_nodes_);
  handlers_[static_cast<size_t>(node)] = std::move(handler);
}

SpscTransport::Link* SpscTransport::LinkFor(NodeId from, NodeId to) {
  std::atomic<Link*>& cell =
      links_[static_cast<size_t>(from) * static_cast<size_t>(num_nodes_) +
             static_cast<size_t>(to)];
  Link* link = cell.load(std::memory_order_acquire);
  if (link == nullptr) {
    // Only the `from` thread creates from->* links, so plain install
    // (no CAS race); release publishes the ring to the consumer.
    link = new Link(config_.link_capacity);
    cell.store(link, std::memory_order_release);
  }
  return link;
}

void SpscTransport::Send(Message message, Tick now) {
  const NodeId from = message.from;
  const NodeId to = message.to;
  DCAPE_CHECK_GE(from, 0);
  DCAPE_CHECK_LT(from, num_nodes_);
  DCAPE_CHECK_GE(to, 0);
  DCAPE_CHECK_LT(to, num_nodes_);
  message.send_time = now;

  ProducerStats& stats = producer_stats_[static_cast<size_t>(from)];
  stats.messages_sent += 1;
  const int64_t bytes = message.ByteSize();
  stats.bytes_sent += bytes;
  if (message.type == MessageType::kStateTransfer) {
    stats.state_transfer_bytes += bytes;
  }

  Link* link = LinkFor(from, to);
  Gate& gate = *gates_[static_cast<size_t>(to)];
  // Count the send *before* the push: once the message is poppable the
  // counter already covers it, so Outstanding() can never transiently
  // read 0 while a message sits in a ring.
  sent_.fetch_add(1, std::memory_order_release);

  auto push_and_wake = [&]() {
    // Ring the consumer's gate only when it advertised that it is (or is
    // about to be) parked; seq_cst pairs with the consumer's
    // waiting-store / empty-recheck in WaitForInbound.
    if (gate.waiting.load(std::memory_order_seq_cst)) {
      MutexLock lock(gate.mu);
      gate.cv.NotifyAll();
    }
  };

  // Fast path + bounded spin.
  for (int i = 0; i < config_.spin_iters; ++i) {
    if (link->ring.TryPush(message)) {
      push_and_wake();
      return;
    }
    std::this_thread::yield();
  }

  // Park until the consumer frees a slot. Dekker handshake with the
  // consumer's pop-side unpark check: store the flag, *then* re-check
  // the ring; the consumer pops, *then* checks the flag. Whatever the
  // interleaving, either our re-check succeeds or the consumer sees the
  // flag and notifies — and the bounded WaitFor makes even a lost race
  // cost microseconds, not liveness.
  stats.backpressure_parks += 1;
  int64_t parked_micros = 0;
  while (true) {
    link->producer_parked.store(true, std::memory_order_seq_cst);
    if (link->ring.TryPush(message)) {
      link->producer_parked.store(false, std::memory_order_relaxed);
      push_and_wake();
      return;
    }
    {
      MutexLock lock(link->mu);
      link->cv.WaitFor(link->mu, 1000);
    }
    parked_micros += 1000;  // upper bound; used only by the watchdog
    DCAPE_CHECK_LT(parked_micros, config_.park_abort_micros);
        // realtime data plane deadlocked: producer parked beyond the
        // watchdog limit (see docs/REALTIME.md, "Backpressure")
  }
}

int SpscTransport::Poll(NodeId node, Tick now, int max_messages) {
  const size_t n = static_cast<size_t>(num_nodes_);
  const Handler& handler = handlers_[static_cast<size_t>(node)];
  DCAPE_CHECK(handler != nullptr);
  int delivered = 0;
  int idle_scans = 0;
  int cursor = poll_cursor_[static_cast<size_t>(node)];
  while (delivered < max_messages && idle_scans < num_nodes_) {
    cursor = (cursor + 1) % num_nodes_;
    Link* link =
        links_[static_cast<size_t>(cursor) * n + static_cast<size_t>(node)]
            .load(std::memory_order_acquire);
    if (link == nullptr) {
      ++idle_scans;
      continue;
    }
    Message message;
    if (!link->ring.TryPop(&message)) {
      ++idle_scans;
      continue;
    }
    idle_scans = 0;
    // Unpark the producer if it advertised a full-ring park; the pop
    // above freed a slot for it (Dekker pairing with Send).
    if (link->producer_parked.load(std::memory_order_seq_cst)) {
      MutexLock lock(link->mu);
      link->cv.NotifyAll();
    }
    handler(now, message);
    // Count after the handler: Outstanding()==0 then implies the
    // message's effects (including any sends it triggered, which were
    // counted before their push) are visible.
    delivered_.fetch_add(1, std::memory_order_release);
    ++delivered;
  }
  poll_cursor_[static_cast<size_t>(node)] = cursor;
  return delivered;
}

bool SpscTransport::InboundEmpty(NodeId node) const {
  const size_t n = static_cast<size_t>(num_nodes_);
  for (size_t from = 0; from < n; ++from) {
    const Link* link =
        links_[from * n + static_cast<size_t>(node)].load(
            std::memory_order_acquire);
    if (link != nullptr && !link->ring.Empty()) return false;
  }
  return true;
}

void SpscTransport::WaitForInbound(NodeId node, int64_t micros) {
  Gate& gate = *gates_[static_cast<size_t>(node)];
  // Advertise the park, then re-check for work (Dekker pairing with the
  // producer's push-then-check-flag in Send).
  gate.waiting.store(true, std::memory_order_seq_cst);
  if (!InboundEmpty(node)) {
    gate.waiting.store(false, std::memory_order_relaxed);
    return;
  }
  {
    MutexLock lock(gate.mu);
    gate.cv.WaitFor(gate.mu, micros);
  }
  gate.waiting.store(false, std::memory_order_relaxed);
}

SpscTransport::Stats SpscTransport::TotalStats() const {
  Stats total;
  for (const ProducerStats& p : producer_stats_) {
    total.messages_sent += p.messages_sent;
    total.bytes_sent += p.bytes_sent;
    total.state_transfer_bytes += p.state_transfer_bytes;
    total.backpressure_parks += p.backpressure_parks;
  }
  return total;
}

}  // namespace rt
}  // namespace dcape
