#include "rt/realtime_driver.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "cleanup/cleanup.h"
#include "common/check.h"
#include "common/logging.h"
#include "obs/taxonomy.h"
#include "runtime/exec_pool.h"
#include "storage/disk_backend.h"
#include "stream/stream_generator.h"
#include "stream/trace.h"

namespace dcape {
namespace rt {
namespace {

/// Bounded park the node loops use when idle: short enough that every
/// periodic timer (stats each 5 s, spill checks each tick) fires with
/// sub-millisecond slack, long enough not to burn a whole core spinning
/// on a quiet link.
constexpr int64_t kIdleWaitMicros = 500;
/// Messages drained per Poll round before housekeeping runs again.
constexpr int kPollBudget = 256;

}  // namespace

RealtimeDriver::RealtimeDriver(const ClusterConfig& config,
                               const RealtimeOptions& options)
    : config_(config),
      options_(options),
      coordinator_node_(config.num_engines),
      sink_node_(config.num_engines + 1),
      generator_node_(config.num_engines + 2),
      num_hosts_(std::clamp(config.num_split_hosts, 1,
                            config.workload.num_streams)),
      num_nodes_(config.num_engines + 3 + num_hosts_),
      sink_(config.collect_results) {
  DCAPE_CHECK_GT(config_.num_engines, 0);
  // The realtime plane runs without the simulator-only machinery: fault
  // plans and invariant recorders assume single-threaded deterministic
  // stepping, and window eviction compares tick-domain timestamps
  // against the node's clock — which here is the wall clock.
  DCAPE_CHECK(config_.fault_plan == nullptr);
  DCAPE_CHECK(config_.invariants == nullptr);
  DCAPE_CHECK_EQ(config_.join_window_ticks, 0);
  const int num_streams = config_.workload.num_streams;

  if (options_.rate > 0) {
    // rate tuples/sec over all streams; the workload emits
    // num_streams / inter_arrival tuples per tick on average, so pace
    // the tick cursor at rate / (that density) ticks per wall second.
    const double tuples_per_tick =
        static_cast<double>(num_streams) /
        static_cast<double>(config_.workload.inter_arrival_ticks);
    ticks_per_sec_ = static_cast<double>(options_.rate) / tuples_per_tick;
    DCAPE_CHECK_GT(ticks_per_sec_, 0);
  }

  SpscTransport::Config transport_config;
  transport_config.link_capacity = options_.link_capacity;
  transport_ = std::make_unique<SpscTransport>(num_nodes_, transport_config);

  if (config_.trace) {
    // Same lane layout as the simulator driver; spans are stamped with
    // wall milliseconds since run start instead of virtual ticks.
    const int highest_node = generator_node_ + num_hosts_;
    tracer_ = std::make_unique<obs::Tracer>(highest_node + 2,
                                            config_.trace_verbose);
    for (EngineId e = 0; e < config_.num_engines; ++e) {
      tracer_->SetLaneName(e, "engine " + std::to_string(e));
    }
    tracer_->SetLaneName(coordinator_node_, "coordinator");
    tracer_->SetLaneName(sink_node_, "sink");
    tracer_->SetLaneName(generator_node_, "generator");
    for (int h = 0; h < num_hosts_; ++h) {
      tracer_->SetLaneName(generator_node_ + 1 + h,
                           "split host " + std::to_string(h));
    }
    tracer_->SetLaneName(tracer_->driver_lane(), "realtime driver");
  }

  config_.cleanup.projection = config_.projection;
  config_.cleanup.window_ticks = config_.join_window_ticks;
  placement_ = ComputePlacement(config_.workload.num_partitions,
                                config_.num_engines,
                                config_.placement_fractions);
  if (config_.workload.fluctuation.enabled &&
      config_.workload.fluctuation.set_a.empty()) {
    config_.workload.fluctuation.set_a = PartitionsOfEngine(placement_, 0);
  }

  latency_us_ = metrics_.AddHistogram(obs::m::kRtLatencyUs);

  // Query engines — identical wiring to Cluster's constructor, minus
  // the simulator-only fault hooks.
  if (config_.async_spill_io) {
    io_executor_ = std::make_unique<IoExecutor>();
  }
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    EngineConfig engine_config;
    engine_config.engine_id = e;
    engine_config.node_id = e;
    engine_config.coordinator_node = coordinator_node_;
    engine_config.sink_node = sink_node_;
    engine_config.num_streams = num_streams;
    engine_config.num_split_hosts = num_hosts_;
    engine_config.strategy = config_.strategy;
    engine_config.spill = config_.spill;
    engine_config.productivity = config_.productivity;
    engine_config.restore = config_.restore;
    engine_config.window_ticks = config_.join_window_ticks;
    if (!config_.per_engine_thresholds.empty()) {
      DCAPE_CHECK_EQ(config_.per_engine_thresholds.size(),
                     static_cast<size_t>(config_.num_engines));
      engine_config.spill.memory_threshold_bytes =
          config_.per_engine_thresholds[static_cast<size_t>(e)];
    }
    engine_config.stats_period = config_.stats_period;
    engine_config.projection = config_.projection;
    engine_config.segment_format = config_.segment_format;
    if (!config_.per_engine_segment_format.empty()) {
      DCAPE_CHECK_EQ(config_.per_engine_segment_format.size(),
                     static_cast<size_t>(config_.num_engines));
      engine_config.segment_format =
          config_.per_engine_segment_format[static_cast<size_t>(e)];
    }
    engine_config.seed = config_.seed + 1000 + static_cast<uint64_t>(e);
    engine_config.metrics = &metrics_;
    engine_config.tracer = tracer_.get();

    std::unique_ptr<DiskBackend> backend;
    if (config_.use_file_backend) {
      backend = MakeTempFileBackend(config_.file_backend_prefix + "_rt_e" +
                                    std::to_string(e));
    } else {
      backend = std::make_unique<MemoryDiskBackend>();
    }
    engines_.push_back(std::make_unique<QueryEngine>(
        engine_config, transport_.get(), config_.disk, std::move(backend),
        io_executor_.get()));
  }

  // Global coordinator.
  CoordinatorConfig coord_config;
  coord_config.node_id = coordinator_node_;
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    coord_config.engine_nodes.push_back(e);
    coord_config.engine_memory_thresholds.push_back(
        engines_[static_cast<size_t>(e)]->config().spill
            .memory_threshold_bytes);
  }
  for (int h = 0; h < num_hosts_; ++h) {
    coord_config.split_hosts.push_back(generator_node_ + 1 + h);
  }
  coord_config.strategy = config_.strategy;
  coord_config.relocation = config_.relocation;
  coord_config.active = config_.active_disk;
  coord_config.metrics = &metrics_;
  coord_config.tracer = tracer_.get();
  coordinator_ =
      std::make_unique<GlobalCoordinator>(coord_config, transport_.get());

  // Split hosts: streams round-robin over the hosts, as in the
  // simulator.
  if (!config_.select_per_stream.empty()) {
    DCAPE_CHECK_EQ(config_.select_per_stream.size(),
                   static_cast<size_t>(num_streams));
  }
  std::vector<NodeId> host_of_stream(static_cast<size_t>(num_streams));
  for (int h = 0; h < num_hosts_; ++h) {
    SplitHostConfig split_config;
    split_config.node_id = generator_node_ + 1 + h;
    split_config.coordinator_node = coordinator_node_;
    for (StreamId s = h; s < num_streams; s += num_hosts_) {
      split_config.streams.push_back(s);
      host_of_stream[static_cast<size_t>(s)] = split_config.node_id;
      if (!config_.select_per_stream.empty()) {
        split_config.select_per_stream.push_back(
            config_.select_per_stream[static_cast<size_t>(s)]);
      }
    }
    split_config.project_payload_to = config_.project_payload_to;
    split_config.tracer = tracer_.get();
    split_hosts_.push_back(std::make_unique<SplitHost>(
        split_config, placement_, transport_.get()));
  }

  // Stream generator (synthetic workload or trace replay), exactly as
  // in the simulator so the emitted tuple sequence for a given tick
  // range is bit-identical.
  std::unique_ptr<InputSource> source;
  if (config_.replay_trace != nullptr) {
    StatusOr<TraceSource> trace =
        TraceSource::FromBytes(*config_.replay_trace);
    DCAPE_CHECK(trace.ok());
    DCAPE_CHECK_EQ(trace->num_streams(), num_streams);
    source = std::make_unique<TraceSource>(*std::move(trace));
  } else {
    source = std::make_unique<StreamGenerator>(config_.workload);
  }
  generator_ = std::make_unique<GeneratorNode>(
      generator_node_, std::move(source), host_of_stream, transport_.get(),
      config_.record_trace != nullptr ? config_.record_trace.get() : nullptr);

  // Delivery handlers (wiring time, before any thread starts).
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    QueryEngine* engine = engines_[static_cast<size_t>(e)].get();
    transport_->RegisterNode(e, [engine](Tick now, Message& m) {
      if (m.type == MessageType::kTupleBatch) {
        engine->OnTupleBatch(now, std::move(std::get<TupleBatch>(m.payload)));
      } else {
        engine->OnMessage(now, m);
      }
    });
  }
  transport_->RegisterNode(coordinator_node_,
                           [this](Tick now, const Message& m) {
                             coordinator_->OnMessage(now, m);
                           });
  for (int h = 0; h < num_hosts_; ++h) {
    SplitHost* host = split_hosts_[static_cast<size_t>(h)].get();
    transport_->RegisterNode(generator_node_ + 1 + h,
                             [host](Tick now, Message& m) {
                               if (m.type == MessageType::kTupleBatch) {
                                 host->OnTupleBatch(
                                     now, std::move(std::get<TupleBatch>(
                                              m.payload)));
                               } else {
                                 host->OnMessage(now, m);
                               }
                             });
  }
  if (config_.aggregate_op.has_value()) {
    aggregate_ = std::make_unique<GroupByAggregate>(*config_.aggregate_op);
  }
  transport_->RegisterNode(sink_node_, [this](Tick now, Message& m) {
    DCAPE_CHECK(m.type == MessageType::kResultBatch);
    auto& batch = std::get<ResultBatch>(m.payload);
    if (batch.emit_wall_us > 0 && !batch.results.empty()) {
      const int64_t lat =
          std::max<int64_t>(0, clock_.NowMicros() - batch.emit_wall_us);
      for (size_t i = 0; i < batch.results.size(); ++i) {
        latency_us_->Add(lat);
        latency_ms_.Add(lat / 1000);
      }
    }
    const int64_t n = static_cast<int64_t>(batch.results.size());
    if (aggregate_ != nullptr) aggregate_->ConsumeAll(batch.results);
    union_op_.Add(std::move(batch.results));
    sink_.Consume(now, union_op_.Drain());
    results_total_.fetch_add(n, std::memory_order_relaxed);
  });

  // Registrations never grow after this point (the generator node needs
  // no handler: nothing sends to it).
  published_state_bytes_.reserve(static_cast<size_t>(config_.num_engines));
  published_idle_.reserve(static_cast<size_t>(config_.num_engines));
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    published_state_bytes_.push_back(
        std::make_unique<std::atomic<int64_t>>(0));
    published_idle_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
  for (int h = 0; h < num_hosts_; ++h) {
    published_buffered_.push_back(
        std::make_unique<std::atomic<int64_t>>(0));
  }
  memory_series_.resize(static_cast<size_t>(config_.num_engines));
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    memory_series_[static_cast<size_t>(e)].set_name(
        "engine" + std::to_string(e) + "_bytes");
  }
  throughput_series_.set_name("cumulative_results");
}

RealtimeDriver::~RealtimeDriver() {
  // Run() joins everything; this only covers a driver destroyed without
  // running (or after a CHECK unwound nothing — aborts don't unwind).
  phase_.store(Phase::kStopped, std::memory_order_release);
  if (generator_thread_.joinable()) generator_thread_.join();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void RealtimeDriver::EngineLoop(EngineId e) {
  QueryEngine& engine = *engines_[static_cast<size_t>(e)];
  const NodeId node = e;
  std::atomic<int64_t>& state_bytes =
      *published_state_bytes_[static_cast<size_t>(e)];
  std::atomic<bool>& idle = *published_idle_[static_cast<size_t>(e)];
  while (phase_.load(std::memory_order_acquire) != Phase::kStopped) {
    const Tick now = clock_.NowMs();
    const int delivered = transport_->Poll(node, now, kPollBudget);
    engine.OnTick(now);
    state_bytes.store(engine.state_bytes(), std::memory_order_relaxed);
    idle.store(engine.Idle(now) && transport_->InboundEmpty(node),
               std::memory_order_release);
    if (delivered == 0) transport_->WaitForInbound(node, kIdleWaitMicros);
  }
}

void RealtimeDriver::SplitHostLoop(int h) {
  SplitHost& host = *split_hosts_[static_cast<size_t>(h)];
  const NodeId node = generator_node_ + 1 + h;
  std::atomic<int64_t>& buffered = *published_buffered_[static_cast<size_t>(h)];
  while (phase_.load(std::memory_order_acquire) != Phase::kStopped) {
    const Tick now = clock_.NowMs();
    const int delivered = transport_->Poll(node, now, kPollBudget);
    buffered.store(host.total_buffered(), std::memory_order_release);
    if (delivered == 0) transport_->WaitForInbound(node, kIdleWaitMicros);
  }
}

void RealtimeDriver::CoordinatorLoop() {
  while (phase_.load(std::memory_order_acquire) != Phase::kStopped) {
    const Tick now = clock_.NowMs();
    const int delivered = transport_->Poll(coordinator_node_, now, kPollBudget);
    // Adaptation decisions stop once generation ends, mirroring the
    // simulator's drain (Cluster suppresses coordinator OnTick while
    // draining); in-flight protocol exchanges still complete above.
    if (phase_.load(std::memory_order_acquire) == Phase::kRunning) {
      coordinator_->OnTick(now);
    }
    coordinator_quiet_.store(!coordinator_->relocation_in_flight(),
                             std::memory_order_release);
    if (delivered == 0) {
      transport_->WaitForInbound(coordinator_node_, kIdleWaitMicros);
    }
  }
}

void RealtimeDriver::SinkLoop() {
  while (phase_.load(std::memory_order_acquire) != Phase::kStopped) {
    const Tick now = clock_.NowMs();
    const int delivered = transport_->Poll(sink_node_, now, kPollBudget);
    if (delivered == 0) {
      transport_->WaitForInbound(sink_node_, kIdleWaitMicros);
    }
  }
}

void RealtimeDriver::GeneratorLoop() {
  // The generator walks the virtual-tick cursor 0,1,2,... — the same
  // sequence, in the same order, as the simulator's RunUntil — either
  // paced against the wall clock (rate mode) or as fast as backpressure
  // admits (free-run). Falling behind schedule is handled by catching
  // up, never by skipping ticks: the emitted tuple set stays exactly
  // the tick-range prefix the oracle replays.
  const int64_t duration_us =
      static_cast<int64_t>(options_.duration_sec) * 1000 * 1000;
  Tick t = 0;
  if (ticks_per_sec_ > 0) {
    const int64_t total_ticks = static_cast<int64_t>(
        static_cast<double>(options_.duration_sec) * ticks_per_sec_);
    for (t = 0; t <= total_ticks; ++t) {
      const int64_t due_us = static_cast<int64_t>(
          static_cast<double>(t) * 1e6 / ticks_per_sec_);
      int64_t now_us = clock_.NowMicros();
      while (now_us < due_us) {
        const int64_t gap = due_us - now_us;
        if (gap > 2000) {
          std::this_thread::sleep_for(std::chrono::microseconds(gap - 1000));
        } else {
          std::this_thread::yield();
        }
        now_us = clock_.NowMicros();
      }
      ticks_emitted_.store(t, std::memory_order_release);
      generator_->StampNextEmit(clock_.NowMicros());
      generator_->OnTick(t, /*generate=*/true);
    }
  } else {
    while (clock_.NowMicros() < duration_us) {
      ticks_emitted_.store(t, std::memory_order_release);
      generator_->StampNextEmit(clock_.NowMicros());
      generator_->OnTick(t, /*generate=*/true);
      ++t;
    }
  }
  // t is one past the last emitted tick in both branches' exit paths.
  ticks_emitted_.store(t - 1, std::memory_order_release);
  generator_->FinishTrace();
}

void RealtimeDriver::SamplerLoop() {
  // Sampling cadence: the configured sample period, floored so short
  // benchmark runs still get a handful of points. All reads are from
  // published atomics — the sampler never touches node-owned state.
  const int64_t period_ms =
      std::clamp<int64_t>(config_.sample_period, 10, 1000);
  Tick next_sample = 0;
  while (phase_.load(std::memory_order_acquire) != Phase::kStopped) {
    const Tick now = clock_.NowMs();
    if (now >= next_sample) {
      next_sample = now + period_ms;
      throughput_series_.Add(
          now, static_cast<double>(
                   results_total_.load(std::memory_order_relaxed)));
      for (EngineId e = 0; e < config_.num_engines; ++e) {
        memory_series_[static_cast<size_t>(e)].Add(
            now, static_cast<double>(
                     published_state_bytes_[static_cast<size_t>(e)]->load(
                         std::memory_order_relaxed)));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<int64_t>(period_ms, 50)));
  }
}

void RealtimeDriver::AwaitQuiescence() {
  // The pipeline is quiescent when no message is in flight or queued,
  // every engine reports itself idle with an empty inbox, no split host
  // buffers tuples, and no relocation is mid-protocol — the realtime
  // mirror of Cluster::Quiescent — and that picture holds across
  // several consecutive samples (a single snapshot can race a message
  // between "popped" and "handled", which Outstanding() covers, but
  // stability is cheap insurance).
  const Tick deadline = clock_.NowMs() + options_.quiesce_timeout_ms;
  int stable = 0;
  while (stable < 3) {
    DCAPE_CHECK_LT(clock_.NowMs(), deadline);
        // realtime pipeline failed to quiesce after generation stopped
    bool quiet = transport_->Outstanding() == 0 &&
                 coordinator_quiet_.load(std::memory_order_acquire);
    if (quiet) {
      for (const auto& idle : published_idle_) {
        if (!idle->load(std::memory_order_acquire)) {
          quiet = false;
          break;
        }
      }
    }
    if (quiet) {
      for (const auto& buffered : published_buffered_) {
        if (buffered->load(std::memory_order_acquire) != 0) {
          quiet = false;
          break;
        }
      }
    }
    stable = quiet ? stable + 1 : 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

RunResult RealtimeDriver::Run() {
  phase_.store(Phase::kRunning, std::memory_order_release);
  for (EngineId e = 0; e < config_.num_engines; ++e) {
    threads_.emplace_back([this, e] { EngineLoop(e); });
  }
  for (int h = 0; h < num_hosts_; ++h) {
    threads_.emplace_back([this, h] { SplitHostLoop(h); });
  }
  threads_.emplace_back([this] { CoordinatorLoop(); });
  threads_.emplace_back([this] { SinkLoop(); });
  threads_.emplace_back([this] { SamplerLoop(); });
  generator_thread_ = std::thread([this] { GeneratorLoop(); });

  generator_thread_.join();
  const double generate_wall_sec =
      static_cast<double>(clock_.NowMicros()) / 1e6;
  phase_.store(Phase::kDraining, std::memory_order_release);
  AwaitQuiescence();
  phase_.store(Phase::kStopped, std::memory_order_release);
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  // Threads are joined: every node's state, metrics cell, and series is
  // now safely readable from this thread.
  const double total_wall_sec = static_cast<double>(clock_.NowMicros()) / 1e6;

  report_.generate_wall_sec = generate_wall_sec;
  report_.total_wall_sec = total_wall_sec;
  report_.ticks_run = ticks_emitted_.load(std::memory_order_acquire);
  report_.tuples_generated = generator_->source().total_emitted();
  report_.runtime_results = sink_.total();
  report_.tuples_per_sec =
      generate_wall_sec > 0
          ? static_cast<double>(report_.tuples_generated) / generate_wall_sec
          : 0;
  report_.results_per_sec =
      generate_wall_sec > 0
          ? static_cast<double>(report_.runtime_results) / generate_wall_sec
          : 0;
  report_.latency_us = *latency_us_;
  report_.backpressure_parks = transport_->TotalStats().backpressure_parks;
  report_.engine_threads = config_.num_engines;
  report_.total_threads = config_.num_engines + num_hosts_ + 3;

  RunResult result = Collect();
  if (config_.run_cleanup) {
    std::vector<const SpillStore*> stores;
    std::vector<const StateManager*> states;
    for (auto& engine : engines_) {
      stores.push_back(&engine->spill_store());
      states.push_back(&engine->mjoin().state());
    }
    CleanupProcessor processor(config_.cleanup, config_.workload.num_streams);
    ExecPool pool(std::max(1, config_.num_threads));
    StatusOr<CleanupStats> cleanup = processor.Run(stores, states, &pool);
    DCAPE_CHECK(cleanup.ok());
    result.cleanup = std::move(cleanup).value();
  }
  return result;
}

RunResult RealtimeDriver::Collect() {
  RunResult result;
  result.throughput = throughput_series_;
  result.engine_memory = memory_series_;
  result.runtime_results = sink_.total();
  // The sink's internal tick-domain histogram is meaningless when wall
  // time and tuple ticks diverge (rate pacing, free-run); report the
  // wall-clock end-to-end measurement instead, in milliseconds to match
  // the slot's unit.
  result.runtime_latency = latency_ms_;
  result.tuples_generated = generator_->source().total_emitted();
  result.runtime_end = clock_.NowMs();
  result.coordinator = coordinator_->counters();
  const SpscTransport::Stats transport_stats = transport_->TotalStats();
  result.network.messages_sent = transport_stats.messages_sent;
  result.network.bytes_sent = transport_stats.bytes_sent;
  result.network.state_transfer_bytes = transport_stats.state_transfer_bytes;
  const int64_t queue_high_water =
      io_executor_ != nullptr ? io_executor_->queue_high_water() : 0;
  for (auto& engine : engines_) {
    QueryEngine::Counters ec = engine->counters();
    result.spilled_bytes += ec.spilled_bytes;
    result.spill_events += ec.spill_events + ec.forced_spill_events;
    result.engines.push_back(std::move(ec));
    const SpillStore& store = engine->spill_store();
    StorageCounters storage;
    storage.segments_written = store.segments_written();
    storage.segments_resident = store.segment_count();
    storage.resident_bytes = store.resident_bytes();
    storage.encoded_bytes = store.total_spilled_bytes();
    storage.raw_bytes = store.total_raw_bytes();
    storage.io_queue_high_water = queue_high_water;
    result.engine_storage.push_back(storage);
    result.storage.segments_written += storage.segments_written;
    result.storage.segments_resident += storage.segments_resident;
    result.storage.resident_bytes += storage.resident_bytes;
    result.storage.encoded_bytes += storage.encoded_bytes;
    result.storage.raw_bytes += storage.raw_bytes;
  }
  result.storage.io_queue_high_water = queue_high_water;
  if (config_.collect_results) {
    result.collected = sink_.collected();
  }
  return result;
}

}  // namespace rt
}  // namespace dcape
