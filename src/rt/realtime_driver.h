#ifndef DCAPE_RT_REALTIME_DRIVER_H_
#define DCAPE_RT_REALTIME_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"
#include "core/global_coordinator.h"
#include "engine/query_engine.h"
#include "metrics/histogram.h"
#include "metrics/time_series.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "operators/aggregate.h"
#include "operators/sink.h"
#include "operators/union_op.h"
#include "rt/spsc_transport.h"
#include "rt/wall_clock.h"
#include "runtime/cluster_config.h"
#include "runtime/generator_node.h"
#include "runtime/run_result.h"
#include "runtime/split_host.h"
#include "storage/io_executor.h"

namespace dcape {
namespace rt {

/// Knobs of one realtime run (the wall-clock side; everything about the
/// query, workload, and adaptation comes from the shared ClusterConfig).
struct RealtimeOptions {
  /// Wall-clock length of the generation phase, in seconds.
  int duration_sec = 5;
  /// Target aggregate input rate in tuples/second, realized by pacing
  /// the generator's virtual-tick cursor against the wall clock. 0 =
  /// free-run: the generator emits as fast as the pipeline absorbs
  /// (backpressure is the only brake) — the max-throughput benchmark
  /// mode.
  int64_t rate = 0;
  /// SPSC ring capacity (messages) per directed link.
  size_t link_capacity = 8192;
  /// Drain watchdog: abort if the pipeline has not quiesced this many
  /// wall ms after generation stops.
  int64_t quiesce_timeout_ms = 60 * 1000;
};

/// Wall-clock measurements of one realtime run (the numbers the
/// simulator cannot produce).
struct RealtimeReport {
  /// Wall seconds of the generation phase / of the whole run (incl.
  /// pipeline drain, excl. cleanup).
  double generate_wall_sec = 0;
  double total_wall_sec = 0;
  /// Highest virtual tick the generator emitted. Feed this to a
  /// virtual-clock Cluster as `run_duration` to replay the *identical*
  /// input for the differential oracle check.
  Tick ticks_run = 0;
  int64_t tuples_generated = 0;
  int64_t runtime_results = 0;
  /// Sustained rates over the generation phase.
  double tuples_per_sec = 0;
  double results_per_sec = 0;
  /// End-to-end result latency in microseconds: sink arrival minus the
  /// wall-clock emission stamp of the input batch that produced the
  /// result. Covers direct-path results (spill/restore/cleanup results
  /// have no single emission time and are excluded).
  Histogram latency_us;
  /// Producer park episodes across all links (backpressure pressure
  /// gauge; 0 means the pipeline kept up).
  int64_t backpressure_parks = 0;
  int engine_threads = 0;
  /// All node threads: engines + split hosts + coordinator + sink +
  /// generator.
  int total_threads = 0;
};

/// The free-running realtime driver: the same operator and adaptation
/// code the deterministic simulator runs (QueryEngine, SplitHost,
/// GlobalCoordinator, GeneratorNode, union + sink), but with one real
/// thread per node, bounded lock-free SPSC links instead of the
/// tick-barrier network, and `now` = wall milliseconds since run start
/// (one tick == one wall ms, the simulator's own tick definition) so
/// every periodic timer in the engines and the coordinator fires on a
/// real steady-clock cadence.
///
/// The deterministic simulator remains the correctness oracle: the
/// generator paces a virtual-tick cursor, so the emitted tuple set for
/// `ticks_run` ticks is bit-identical to a virtual-clock run of the same
/// config with `run_duration = ticks_run` — and the final joined output
/// (runtime ∪ cleanup, as a multiset) must match it exactly, whatever
/// the wall-clock timing of spills and relocations was. docs/REALTIME.md
/// gives the full argument.
///
/// Restrictions (enforced here and in flag validation): no fault
/// injection, no invariant recorder, no sliding window (window eviction
/// compares tick-domain timestamps against the wall clock), no
/// structured-trace export contract.
class RealtimeDriver {
 public:
  RealtimeDriver(const ClusterConfig& config, const RealtimeOptions& options);
  ~RealtimeDriver();

  RealtimeDriver(const RealtimeDriver&) = delete;
  RealtimeDriver& operator=(const RealtimeDriver&) = delete;

  /// Runs the full experiment: paced/free-run generation, pipeline
  /// drain, thread join, then (if configured) the cleanup phase.
  RunResult Run();

  /// Wall-clock measurements (valid after Run).
  const RealtimeReport& report() const { return report_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  const SpscTransport::Stats transport_stats() const {
    return transport_->TotalStats();
  }

 private:
  enum class Phase : int { kRunning = 0, kDraining = 1, kStopped = 2 };

  void EngineLoop(EngineId e);
  void SplitHostLoop(int h);
  void CoordinatorLoop();
  void SinkLoop();
  void GeneratorLoop();
  void SamplerLoop();
  /// Blocks until the pipeline is quiescent after generation stops.
  void AwaitQuiescence();
  RunResult Collect();

  ClusterConfig config_;
  RealtimeOptions options_;
  NodeId coordinator_node_;
  NodeId sink_node_;
  NodeId generator_node_;
  int num_hosts_;
  int num_nodes_;
  /// Ticks per wall second the generator paces at (rate mode); 0 in
  /// free-run.
  double ticks_per_sec_ = 0;

  WallClock clock_;
  std::unique_ptr<SpscTransport> transport_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<IoExecutor> io_executor_;
  std::vector<EngineId> placement_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::unique_ptr<GlobalCoordinator> coordinator_;
  std::vector<std::unique_ptr<SplitHost>> split_hosts_;
  std::unique_ptr<GeneratorNode> generator_;
  std::unique_ptr<GroupByAggregate> aggregate_;
  UnionOp union_op_;
  ResultSink sink_;

  std::atomic<Phase> phase_{Phase::kRunning};
  /// Highest tick emitted (generator thread publishes, oracle + sink
  /// read).
  std::atomic<Tick> ticks_emitted_{0};
  /// Cumulative results at the sink (sink thread publishes, sampler
  /// reads).
  std::atomic<int64_t> results_total_{0};
  /// Per-engine published state (engine threads publish, sampler and
  /// the drain check read).
  std::vector<std::unique_ptr<std::atomic<int64_t>>> published_state_bytes_;
  std::vector<std::unique_ptr<std::atomic<bool>>> published_idle_;
  /// Per-host published buffered-tuple count (drain check).
  std::vector<std::unique_ptr<std::atomic<int64_t>>> published_buffered_;
  std::atomic<bool> coordinator_quiet_{true};

  /// Sink-thread-owned latency measures: microseconds into the registry
  /// histogram (authoritative), milliseconds into the RunResult slot.
  Histogram* latency_us_ = nullptr;  // owned by metrics_
  Histogram latency_ms_;

  /// Sampler-thread-owned series, read at Collect after join.
  TimeSeries throughput_series_;
  std::vector<TimeSeries> memory_series_;

  std::vector<std::thread> threads_;  // engines, hosts, coord, sink, sampler
  std::thread generator_thread_;
  RealtimeReport report_;
};

}  // namespace rt
}  // namespace dcape

#endif  // DCAPE_RT_REALTIME_DRIVER_H_
