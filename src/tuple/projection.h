#ifndef DCAPE_TUPLE_PROJECTION_H_
#define DCAPE_TUPLE_PROJECTION_H_

#include <cstdint>

#include "common/ids.h"

namespace dcape {

/// Aggregate function applied across the member tuples of one join
/// result to produce its `agg_value`.
enum class AggregateOp {
  kNone,
  kMin,
  kMax,
  kSum,
};

/// Returns a stable display name ("min", ...).
const char* AggregateOpName(AggregateOp op);

/// Projects each m-way join result onto (group_key, agg_value) — the
/// post-join part of the paper's QUERY 1 (`SELECT brokerName, min(price)
/// ... GROUP BY brokerName`): the group key is the categorical column of
/// one designated input stream, and the aggregate input is `op` applied
/// over the member tuples' numeric columns.
struct ResultProjection {
  /// Stream whose `category` column becomes the result's group key.
  StreamId group_stream = 0;
  AggregateOp op = AggregateOp::kMin;
};

/// Folds one member value into the running aggregate (`first` marks the
/// initial member).
inline int64_t FoldAggregate(AggregateOp op, int64_t acc, int64_t value,
                             bool first) {
  if (first) return value;
  switch (op) {
    case AggregateOp::kNone:
      return acc;
    case AggregateOp::kMin:
      return value < acc ? value : acc;
    case AggregateOp::kMax:
      return value > acc ? value : acc;
    case AggregateOp::kSum:
      return acc + value;
  }
  return acc;
}

}  // namespace dcape

#endif  // DCAPE_TUPLE_PROJECTION_H_
