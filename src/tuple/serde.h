#ifndef DCAPE_TUPLE_SERDE_H_
#define DCAPE_TUPLE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tuple/tuple.h"

namespace dcape {

/// On-disk / on-wire layout generation for spill segments and tuple
/// batches. v1 is the original fixed-width encoding; v2 is the compact
/// encoding (varint lengths, delta-encoded timestamps, key-grouped
/// runs). Decoders sniff the version from the blob, so v1 blobs written
/// by older runs still deserialize.
enum class SegmentFormat : uint8_t {
  kV1 = 1,
  kV2 = 2,
};

/// Appends fixed-width little-endian primitives and length-prefixed
/// strings to a byte buffer. Used for spill files and simulated network
/// state transfer, so that spilled/relocated state is genuinely
/// byte-serialized (real data plane).
class ByteWriter {
 public:
  /// Writes into `out`, which must outlive the writer. Existing contents
  /// are preserved; new bytes are appended.
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Length-prefixed (u32) byte string.
  void PutString(std::string_view s);

  /// LEB128 variable-length unsigned integer (1-10 bytes).
  void PutVarint(uint64_t v);
  /// Zigzag-mapped varint: small-magnitude signed values (deltas,
  /// counters) encode in one or two bytes regardless of sign.
  void PutZigzag(int64_t v);
  /// Varint-length-prefixed byte string (the v2 replacement for
  /// PutString's fixed u32 prefix).
  void PutVString(std::string_view s);

 private:
  std::string* out_;
};

/// Consumes primitives written by ByteWriter. All getters return
/// OutOfRange on truncated input instead of crashing, so corrupt spill
/// files surface as Status errors.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data), pos_(0) {}

  [[nodiscard]] StatusOr<uint8_t> GetU8();
  [[nodiscard]] StatusOr<uint32_t> GetU32();
  [[nodiscard]] StatusOr<uint64_t> GetU64();
  [[nodiscard]] StatusOr<int32_t> GetI32();
  [[nodiscard]] StatusOr<int64_t> GetI64();
  [[nodiscard]] StatusOr<std::string> GetString();

  [[nodiscard]] StatusOr<uint64_t> GetVarint();
  [[nodiscard]] StatusOr<int64_t> GetZigzag();
  [[nodiscard]] StatusOr<std::string> GetVString();

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  /// True when the whole buffer has been consumed.
  bool exhausted() const { return remaining() == 0; }

 private:
  std::string_view data_;
  size_t pos_;
};

/// Exact bytes the v1 fixed-width tuple encoding appends: the fixed
/// header plus the length-prefixed payload. Kept in sync with
/// Tuple::ByteSize() so byte accounting doubles as raw-serialized-size
/// accounting (and as the v2 reserve estimate — v2 is smaller in all but
/// adversarial cases).
size_t TupleSerializedSize(const Tuple& tuple);

/// Exact bytes EncodeTupleBatch appends in v1 format (an upper-bound
/// reserve estimate for v2).
size_t TupleBatchSerializedSize(const TupleBatch& batch);

/// Serializes one tuple in the v1 fixed-width layout (appends to `out`).
/// This per-tuple layout is also the trace-file record format, so it
/// stays fixed-width regardless of the segment format. Callers encoding
/// many tuples should pre-size `out` via the *SerializedSize helpers;
/// EncodeTuple itself never reserves.
void EncodeTuple(const Tuple& tuple, std::string* out);

/// Deserializes one v1 tuple from the reader's current position.
[[nodiscard]] StatusOr<Tuple> DecodeTuple(ByteReader* reader);

/// Serializes a batch. v2 (default): a magic+version header, then
/// varint/zigzag columns with per-batch delta encoding of seq and
/// timestamp. v1: stream id, count, then fixed-width tuples. Pre-sizes
/// `out`, so encoding appends without reallocating in the common case.
void EncodeTupleBatch(const TupleBatch& batch, std::string* out,
                      SegmentFormat format = SegmentFormat::kV2);

/// Deserializes a batch written by EncodeTupleBatch in either format
/// (the v2 magic cannot occur as a v1 prefix: it decodes as a negative
/// stream id).
[[nodiscard]] StatusOr<TupleBatch> DecodeTupleBatch(std::string_view data);

}  // namespace dcape

#endif  // DCAPE_TUPLE_SERDE_H_
