#ifndef DCAPE_TUPLE_SERDE_H_
#define DCAPE_TUPLE_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "tuple/tuple.h"

namespace dcape {

/// Appends fixed-width little-endian primitives and length-prefixed
/// strings to a byte buffer. Used for spill files and simulated network
/// state transfer, so that spilled/relocated state is genuinely
/// byte-serialized (real data plane).
class ByteWriter {
 public:
  /// Writes into `out`, which must outlive the writer. Existing contents
  /// are preserved; new bytes are appended.
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Length-prefixed (u32) byte string.
  void PutString(std::string_view s);

 private:
  std::string* out_;
};

/// Consumes primitives written by ByteWriter. All getters return
/// OutOfRange on truncated input instead of crashing, so corrupt spill
/// files surface as Status errors.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data), pos_(0) {}

  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<int32_t> GetI32();
  StatusOr<int64_t> GetI64();
  StatusOr<std::string> GetString();

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  /// True when the whole buffer has been consumed.
  bool exhausted() const { return remaining() == 0; }

 private:
  std::string_view data_;
  size_t pos_;
};

/// Exact bytes EncodeTuple appends: the fixed header plus the
/// length-prefixed payload. Kept in sync with Tuple::ByteSize() so byte
/// accounting doubles as serialized-size accounting.
size_t TupleSerializedSize(const Tuple& tuple);

/// Exact bytes EncodeTupleBatch appends.
size_t TupleBatchSerializedSize(const TupleBatch& batch);

/// Serializes one tuple (appends to `out`). Callers encoding many tuples
/// should pre-size `out` via the *SerializedSize helpers; EncodeTuple
/// itself never reserves.
void EncodeTuple(const Tuple& tuple, std::string* out);

/// Deserializes one tuple from the reader's current position.
StatusOr<Tuple> DecodeTuple(ByteReader* reader);

/// Serializes a batch: stream id, count, then each tuple. Pre-sizes
/// `out` with the exact total, so encoding appends without reallocating.
void EncodeTupleBatch(const TupleBatch& batch, std::string* out);

/// Deserializes a batch written by EncodeTupleBatch.
StatusOr<TupleBatch> DecodeTupleBatch(std::string_view data);

}  // namespace dcape

#endif  // DCAPE_TUPLE_SERDE_H_
