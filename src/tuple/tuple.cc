#include "tuple/tuple.h"

#include <cstdio>

namespace dcape {

std::string JoinResult::EncodeKey() const {
  std::string key;
  key.reserve(16 + member_seqs.size() * 12);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "p%d:k%lld", partition,
                static_cast<long long>(join_key));
  key += buf;
  for (int64_t seq : member_seqs) {
    std::snprintf(buf, sizeof(buf), ":%lld", static_cast<long long>(seq));
    key += buf;
  }
  return key;
}

}  // namespace dcape
