#include "tuple/serde.h"

#include <cstring>

namespace dcape {
namespace {

/// v2 tuple-batch magic. Read as the leading v1 field (i32 stream id,
/// little endian) it is negative, which no v1 encoder ever produces, so
/// version sniffing cannot misfire on a valid v1 blob.
constexpr char kBatchMagic[4] = {0x44, 0x43, 0x42, static_cast<char>(0xB2)};

uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace

void ByteWriter::PutU32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 4);
}

void ByteWriter::PutU64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 8);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

void ByteWriter::PutVarint(uint64_t v) {
  char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>((v & 0x7F) | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  out_->append(buf, static_cast<size_t>(n));
}

void ByteWriter::PutZigzag(int64_t v) { PutVarint(ZigzagEncode(v)); }

void ByteWriter::PutVString(std::string_view s) {
  PutVarint(s.size());
  out_->append(s.data(), s.size());
}

StatusOr<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) {
    return Status::OutOfRange("truncated input reading u8");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) {
    return Status::OutOfRange("truncated input reading u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) {
    return Status::OutOfRange("truncated input reading u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<int32_t> ByteReader::GetI32() {
  DCAPE_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

StatusOr<int64_t> ByteReader::GetI64() {
  DCAPE_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

StatusOr<std::string> ByteReader::GetString() {
  DCAPE_ASSIGN_OR_RETURN(uint32_t size, GetU32());
  if (remaining() < size) {
    return Status::OutOfRange("truncated input reading string body");
  }
  std::string s(data_.substr(pos_, size));
  pos_ += size;
  return s;
}

StatusOr<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return Status::OutOfRange("truncated input reading varint");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0xFE) != 0) {
      return Status::InvalidArgument("varint overflows 64 bits");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) {
      return Status::InvalidArgument("varint longer than 10 bytes");
    }
  }
}

StatusOr<int64_t> ByteReader::GetZigzag() {
  DCAPE_ASSIGN_OR_RETURN(uint64_t v, GetVarint());
  return ZigzagDecode(v);
}

StatusOr<std::string> ByteReader::GetVString() {
  DCAPE_ASSIGN_OR_RETURN(uint64_t size, GetVarint());
  if (size > remaining()) {
    return Status::OutOfRange("truncated input reading vstring body");
  }
  std::string s(data_.substr(pos_, static_cast<size_t>(size)));
  pos_ += static_cast<size_t>(size);
  return s;
}

size_t TupleSerializedSize(const Tuple& tuple) {
  // i32 stream + 5 x i64 + u32 payload length prefix + payload bytes.
  return 4 + 5 * 8 + 4 + tuple.payload.size();
}

size_t TupleBatchSerializedSize(const TupleBatch& batch) {
  size_t total = 4 + 4;  // i32 stream id + u32 count
  for (const Tuple& t : batch.tuples) total += TupleSerializedSize(t);
  return total;
}

void EncodeTuple(const Tuple& tuple, std::string* out) {
  ByteWriter writer(out);
  writer.PutI32(tuple.stream_id);
  writer.PutI64(tuple.seq);
  writer.PutI64(tuple.join_key);
  writer.PutI64(tuple.timestamp);
  writer.PutI64(tuple.value);
  writer.PutI64(tuple.category);
  writer.PutString(tuple.payload);
}

StatusOr<Tuple> DecodeTuple(ByteReader* reader) {
  Tuple t;
  DCAPE_ASSIGN_OR_RETURN(t.stream_id, reader->GetI32());
  DCAPE_ASSIGN_OR_RETURN(t.seq, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.join_key, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.timestamp, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.value, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.category, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.payload, reader->GetString());
  return t;
}

namespace {

void EncodeTupleBatchV1(const TupleBatch& batch, std::string* out) {
  out->reserve(out->size() + TupleBatchSerializedSize(batch));
  ByteWriter writer(out);
  writer.PutI32(batch.stream_id);
  writer.PutU32(static_cast<uint32_t>(batch.tuples.size()));
  for (const Tuple& t : batch.tuples) EncodeTuple(t, out);
}

/// v2 batch: magic, version, stream id, count, then a delta-coded tuple
/// stream. Within the batch, seq and timestamp are non-decreasing in the
/// common case (arrival order), so their zigzag deltas are 1-2 bytes;
/// each tuple's stream id is stored as a delta against the batch's (0
/// for every well-formed batch).
void EncodeTupleBatchV2(const TupleBatch& batch, std::string* out) {
  out->reserve(out->size() + 8 + batch.tuples.size() * 16 +
               (batch.tuples.empty() ? 0
                                     : batch.tuples.size() *
                                           batch.tuples.front().payload.size()));
  ByteWriter writer(out);
  out->append(kBatchMagic, 4);
  writer.PutU8(static_cast<uint8_t>(SegmentFormat::kV2));
  writer.PutZigzag(batch.stream_id);
  writer.PutVarint(batch.tuples.size());
  int64_t prev_seq = 0;
  int64_t prev_ts = 0;
  for (const Tuple& t : batch.tuples) {
    writer.PutZigzag(t.stream_id - batch.stream_id);
    writer.PutZigzag(t.seq - prev_seq);
    writer.PutZigzag(t.join_key);
    writer.PutZigzag(t.timestamp - prev_ts);
    writer.PutZigzag(t.value);
    writer.PutZigzag(t.category);
    writer.PutVString(t.payload);
    prev_seq = t.seq;
    prev_ts = t.timestamp;
  }
}

StatusOr<TupleBatch> DecodeTupleBatchV2(std::string_view data) {
  ByteReader reader(data.substr(4));  // past the magic
  DCAPE_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  if (version != static_cast<uint8_t>(SegmentFormat::kV2)) {
    return Status::InvalidArgument("unsupported tuple batch version " +
                                   std::to_string(version));
  }
  TupleBatch batch;
  DCAPE_ASSIGN_OR_RETURN(int64_t stream, reader.GetZigzag());
  batch.stream_id = static_cast<StreamId>(stream);
  DCAPE_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  // A tuple is at least 7 bytes in v2; bound the reserve by the input so
  // a corrupt count cannot trigger a huge allocation.
  if (count > data.size()) {
    return Status::InvalidArgument("tuple batch count exceeds input size");
  }
  batch.tuples.reserve(static_cast<size_t>(count));
  int64_t prev_seq = 0;
  int64_t prev_ts = 0;
  for (uint64_t i = 0; i < count; ++i) {
    Tuple t;
    DCAPE_ASSIGN_OR_RETURN(int64_t stream_delta, reader.GetZigzag());
    t.stream_id = static_cast<StreamId>(stream + stream_delta);
    DCAPE_ASSIGN_OR_RETURN(int64_t seq_delta, reader.GetZigzag());
    t.seq = prev_seq + seq_delta;
    DCAPE_ASSIGN_OR_RETURN(t.join_key, reader.GetZigzag());
    DCAPE_ASSIGN_OR_RETURN(int64_t ts_delta, reader.GetZigzag());
    t.timestamp = prev_ts + ts_delta;
    DCAPE_ASSIGN_OR_RETURN(t.value, reader.GetZigzag());
    DCAPE_ASSIGN_OR_RETURN(t.category, reader.GetZigzag());
    DCAPE_ASSIGN_OR_RETURN(t.payload, reader.GetVString());
    prev_seq = t.seq;
    prev_ts = t.timestamp;
    batch.tuples.push_back(std::move(t));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after tuple batch");
  }
  return batch;
}

}  // namespace

void EncodeTupleBatch(const TupleBatch& batch, std::string* out,
                      SegmentFormat format) {
  if (format == SegmentFormat::kV1) {
    EncodeTupleBatchV1(batch, out);
  } else {
    EncodeTupleBatchV2(batch, out);
  }
}

StatusOr<TupleBatch> DecodeTupleBatch(std::string_view data) {
  if (data.size() >= 4 && std::memcmp(data.data(), kBatchMagic, 4) == 0) {
    return DecodeTupleBatchV2(data);
  }
  ByteReader reader(data);
  TupleBatch batch;
  DCAPE_ASSIGN_OR_RETURN(batch.stream_id, reader.GetI32());
  DCAPE_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  batch.tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DCAPE_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&reader));
    batch.tuples.push_back(std::move(t));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after tuple batch");
  }
  return batch;
}

}  // namespace dcape
