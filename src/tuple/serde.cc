#include "tuple/serde.h"

#include <cstring>

namespace dcape {

void ByteWriter::PutU32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 4);
}

void ByteWriter::PutU64(uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out_->append(buf, 8);
}

void ByteWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

StatusOr<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) {
    return Status::OutOfRange("truncated input reading u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) {
    return Status::OutOfRange("truncated input reading u64");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<int32_t> ByteReader::GetI32() {
  DCAPE_ASSIGN_OR_RETURN(uint32_t v, GetU32());
  return static_cast<int32_t>(v);
}

StatusOr<int64_t> ByteReader::GetI64() {
  DCAPE_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

StatusOr<std::string> ByteReader::GetString() {
  DCAPE_ASSIGN_OR_RETURN(uint32_t size, GetU32());
  if (remaining() < size) {
    return Status::OutOfRange("truncated input reading string body");
  }
  std::string s(data_.substr(pos_, size));
  pos_ += size;
  return s;
}

size_t TupleSerializedSize(const Tuple& tuple) {
  // i32 stream + 5 x i64 + u32 payload length prefix + payload bytes.
  return 4 + 5 * 8 + 4 + tuple.payload.size();
}

size_t TupleBatchSerializedSize(const TupleBatch& batch) {
  size_t total = 4 + 4;  // i32 stream id + u32 count
  for (const Tuple& t : batch.tuples) total += TupleSerializedSize(t);
  return total;
}

void EncodeTuple(const Tuple& tuple, std::string* out) {
  ByteWriter writer(out);
  writer.PutI32(tuple.stream_id);
  writer.PutI64(tuple.seq);
  writer.PutI64(tuple.join_key);
  writer.PutI64(tuple.timestamp);
  writer.PutI64(tuple.value);
  writer.PutI64(tuple.category);
  writer.PutString(tuple.payload);
}

StatusOr<Tuple> DecodeTuple(ByteReader* reader) {
  Tuple t;
  DCAPE_ASSIGN_OR_RETURN(t.stream_id, reader->GetI32());
  DCAPE_ASSIGN_OR_RETURN(t.seq, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.join_key, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.timestamp, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.value, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.category, reader->GetI64());
  DCAPE_ASSIGN_OR_RETURN(t.payload, reader->GetString());
  return t;
}

void EncodeTupleBatch(const TupleBatch& batch, std::string* out) {
  out->reserve(out->size() + TupleBatchSerializedSize(batch));
  ByteWriter writer(out);
  writer.PutI32(batch.stream_id);
  writer.PutU32(static_cast<uint32_t>(batch.tuples.size()));
  for (const Tuple& t : batch.tuples) EncodeTuple(t, out);
}

StatusOr<TupleBatch> DecodeTupleBatch(std::string_view data) {
  ByteReader reader(data);
  TupleBatch batch;
  DCAPE_ASSIGN_OR_RETURN(batch.stream_id, reader.GetI32());
  DCAPE_ASSIGN_OR_RETURN(uint32_t count, reader.GetU32());
  batch.tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DCAPE_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(&reader));
    batch.tuples.push_back(std::move(t));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("trailing bytes after tuple batch");
  }
  return batch;
}

}  // namespace dcape
