#ifndef DCAPE_TUPLE_TUPLE_H_
#define DCAPE_TUPLE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"

namespace dcape {

/// One stream tuple flowing through the system.
///
/// The schema mirrors the paper's workload: every tuple carries the join
/// column value (`join_key`), its arrival timestamp, and an opaque payload
/// standing in for the remaining columns (offer, price, broker name, ...).
/// `seq` is the per-stream arrival sequence number; the pair
/// (stream_id, seq) uniquely identifies a tuple, which the tests use to
/// compare result sets against a reference join.
struct Tuple {
  StreamId stream_id = 0;
  /// Per-stream, monotonically increasing arrival sequence number.
  int64_t seq = 0;
  /// Join column value. Partitioning hashes this key, so all tuples of a
  /// partition share a key domain disjoint from other partitions.
  JoinKey join_key = 0;
  /// Virtual arrival time at the stream generator.
  Tick timestamp = 0;
  /// A typed numeric column (e.g., the offer *price* of the paper's
  /// QUERY 1), used by selection predicates and aggregate functions.
  int64_t value = 0;
  /// A typed categorical column (e.g., the *broker* of QUERY 1), used as
  /// the grouping key of aggregates.
  int64_t category = 0;
  /// Opaque payload bytes (remaining columns).
  std::string payload;

  /// Bytes this tuple occupies when resident in operator state or when
  /// serialized: the fixed header plus the payload.
  int64_t ByteSize() const {
    return static_cast<int64_t>(sizeof(StreamId) + sizeof(int64_t) +
                                sizeof(JoinKey) + sizeof(Tick) +
                                2 * sizeof(int64_t) + sizeof(uint32_t)) +
           static_cast<int64_t>(payload.size());
  }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.stream_id == b.stream_id && a.seq == b.seq &&
           a.join_key == b.join_key && a.timestamp == b.timestamp &&
           a.value == b.value && a.category == b.category &&
           a.payload == b.payload;
  }
};

/// A batch of tuples belonging to one input stream, as shipped from a
/// split operator to a query engine.
struct TupleBatch {
  StreamId stream_id = 0;
  std::vector<Tuple> tuples;
  /// Wall-clock emission time (microseconds since run start) stamped by
  /// the realtime generator, so the sink can measure true end-to-end
  /// latency regardless of the tick/wall pacing ratio. 0 in the
  /// virtual-clock simulator and for re-released buffered tuples;
  /// transport metadata only — excluded from ByteSize so the simulated
  /// bandwidth model is unchanged.
  int64_t emit_wall_us = 0;

  int64_t ByteSize() const {
    int64_t total = static_cast<int64_t>(sizeof(StreamId));
    for (const Tuple& t : tuples) total += t.ByteSize();
    return total;
  }
};

/// One m-way join result: the identity of the m joined tuples (one per
/// input stream, ordered by stream id) plus the join key and partition.
///
/// Results carry tuple identities rather than concatenated payloads; this
/// is sufficient for the application server and lets the test suite check
/// set-equality against a reference join cheaply. `member_seqs[i]` is the
/// `seq` of the joined tuple from stream `i`.
struct JoinResult {
  PartitionId partition = 0;
  JoinKey join_key = 0;
  std::vector<int64_t> member_seqs;
  /// Grouping key projected from the member tuples when the query
  /// configures a ResultProjection (0 otherwise). For QUERY 1 this is the
  /// broker.
  int64_t group_key = 0;
  /// Aggregate input projected from the member tuples (e.g., the minimum
  /// offer price across the joined offers).
  int64_t agg_value = 0;
  /// Arrival timestamp of the latest member tuple — the moment this
  /// result became *producible*. Delivery time minus this is the
  /// result's end-to-end latency.
  Tick latest_member_ts = 0;

  /// Canonical string encoding, usable as a set/map key in tests.
  std::string EncodeKey() const;

  int64_t ByteSize() const {
    return static_cast<int64_t>(sizeof(PartitionId) + sizeof(JoinKey)) +
           static_cast<int64_t>(member_seqs.size() * sizeof(int64_t));
  }

  friend bool operator==(const JoinResult& a, const JoinResult& b) {
    return a.partition == b.partition && a.join_key == b.join_key &&
           a.member_seqs == b.member_seqs;
  }
};

}  // namespace dcape

#endif  // DCAPE_TUPLE_TUPLE_H_
