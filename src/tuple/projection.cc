#include "tuple/projection.h"

namespace dcape {

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kNone:
      return "none";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
    case AggregateOp::kSum:
      return "sum";
  }
  return "unknown";
}

}  // namespace dcape
