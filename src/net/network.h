#ifndef DCAPE_NET_NETWORK_H_
#define DCAPE_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "net/message.h"
#include "net/transport.h"

namespace dcape {

/// The simulated cluster interconnect (the Transport implementation the
/// deterministic virtual-clock driver uses).
///
/// Stands in for the paper's private gigabit Ethernet. Messages incur a
/// fixed per-message latency plus a size-proportional transfer time
/// (`bytes / bytes_per_tick`). Delivery is deterministic: messages are
/// ordered by (arrival tick, global sequence number), and each directed
/// link (from → to) is FIFO — a later message never overtakes an earlier
/// one on the same link, exactly like a TCP connection. The relocation
/// protocol's drain markers rely on that FIFO property.
///
/// Parallel stepping support: during the concurrent phase of a virtual
/// tick the driver switches the network into *buffered* mode
/// (BeginBuffered). Sends then append to a per-source-node outbox instead
/// of entering the global queue, which is thread-safe so long as no two
/// concurrent tasks send on behalf of the same node. FlushBuffered merges
/// all outboxes into the queue in (source node id, send order) order —
/// the deterministic merge rule that makes a multi-threaded run
/// bit-identical to the single-threaded one.
class Network : public Transport {
 public:
  struct Config {
    /// Per-message propagation + protocol latency in ticks (virtual ms).
    Tick latency_ticks = 1;
    /// Link throughput in bytes per tick. 1 Gb/s ≈ 125 bytes per virtual
    /// microsecond ≈ 125000 bytes per virtual millisecond.
    int64_t bytes_per_tick = 125000;
  };

  /// Per-message delivery callback; `now` is the delivery tick. The
  /// message is mutable so handlers on the data-plane hot path can move
  /// the payload out instead of copying it; it is dead after the call.
  using Handler = Transport::Handler;

  /// Aggregate traffic statistics.
  struct Stats {
    int64_t messages_sent = 0;
    int64_t bytes_sent = 0;
    /// Bytes sent in kStateTransfer messages only (relocation traffic).
    int64_t state_transfer_bytes = 0;
  };

  /// One message due for delivery, as handed out by TakeArrivals.
  struct Delivery {
    Tick arrival = 0;
    Message message;
  };

  /// All messages due at one destination, in (arrival, sequence) order.
  struct Inbox {
    NodeId node = kInvalidNode;
    std::vector<Delivery> deliveries;
  };

  explicit Network(const Config& config) : config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the delivery handler for `node`. Must be called before any
  /// message addressed to `node` is delivered. Re-registering replaces the
  /// handler.
  void RegisterNode(NodeId node, Handler handler) override;

  /// Chaos hooks (sim/). `extra_delay` adds ticks to a message's arrival
  /// *before* the link-FIFO clamp — jitter is delay-only, so in-order
  /// delivery per link (which the drain markers rely on) is preserved
  /// while cross-link reordering emerges naturally. `duplicate` delivers
  /// the message a second time one tick later (a deliberate protocol
  /// violation, used to prove the harness catches one). Both hooks run
  /// only on the main thread: Enqueue happens either outside buffered
  /// mode or at the FlushBuffered barrier, never on pool workers.
  void SetFaultHooks(std::function<Tick(const Message&)> extra_delay,
                     std::function<bool(const Message&)> duplicate);

  /// Enqueues `message` for delivery. `message.from/to` must be set and
  /// `to` must name a registered node by delivery time. In buffered mode
  /// the message parks in the outbox of `message.from` until
  /// FlushBuffered.
  void Send(Message message, Tick now) override;

  /// Delivers every message whose arrival tick is <= `now`, in
  /// deterministic order. Handlers may send further messages; those are
  /// delivered too if they also arrive by `now`. Must not be called in
  /// buffered mode (drivers use TakeArrivals/Deliver there).
  void DeliverUntil(Tick now);

  /// Switches Send into buffered (per-source outbox) mode. Concurrent
  /// Send calls are safe iff each source node is driven by at most one
  /// task at a time.
  void BeginBuffered();

  /// Merges every outbox into the global queue in (source node id, send
  /// order) order and leaves buffered mode. Arrival times, link-FIFO
  /// clamping, sequence numbers, and traffic stats are all applied here,
  /// at the barrier, so they are independent of task interleaving.
  void FlushBuffered();

  /// Removes every queued message with arrival tick <= `now` and returns
  /// them grouped by destination (ascending node id), each group in
  /// (arrival, sequence) order. Messages sent after the call — e.g. by
  /// handlers during the subsequent Deliver — queue for a later wave.
  std::vector<Inbox> TakeArrivals(Tick now);

  /// Invokes `node`'s registered handler for each delivery in order.
  /// Safe to call from pool workers for disjoint inboxes: it only reads
  /// the handler table and the inbox itself.
  void Deliver(Inbox& inbox) const;

  /// True when no message is queued (outboxes must be flushed).
  bool idle() const { return heap_.empty(); }

  /// Earliest queued arrival tick, or -1 when idle. Lets drivers fast-
  /// forward quiet periods.
  Tick NextArrival() const;

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct InFlight {
    Tick arrival;
    int64_t sequence;  // global tie-breaker for determinism
    Message message;
  };
  struct LaterArrival {
    bool operator()(const InFlight& a, const InFlight& b) const {
      // std::*_heap build max-heaps; invert for earliest-first.
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.sequence > b.sequence;
    }
  };
  struct BufferedSend {
    Message message;
    Tick send_time;
  };

  /// Assigns arrival/sequence and pushes onto the delivery heap.
  void Enqueue(Message message, Tick now);
  /// Pops the earliest in-flight message off the heap.
  InFlight PopEarliest();

  Config config_;
  std::map<NodeId, Handler> handlers_;
  std::function<Tick(const Message&)> fault_extra_delay_;
  std::function<bool(const Message&)> fault_duplicate_;
  /// Min-heap over (arrival, sequence), via std::push_heap/std::pop_heap
  /// so entries can be *moved* out on delivery.
  std::vector<InFlight> heap_;
  /// Last scheduled arrival per directed link, for FIFO enforcement.
  std::map<std::pair<NodeId, NodeId>, Tick> link_last_arrival_;
  /// outboxes_[source node] = sends parked during buffered mode.
  std::vector<std::vector<BufferedSend>> outboxes_;
  NodeId max_registered_node_ = -1;
  bool buffered_ = false;
  int64_t next_sequence_ = 0;
  Stats stats_;
};

}  // namespace dcape

#endif  // DCAPE_NET_NETWORK_H_
