#ifndef DCAPE_NET_NETWORK_H_
#define DCAPE_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "net/message.h"

namespace dcape {

/// The simulated cluster interconnect.
///
/// Stands in for the paper's private gigabit Ethernet. Messages incur a
/// fixed per-message latency plus a size-proportional transfer time
/// (`bytes / bytes_per_tick`). Delivery is deterministic: messages are
/// ordered by (arrival tick, global sequence number), and each directed
/// link (from → to) is FIFO — a later message never overtakes an earlier
/// one on the same link, exactly like a TCP connection. The relocation
/// protocol's drain markers rely on that FIFO property.
class Network {
 public:
  struct Config {
    /// Per-message propagation + protocol latency in ticks (virtual ms).
    Tick latency_ticks = 1;
    /// Link throughput in bytes per tick. 1 Gb/s ≈ 125 bytes per virtual
    /// microsecond ≈ 125000 bytes per virtual millisecond.
    int64_t bytes_per_tick = 125000;
  };

  /// Per-message delivery callback; `now` is the delivery tick.
  using Handler = std::function<void(Tick now, const Message& message)>;

  /// Aggregate traffic statistics.
  struct Stats {
    int64_t messages_sent = 0;
    int64_t bytes_sent = 0;
    /// Bytes sent in kStateTransfer messages only (relocation traffic).
    int64_t state_transfer_bytes = 0;
  };

  explicit Network(const Config& config) : config_(config) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the delivery handler for `node`. Must be called before any
  /// message addressed to `node` is delivered. Re-registering replaces the
  /// handler.
  void RegisterNode(NodeId node, Handler handler);

  /// Enqueues `message` for delivery. `message.from/to` must be set and
  /// `to` must name a registered node by delivery time.
  void Send(Message message, Tick now);

  /// Delivers every message whose arrival tick is <= `now`, in
  /// deterministic order. Handlers may send further messages; those are
  /// delivered too if they also arrive by `now`.
  void DeliverUntil(Tick now);

  /// True when no message is queued.
  bool idle() const { return queue_.empty(); }

  /// Earliest queued arrival tick, or -1 when idle. Lets drivers fast-
  /// forward quiet periods.
  Tick NextArrival() const;

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct InFlight {
    Tick arrival;
    int64_t sequence;  // global tie-breaker for determinism
    Message message;
  };
  struct ArrivalOrder {
    bool operator()(const InFlight& a, const InFlight& b) const {
      // priority_queue is a max-heap; invert for earliest-first.
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.sequence > b.sequence;
    }
  };

  Config config_;
  std::map<NodeId, Handler> handlers_;
  std::priority_queue<InFlight, std::vector<InFlight>, ArrivalOrder> queue_;
  /// Last scheduled arrival per directed link, for FIFO enforcement.
  std::map<std::pair<NodeId, NodeId>, Tick> link_last_arrival_;
  int64_t next_sequence_ = 0;
  Stats stats_;
};

}  // namespace dcape

#endif  // DCAPE_NET_NETWORK_H_
