#include "net/message.h"

namespace dcape {
namespace {

/// Fixed wire overhead per message (headers, framing).
constexpr int64_t kMessageHeaderBytes = 32;

struct ByteSizeVisitor {
  int64_t operator()(const TupleBatch& b) const { return b.ByteSize(); }
  int64_t operator()(const ResultBatch& b) const {
    int64_t total = 0;
    for (const JoinResult& r : b.results) total += r.ByteSize();
    return total;
  }
  int64_t operator()(const StatsReport&) const { return 48; }
  int64_t operator()(const ComputePartitionsToMove&) const { return 24; }
  int64_t operator()(const PartitionsToMove& m) const {
    return 24 + static_cast<int64_t>(m.partitions.size() * sizeof(PartitionId));
  }
  int64_t operator()(const PausePartitions& m) const {
    return 8 + static_cast<int64_t>(m.partitions.size() * sizeof(PartitionId));
  }
  int64_t operator()(const PauseAck&) const { return 16; }
  int64_t operator()(const DrainMarker&) const { return 16; }
  int64_t operator()(const TransferStates& m) const {
    return 16 + static_cast<int64_t>(m.partitions.size() * sizeof(PartitionId));
  }
  int64_t operator()(const StateTransfer& m) const {
    int64_t total = 16;
    for (const SerializedGroup& g : m.groups) {
      total += static_cast<int64_t>(sizeof(PartitionId) + g.bytes.size());
    }
    return total;
  }
  int64_t operator()(const StatesInstalled&) const { return 24; }
  int64_t operator()(const UpdateRouting& m) const {
    return 16 + static_cast<int64_t>(m.partitions.size() * sizeof(PartitionId));
  }
  int64_t operator()(const RoutingUpdated&) const { return 16; }
  int64_t operator()(const ForceSpill&) const { return 8; }
  int64_t operator()(const SpillComplete&) const { return 16; }
};

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kTupleBatch:
      return "TupleBatch";
    case MessageType::kResultBatch:
      return "ResultBatch";
    case MessageType::kStatsReport:
      return "StatsReport";
    case MessageType::kComputePartitionsToMove:
      return "ComputePartitionsToMove";
    case MessageType::kPartitionsToMove:
      return "PartitionsToMove";
    case MessageType::kPausePartitions:
      return "PausePartitions";
    case MessageType::kPauseAck:
      return "PauseAck";
    case MessageType::kDrainMarker:
      return "DrainMarker";
    case MessageType::kTransferStates:
      return "TransferStates";
    case MessageType::kStateTransfer:
      return "StateTransfer";
    case MessageType::kStatesInstalled:
      return "StatesInstalled";
    case MessageType::kUpdateRouting:
      return "UpdateRouting";
    case MessageType::kRoutingUpdated:
      return "RoutingUpdated";
    case MessageType::kForceSpill:
      return "ForceSpill";
    case MessageType::kSpillComplete:
      return "SpillComplete";
  }
  return "Unknown";
}

int64_t Message::ByteSize() const {
  return kMessageHeaderBytes + std::visit(ByteSizeVisitor{}, payload);
}

Message MakeTupleBatchMessage(NodeId from, NodeId to, TupleBatch batch) {
  Message m;
  m.type = MessageType::kTupleBatch;
  m.from = from;
  m.to = to;
  m.payload = std::move(batch);
  return m;
}

Message MakeResultBatchMessage(NodeId from, NodeId to, ResultBatch batch) {
  Message m;
  m.type = MessageType::kResultBatch;
  m.from = from;
  m.to = to;
  m.payload = std::move(batch);
  return m;
}

Message MakeStatsReportMessage(NodeId from, NodeId to, StatsReport report) {
  Message m;
  m.type = MessageType::kStatsReport;
  m.from = from;
  m.to = to;
  m.payload = report;
  return m;
}

}  // namespace dcape
