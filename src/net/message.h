#ifndef DCAPE_NET_MESSAGE_H_
#define DCAPE_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/virtual_clock.h"
#include "tuple/tuple.h"

namespace dcape {

/// Message kinds exchanged between cluster nodes. The first two carry the
/// data plane; kStatsReport feeds the global coordinator; the remainder
/// implement the 8-step state-relocation protocol (paper §4.1, Fig. 8) and
/// the active-disk forced-spill command (§5.3, Algorithm 2).
enum class MessageType {
  kTupleBatch,               // split -> engine: partitioned input tuples
  kResultBatch,              // engine -> application server: join results
  kStatsReport,              // engine -> coordinator: periodic statistics
  kComputePartitionsToMove,  // GC -> sender engine (step 1, "cptv")
  kPartitionsToMove,         // sender -> GC (step 2, "ptv")
  kPausePartitions,          // GC -> split host (step 3)
  kPauseAck,                 // split host -> GC (step 4a)
  kDrainMarker,              // split host -> sender engine (step 4b; rides
                             // the same FIFO link as tuples, so its arrival
                             // proves all pre-pause tuples have arrived)
  kTransferStates,           // GC -> sender engine (step 5)
  kStateTransfer,            // sender -> receiver engine (step 6)
  kStatesInstalled,          // receiver -> GC (step 7)
  kUpdateRouting,            // GC -> split host (step 8a)
  kRoutingUpdated,           // split host -> GC (step 8b)
  kForceSpill,               // GC -> engine: active-disk "start_ss"
  kSpillComplete,            // engine -> GC: forced spill finished
};

/// Returns a stable name for logging ("TupleBatch", ...).
const char* MessageTypeName(MessageType type);

/// Periodic lightweight statistics from one query engine, the only input
/// the coordinator needs (keeping it scalable, as the paper stresses).
struct StatsReport {
  EngineId engine = 0;
  /// Tracked bytes of memory-resident operator state.
  int64_t state_bytes = 0;
  /// Number of memory-resident partition groups.
  int64_t num_groups = 0;
  /// Output tuples produced since the previous report (sampling window).
  int64_t outputs_in_window = 0;
  /// Cumulative output tuples.
  int64_t total_outputs = 0;
  /// Cumulative bytes spilled to local disk.
  int64_t spilled_bytes = 0;
};

/// Step 1: the coordinator asks the overloaded engine to choose
/// `amount_bytes` worth of partition groups to relocate to `receiver`.
struct ComputePartitionsToMove {
  int64_t relocation_id = 0;
  int64_t amount_bytes = 0;
  EngineId receiver = 0;
};

/// Step 2: the sender's local controller answers with the chosen ids.
struct PartitionsToMove {
  int64_t relocation_id = 0;
  EngineId sender = 0;
  std::vector<PartitionId> partitions;
  /// Tracked bytes of the chosen groups (coordinator bookkeeping only).
  int64_t bytes = 0;
};

/// Step 3: the coordinator tells each split host to buffer the affected
/// partitions until routing is updated.
struct PausePartitions {
  int64_t relocation_id = 0;
  std::vector<PartitionId> partitions;
  /// Node of the sending (old owner) engine, to which the split host
  /// addresses its drain marker.
  NodeId sender_node = kInvalidNode;
};

/// Step 4a: a split host confirms it paused `num_streams` split operators.
struct PauseAck {
  int64_t relocation_id = 0;
  NodeId split_host = 0;
};

/// Step 4b: sent by a split host to the old owner on the same link as the
/// tuple traffic. FIFO links guarantee that when the sender engine has a
/// marker from every split host, no pre-pause tuple is still in flight.
struct DrainMarker {
  int64_t relocation_id = 0;
  NodeId split_host = 0;
};

/// Step 5: the coordinator authorizes the state transfer.
struct TransferStates {
  int64_t relocation_id = 0;
  EngineId receiver = 0;
  std::vector<PartitionId> partitions;
};

/// One serialized partition group in transit.
struct SerializedGroup {
  PartitionId partition = 0;
  /// ByteWriter-encoded group contents (see state/partition_group.h).
  std::string bytes;
};

/// Step 6: the serialized partition groups. Its ByteSize dominates the
/// relocation's network cost.
struct StateTransfer {
  int64_t relocation_id = 0;
  EngineId sender = 0;
  std::vector<SerializedGroup> groups;
};

/// Step 7: the receiver confirms installation.
struct StatesInstalled {
  int64_t relocation_id = 0;
  EngineId receiver = 0;
  int64_t bytes = 0;
};

/// Step 8a: the coordinator publishes the new owner; the split hosts flush
/// their buffered tuples to it and resume normal routing.
struct UpdateRouting {
  int64_t relocation_id = 0;
  std::vector<PartitionId> partitions;
  EngineId new_owner = 0;
};

/// Step 8b: a split host confirms the routing switch and buffer flush.
struct RoutingUpdated {
  int64_t relocation_id = 0;
  NodeId split_host = 0;
};

/// Active-disk: the coordinator forces the least-productive engine to
/// spill `amount_bytes` of its least productive groups (Algorithm 2).
struct ForceSpill {
  int64_t amount_bytes = 0;
};

/// Reply to ForceSpill. `bytes_spilled` counts raw in-memory state
/// bytes removed (the unit ForceSpill::amount_bytes is expressed in),
/// independent of how compactly segments are encoded on disk.
struct SpillComplete {
  EngineId engine = 0;
  int64_t bytes_spilled = 0;
};

/// A batch of join results headed to the application server.
struct ResultBatch {
  std::vector<JoinResult> results;
  /// Wall-clock emission time of the input batch that produced these
  /// results (see TupleBatch::emit_wall_us). 0 in the simulator and for
  /// results whose input provenance is mixed (restore, cleanup).
  int64_t emit_wall_us = 0;
};

/// Envelope for anything traveling on the simulated network.
struct Message {
  MessageType type = MessageType::kTupleBatch;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Tick send_time = 0;
  std::variant<TupleBatch, ResultBatch, StatsReport, ComputePartitionsToMove,
               PartitionsToMove, PausePartitions, PauseAck, DrainMarker,
               TransferStates, StateTransfer, StatesInstalled, UpdateRouting,
               RoutingUpdated, ForceSpill, SpillComplete>
      payload;

  /// Bytes on the wire (payload plus a small fixed header), used by the
  /// network's bandwidth model.
  int64_t ByteSize() const;
};

/// Convenience factories setting `type` consistently with the payload.
Message MakeTupleBatchMessage(NodeId from, NodeId to, TupleBatch batch);
Message MakeResultBatchMessage(NodeId from, NodeId to, ResultBatch batch);
Message MakeStatsReportMessage(NodeId from, NodeId to, StatsReport report);

}  // namespace dcape

#endif  // DCAPE_NET_MESSAGE_H_
