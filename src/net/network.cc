#include "net/network.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {

void Network::RegisterNode(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
  max_registered_node_ = std::max(max_registered_node_, node);
}

void Network::SetFaultHooks(std::function<Tick(const Message&)> extra_delay,
                            std::function<bool(const Message&)> duplicate) {
  fault_extra_delay_ = std::move(extra_delay);
  fault_duplicate_ = std::move(duplicate);
}

void Network::Send(Message message, Tick now) {
  DCAPE_CHECK_NE(message.from, kInvalidNode);
  DCAPE_CHECK_NE(message.to, kInvalidNode);
  if (buffered_) {
    // Parallel phase: park in the sender's outbox. Each outbox is owned
    // by the one task driving that node, so no locking is needed; all
    // global bookkeeping happens at FlushBuffered.
    auto& outbox = outboxes_[static_cast<size_t>(message.from)];
    outbox.push_back(BufferedSend{std::move(message), now});
    return;
  }
  Enqueue(std::move(message), now);
}

void Network::Enqueue(Message message, Tick now) {
  message.send_time = now;

  const int64_t bytes = message.ByteSize();
  Tick transfer = 0;
  if (config_.bytes_per_tick > 0) {
    transfer = (bytes + config_.bytes_per_tick - 1) / config_.bytes_per_tick;
  }
  Tick arrival = now + config_.latency_ticks + transfer;
  // Injected jitter lands before the FIFO clamp: a jittered message can
  // delay its link's successors but never overtake them.
  if (fault_extra_delay_) arrival += fault_extra_delay_(message);

  // FIFO per directed link: never schedule ahead of an earlier message on
  // the same link (TCP in-order delivery).
  const std::pair<NodeId, NodeId> link{message.from, message.to};
  auto it = link_last_arrival_.find(link);
  if (it != link_last_arrival_.end()) {
    arrival = std::max(arrival, it->second);
  }
  link_last_arrival_[link] = arrival;

  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  if (message.type == MessageType::kStateTransfer) {
    stats_.state_transfer_bytes += bytes;
  }

  const bool duplicate = fault_duplicate_ && fault_duplicate_(message);
  Message copy;
  if (duplicate) copy = message;
  heap_.push_back(InFlight{arrival, next_sequence_++, std::move(message)});
  std::push_heap(heap_.begin(), heap_.end(), LaterArrival{});
  if (duplicate) {
    const Tick dup_arrival = arrival + 1;
    link_last_arrival_[link] = dup_arrival;
    stats_.messages_sent += 1;
    stats_.bytes_sent += bytes;
    heap_.push_back(InFlight{dup_arrival, next_sequence_++, std::move(copy)});
    std::push_heap(heap_.begin(), heap_.end(), LaterArrival{});
  }
}

Network::InFlight Network::PopEarliest() {
  std::pop_heap(heap_.begin(), heap_.end(), LaterArrival{});
  InFlight item = std::move(heap_.back());
  heap_.pop_back();
  return item;
}

void Network::BeginBuffered() {
  DCAPE_CHECK(!buffered_);
  outboxes_.resize(static_cast<size_t>(max_registered_node_ + 1));
  buffered_ = true;
}

void Network::FlushBuffered() {
  DCAPE_CHECK(buffered_);
  buffered_ = false;
  // The deterministic merge rule: source node id, then send order within
  // the node. Every run — serial or parallel — funnels through this exact
  // ordering, which is what makes thread count invisible to results.
  for (auto& outbox : outboxes_) {
    for (BufferedSend& send : outbox) {
      Enqueue(std::move(send.message), send.send_time);
    }
    outbox.clear();
  }
}

void Network::DeliverUntil(Tick now) {
  DCAPE_CHECK(!buffered_);
  while (!heap_.empty() && heap_.front().arrival <= now) {
    InFlight item = PopEarliest();
    auto it = handlers_.find(item.message.to);
    DCAPE_CHECK(it != handlers_.end());
    it->second(item.arrival, item.message);
  }
}

std::vector<Network::Inbox> Network::TakeArrivals(Tick now) {
  DCAPE_CHECK(!buffered_);
  std::vector<InFlight> due;
  while (!heap_.empty() && heap_.front().arrival <= now) {
    due.push_back(PopEarliest());
  }
  // Group by destination; `due` is already in (arrival, sequence) order,
  // and stable_sort by destination preserves it within each inbox.
  std::stable_sort(due.begin(), due.end(),
                   [](const InFlight& a, const InFlight& b) {
                     return a.message.to < b.message.to;
                   });
  std::vector<Inbox> inboxes;
  for (InFlight& item : due) {
    if (inboxes.empty() || inboxes.back().node != item.message.to) {
      inboxes.push_back(Inbox{item.message.to, {}});
    }
    inboxes.back().deliveries.push_back(
        Delivery{item.arrival, std::move(item.message)});
  }
  return inboxes;
}

void Network::Deliver(Inbox& inbox) const {
  auto it = handlers_.find(inbox.node);
  DCAPE_CHECK(it != handlers_.end());
  for (Delivery& d : inbox.deliveries) {
    it->second(d.arrival, d.message);
  }
}

Tick Network::NextArrival() const {
  if (heap_.empty()) return -1;
  return heap_.front().arrival;
}

}  // namespace dcape
