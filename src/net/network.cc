#include "net/network.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {

void Network::RegisterNode(NodeId node, Handler handler) {
  handlers_[node] = std::move(handler);
}

void Network::Send(Message message, Tick now) {
  DCAPE_CHECK_NE(message.from, kInvalidNode);
  DCAPE_CHECK_NE(message.to, kInvalidNode);
  message.send_time = now;

  const int64_t bytes = message.ByteSize();
  Tick transfer = 0;
  if (config_.bytes_per_tick > 0) {
    transfer = (bytes + config_.bytes_per_tick - 1) / config_.bytes_per_tick;
  }
  Tick arrival = now + config_.latency_ticks + transfer;

  // FIFO per directed link: never schedule ahead of an earlier message on
  // the same link (TCP in-order delivery).
  const std::pair<NodeId, NodeId> link{message.from, message.to};
  auto it = link_last_arrival_.find(link);
  if (it != link_last_arrival_.end()) {
    arrival = std::max(arrival, it->second);
  }
  link_last_arrival_[link] = arrival;

  stats_.messages_sent += 1;
  stats_.bytes_sent += bytes;
  if (message.type == MessageType::kStateTransfer) {
    stats_.state_transfer_bytes += bytes;
  }

  queue_.push(InFlight{arrival, next_sequence_++, std::move(message)});
}

void Network::DeliverUntil(Tick now) {
  while (!queue_.empty() && queue_.top().arrival <= now) {
    // Copy out before pop; the handler may push new messages.
    InFlight item = queue_.top();
    queue_.pop();
    auto it = handlers_.find(item.message.to);
    DCAPE_CHECK(it != handlers_.end());
    it->second(item.arrival, item.message);
  }
}

Tick Network::NextArrival() const {
  if (queue_.empty()) return -1;
  return queue_.top().arrival;
}

}  // namespace dcape
