#ifndef DCAPE_NET_TRANSPORT_H_
#define DCAPE_NET_TRANSPORT_H_

#include <functional>

#include "common/ids.h"
#include "common/virtual_clock.h"
#include "net/message.h"

namespace dcape {

/// The cluster interconnect seam.
///
/// Every node (query engine, split host, coordinator, generator) talks to
/// the cluster exclusively through this interface: register a delivery
/// handler once at wiring time, then Send messages. Two implementations
/// exist:
///
///   * net::Network — the deterministic virtual-clock simulator transport
///     (buffered waves, latency/bandwidth model, global delivery order),
///   * rt::SpscTransport — the free-running realtime transport (one
///     bounded lock-free SPSC ring per directed link, blocking
///     backpressure, wall-clock delivery).
///
/// Contract both implementations honor, because the relocation protocol
/// depends on it: each directed link (from -> to) is FIFO — a later
/// message never overtakes an earlier one on the same link. The drain
/// markers of the 8-step relocation protocol ride the split-host ->
/// engine link behind the tuple traffic and prove, on arrival, that no
/// pre-pause tuple is still in flight.
///
/// Threading: RegisterNode is wiring-time only (before any Send). Send
/// is safe to call concurrently so long as each source node is driven by
/// at most one thread at a time — the discipline both the parallel
/// simulator (buffered outboxes) and the realtime driver (one thread per
/// node) maintain.
class Transport {
 public:
  /// Per-message delivery callback; `now` is the delivery time in the
  /// transport's time domain (virtual tick / wall millisecond). The
  /// message is mutable so handlers on the data-plane hot path can move
  /// the payload out instead of copying it; it is dead after the call.
  using Handler = std::function<void(Tick now, Message& message)>;

  virtual ~Transport() = default;

  /// Registers the delivery handler for `node`. Must be called before
  /// any message addressed to `node` is delivered. Re-registering
  /// replaces the handler.
  virtual void RegisterNode(NodeId node, Handler handler) = 0;

  /// Enqueues `message` for delivery. `message.from/to` must be set and
  /// `to` must name a registered node by delivery time. May block (the
  /// realtime transport applies backpressure when the link is full).
  virtual void Send(Message message, Tick now) = 0;
};

}  // namespace dcape

#endif  // DCAPE_NET_TRANSPORT_H_
