#include "storage/disk_backend.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace dcape {

namespace fs = std::filesystem;

Status MemoryDiskBackend::Write(const std::string& name,
                                std::string_view data) {
  objects_[name] = std::string(data);
  return Status::OK();
}

StatusOr<std::string> MemoryDiskBackend::Read(const std::string& name) {
  auto it = objects_.find(name);
  if (it == objects_.end()) {
    return Status::NotFound("no spill object named '" + name + "'");
  }
  return it->second;
}

Status MemoryDiskBackend::Remove(const std::string& name) {
  if (objects_.erase(name) == 0) {
    return Status::NotFound("no spill object named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> MemoryDiskBackend::List() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, data] : objects_) names.push_back(name);
  return names;
}

FileDiskBackend::FileDiskBackend(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  DCAPE_CHECK(!ec);
}

std::string FileDiskBackend::PathFor(const std::string& name) const {
  return dir_ + "/" + name;
}

Status FileDiskBackend::Write(const std::string& name, std::string_view data) {
  // Write to a temp file, then rename over the final path: a crash
  // mid-write leaves either the old object or a stray .tmp (which List
  // ignores), never a truncated object that would later deserialize as
  // corrupt state.
  const std::string final_path = PathFor(name);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open spill file for write: " + name);
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return Status::Internal("short write to spill file: " + name);
    }
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::error_code ec;
    fs::remove(tmp_path, ec);
    return Status::Internal("cannot publish spill file: " + name);
  }
  return Status::OK();
}

StatusOr<std::string> FileDiskBackend::Read(const std::string& name) {
  std::ifstream in(PathFor(name), std::ios::binary);
  if (!in) {
    return Status::NotFound("no spill file named '" + name + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  return std::move(contents).str();
}

Status FileDiskBackend::Remove(const std::string& name) {
  std::error_code ec;
  if (!fs::remove(PathFor(name), ec) || ec) {
    return Status::NotFound("no spill file named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> FileDiskBackend::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file() &&
        entry.path().extension() != ".tmp") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::unique_ptr<DiskBackend> MakeTempFileBackend(const std::string& prefix) {
  static int counter = 0;
  std::string dir = (fs::temp_directory_path() /
                     (prefix + "_" + std::to_string(counter++) + "_" +
                      std::to_string(::getpid())))
                        .string();
  return std::make_unique<FileDiskBackend>(dir);
}

}  // namespace dcape
