#ifndef DCAPE_STORAGE_SPILL_STORE_H_
#define DCAPE_STORAGE_SPILL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/virtual_clock.h"
#include "obs/metrics.h"
#include "storage/disk_backend.h"
#include "storage/io_executor.h"

namespace dcape {

/// Metadata for one spilled partition-group generation.
///
/// A partition id may appear many times: each spill of the (re-grown)
/// in-memory group freezes another generation (§3 of the paper: "multiple
/// partition groups may exist given one partition ID"). `spill_time`
/// provides the global generation ordering the cleanup phase needs.
struct SpillSegmentMeta {
  EngineId engine = 0;
  PartitionId partition = 0;
  /// Per-store monotonically increasing segment number.
  int64_t segment_id = 0;
  /// Virtual time at which the generation was frozen.
  Tick spill_time = 0;
  /// Encoded blob size on disk (v2-compact when the v2 format is on).
  int64_t bytes = 0;
  /// Raw (v1 fixed-width) size of the same state; equals `bytes` for v1
  /// blobs. The compression ratio the storage counters report is
  /// raw_bytes : bytes.
  int64_t raw_bytes = 0;
  int64_t tuple_count = 0;
  /// True for *eviction generations*: window-expired tuples preserved for
  /// the cleanup phase. They join only against earlier generations (see
  /// cleanup/cleanup.cc).
  bool evicted = false;
  /// Backend object name holding the serialized group.
  std::string object_name;
};

/// The per-engine spill area: serialized partition-group generations plus
/// a virtual-time I/O cost model (sequential write/read bandwidth).
///
/// With an IoExecutor attached, the real backend write happens on the
/// background thread: WriteSegment snapshots the blob, enqueues the
/// write, and returns the unchanged *virtual* cost immediately. All
/// metadata and counters update synchronously, so virtual-clock
/// accounting — and therefore results — are bit-identical with async
/// I/O on or off. Reads, removes, and destruction barrier on
/// outstanding writes, which also keeps the (non-thread-safe) backend
/// single-threaded at any instant.
class SpillStore {
 public:
  struct Config {
    /// Sequential write bandwidth, bytes per tick (virtual ms). 40 MB/s of
    /// the paper's era ≈ 40000 bytes/ms.
    int64_t write_bytes_per_tick = 40000;
    /// Sequential read bandwidth, bytes per tick.
    int64_t read_bytes_per_tick = 50000;
  };

  /// `io` (optional, unowned, may be shared across stores) makes backend
  /// writes asynchronous; it must outlive the store. `metrics` (optional,
  /// unowned) is the cluster's unified registry; the store registers its
  /// storage.* cells there, or in a private registry when null
  /// (standalone use in tests).
  SpillStore(EngineId engine, const Config& config,
             std::unique_ptr<DiskBackend> backend, IoExecutor* io = nullptr,
             obs::MetricsRegistry* metrics = nullptr);
  ~SpillStore();

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Persists one serialized partition-group generation. Returns the
  /// virtual I/O duration in ticks; the caller (query engine) models the
  /// spill as keeping the engine busy that long. `raw_bytes` is the v1
  /// fixed-width size of the same state for the compression counters
  /// (defaults to the blob size). A failed *asynchronous* write surfaces
  /// as the error of a later WriteSegment / ReadSegment / RemoveSegment.
  [[nodiscard]] StatusOr<Tick> WriteSegment(PartitionId partition, Tick now,
                                            std::string_view blob,
                                            int64_t tuple_count,
                                            bool evicted = false,
                                            int64_t raw_bytes = -1)
      EXCLUDES(async_mu_);

  /// Reads a segment back (barriers on outstanding async writes).
  /// `io_ticks` (optional out) receives the virtual read duration,
  /// charged by the cleanup cost model.
  [[nodiscard]] StatusOr<std::string> ReadSegment(
      const SpillSegmentMeta& meta, Tick* io_ticks = nullptr) const
      EXCLUDES(async_mu_);

  /// Removes a segment (used by online restore once the generation has
  /// been merged back into memory). NotFound for unknown ids. O(log n):
  /// segments_ is sorted by the monotonically assigned segment id.
  [[nodiscard]] Status RemoveSegment(int64_t segment_id)
      EXCLUDES(async_mu_);

  /// All segments in spill order.
  const std::vector<SpillSegmentMeta>& segments() const { return segments_; }

  /// Cumulative serialized bytes spilled (never decreases).
  int64_t total_spilled_bytes() const { return encoded_bytes_->value(); }
  /// Cumulative raw (v1-equivalent) bytes of everything spilled; the
  /// v2 size win is total_spilled_bytes() / total_raw_bytes().
  int64_t total_raw_bytes() const { return raw_bytes_->value(); }
  /// Bytes currently resident on disk (decreases on RemoveSegment).
  int64_t resident_bytes() const { return resident_bytes_->value(); }
  /// Number of segments currently resident (decreases on RemoveSegment).
  int64_t segment_count() const {
    return static_cast<int64_t>(segments_.size());
  }
  /// Cumulative WriteSegment calls (never decreases).
  int64_t segments_written() const { return segments_written_->value(); }

  EngineId engine() const { return engine_; }
  const Config& config() const { return config_; }

 private:
  /// Waits for queued writes, then returns this store's latched async
  /// error. No-op without an executor.
  [[nodiscard]] Status Barrier() const EXCLUDES(async_mu_);

  EngineId engine_;
  Config config_;
  std::unique_ptr<DiskBackend> backend_;
  IoExecutor* io_;
  /// First failure of one of *this store's* background writes, latched
  /// by the write job itself (the executor may be shared across stores,
  /// so its global first-error is not ours). Jobs write it from the I/O
  /// thread.
  mutable Mutex async_mu_;
  Status async_error_ GUARDED_BY(async_mu_) = Status::OK();
  std::vector<SpillSegmentMeta> segments_;
  int64_t next_segment_id_ = 0;
  /// Private registry used only when the caller did not supply one;
  /// declared before the cell pointers that may point into it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  /// storage.* cells (owned by the registry): cumulative encoded and raw
  /// bytes written, bytes currently resident, cumulative segments
  /// written.
  obs::Counter* encoded_bytes_;
  obs::Counter* raw_bytes_;
  obs::Gauge* resident_bytes_;
  obs::Counter* segments_written_;
};

}  // namespace dcape

#endif  // DCAPE_STORAGE_SPILL_STORE_H_
