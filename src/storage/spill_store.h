#ifndef DCAPE_STORAGE_SPILL_STORE_H_
#define DCAPE_STORAGE_SPILL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "storage/disk_backend.h"

namespace dcape {

/// Metadata for one spilled partition-group generation.
///
/// A partition id may appear many times: each spill of the (re-grown)
/// in-memory group freezes another generation (§3 of the paper: "multiple
/// partition groups may exist given one partition ID"). `spill_time`
/// provides the global generation ordering the cleanup phase needs.
struct SpillSegmentMeta {
  EngineId engine = 0;
  PartitionId partition = 0;
  /// Per-store monotonically increasing segment number.
  int64_t segment_id = 0;
  /// Virtual time at which the generation was frozen.
  Tick spill_time = 0;
  int64_t bytes = 0;
  int64_t tuple_count = 0;
  /// True for *eviction generations*: window-expired tuples preserved for
  /// the cleanup phase. They join only against earlier generations (see
  /// cleanup/cleanup.cc).
  bool evicted = false;
  /// Backend object name holding the serialized group.
  std::string object_name;
};

/// The per-engine spill area: serialized partition-group generations plus
/// a virtual-time I/O cost model (sequential write/read bandwidth).
class SpillStore {
 public:
  struct Config {
    /// Sequential write bandwidth, bytes per tick (virtual ms). 40 MB/s of
    /// the paper's era ≈ 40000 bytes/ms.
    int64_t write_bytes_per_tick = 40000;
    /// Sequential read bandwidth, bytes per tick.
    int64_t read_bytes_per_tick = 50000;
  };

  SpillStore(EngineId engine, const Config& config,
             std::unique_ptr<DiskBackend> backend);

  SpillStore(const SpillStore&) = delete;
  SpillStore& operator=(const SpillStore&) = delete;

  /// Persists one serialized partition-group generation. Returns the
  /// virtual I/O duration in ticks; the caller (query engine) models the
  /// spill as keeping the engine busy that long.
  StatusOr<Tick> WriteSegment(PartitionId partition, Tick now,
                              std::string_view blob, int64_t tuple_count,
                              bool evicted = false);

  /// Reads a segment back. `io_ticks` (optional out) receives the virtual
  /// read duration, charged by the cleanup cost model.
  StatusOr<std::string> ReadSegment(const SpillSegmentMeta& meta,
                                    Tick* io_ticks = nullptr) const;

  /// Removes a segment (used by online restore once the generation has
  /// been merged back into memory). NotFound for unknown ids.
  Status RemoveSegment(int64_t segment_id);

  /// All segments in spill order.
  const std::vector<SpillSegmentMeta>& segments() const { return segments_; }

  /// Cumulative serialized bytes spilled (never decreases).
  int64_t total_spilled_bytes() const { return total_spilled_bytes_; }
  /// Bytes currently resident on disk (decreases on RemoveSegment).
  int64_t resident_bytes() const { return resident_bytes_; }
  /// Number of WriteSegment calls.
  int64_t segment_count() const {
    return static_cast<int64_t>(segments_.size());
  }

  EngineId engine() const { return engine_; }
  const Config& config() const { return config_; }

 private:
  EngineId engine_;
  Config config_;
  std::unique_ptr<DiskBackend> backend_;
  std::vector<SpillSegmentMeta> segments_;
  int64_t next_segment_id_ = 0;
  int64_t total_spilled_bytes_ = 0;
  int64_t resident_bytes_ = 0;
};

}  // namespace dcape

#endif  // DCAPE_STORAGE_SPILL_STORE_H_
