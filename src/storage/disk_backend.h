#ifndef DCAPE_STORAGE_DISK_BACKEND_H_
#define DCAPE_STORAGE_DISK_BACKEND_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dcape {

/// Abstract byte store underneath the spill store. Two implementations:
/// a real filesystem directory (used by examples/benches) and an
/// in-memory map (used by unit tests). Either way the spilled state is
/// genuinely serialized to bytes and read back.
class DiskBackend {
 public:
  virtual ~DiskBackend() = default;

  /// Writes (or overwrites) the named object.
  [[nodiscard]] virtual Status Write(const std::string& name,
                                     std::string_view data) = 0;
  /// Reads the named object in full.
  [[nodiscard]] virtual StatusOr<std::string> Read(
      const std::string& name) = 0;
  /// Removes the named object. NotFound if absent.
  [[nodiscard]] virtual Status Remove(const std::string& name) = 0;
  /// Names of all stored objects, sorted.
  virtual std::vector<std::string> List() const = 0;
};

/// In-memory backend for tests and fast benches.
class MemoryDiskBackend : public DiskBackend {
 public:
  Status Write(const std::string& name, std::string_view data) override;
  StatusOr<std::string> Read(const std::string& name) override;
  Status Remove(const std::string& name) override;
  std::vector<std::string> List() const override;

 private:
  std::map<std::string, std::string> objects_;
};

/// Filesystem-directory backend. Each object is one file under `dir`.
/// Writes are crash-consistent: data lands in a `.tmp` sibling first and
/// is renamed into place, so a partially written object is never visible
/// under its final name (List also skips `.tmp` leftovers).
class FileDiskBackend : public DiskBackend {
 public:
  /// Creates `dir` (recursively) if needed; aborts on failure since a
  /// missing spill directory is an unrecoverable configuration error.
  explicit FileDiskBackend(std::string dir);

  Status Write(const std::string& name, std::string_view data) override;
  StatusOr<std::string> Read(const std::string& name) override;
  Status Remove(const std::string& name) override;
  std::vector<std::string> List() const override;

  const std::string& dir() const { return dir_; }

 private:
  std::string PathFor(const std::string& name) const;

  std::string dir_;
};

/// Creates a FileDiskBackend under a fresh unique temp directory, for
/// examples and benchmarks.
std::unique_ptr<DiskBackend> MakeTempFileBackend(const std::string& prefix);

}  // namespace dcape

#endif  // DCAPE_STORAGE_DISK_BACKEND_H_
