#ifndef DCAPE_STORAGE_IO_EXECUTOR_H_
#define DCAPE_STORAGE_IO_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace dcape {

/// A single background thread that drains a FIFO queue of disk jobs.
///
/// The spill stores use it to take real file I/O off the simulation
/// thread: WriteSegment snapshots its blob, enqueues the write, and
/// returns immediately with the unchanged *virtual* I/O cost — the
/// virtual clock never observes wall-clock disk latency, so results
/// stay bit-identical with async I/O on or off.
///
/// Ordering contract: jobs run in submission order (FIFO, one worker),
/// and Drain() is a full barrier — when it returns, every previously
/// submitted job has finished and its effects happen-before the caller
/// (released by the worker's mutex unlock, acquired by Drain's lock).
/// That barrier is what lets the non-thread-safe disk backends stay
/// lock-free: the caller only touches a backend directly after
/// draining the jobs that touch it.
///
/// The first job failure is latched and returned by status() / Drain();
/// later jobs still run (a failed spill write must not wedge the queue).
class IoExecutor {
 public:
  IoExecutor();
  /// Drains the queue, then joins the worker.
  ~IoExecutor();

  IoExecutor(const IoExecutor&) = delete;
  IoExecutor& operator=(const IoExecutor&) = delete;

  /// Enqueues `job` for the background thread. Never blocks (the queue
  /// is unbounded; the high-water counter records how deep it got).
  void Submit(std::function<Status()> job) EXCLUDES(mu_);

  /// Blocks until every job submitted before this call has completed.
  /// Returns the first error any job has produced so far (sticky).
  [[nodiscard]] Status Drain() EXCLUDES(mu_);

  /// First error produced by any completed job, without draining.
  [[nodiscard]] Status status() const EXCLUDES(mu_);

  /// Deepest the queue has been, including the job in flight. Depends on
  /// wall-clock scheduling, so it is observability-only — never compare
  /// it across runs.
  int64_t queue_high_water() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;   // signalled on submit / stop
  CondVar drain_cv_;  // signalled when a job finishes
  std::deque<std::function<Status()>> queue_ GUARDED_BY(mu_);
  /// Jobs popped but still executing (0 or 1 with a single worker).
  int in_flight_ GUARDED_BY(mu_) = 0;
  int64_t high_water_ GUARDED_BY(mu_) = 0;
  Status first_error_ GUARDED_BY(mu_) = Status::OK();
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace dcape

#endif  // DCAPE_STORAGE_IO_EXECUTOR_H_
