#include "storage/io_executor.h"

#include <utility>

namespace dcape {

IoExecutor::IoExecutor() : worker_([this] { WorkerLoop(); }) {}

IoExecutor::~IoExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_one();
  worker_.join();
}

void IoExecutor::Submit(std::function<Status()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    const int64_t depth =
        static_cast<int64_t>(queue_.size()) + in_flight_;
    if (depth > high_water_) high_water_ = depth;
  }
  work_cv_.notify_one();
}

Status IoExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  return first_error_;
}

Status IoExecutor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

int64_t IoExecutor::queue_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

void IoExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    // Finish queued work even when stopping: the destructor's contract
    // is drain-then-join, so a pending spill write is never dropped.
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<Status()> job = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = 1;
    lock.unlock();
    Status s = job();
    lock.lock();
    in_flight_ = 0;
    if (first_error_.ok() && !s.ok()) first_error_ = std::move(s);
    if (queue_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace dcape
