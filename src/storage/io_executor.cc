#include "storage/io_executor.h"

#include <utility>

namespace dcape {

IoExecutor::IoExecutor() : worker_([this] { WorkerLoop(); }) {}

IoExecutor::~IoExecutor() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyOne();
  worker_.join();
}

void IoExecutor::Submit(std::function<Status()> job) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(job));
    const int64_t depth =
        static_cast<int64_t>(queue_.size()) + in_flight_;
    if (depth > high_water_) high_water_ = depth;
  }
  work_cv_.NotifyOne();
}

Status IoExecutor::Drain() {
  MutexLock lock(mu_);
  while (!queue_.empty() || in_flight_ != 0) drain_cv_.Wait(mu_);
  return first_error_;
}

Status IoExecutor::status() const {
  MutexLock lock(mu_);
  return first_error_;
}

int64_t IoExecutor::queue_high_water() const {
  MutexLock lock(mu_);
  return high_water_;
}

void IoExecutor::WorkerLoop() {
  mu_.Lock();
  while (true) {
    while (!stop_ && queue_.empty()) work_cv_.Wait(mu_);
    // Finish queued work even when stopping: the destructor's contract
    // is drain-then-join, so a pending spill write is never dropped.
    // An empty queue here therefore means stop.
    if (queue_.empty()) break;
    std::function<Status()> job = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = 1;
    mu_.Unlock();
    Status s = job();
    mu_.Lock();
    in_flight_ = 0;
    if (first_error_.ok() && !s.ok()) first_error_ = std::move(s);
    if (queue_.empty()) drain_cv_.NotifyAll();
  }
  mu_.Unlock();
}

}  // namespace dcape
