#include "storage/spill_store.h"

#include <utility>

#include "common/check.h"

namespace dcape {

SpillStore::SpillStore(EngineId engine, const Config& config,
                       std::unique_ptr<DiskBackend> backend)
    : engine_(engine), config_(config), backend_(std::move(backend)) {
  DCAPE_CHECK(backend_ != nullptr);
  DCAPE_CHECK_GT(config_.write_bytes_per_tick, 0);
  DCAPE_CHECK_GT(config_.read_bytes_per_tick, 0);
}

StatusOr<Tick> SpillStore::WriteSegment(PartitionId partition, Tick now,
                                        std::string_view blob,
                                        int64_t tuple_count, bool evicted) {
  SpillSegmentMeta meta;
  meta.engine = engine_;
  meta.partition = partition;
  meta.segment_id = next_segment_id_++;
  meta.spill_time = now;
  meta.bytes = static_cast<int64_t>(blob.size());
  meta.tuple_count = tuple_count;
  meta.evicted = evicted;
  meta.object_name = "e" + std::to_string(engine_) + "_p" +
                     std::to_string(partition) + "_s" +
                     std::to_string(meta.segment_id) + ".spill";

  DCAPE_RETURN_IF_ERROR(backend_->Write(meta.object_name, blob));

  total_spilled_bytes_ += meta.bytes;
  resident_bytes_ += meta.bytes;
  segments_.push_back(meta);

  const Tick io_ticks =
      (meta.bytes + config_.write_bytes_per_tick - 1) /
      config_.write_bytes_per_tick;
  return io_ticks;
}

Status SpillStore::RemoveSegment(int64_t segment_id) {
  for (auto it = segments_.begin(); it != segments_.end(); ++it) {
    if (it->segment_id == segment_id) {
      DCAPE_RETURN_IF_ERROR(backend_->Remove(it->object_name));
      resident_bytes_ -= it->bytes;
      segments_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no spill segment with id " +
                          std::to_string(segment_id));
}

StatusOr<std::string> SpillStore::ReadSegment(const SpillSegmentMeta& meta,
                                              Tick* io_ticks) const {
  DCAPE_ASSIGN_OR_RETURN(std::string blob, backend_->Read(meta.object_name));
  if (static_cast<int64_t>(blob.size()) != meta.bytes) {
    return Status::Internal("spill segment size mismatch for " +
                            meta.object_name);
  }
  if (io_ticks != nullptr) {
    *io_ticks = (meta.bytes + config_.read_bytes_per_tick - 1) /
                config_.read_bytes_per_tick;
  }
  return blob;
}

}  // namespace dcape
