#include "storage/spill_store.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace dcape {

SpillStore::SpillStore(EngineId engine, const Config& config,
                       std::unique_ptr<DiskBackend> backend, IoExecutor* io,
                       obs::MetricsRegistry* metrics)
    : engine_(engine), config_(config), backend_(std::move(backend)), io_(io) {
  DCAPE_CHECK(backend_ != nullptr);
  DCAPE_CHECK_GT(config_.write_bytes_per_tick, 0);
  DCAPE_CHECK_GT(config_.read_bytes_per_tick, 0);
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  const int entity = static_cast<int>(engine_);
  encoded_bytes_ = metrics->AddCounter(obs::m::kEncodedBytes, entity);
  raw_bytes_ = metrics->AddCounter(obs::m::kRawBytes, entity);
  resident_bytes_ = metrics->AddGauge(obs::m::kResidentBytes, entity);
  segments_written_ = metrics->AddCounter(obs::m::kSegmentsWritten, entity);
}

SpillStore::~SpillStore() {
  // The backend dies with this store; writes still in the queue would
  // otherwise race its destruction.
  (void)Barrier();
}

Status SpillStore::Barrier() const {
  // The drain result is the executor-global first error, which may
  // belong to a different store sharing the executor; only the error
  // our own jobs latched counts here.
  if (io_ != nullptr) (void)io_->Drain();
  MutexLock lock(async_mu_);
  return async_error_;
}

StatusOr<Tick> SpillStore::WriteSegment(PartitionId partition, Tick now,
                                        std::string_view blob,
                                        int64_t tuple_count, bool evicted,
                                        int64_t raw_bytes) {
  // Surface an earlier failed background write here rather than letting
  // the run continue against a spill area that silently lost state.
  {
    MutexLock lock(async_mu_);
    DCAPE_RETURN_IF_ERROR(async_error_);
  }

  SpillSegmentMeta meta;
  meta.engine = engine_;
  meta.partition = partition;
  meta.segment_id = next_segment_id_++;
  meta.spill_time = now;
  meta.bytes = static_cast<int64_t>(blob.size());
  meta.raw_bytes = raw_bytes >= 0 ? raw_bytes : meta.bytes;
  meta.tuple_count = tuple_count;
  meta.evicted = evicted;
  meta.object_name.reserve(32);
  meta.object_name += "e";
  meta.object_name += std::to_string(engine_);
  meta.object_name += "_p";
  meta.object_name += std::to_string(partition);
  meta.object_name += "_s";
  meta.object_name += std::to_string(meta.segment_id);
  meta.object_name += ".spill";

  if (io_ != nullptr) {
    // Snapshot the blob: the caller's buffer is typically reused or
    // freed before the background write lands. The job latches its own
    // failure into this store (capturing `this` is safe: the destructor
    // barriers before the backend or the latch dies).
    io_->Submit([this, name = meta.object_name, data = std::string(blob)] {
      Status s = backend_->Write(name, data);
      if (!s.ok()) {
        MutexLock lock(async_mu_);
        if (async_error_.ok()) async_error_ = s;
      }
      return s;
    });
  } else {
    DCAPE_RETURN_IF_ERROR(backend_->Write(meta.object_name, blob));
  }

  encoded_bytes_->Add(meta.bytes);
  raw_bytes_->Add(meta.raw_bytes);
  resident_bytes_->Add(meta.bytes);
  segments_written_->Increment();
  segments_.push_back(meta);

  const Tick io_ticks =
      (meta.bytes + config_.write_bytes_per_tick - 1) /
      config_.write_bytes_per_tick;
  return io_ticks;
}

Status SpillStore::RemoveSegment(int64_t segment_id) {
  // segment_id is assigned from a per-store monotonic counter and
  // segments_ is append-only in assignment order, so it is sorted.
  auto it = std::lower_bound(
      segments_.begin(), segments_.end(), segment_id,
      [](const SpillSegmentMeta& m, int64_t id) { return m.segment_id < id; });
  if (it == segments_.end() || it->segment_id != segment_id) {
    return Status::NotFound("no spill segment with id " +
                            std::to_string(segment_id));
  }
  DCAPE_RETURN_IF_ERROR(Barrier());
  DCAPE_RETURN_IF_ERROR(backend_->Remove(it->object_name));
  resident_bytes_->Add(-it->bytes);
  segments_.erase(it);
  return Status::OK();
}

StatusOr<std::string> SpillStore::ReadSegment(const SpillSegmentMeta& meta,
                                              Tick* io_ticks) const {
  DCAPE_RETURN_IF_ERROR(Barrier());
  DCAPE_ASSIGN_OR_RETURN(std::string blob, backend_->Read(meta.object_name));
  if (static_cast<int64_t>(blob.size()) != meta.bytes) {
    return Status::Internal("spill segment size mismatch for " +
                            meta.object_name);
  }
  if (io_ticks != nullptr) {
    *io_ticks = (meta.bytes + config_.read_bytes_per_tick - 1) /
                config_.read_bytes_per_tick;
  }
  return blob;
}

}  // namespace dcape
