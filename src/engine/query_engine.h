#ifndef DCAPE_ENGINE_QUERY_ENGINE_H_
#define DCAPE_ENGINE_QUERY_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/local_controller.h"
#include "core/strategy.h"
#include "net/message.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "operators/mjoin.h"
#include "storage/disk_backend.h"
#include "storage/spill_store.h"

namespace dcape {

namespace sim {
class InvariantRecorder;
}  // namespace sim

/// Execution modes of a query engine (paper Table 2).
enum class EngineMode {
  kNormal,
  kStateSpill,       // ss_mode: spilling states to local disk
  kStateRelocation,  // sr_mode: participating in a relocation
};

/// Configuration of one query engine (machine).
struct EngineConfig {
  EngineId engine_id = 0;
  /// Network address; by cluster convention engines use node_id ==
  /// engine_id.
  NodeId node_id = 0;
  NodeId coordinator_node = kInvalidNode;
  NodeId sink_node = kInvalidNode;
  int num_streams = 3;
  /// Number of split-host nodes; the engine expects one drain marker per
  /// host before extracting relocating state.
  int num_split_hosts = 1;
  AdaptationStrategy strategy = AdaptationStrategy::kNoAdaptation;
  SpillConfig spill;
  /// Productivity estimation model used by the local controller.
  ProductivityConfig productivity;
  /// Online state restore (merge disk generations back when memory is
  /// available).
  RestoreConfig restore;
  /// Sliding-window join semantics: > 0 bounds the timestamp span of any
  /// result's members and lets the engine evict expired state.
  Tick window_ticks = 0;
  /// How often expired state is evicted (only with window_ticks > 0).
  Tick evict_period = SecondsToTicks(10);
  /// Statistics reporting period toward the coordinator (sr_timer's data
  /// source).
  Tick stats_period = SecondsToTicks(5);
  /// Optional post-join projection (group key + aggregate input).
  std::optional<ResultProjection> projection;
  /// Encoding for spilled / relocated partition groups (tuple/serde.h).
  SegmentFormat segment_format = SegmentFormat::kV2;
  uint64_t seed = 1;
  /// Chaos-harness invariant sink (unowned; null in production). When
  /// set, the engine reports protocol violations — e.g. a tuple arriving
  /// for a partition whose state was relocated away — instead of
  /// silently producing wrong results.
  sim::InvariantRecorder* invariants = nullptr;
  /// Unified metrics registry (unowned). The engine registers its
  /// engine.* and storage.* cells there; when null it owns a private
  /// registry (standalone use in unit tests).
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured tracer (unowned; null = tracing disabled). The engine
  /// emits on lane `node_id`.
  obs::Tracer* tracer = nullptr;
};

/// One query engine of the distributed architecture (paper Fig. 4): hosts
/// an instance of the partitioned m-way join, executes its share of the
/// input, reports lightweight statistics to the global coordinator, and
/// carries out the engine side of both adaptations through its local
/// adaptation controller.
///
/// Disk I/O keeps the engine busy in virtual time: while `busy_until_` is
/// in the future, arriving tuple batches queue and are processed when the
/// engine frees up — which is what dents the run-time throughput right
/// after a spill (visible in the paper's Fig. 13).
class QueryEngine {
 public:
  /// Cumulative event counters for experiment summaries. This is a
  /// *snapshot view*: the authoritative cells live in the metrics
  /// registry (obs/metrics.h) and `counters()` materializes them on
  /// demand, so existing call sites keep working unchanged.
  struct Counters {
    int64_t tuples_processed = 0;
    int64_t results_produced = 0;
    int64_t spill_events = 0;
    int64_t forced_spill_events = 0;
    int64_t spilled_bytes = 0;
    int64_t relocations_out = 0;
    int64_t relocations_in = 0;
    int64_t bytes_relocated_out = 0;
    int64_t bytes_relocated_in = 0;
    /// Online-restore activity (RestoreConfig).
    int64_t restored_segments = 0;
    int64_t restored_bytes = 0;
    int64_t restored_results = 0;
    /// Window-eviction activity (window_ticks > 0).
    int64_t evicted_tuples = 0;
    int64_t eviction_segments = 0;
    /// Spill / eviction writes that failed and were recovered by
    /// reinstalling the extracted state (transient disk faults).
    int64_t spill_write_failures = 0;
    /// Tuples processed per stream (size == num_streams) — the chaos
    /// harness's per-stream accounting diffs this against the oracle.
    std::vector<int64_t> tuples_per_stream;
  };

  /// `io_executor` (optional, unowned, shareable across engines) makes
  /// the spill store's backend writes asynchronous; it must outlive the
  /// engine. Virtual-time accounting is identical with or without it.
  QueryEngine(const EngineConfig& config, Transport* network,
              const SpillStore::Config& disk_config,
              std::unique_ptr<DiskBackend> disk_backend,
              IoExecutor* io_executor = nullptr);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Network delivery callback; register with
  /// `network->RegisterNode(node_id, ...)` bound to this method.
  void OnMessage(Tick now, const Message& message);

  /// Data-plane fast path: same semantics as a kTupleBatch OnMessage,
  /// but takes ownership of the batch so queueing never copies tuples.
  void OnTupleBatch(Tick now, TupleBatch&& batch);

  /// Per-tick housekeeping: drain queued batches when free, run the
  /// ss_timer spill check, emit the periodic stats report.
  void OnTick(Tick now);

  /// True when no input is queued and no disk I/O is in progress — used
  /// by the driver to detect quiescence at end of run.
  bool Idle(Tick now) const {
    return pending_batches_.empty() && now >= busy_until_;
  }

  /// Chaos hook: freezes the engine for `ticks` virtual ms (models a GC
  /// pause / CPU steal). Arriving batches queue and drain afterwards.
  void InjectStall(Tick now, Tick ticks) {
    busy_until_ = std::max(busy_until_, now) + ticks;
  }

  /// Batches queued behind disk I/O (observability for the harness).
  int64_t pending_batch_count() const {
    return static_cast<int64_t>(pending_batches_.size());
  }
  /// Sender-side relocations not yet shipped (0 at quiescence).
  int64_t outgoing_relocation_count() const {
    return static_cast<int64_t>(outgoing_.size());
  }

  MJoin& mjoin() { return mjoin_; }
  const MJoin& mjoin() const { return mjoin_; }
  const SpillStore& spill_store() const { return spill_store_; }
  /// Snapshot of the registry-backed counters (by value; `const auto&`
  /// call sites bind to the temporary).
  Counters counters() const;
  const EngineConfig& config() const { return config_; }
  EngineMode mode() const { return mode_; }
  /// Tracked memory-resident state bytes (the quantity all thresholds and
  /// the coordinator's decisions are based on).
  int64_t state_bytes() const { return mjoin_.state().total_bytes(); }

 private:
  /// One in-flight relocation in which this engine is the sender.
  struct OutgoingRelocation {
    EngineId receiver = 0;
    std::vector<PartitionId> partitions;
    bool transfer_authorized = false;
    int drain_markers = 0;
  };

  void ProcessBatch(Tick now, const TupleBatch& batch);
  void DrainPending(Tick now);
  /// Spills `victims`, updating counters and busy time. `forced` marks
  /// coordinator-initiated spills (active-disk).
  void DoSpill(Tick now, const std::vector<PartitionId>& victims, bool forced);
  /// Attempts one online restore (oldest fitting, unlocked generation).
  void MaybeRestore(Tick now);
  /// Evicts window-expired tuples; preserves them as eviction
  /// generations when disk generations exist for the partition.
  void EvictExpired(Tick now);
  /// Completes the sender side of a relocation once both the transfer
  /// authorization and all drain markers have arrived.
  void MaybeFinishOutgoing(Tick now, int64_t relocation_id);

  /// The engine's trace lane is its network node id.
  int lane() const { return static_cast<int>(config_.node_id); }

  EngineConfig config_;
  Transport* network_;
  /// Private registry when the config did not supply one; declared (and
  /// therefore constructed) before spill_store_ and the cells below,
  /// which point into it.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Tracer* tracer_;
  SpillStore spill_store_;
  MJoin mjoin_;
  LocalController controller_;
  PeriodicTimer stats_timer_;
  PeriodicTimer restore_timer_;
  PeriodicTimer evict_timer_;
  EngineMode mode_ = EngineMode::kNormal;
  Tick busy_until_ = 0;
  std::deque<TupleBatch> pending_batches_;
  std::map<int64_t, OutgoingRelocation> outgoing_;
  /// Partitions whose state this engine shipped away and has not since
  /// received back — maintained only when config_.invariants is set, to
  /// flag tuples that arrive at a non-owner.
  std::set<PartitionId> relocated_away_;
  int64_t outputs_in_window_ = 0;
  /// Registry-owned cells backing the Counters snapshot (registered in
  /// the constructor, entity = engine id).
  struct Cells {
    obs::Counter* tuples_processed;
    obs::Counter* results_produced;
    obs::Counter* spill_events;
    obs::Counter* forced_spill_events;
    obs::Counter* spilled_bytes;
    obs::Counter* relocations_out;
    obs::Counter* relocations_in;
    obs::Counter* bytes_relocated_out;
    obs::Counter* bytes_relocated_in;
    obs::Counter* restored_segments;
    obs::Counter* restored_bytes;
    obs::Counter* restored_results;
    obs::Counter* evicted_tuples;
    obs::Counter* eviction_segments;
    obs::Counter* spill_write_failures;
    obs::Counter* busy_io_ticks;
    obs::Counter* spill_io_ticks;
    /// Indexed by stream id.
    std::vector<obs::Counter*> tuples_per_stream;
  };
  Cells c_;
};

}  // namespace dcape

#endif  // DCAPE_ENGINE_QUERY_ENGINE_H_
