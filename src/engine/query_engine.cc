#include "engine/query_engine.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "sim/invariants.h"
#include "state/group_merge.h"
#include "stream/stream_generator.h"

namespace dcape {

QueryEngine::QueryEngine(const EngineConfig& config, Transport* network,
                         const SpillStore::Config& disk_config,
                         std::unique_ptr<DiskBackend> disk_backend,
                         IoExecutor* io_executor)
    : config_(config),
      network_(network),
      owned_metrics_(config.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(config.metrics != nullptr ? config.metrics
                                         : owned_metrics_.get()),
      tracer_(config.tracer),
      spill_store_(config.engine_id, disk_config, std::move(disk_backend),
                   io_executor, metrics_),
      mjoin_(config.num_streams, &spill_store_, config.projection,
             config.window_ticks, config.segment_format),
      controller_(config.spill, config.productivity, config.seed),
      stats_timer_(config.stats_period),
      restore_timer_(config.restore.check_period),
      evict_timer_(config.evict_period) {
  DCAPE_CHECK(network_ != nullptr);
  const int entity = static_cast<int>(config.engine_id);
  c_.tuples_processed = metrics_->AddCounter(obs::m::kTuplesProcessed, entity);
  c_.results_produced = metrics_->AddCounter(obs::m::kResultsProduced, entity);
  c_.spill_events = metrics_->AddCounter(obs::m::kSpillEvents, entity);
  c_.forced_spill_events =
      metrics_->AddCounter(obs::m::kForcedSpillEvents, entity);
  c_.spilled_bytes = metrics_->AddCounter(obs::m::kSpilledBytes, entity);
  c_.relocations_out = metrics_->AddCounter(obs::m::kRelocationsOut, entity);
  c_.relocations_in = metrics_->AddCounter(obs::m::kRelocationsIn, entity);
  c_.bytes_relocated_out =
      metrics_->AddCounter(obs::m::kBytesRelocatedOut, entity);
  c_.bytes_relocated_in =
      metrics_->AddCounter(obs::m::kBytesRelocatedIn, entity);
  c_.restored_segments =
      metrics_->AddCounter(obs::m::kRestoredSegments, entity);
  c_.restored_bytes = metrics_->AddCounter(obs::m::kRestoredBytes, entity);
  c_.restored_results = metrics_->AddCounter(obs::m::kRestoredResults, entity);
  c_.evicted_tuples = metrics_->AddCounter(obs::m::kEvictedTuples, entity);
  c_.eviction_segments =
      metrics_->AddCounter(obs::m::kEvictionSegments, entity);
  c_.spill_write_failures =
      metrics_->AddCounter(obs::m::kSpillWriteFailures, entity);
  c_.busy_io_ticks = metrics_->AddCounter(obs::m::kBusyIoTicks, entity);
  c_.spill_io_ticks = metrics_->AddCounter(obs::m::kSpillIoTicks, entity);
  c_.tuples_per_stream.reserve(static_cast<size_t>(config.num_streams));
  for (int s = 0; s < config.num_streams; ++s) {
    c_.tuples_per_stream.push_back(
        metrics_->AddCounter(obs::m::kTuplesPerStream, entity, s));
  }
}

QueryEngine::Counters QueryEngine::counters() const {
  Counters c;
  c.tuples_processed = c_.tuples_processed->value();
  c.results_produced = c_.results_produced->value();
  c.spill_events = c_.spill_events->value();
  c.forced_spill_events = c_.forced_spill_events->value();
  c.spilled_bytes = c_.spilled_bytes->value();
  c.relocations_out = c_.relocations_out->value();
  c.relocations_in = c_.relocations_in->value();
  c.bytes_relocated_out = c_.bytes_relocated_out->value();
  c.bytes_relocated_in = c_.bytes_relocated_in->value();
  c.restored_segments = c_.restored_segments->value();
  c.restored_bytes = c_.restored_bytes->value();
  c.restored_results = c_.restored_results->value();
  c.evicted_tuples = c_.evicted_tuples->value();
  c.eviction_segments = c_.eviction_segments->value();
  c.spill_write_failures = c_.spill_write_failures->value();
  c.tuples_per_stream.reserve(c_.tuples_per_stream.size());
  for (const obs::Counter* cell : c_.tuples_per_stream) {
    c.tuples_per_stream.push_back(cell->value());
  }
  return c;
}

void QueryEngine::OnTupleBatch(Tick now, TupleBatch&& batch) {
  if (now >= busy_until_ && pending_batches_.empty()) {
    ProcessBatch(now, batch);
  } else {
    pending_batches_.push_back(std::move(batch));
  }
}

void QueryEngine::OnMessage(Tick now, const Message& message) {
  switch (message.type) {
    case MessageType::kTupleBatch: {
      OnTupleBatch(now, TupleBatch(std::get<TupleBatch>(message.payload)));
      return;
    }
    case MessageType::kComputePartitionsToMove: {
      const auto& req = std::get<ComputePartitionsToMove>(message.payload);
      // Algorithm 1's "cptv" event: pick the most productive groups worth
      // `amount_bytes` and lock them against concurrent spills.
      mode_ = EngineMode::kStateRelocation;
      std::vector<PartitionId> parts = controller_.ChoosePartitionsToMove(
          mjoin_.state(), req.amount_bytes);
      mjoin_.state().LockGroups(parts);
      OutgoingRelocation& out = outgoing_[req.relocation_id];
      out.receiver = req.receiver;
      out.partitions = parts;

      PartitionsToMove reply;
      reply.relocation_id = req.relocation_id;
      reply.sender = config_.engine_id;
      reply.partitions = parts;
      for (PartitionId p : parts) {
        const PartitionGroup* g = mjoin_.state().FindGroup(p);
        if (g != nullptr) reply.bytes += g->bytes();
      }
      Message msg;
      msg.type = MessageType::kPartitionsToMove;
      msg.from = config_.node_id;
      msg.to = config_.coordinator_node;
      msg.payload = std::move(reply);
      network_->Send(std::move(msg), now);
      if (parts.empty()) {
        // Nothing to move; the coordinator aborts this relocation.
        outgoing_.erase(req.relocation_id);
        mode_ = EngineMode::kNormal;
      }
      return;
    }
    case MessageType::kDrainMarker: {
      const auto& marker = std::get<DrainMarker>(message.payload);
      auto it = outgoing_.find(marker.relocation_id);
      if (it == outgoing_.end()) return;  // aborted relocation
      it->second.drain_markers += 1;
      MaybeFinishOutgoing(now, marker.relocation_id);
      return;
    }
    case MessageType::kTransferStates: {
      const auto& cmd = std::get<TransferStates>(message.payload);
      auto it = outgoing_.find(cmd.relocation_id);
      if (it == outgoing_.end()) return;
      it->second.transfer_authorized = true;
      MaybeFinishOutgoing(now, cmd.relocation_id);
      return;
    }
    case MessageType::kStateTransfer: {
      const auto& transfer = std::get<StateTransfer>(message.payload);
      int64_t installed_bytes = 0;
      for (const SerializedGroup& group : transfer.groups) {
        relocated_away_.erase(group.partition);
        const int64_t before = mjoin_.state().total_bytes();
        Status status = mjoin_.state().InstallGroup(group.bytes);
        if (!status.ok()) {
          DCAPE_LOG(kError) << "engine " << config_.engine_id
                            << " failed to install relocated group "
                            << group.partition << ": " << status.ToString();
          continue;
        }
        installed_bytes += mjoin_.state().total_bytes() - before;
        if (DCAPE_TRACE_ACTIVE(tracer_)) {
          tracer_->EmitInstant(
              lane(), now, obs::ev::kRelocInstallGroup,
              {obs::TraceArg::Int("partition", group.partition)},
              transfer.relocation_id);
        }
      }
      c_.relocations_in->Increment();
      c_.bytes_relocated_in->Add(installed_bytes);
      if (DCAPE_TRACE_ACTIVE(tracer_)) {
        tracer_->EmitInstant(
            lane(), now, obs::ev::kRelocInstall,
            {obs::TraceArg::Int("bytes", installed_bytes),
             obs::TraceArg::Int("groups",
                                static_cast<int64_t>(transfer.groups.size()))},
            transfer.relocation_id);
      }

      StatesInstalled ack;
      ack.relocation_id = transfer.relocation_id;
      ack.receiver = config_.engine_id;
      ack.bytes = installed_bytes;
      Message msg;
      msg.type = MessageType::kStatesInstalled;
      msg.from = config_.node_id;
      msg.to = config_.coordinator_node;
      msg.payload = ack;
      network_->Send(std::move(msg), now);
      return;
    }
    case MessageType::kForceSpill: {
      const auto& cmd = std::get<ForceSpill>(message.payload);
      std::vector<PartitionId> victims = controller_.ChooseForcedSpillVictims(
          mjoin_.state(), cmd.amount_bytes);
      // Report raw (in-memory) state bytes removed, not the encoded
      // on-disk size: the coordinator asked for `amount_bytes` of state.
      const int64_t before = spill_store_.total_raw_bytes();
      if (!victims.empty()) DoSpill(now, victims, /*forced=*/true);

      SpillComplete done;
      done.engine = config_.engine_id;
      done.bytes_spilled = spill_store_.total_raw_bytes() - before;
      Message msg;
      msg.type = MessageType::kSpillComplete;
      msg.from = config_.node_id;
      msg.to = config_.coordinator_node;
      msg.payload = done;
      network_->Send(std::move(msg), now);
      return;
    }
    default:
      DCAPE_LOG(kWarning) << "engine " << config_.engine_id
                          << " ignoring unexpected message "
                          << MessageTypeName(message.type);
      return;
  }
}

void QueryEngine::ProcessBatch(Tick now, const TupleBatch& batch) {
  std::vector<JoinResult> results;
  for (const Tuple& tuple : batch.tuples) {
    const PartitionId partition =
        StreamGenerator::PartitionOfKey(tuple.join_key);
    if (config_.invariants != nullptr &&
        relocated_away_.count(partition) > 0) {
      config_.invariants->Report(
          "engine " + std::to_string(config_.engine_id) +
          " processed a tuple for relocated-away partition " +
          std::to_string(partition));
    }
    mjoin_.Process(partition, tuple, &results);
    c_.tuples_processed->Increment();
    c_.tuples_per_stream[static_cast<size_t>(tuple.stream_id)]->Increment();
  }
  if (DCAPE_TRACE_ACTIVE(tracer_) && tracer_->verbose()) {
    tracer_->EmitInstant(
        lane(), now, obs::ev::kBatch,
        {obs::TraceArg::Int("tuples",
                            static_cast<int64_t>(batch.tuples.size())),
         obs::TraceArg::Int("results",
                            static_cast<int64_t>(results.size()))});
  }
  if (!results.empty()) {
    c_.results_produced->Add(static_cast<int64_t>(results.size()));
    outputs_in_window_ += static_cast<int64_t>(results.size());
    ResultBatch out;
    out.results = std::move(results);
    // Realtime runs measure end-to-end latency from the input batch's
    // wall-clock emission stamp (0 in the simulator).
    out.emit_wall_us = batch.emit_wall_us;
    network_->Send(
        MakeResultBatchMessage(config_.node_id, config_.sink_node,
                               std::move(out)),
        now);
  }
}

void QueryEngine::DrainPending(Tick now) {
  while (!pending_batches_.empty() && now >= busy_until_) {
    TupleBatch batch = std::move(pending_batches_.front());
    pending_batches_.pop_front();
    ProcessBatch(now, batch);
  }
}

void QueryEngine::DoSpill(Tick now, const std::vector<PartitionId>& victims,
                          bool forced) {
  const EngineMode previous_mode = mode_;
  mode_ = EngineMode::kStateSpill;
  StatusOr<MJoin::SpillOutcome> outcome = mjoin_.SpillPartitions(victims, now);
  DCAPE_CHECK(outcome.ok());
  c_.spilled_bytes->Add(outcome->bytes);
  if (forced) {
    c_.forced_spill_events->Increment();
  } else {
    c_.spill_events->Increment();
  }
  if (outcome->failed_groups > 0) {
    // Transient write failures: the affected groups were reinstalled in
    // memory (no state lost) and will be retried by a later spill check.
    c_.spill_write_failures->Add(outcome->failed_groups);
    DCAPE_LOG(kWarning) << "engine " << config_.engine_id << " kept "
                        << outcome->failed_groups
                        << " groups in memory after spill write failure: "
                        << outcome->first_error.ToString();
  }
  busy_until_ = std::max(busy_until_, now) + outcome->io_ticks;
  c_.busy_io_ticks->Add(outcome->io_ticks);
  c_.spill_io_ticks->Add(outcome->io_ticks);
  if (DCAPE_TRACE_ACTIVE(tracer_)) {
    tracer_->EmitComplete(
        lane(), now, obs::ev::kSpill, outcome->io_ticks,
        {obs::TraceArg::Int("groups", outcome->groups),
         obs::TraceArg::Int("bytes", outcome->bytes),
         obs::TraceArg::Int("forced", forced ? 1 : 0),
         obs::TraceArg::Int("failed_groups", outcome->failed_groups)});
  }
  DCAPE_LOG(kInfo) << "engine " << config_.engine_id << " spilled "
                   << outcome->groups << " groups, " << outcome->bytes
                   << " bytes" << (forced ? " (forced)" : "") << " at t="
                   << now;
  mode_ = previous_mode;
}

void QueryEngine::EvictExpired(Tick now) {
  const Tick cutoff = now - config_.window_ticks;
  if (cutoff <= 0) return;
  std::vector<StateManager::ExtractedGroup> evicted =
      mjoin_.state().EvictExpired(cutoff);
  if (evicted.empty()) return;

  // Partitions with disk-resident generations still owe cross-generation
  // results involving the expired tuples; preserve those as eviction
  // generations. Expired tuples of purely memory-resident partitions
  // produced everything they ever will (window + monotonic arrivals) and
  // can be dropped.
  std::set<PartitionId> has_disk;
  for (const SpillSegmentMeta& meta : spill_store_.segments()) {
    has_disk.insert(meta.partition);
  }
  int64_t dropped = 0;
  Tick io_total = 0;
  int64_t tuples_total = 0;
  for (StateManager::ExtractedGroup& group : evicted) {
    if (has_disk.count(group.partition) == 0) {
      c_.evicted_tuples->Add(group.tuple_count);
      tuples_total += group.tuple_count;
      ++dropped;
      continue;
    }
    StatusOr<Tick> io = spill_store_.WriteSegment(
        group.partition, now, group.blob, group.tuple_count,
        /*evicted=*/true, group.raw_bytes);
    if (!io.ok()) {
      // Transient write failure: keep the expired tuples in memory. The
      // window filter stops them from producing new runtime results, the
      // cleanup phase still crosses them against disk generations, and a
      // later eviction pass retries the write. Reinstalling our own
      // serialized blob cannot fail.
      c_.spill_write_failures->Increment();
      DCAPE_LOG(kWarning) << "engine " << config_.engine_id
                          << " kept expired group " << group.partition
                          << " in memory after eviction write failure: "
                          << io.status().ToString();
      DCAPE_CHECK(mjoin_.state().InstallGroup(group.blob).ok());
      continue;
    }
    c_.evicted_tuples->Add(group.tuple_count);
    tuples_total += group.tuple_count;
    busy_until_ = std::max(busy_until_, now) + *io;
    io_total += *io;
    c_.eviction_segments->Increment();
  }
  c_.busy_io_ticks->Add(io_total);
  if (DCAPE_TRACE_ACTIVE(tracer_)) {
    tracer_->EmitComplete(
        lane(), now, obs::ev::kEvict, io_total,
        {obs::TraceArg::Int("groups", static_cast<int64_t>(evicted.size())),
         obs::TraceArg::Int("tuples", tuples_total),
         obs::TraceArg::Int("dropped", dropped)});
  }
  DCAPE_LOG(kDebug) << "engine " << config_.engine_id << " evicted "
                    << evicted.size() << " groups (" << dropped
                    << " dropped) at t=" << now;
}

void QueryEngine::MaybeRestore(Tick now) {
  // Online restore is only sound without window semantics: with windows,
  // eviction generations may owe results against a generation that
  // restore would remove from the disk inventory (see window_test.cc).
  // The end-of-run cleanup handles everything in that mode.
  if (config_.window_ticks > 0) return;
  const int64_t watermark = static_cast<int64_t>(
      config_.restore.low_watermark *
      static_cast<double>(config_.spill.memory_threshold_bytes));
  if (state_bytes() >= watermark) return;
  if (spill_store_.segments().empty()) return;

  // Oldest generation whose partition this engine still owns (has a
  // live memory-resident group — otherwise the partition was relocated
  // away and restoring it here would create a second copy that a later
  // relocation could merge without producing the owed cross results),
  // is not mid-relocation, and fits under the spill threshold.
  const SpillSegmentMeta* chosen = nullptr;
  for (const SpillSegmentMeta& meta : spill_store_.segments()) {
    if (mjoin_.state().IsLocked(meta.partition)) continue;
    if (mjoin_.state().FindGroup(meta.partition) == nullptr) continue;
    if (state_bytes() + meta.bytes >
        config_.spill.memory_threshold_bytes) {
      continue;
    }
    chosen = &meta;
    break;
  }
  if (chosen == nullptr) return;

  Tick io_ticks = 0;
  StatusOr<std::string> blob = spill_store_.ReadSegment(*chosen, &io_ticks);
  if (!blob.ok()) {
    DCAPE_LOG(kError) << "engine " << config_.engine_id
                      << " failed to read segment for restore: "
                      << blob.status().ToString();
    return;
  }
  StatusOr<PartitionGroup> generation = PartitionGroup::Deserialize(*blob);
  if (!generation.ok()) {
    DCAPE_LOG(kError) << "engine " << config_.engine_id
                      << " failed to decode restored generation: "
                      << generation.status().ToString();
    return;
  }

  // Produce the cross-generation results this generation owes against
  // the current memory-resident group, then merge.
  std::vector<JoinResult> results;
  const PartitionGroup* resident =
      mjoin_.state().FindGroup(chosen->partition);
  const ResultProjection* projection =
      mjoin_.state().projection().has_value()
          ? &*mjoin_.state().projection()
          : nullptr;
  if (resident != nullptr) {
    CrossJoinGenerations(*generation, *resident, projection, &results,
                         config_.window_ticks);
  }

  const int64_t segment_id = chosen->segment_id;
  const int64_t bytes = chosen->bytes;
  DCAPE_CHECK(mjoin_.state().InstallGroup(*blob).ok());
  DCAPE_CHECK(spill_store_.RemoveSegment(segment_id).ok());
  busy_until_ = std::max(busy_until_, now) + io_ticks;
  c_.busy_io_ticks->Add(io_ticks);

  c_.restored_segments->Increment();
  c_.restored_bytes->Add(bytes);
  c_.restored_results->Add(static_cast<int64_t>(results.size()));
  if (DCAPE_TRACE_ACTIVE(tracer_)) {
    tracer_->EmitComplete(
        lane(), now, obs::ev::kRestore, io_ticks,
        {obs::TraceArg::Int("segment", segment_id),
         obs::TraceArg::Int("bytes", bytes),
         obs::TraceArg::Int("results",
                            static_cast<int64_t>(results.size()))});
  }
  DCAPE_LOG(kInfo) << "engine " << config_.engine_id << " restored segment "
                   << segment_id << " (" << bytes << " B), producing "
                   << results.size() << " deferred results at t=" << now;

  if (!results.empty()) {
    c_.results_produced->Add(static_cast<int64_t>(results.size()));
    outputs_in_window_ += static_cast<int64_t>(results.size());
    ResultBatch out;
    out.results = std::move(results);
    network_->Send(MakeResultBatchMessage(config_.node_id, config_.sink_node,
                                          std::move(out)),
                   now);
  }
}

void QueryEngine::MaybeFinishOutgoing(Tick now, int64_t relocation_id) {
  auto it = outgoing_.find(relocation_id);
  if (it == outgoing_.end()) return;
  OutgoingRelocation& out = it->second;
  if (!out.transfer_authorized ||
      out.drain_markers < config_.num_split_hosts) {
    return;
  }
  // The drain markers only prove the pre-pause tuples *arrived*; they can
  // still sit in pending_batches_ behind disk I/O (markers bypass the
  // queue via OnMessage). Shipping now would join those stragglers
  // against a fresh empty group and lose their results. OnTick retries
  // once the queue drains.
  if (!pending_batches_.empty()) return;

  // All pre-pause tuples have been processed and the coordinator
  // authorized the move: extract and ship the groups.
  std::vector<StateManager::ExtractedGroup> extracted =
      mjoin_.state().ExtractGroups(out.partitions);
  mjoin_.state().UnlockGroups(out.partitions);

  StateTransfer transfer;
  transfer.relocation_id = relocation_id;
  transfer.sender = config_.engine_id;
  int64_t bytes = 0;
  for (StateManager::ExtractedGroup& group : extracted) {
    bytes += group.bytes;
    transfer.groups.push_back(
        SerializedGroup{group.partition, std::move(group.blob)});
  }
  c_.relocations_out->Increment();
  c_.bytes_relocated_out->Add(bytes);
  if (DCAPE_TRACE_ACTIVE(tracer_)) {
    for (const SerializedGroup& group : transfer.groups) {
      tracer_->EmitInstant(
          lane(), now, obs::ev::kRelocShipGroup,
          {obs::TraceArg::Int("partition", group.partition),
           obs::TraceArg::Int("bytes",
                              static_cast<int64_t>(group.bytes.size()))},
          relocation_id);
    }
    tracer_->EmitInstant(
        lane(), now, obs::ev::kRelocShip,
        {obs::TraceArg::Int("groups",
                            static_cast<int64_t>(transfer.groups.size())),
         obs::TraceArg::Int("bytes", bytes),
         obs::TraceArg::Int("receiver", out.receiver)},
        relocation_id);
  }
  if (config_.invariants != nullptr) {
    for (PartitionId p : out.partitions) relocated_away_.insert(p);
  }

  Message msg;
  msg.type = MessageType::kStateTransfer;
  msg.from = config_.node_id;
  msg.to = static_cast<NodeId>(out.receiver);
  msg.payload = std::move(transfer);
  network_->Send(std::move(msg), now);

  DCAPE_LOG(kInfo) << "engine " << config_.engine_id << " relocated "
                   << extracted.size() << " groups (" << bytes
                   << " bytes) to engine " << out.receiver << " at t=" << now;
  outgoing_.erase(it);
  mode_ = EngineMode::kNormal;
}

void QueryEngine::OnTick(Tick now) {
  DrainPending(now);

  // An outgoing relocation may have been held back by queued batches
  // when its last drain marker arrived; retry now that the queue is
  // (possibly) empty. Ids are collected first: a finishing relocation
  // erases itself from outgoing_.
  if (!outgoing_.empty() && pending_batches_.empty()) {
    std::vector<int64_t> ready;
    ready.reserve(outgoing_.size());
    for (const auto& [id, out] : outgoing_) ready.push_back(id);
    for (int64_t id : ready) MaybeFinishOutgoing(now, id);
  }

  if (StrategySpillsLocally(config_.strategy) && now >= busy_until_ &&
      mode_ == EngineMode::kNormal) {
    std::vector<PartitionId> victims =
        controller_.CheckSpill(now, mjoin_.state());
    if (!victims.empty()) {
      DoSpill(now, victims, /*forced=*/false);
    }
  }

  if (config_.restore.enabled && now >= busy_until_ &&
      mode_ == EngineMode::kNormal && restore_timer_.Expired(now)) {
    MaybeRestore(now);
  }

  if (config_.window_ticks > 0 && now >= busy_until_ &&
      mode_ == EngineMode::kNormal && evict_timer_.Expired(now)) {
    EvictExpired(now);
  }

  if (stats_timer_.Expired(now)) {
    controller_.RollProductivityWindow(mjoin_.state());
    if (config_.coordinator_node == kInvalidNode) return;
    StatsReport report;
    report.engine = config_.engine_id;
    report.state_bytes = mjoin_.state().total_bytes();
    report.num_groups = mjoin_.state().group_count();
    report.outputs_in_window = outputs_in_window_;
    report.total_outputs = mjoin_.state().total_outputs();
    report.spilled_bytes = spill_store_.total_spilled_bytes();
    outputs_in_window_ = 0;
    network_->Send(MakeStatsReportMessage(config_.node_id,
                                          config_.coordinator_node, report),
                   now);
  }
}

}  // namespace dcape
