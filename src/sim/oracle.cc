#include "sim/oracle.h"

#include <cstdint>
#include <utility>

#include "engine/query_engine.h"
#include "tuple/tuple.h"

namespace dcape {
namespace sim {

std::map<std::string, int> ResultMultiset(const RunResult& result) {
  std::map<std::string, int> multiset;
  for (const JoinResult& r : result.collected) multiset[r.EncodeKey()] += 1;
  for (const JoinResult& r : result.cleanup.results) {
    multiset[r.EncodeKey()] += 1;
  }
  return multiset;
}

std::vector<int64_t> PerStreamProcessed(const RunResult& result,
                                        int num_streams) {
  std::vector<int64_t> sums(static_cast<size_t>(num_streams), 0);
  for (const QueryEngine::Counters& counters : result.engines) {
    for (size_t s = 0;
         s < counters.tuples_per_stream.size() && s < sums.size(); ++s) {
      sums[s] += counters.tuples_per_stream[s];
    }
  }
  return sums;
}

void DiffOutputs(const std::map<std::string, int>& got,
                 const std::map<std::string, int>& want,
                 std::vector<std::string>* violations) {
  int64_t missing = 0;
  int64_t extra = 0;
  std::vector<std::string> examples;
  auto note = [&](const std::string& key, int delta) {
    if (delta > 0) {
      extra += delta;
    } else {
      missing -= delta;
    }
    if (examples.size() < 3) {
      examples.push_back(key + (delta > 0 ? "(+" : "(") +
                         std::to_string(delta) + ")");
    }
  };
  for (const auto& [key, count] : want) {
    auto it = got.find(key);
    const int have = it == got.end() ? 0 : it->second;
    if (have != count) note(key, have - count);
  }
  for (const auto& [key, count] : got) {
    if (want.find(key) == want.end()) note(key, count);
  }
  if (missing == 0 && extra == 0) return;
  std::string text = "output mismatch vs oracle: missing=" +
                     std::to_string(missing) +
                     " extra=" + std::to_string(extra) + " e.g.";
  for (const std::string& example : examples) text += " " + example;
  violations->push_back(std::move(text));
}

}  // namespace sim
}  // namespace dcape
