#include "sim/fault_plan.h"

#include <algorithm>

#include "common/check.h"

namespace dcape {
namespace sim {

bool FaultSpec::AnyEnabled() const {
  return delay_prob > 0 || duplicate_batch_prob > 0 || read_error_prob > 0 ||
         corrupt_read_prob > 0 || write_error_prob > 0 ||
         latch_write_prob > 0 || stall_prob > 0;
}

std::string FaultSpec::Describe() const {
  std::string out;
  auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (delay_prob > 0) add("delay");
  if (duplicate_batch_prob > 0) add("duplicate");
  if (read_error_prob > 0) add("disk-read");
  if (corrupt_read_prob > 0) add("corrupt");
  if (write_error_prob > 0) add("disk-write");
  if (latch_write_prob > 0) add("disk-latch");
  if (stall_prob > 0) add("stall");
  if (out.empty()) out = "none";
  return out;
}

void FaultSpec::MergeMax(const FaultSpec& other) {
  delay_prob = std::max(delay_prob, other.delay_prob);
  max_extra_delay = std::max(max_extra_delay, other.max_extra_delay);
  duplicate_batch_prob =
      std::max(duplicate_batch_prob, other.duplicate_batch_prob);
  read_error_prob = std::max(read_error_prob, other.read_error_prob);
  corrupt_read_prob = std::max(corrupt_read_prob, other.corrupt_read_prob);
  write_error_prob = std::max(write_error_prob, other.write_error_prob);
  latch_write_prob = std::max(latch_write_prob, other.latch_write_prob);
  stall_prob = std::max(stall_prob, other.stall_prob);
  max_stall_ticks = std::max(max_stall_ticks, other.max_stall_ticks);
}

FaultPlan::FaultPlan(const FaultSpec& spec, uint64_t seed, int num_engines)
    : spec_(spec),
      net_rng_(seed * 0x9E3779B97F4A7C15ULL + 1),
      stall_rng_(seed * 0x9E3779B97F4A7C15ULL + 2) {
  DCAPE_CHECK_GT(num_engines, 0);
  disks_.reserve(static_cast<size_t>(num_engines));
  for (int e = 0; e < num_engines; ++e) {
    disks_.push_back(DiskState{
        Rng(seed * 0x9E3779B97F4A7C15ULL + 100 + static_cast<uint64_t>(e)),
        false});
  }
}

Tick FaultPlan::SampleExtraDelay(const Message& message) {
  (void)message;
  if (healed() || spec_.delay_prob <= 0 || spec_.max_extra_delay <= 0) {
    return 0;
  }
  if (!net_rng_.Bernoulli(spec_.delay_prob)) return 0;
  return 1 + static_cast<Tick>(net_rng_.Uniform(
                 static_cast<uint64_t>(spec_.max_extra_delay)));
}

bool FaultPlan::SampleDuplicate(const Message& message) {
  if (healed() || spec_.duplicate_batch_prob <= 0) return false;
  // Only the data plane is duplicated: the point of the bug mode is to
  // plant an output-visible defect the oracle must catch, not to break
  // the protocol channels in ways a real TCP link never would.
  if (message.type != MessageType::kTupleBatch) return false;
  return net_rng_.Bernoulli(spec_.duplicate_batch_prob);
}

FaultPlan::DiskFault FaultPlan::SampleRead(EngineId engine) {
  if (healed()) return DiskFault::kNone;
  DiskState& disk = disks_[static_cast<size_t>(engine)];
  if (spec_.read_error_prob > 0 &&
      disk.rng.Bernoulli(spec_.read_error_prob)) {
    return DiskFault::kError;
  }
  if (spec_.corrupt_read_prob > 0 &&
      disk.rng.Bernoulli(spec_.corrupt_read_prob)) {
    return DiskFault::kCorrupt;
  }
  return DiskFault::kNone;
}

FaultPlan::DiskFault FaultPlan::SampleWrite(EngineId engine) {
  if (healed()) return DiskFault::kNone;
  DiskState& disk = disks_[static_cast<size_t>(engine)];
  if (disk.write_latched) return DiskFault::kError;
  if (spec_.latch_write_prob > 0 &&
      disk.rng.Bernoulli(spec_.latch_write_prob)) {
    disk.write_latched = true;
    return DiskFault::kError;
  }
  if (spec_.write_error_prob > 0 &&
      disk.rng.Bernoulli(spec_.write_error_prob)) {
    return DiskFault::kError;
  }
  return DiskFault::kNone;
}

bool FaultPlan::write_latched(EngineId engine) const {
  return disks_[static_cast<size_t>(engine)].write_latched;
}

Tick FaultPlan::SampleStall(EngineId engine) {
  (void)engine;
  if (healed() || spec_.stall_prob <= 0 || spec_.max_stall_ticks <= 0) {
    return 0;
  }
  if (!stall_rng_.Bernoulli(spec_.stall_prob)) return 0;
  return 1 + static_cast<Tick>(stall_rng_.Uniform(
                 static_cast<uint64_t>(spec_.max_stall_ticks)));
}

}  // namespace sim
}  // namespace dcape
