#ifndef DCAPE_SIM_ORACLE_H_
#define DCAPE_SIM_ORACLE_H_

#include <map>
#include <string>
#include <vector>

#include "runtime/run_result.h"

namespace dcape {
namespace sim {

/// Differential-oracle helpers shared by the chaos harness and the
/// realtime driver's `--check-oracle` mode. Both compare a run whose
/// timing is untrusted (fault-injected simulation, wall-clock realtime)
/// against a golden deterministic run of the same input, using the two
/// properties adaptation must preserve: the final joined output as a
/// multiset, and the per-stream count of tuples processed.

/// The run's complete output (runtime-collected ∪ cleanup results) as an
/// encoded-key multiset. Requires the run to have collected results.
std::map<std::string, int> ResultMultiset(const RunResult& result);

/// Tuples processed per stream, summed over all engines — relocation
/// moves work between engines but never changes these totals.
std::vector<int64_t> PerStreamProcessed(const RunResult& result,
                                        int num_streams);

/// Appends a violation describing any multiset difference (missing /
/// extra results with examples); appends nothing when `got == want`.
void DiffOutputs(const std::map<std::string, int>& got,
                 const std::map<std::string, int>& want,
                 std::vector<std::string>* violations);

}  // namespace sim
}  // namespace dcape

#endif  // DCAPE_SIM_ORACLE_H_
