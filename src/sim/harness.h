#ifndef DCAPE_SIM_HARNESS_H_
#define DCAPE_SIM_HARNESS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/fault_plan.h"
#include "sim/scenario.h"

namespace dcape {
namespace sim {

/// Inputs of one chaos trial.
struct TrialOptions {
  uint64_t seed = 0;
  /// Merged (field-wise max) onto the generated fault spec — used by the
  /// bug-injection tests to force e.g. duplicate deliveries.
  FaultSpec extra_faults;
  /// When non-null, replaces the fault spec entirely (the shrinker's
  /// handle for disabling classes one at a time).
  const FaultSpec* override_faults = nullptr;
  /// Per-trial progress line (null = silent).
  std::ostream* out = nullptr;
};

/// Outcome of one chaos trial. `violations` merges the invariant
/// recorder's reports, the differential oracle's diffs, and the
/// end-of-run quiescence checks; sorted, so the list — like everything
/// else here — is identical on replay.
struct TrialOutcome {
  uint64_t seed = 0;
  bool passed = false;
  /// The sampled scenario as a human-readable flag line.
  std::string flags;
  std::vector<std::string> violations;
  /// Deterministic digest of the whole trial (flags, key counters,
  /// violations). Two runs of the same seed must produce equal
  /// signatures — the replay test asserts exactly this.
  std::string signature;
  /// Minimal still-failing fault mix, filled in when the sweep ran the
  /// shrinker on this failure ("none" = fails without any fault).
  std::string shrunk_faults;
};

/// Runs one trial: generates the scenario from the seed, runs it under
/// the fault plan (healed before drain/cleanup), then runs the all-mem
/// serial golden configuration of the same scenario and diffs the final
/// join output and per-stream tuple accounting.
TrialOutcome RunTrial(const TrialOptions& options);

/// Inputs of a trial sweep.
struct HarnessOptions {
  int trials = 50;
  uint64_t base_seed = 0;  // trial i runs with seed base_seed + i
  FaultSpec extra_faults;
  /// Greedily shrink each failure's fault mix before reporting.
  bool shrink = true;
  bool verbose = false;
  std::ostream* out = nullptr;
};

struct HarnessReport {
  int trials = 0;
  int failures = 0;
  std::vector<TrialOutcome> failed;
};

HarnessReport RunTrials(const HarnessOptions& options);

/// Greedy shrinker: re-runs the failing seed with one fault class
/// disabled at a time, keeping every disable that still fails. Returns
/// the description of the minimal still-failing fault mix ("none" means
/// the failure does not need any fault — a genuine product bug).
std::string ShrinkFailure(uint64_t seed, const FaultSpec& extra_faults,
                          std::ostream* out);

}  // namespace sim
}  // namespace dcape

#endif  // DCAPE_SIM_HARNESS_H_
