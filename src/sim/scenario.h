#ifndef DCAPE_SIM_SCENARIO_H_
#define DCAPE_SIM_SCENARIO_H_

#include <cstdint>
#include <string>

#include "runtime/cluster_config.h"
#include "sim/fault_plan.h"

namespace dcape {
namespace sim {

/// One randomly generated chaos trial: a cluster/workload/strategy
/// configuration plus the fault mix to throw at it. A Scenario is a pure
/// function of the seed, so printing the seed is all a failing trial
/// needs for bit-identical replay.
struct Scenario {
  ClusterConfig config;
  FaultSpec faults;
  /// Human-readable `--flag=value` rendering of the sampled choices,
  /// printed when a trial fails (the config itself replays from seed).
  std::string flags;
};

/// Samples a scenario from `seed`. Every knob the strategies react to is
/// in play: cluster size, strategy, segment format per engine, spill /
/// relocation thresholds and timers, skewed and fluctuating workloads,
/// window semantics, online restore, worker threads, async spill I/O.
/// Fault classes are enabled independently; write faults are never
/// combined with async I/O (a failed write after the metadata committed
/// is genuine data loss, not a survivable fault).
Scenario GenerateScenario(uint64_t seed);

}  // namespace sim
}  // namespace dcape

#endif  // DCAPE_SIM_SCENARIO_H_
