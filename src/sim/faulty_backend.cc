#include "sim/faulty_backend.h"

#include <utility>

#include "common/check.h"

namespace dcape {
namespace sim {

FaultyBackend::FaultyBackend(std::unique_ptr<DiskBackend> inner,
                             FaultPlan* plan, EngineId engine)
    : inner_(std::move(inner)), plan_(plan), engine_(engine) {
  DCAPE_CHECK(inner_ != nullptr);
  DCAPE_CHECK(plan_ != nullptr);
}

Status FaultyBackend::Write(const std::string& name, std::string_view data) {
  if (plan_->SampleWrite(engine_) == FaultPlan::DiskFault::kError) {
    return Status::Internal("injected disk write failure on " + name);
  }
  return inner_->Write(name, data);
}

StatusOr<std::string> FaultyBackend::Read(const std::string& name) {
  const FaultPlan::DiskFault fault = plan_->SampleRead(engine_);
  if (fault == FaultPlan::DiskFault::kError) {
    return Status::Internal("injected disk read failure on " + name);
  }
  DCAPE_ASSIGN_OR_RETURN(std::string data, inner_->Read(name));
  if (fault == FaultPlan::DiskFault::kCorrupt) {
    // Truncation is the one corruption the store detects with certainty
    // (segment size check) — the data on disk stays intact, so a healed
    // re-read during cleanup still succeeds.
    data.resize(data.size() / 2);
  }
  return data;
}

Status FaultyBackend::Remove(const std::string& name) {
  return inner_->Remove(name);
}

std::vector<std::string> FaultyBackend::List() const { return inner_->List(); }

}  // namespace sim
}  // namespace dcape
