#ifndef DCAPE_SIM_FAULT_PLAN_H_
#define DCAPE_SIM_FAULT_PLAN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/virtual_clock.h"
#include "net/message.h"

namespace dcape {
namespace sim {

/// Which faults a chaos trial injects, and how aggressively. All
/// probabilities are per-event (per message, per disk operation, per
/// engine-tick); zero disables the class. A trial's behaviour is a pure
/// function of (FaultSpec, seed), which is what makes every failure
/// replayable bit-for-bit.
struct FaultSpec {
  /// Network: probability that a message is delayed by an extra
  /// uniform(1, max_extra_delay) ticks. Delays are applied before the
  /// per-link FIFO clamp, so in-order delivery — which the relocation
  /// protocol's drain markers rely on — is preserved; messages on
  /// *different* links still reorder freely.
  double delay_prob = 0.0;
  Tick max_extra_delay = 0;
  /// Deliberate protocol violation (tests only): probability that a
  /// tuple batch is delivered twice. A correct harness MUST flag this.
  double duplicate_batch_prob = 0.0;

  /// Disk: per-operation probabilities of a transient read error, a
  /// corrupted (truncated) read, and a transient write error; plus the
  /// per-write probability that the disk latches broken (every later
  /// write fails until Heal).
  double read_error_prob = 0.0;
  double corrupt_read_prob = 0.0;
  double write_error_prob = 0.0;
  double latch_write_prob = 0.0;

  /// Engine: per-engine-per-tick probability of a stall of
  /// uniform(1, max_stall_ticks) ticks (models GC pauses / CPU steal);
  /// queued batches wait the stall out.
  double stall_prob = 0.0;
  Tick max_stall_ticks = 0;

  /// True when at least one fault class is enabled.
  bool AnyEnabled() const;
  /// Comma-separated names of the enabled fault classes ("none" when
  /// everything is off) — the shrinker's output vocabulary.
  std::string Describe() const;
  /// Field-wise union with `other` (max of probabilities/bounds); used
  /// to overlay deliberate-bug specs onto generated ones.
  void MergeMax(const FaultSpec& other);
};

/// The seeded fault source for one chaos trial.
///
/// Determinism contract: network draws happen only on the main thread
/// (Network::Enqueue runs under the tick barrier's merge), disk draws
/// come from a per-engine stream whose operation order is fixed by the
/// virtual schedule, and stall draws are made in engine-id order each
/// tick. Re-running with the same spec and seed therefore replays the
/// identical fault sequence for any --threads value.
///
/// Heal() turns every fault off; the harness calls it between the
/// runtime phase and drain/cleanup so that faults stay output-
/// transparent (the differential oracle demands exact equality).
class FaultPlan {
 public:
  FaultPlan(const FaultSpec& spec, uint64_t seed, int num_engines);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Extra delivery delay for `message` (0 = none). Main thread only.
  Tick SampleExtraDelay(const Message& message);
  /// True when `message` should be delivered twice (bug-injection mode;
  /// only tuple batches are ever duplicated). Main thread only.
  bool SampleDuplicate(const Message& message);

  /// Outcome of one disk operation on `engine`'s backend.
  enum class DiskFault {
    kNone,
    kError,    // the operation fails with an injected Status
    kCorrupt,  // reads only: the blob comes back truncated
  };
  DiskFault SampleRead(EngineId engine);
  DiskFault SampleWrite(EngineId engine);
  /// True once engine's disk has latched broken (until Heal).
  bool write_latched(EngineId engine) const;

  /// Stall duration for `engine` this tick (0 = none). Called once per
  /// engine per tick, in engine-id order, on the main thread.
  Tick SampleStall(EngineId engine);

  /// Disables every fault from now on. Thread-safe (the async I/O
  /// worker may still be consulting the plan for queued writes).
  void Heal() { healed_.store(true, std::memory_order_release); }
  bool healed() const { return healed_.load(std::memory_order_acquire); }

  const FaultSpec& spec() const { return spec_; }

 private:
  struct DiskState {
    Rng rng;
    bool write_latched = false;
  };

  FaultSpec spec_;
  Rng net_rng_;
  Rng stall_rng_;
  std::vector<DiskState> disks_;
  std::atomic<bool> healed_{false};
};

}  // namespace sim
}  // namespace dcape

#endif  // DCAPE_SIM_FAULT_PLAN_H_
