#include "sim/harness.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "runtime/cluster.h"
#include "sim/invariants.h"
#include "sim/oracle.h"
#include "tuple/tuple.h"

namespace dcape {
namespace sim {

namespace {

/// The shrinker's unit of work: a nameable, independently disableable
/// group of FaultSpec fields.
constexpr int kNumFaultClasses = 6;

const char* FaultClassName(int cls) {
  switch (cls) {
    case 0: return "delay";
    case 1: return "duplicate";
    case 2: return "disk-read";
    case 3: return "corrupt";
    case 4: return "disk-write";
    default: return "stall";
  }
}

bool FaultClassEnabled(const FaultSpec& spec, int cls) {
  switch (cls) {
    case 0: return spec.delay_prob > 0;
    case 1: return spec.duplicate_batch_prob > 0;
    case 2: return spec.read_error_prob > 0;
    case 3: return spec.corrupt_read_prob > 0;
    case 4: return spec.write_error_prob > 0 || spec.latch_write_prob > 0;
    default: return spec.stall_prob > 0;
  }
}

void DisableFaultClass(FaultSpec* spec, int cls) {
  switch (cls) {
    case 0:
      spec->delay_prob = 0;
      spec->max_extra_delay = 0;
      break;
    case 1: spec->duplicate_batch_prob = 0; break;
    case 2: spec->read_error_prob = 0; break;
    case 3: spec->corrupt_read_prob = 0; break;
    case 4:
      spec->write_error_prob = 0;
      spec->latch_write_prob = 0;
      break;
    default:
      spec->stall_prob = 0;
      spec->max_stall_ticks = 0;
      break;
  }
}

}  // namespace

TrialOutcome RunTrial(const TrialOptions& options) {
  Scenario scenario = GenerateScenario(options.seed);
  FaultSpec faults = scenario.faults;
  faults.MergeMax(options.extra_faults);
  if (options.override_faults != nullptr) faults = *options.override_faults;

  TrialOutcome outcome;
  outcome.seed = options.seed;
  outcome.flags = scenario.flags;
  if (options.override_faults != nullptr ||
      options.extra_faults.AnyEnabled()) {
    outcome.flags += " [active-faults=" + faults.Describe() + "]";
  }

  auto plan = std::make_shared<FaultPlan>(faults, options.seed,
                                          scenario.config.num_engines);
  auto recorder = std::make_shared<InvariantRecorder>();
  ClusterConfig chaos_config = scenario.config;
  chaos_config.fault_plan = plan;
  chaos_config.invariants = recorder;
  // Structured tracing doubles as an invariant source: the span-balance
  // check below needs the relocation protocol spans.
  chaos_config.trace = true;

  RunResult chaos;
  {
    Cluster cluster(chaos_config);
    cluster.RunUntil(chaos_config.run_duration);
    // Heal before draining: every fault is designed to be transient or
    // recoverable, so once injection stops, the drain + cleanup must
    // reach the exact all-mem result set. A fault that survives healing
    // (lost state, ghost segment) is precisely what the oracle flags.
    plan->Heal();
    cluster.Drain();
    chaos = cluster.Collect();
    StatusOr<CleanupStats> cleanup = cluster.RunCleanup();
    if (cleanup.ok()) {
      chaos.cleanup = std::move(cleanup).value();
    } else {
      recorder->Report("cleanup failed after heal: " +
                       cleanup.status().ToString());
    }

    // Quiescence invariants: after drain + heal nothing may be left in
    // flight anywhere in the protocol.
    const Tick end = cluster.now();
    for (EngineId e = 0; e < cluster.num_engines(); ++e) {
      const QueryEngine& engine = cluster.engine(e);
      const std::string who = "engine " + std::to_string(e);
      if (!engine.Idle(end)) {
        recorder->Report(who + " not idle at end of run");
      }
      if (engine.mode() != EngineMode::kNormal) {
        recorder->Report(who + " not in normal mode at end of run");
      }
      if (engine.outgoing_relocation_count() != 0) {
        recorder->Report(who + " has an unfinished outgoing relocation");
      }
    }
    for (int h = 0; h < cluster.num_split_hosts(); ++h) {
      SplitHost& host = cluster.split_host(h);
      const std::string who = "split host " + std::to_string(h);
      if (host.total_buffered() != 0) {
        recorder->Report(who + " leaked " +
                         std::to_string(host.total_buffered()) +
                         " buffered tuples");
      }
      if (host.paused_partition_count() != 0) {
        recorder->Report(who + " still has paused partitions");
      }
    }
    if (cluster.coordinator().relocation_in_flight()) {
      recorder->Report("coordinator relocation still in flight at end");
    }
    const GlobalCoordinator::Counters& cc = cluster.coordinator().counters();
    if (cc.relocations_started !=
        cc.relocations_completed + cc.relocations_aborted) {
      recorder->Report(
          "relocation accounting: started=" +
          std::to_string(cc.relocations_started) + " completed=" +
          std::to_string(cc.relocations_completed) + " aborted=" +
          std::to_string(cc.relocations_aborted));
    }
    // Span-balance invariant: every relocation-protocol span that opened
    // in the structured trace must have closed by quiescence — under any
    // injected fault mix. An unclosed span is a stuck protocol phase.
    for (const std::string& line : cluster.tracer()->OpenSpans()) {
      recorder->Report("trace span balance: " + line);
    }
  }

  // The differential oracle: the same scenario run all-in-memory,
  // serial, fault-free. Workload generation is seed-deterministic and
  // timing-independent, so any strategy under any tolerated fault mix
  // must produce this exact result multiset (runtime ∪ cleanup).
  ClusterConfig golden_config = scenario.config;
  golden_config.strategy = AdaptationStrategy::kNoAdaptation;
  golden_config.num_threads = 1;
  golden_config.async_spill_io = false;
  golden_config.restore.enabled = false;
  golden_config.per_engine_segment_format.clear();
  Cluster golden_cluster(golden_config);
  RunResult golden = golden_cluster.Run();

  std::vector<std::string> violations = recorder->violations();
  DiffOutputs(ResultMultiset(chaos), ResultMultiset(golden), &violations);

  if (chaos.tuples_generated != golden.tuples_generated) {
    violations.push_back(
        "generator mismatch: chaos=" +
        std::to_string(chaos.tuples_generated) +
        " golden=" + std::to_string(golden.tuples_generated));
  }
  const int num_streams = scenario.config.workload.num_streams;
  const std::vector<int64_t> chaos_streams =
      PerStreamProcessed(chaos, num_streams);
  const std::vector<int64_t> golden_streams =
      PerStreamProcessed(golden, num_streams);
  int64_t chaos_total = 0;
  for (int s = 0; s < num_streams; ++s) {
    chaos_total += chaos_streams[static_cast<size_t>(s)];
    if (chaos_streams[static_cast<size_t>(s)] !=
        golden_streams[static_cast<size_t>(s)]) {
      violations.push_back(
          "stream " + std::to_string(s) + " tuple accounting: processed " +
          std::to_string(chaos_streams[static_cast<size_t>(s)]) +
          " vs oracle " +
          std::to_string(golden_streams[static_cast<size_t>(s)]));
    }
  }
  if (chaos_total != chaos.tuples_generated) {
    violations.push_back("tuple accounting: engines processed " +
                         std::to_string(chaos_total) + " of " +
                         std::to_string(chaos.tuples_generated) +
                         " generated");
  }

  std::sort(violations.begin(), violations.end());
  outcome.violations = std::move(violations);
  outcome.passed = outcome.violations.empty();

  std::ostringstream sig;
  sig << "seed=" << outcome.seed << "|" << outcome.flags
      << "|results=" << chaos.runtime_results << "+"
      << chaos.cleanup.result_count << "|tuples=" << chaos.tuples_generated
      << "|reloc=" << chaos.coordinator.relocations_started << "/"
      << chaos.coordinator.relocations_completed << "/"
      << chaos.coordinator.relocations_aborted
      << "|spills=" << chaos.spill_events << ":" << chaos.spilled_bytes;
  for (const std::string& v : outcome.violations) sig << "|!" << v;
  outcome.signature = sig.str();

  if (options.out != nullptr) {
    *options.out << (outcome.passed ? "ok   " : "FAIL ") << "seed="
                 << outcome.seed << " " << outcome.flags << "\n";
  }
  return outcome;
}

HarnessReport RunTrials(const HarnessOptions& options) {
  HarnessReport report;
  report.trials = options.trials;
  for (int i = 0; i < options.trials; ++i) {
    TrialOptions trial;
    trial.seed = options.base_seed + static_cast<uint64_t>(i);
    trial.extra_faults = options.extra_faults;
    trial.out = options.verbose ? options.out : nullptr;
    TrialOutcome outcome = RunTrial(trial);
    if (!outcome.passed) {
      ++report.failures;
      if (options.shrink) {
        outcome.shrunk_faults =
            ShrinkFailure(outcome.seed, options.extra_faults, nullptr);
      }
      if (options.out != nullptr) {
        *options.out << "FAIL seed=" << outcome.seed << "\n  " << outcome.flags
                     << "\n";
        for (const std::string& v : outcome.violations) {
          *options.out << "  violation: " << v << "\n";
        }
        *options.out << "  replay: dcape_chaos --trials=1 --seed="
                     << outcome.seed << "\n";
        if (!outcome.shrunk_faults.empty()) {
          *options.out << "  shrunk faults: " << outcome.shrunk_faults << "\n";
        }
      }
      report.failed.push_back(std::move(outcome));
    }
  }
  if (options.out != nullptr) {
    if (report.failures == 0) {
      *options.out << "all " << report.trials << " trials passed\n";
    } else {
      *options.out << report.failures << " of " << report.trials
                   << " trials failed\n";
    }
  }
  return report;
}

std::string ShrinkFailure(uint64_t seed, const FaultSpec& extra_faults,
                          std::ostream* out) {
  Scenario scenario = GenerateScenario(seed);
  FaultSpec current = scenario.faults;
  current.MergeMax(extra_faults);
  for (int cls = 0; cls < kNumFaultClasses; ++cls) {
    if (!FaultClassEnabled(current, cls)) continue;
    FaultSpec candidate = current;
    DisableFaultClass(&candidate, cls);
    TrialOptions trial;
    trial.seed = seed;
    trial.override_faults = &candidate;
    if (!RunTrial(trial).passed) {
      current = candidate;  // still fails without this class — drop it
      if (out != nullptr) {
        *out << "  shrink: dropped " << FaultClassName(cls) << "\n";
      }
    } else if (out != nullptr) {
      *out << "  shrink: " << FaultClassName(cls) << " is required\n";
    }
  }
  return current.Describe();
}

}  // namespace sim
}  // namespace dcape
