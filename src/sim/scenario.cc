#include "sim/scenario.h"

#include <cstdio>

#include "common/rng.h"
#include "common/units.h"

namespace dcape {
namespace sim {

namespace {

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", value);
  return buf;
}

}  // namespace

Scenario GenerateScenario(uint64_t seed) {
  Rng rng(seed ^ 0xC8A7C4B1D2E35F69ULL);
  auto pick_int = [&rng](int lo, int hi) {  // inclusive range
    return lo + static_cast<int>(rng.Uniform(static_cast<uint64_t>(hi - lo + 1)));
  };
  auto pick_tick = [&rng](Tick lo, Tick hi) {
    return lo + static_cast<Tick>(rng.Uniform(static_cast<uint64_t>(hi - lo + 1)));
  };
  auto pick_double = [&rng](double lo, double hi) {
    return lo + rng.NextDouble() * (hi - lo);
  };
  auto chance = [&rng](double p) { return rng.Bernoulli(p); };

  Scenario scenario;
  ClusterConfig& config = scenario.config;
  std::string& flags = scenario.flags;
  auto flag = [&flags](const std::string& text) {
    if (!flags.empty()) flags += " ";
    flags += text;
  };

  config.seed = seed;
  config.workload.seed = seed + 1;

  config.num_engines = pick_int(2, 4);
  flag("--engines=" + std::to_string(config.num_engines));
  config.workload.num_streams = pick_int(2, 3);
  flag("--streams=" + std::to_string(config.workload.num_streams));
  config.num_split_hosts = pick_int(1, 2);
  flag("--split-hosts=" + std::to_string(config.num_split_hosts));
  config.num_threads = pick_int(1, 3);
  flag("--threads=" + std::to_string(config.num_threads));

  config.workload.num_partitions = pick_int(8, 16);
  flag("--partitions=" + std::to_string(config.workload.num_partitions));
  config.workload.inter_arrival_ticks = pick_tick(8, 14);
  config.workload.payload_bytes = pick_int(16, 48);
  const int keys_per_partition = pick_int(20, 40);
  config.workload.classes = {PartitionClass{
      /*join_rate=*/1.0,
      /*tuple_range=*/keys_per_partition * config.workload.num_partitions}};

  if (chance(0.5)) {
    // Skewed initial placement: engine 0 starts with 50–80% of the
    // partitions, which puts relocation / spill under pressure early.
    std::vector<double> fractions(static_cast<size_t>(config.num_engines));
    fractions[0] = pick_double(0.5, 0.8);
    for (int e = 1; e < config.num_engines; ++e) {
      fractions[static_cast<size_t>(e)] =
          (1.0 - fractions[0]) / (config.num_engines - 1);
    }
    config.placement_fractions = fractions;
    flag("--placement-skew=" + FormatDouble(fractions[0]));
  }

  if (chance(0.3)) {
    config.workload.fluctuation.enabled = true;
    config.workload.fluctuation.phase_ticks = pick_tick(
        SecondsToTicks(3), SecondsToTicks(6));
    config.workload.fluctuation.hot_multiplier = pick_double(4.0, 10.0);
    for (PartitionId p = 0; p < config.workload.num_partitions / 2; ++p) {
      config.workload.fluctuation.set_a.push_back(p);
    }
    flag("--fluctuation");
  }

  if (chance(0.25)) {
    config.join_window_ticks = pick_tick(SecondsToTicks(4), SecondsToTicks(10));
    flag("--window-ticks=" + std::to_string(config.join_window_ticks));
  }

  static constexpr AdaptationStrategy kStrategies[] = {
      AdaptationStrategy::kNoAdaptation, AdaptationStrategy::kSpillOnly,
      AdaptationStrategy::kRelocationOnly, AdaptationStrategy::kLazyDisk,
      AdaptationStrategy::kActiveDisk,
  };
  config.strategy = kStrategies[rng.Uniform(5)];
  flag(std::string("--strategy=") + StrategyName(config.strategy));

  config.spill.memory_threshold_bytes =
      static_cast<int64_t>(pick_int(32, 96)) * kKiB;
  flag("--threshold-kib=" +
       std::to_string(config.spill.memory_threshold_bytes / kKiB));
  config.spill.spill_fraction = pick_double(0.2, 0.5);
  static constexpr SpillPolicy kPolicies[] = {
      SpillPolicy::kLeastProductiveFirst, SpillPolicy::kMostProductiveFirst,
      SpillPolicy::kLargestFirst, SpillPolicy::kSmallestFirst,
      SpillPolicy::kRandom,
  };
  config.spill.policy = kPolicies[rng.Uniform(5)];
  config.spill.ss_timer_period = pick_tick(SecondsToTicks(1), SecondsToTicks(2));

  if (StrategySpillsLocally(config.strategy) && chance(0.3)) {
    config.restore.enabled = true;
    config.restore.low_watermark = pick_double(0.3, 0.6);
    config.restore.check_period = pick_tick(SecondsToTicks(1), SecondsToTicks(3));
    flag("--restore");
  }

  config.relocation.model = chance(0.3) ? RelocationModel::kGlobalRebalance
                                        : RelocationModel::kPairwise;
  config.relocation.theta_r = pick_double(0.5, 0.9);
  flag("--theta=" + FormatDouble(config.relocation.theta_r));
  config.relocation.sr_timer_period =
      pick_tick(SecondsToTicks(1), SecondsToTicks(3));
  config.relocation.min_time_between =
      pick_tick(SecondsToTicks(2), SecondsToTicks(6));
  config.relocation.min_relocate_bytes =
      static_cast<int64_t>(pick_int(2, 8)) * kKiB;

  config.active_disk.lambda = pick_double(1.5, 3.0);
  config.active_disk.lb_timer_period =
      pick_tick(SecondsToTicks(2), SecondsToTicks(4));
  config.active_disk.memory_pressure = pick_double(0.3, 0.6);
  config.active_disk.max_forced_spill_bytes = 512 * kKiB;

  // Mixed segment formats: each engine independently encodes its spilled
  // and relocated state as v1 or v2, so cross-format installs happen
  // whenever a relocation crosses the format boundary.
  std::string formats;
  for (int e = 0; e < config.num_engines; ++e) {
    const bool v2 = chance(0.5);
    config.per_engine_segment_format.push_back(v2 ? SegmentFormat::kV2
                                                  : SegmentFormat::kV1);
    if (!formats.empty()) formats += ",";
    formats += v2 ? "v2" : "v1";
  }
  flag("--segment-formats=" + formats);

  config.async_spill_io = chance(0.25);
  if (config.async_spill_io) flag("--async-io");

  config.run_duration = pick_tick(SecondsToTicks(10), SecondsToTicks(20));
  flag("--duration-ticks=" + std::to_string(config.run_duration));
  config.sample_period = SecondsToTicks(5);
  config.stats_period = pick_tick(SecondsToTicks(1), SecondsToTicks(2));

  // The differential oracle needs every result the run produced.
  config.collect_results = true;
  config.run_cleanup = true;
  config.cleanup.collect_results = true;

  FaultSpec& faults = scenario.faults;
  if (chance(0.5)) {
    faults.delay_prob = pick_double(0.05, 0.3);
    faults.max_extra_delay = pick_tick(2, 12);
  }
  if (chance(0.4)) faults.read_error_prob = pick_double(0.02, 0.1);
  if (chance(0.3)) faults.corrupt_read_prob = pick_double(0.02, 0.08);
  if (chance(0.4)) faults.write_error_prob = pick_double(0.02, 0.08);
  if (chance(0.1)) faults.latch_write_prob = pick_double(0.002, 0.01);
  if (chance(0.4)) {
    faults.stall_prob = pick_double(0.0005, 0.002);
    faults.max_stall_ticks = pick_tick(20, 120);
  }
  if (config.async_spill_io) {
    // An async write that fails after its segment's metadata committed is
    // real data loss; the generator never pairs the two.
    faults.write_error_prob = 0.0;
    faults.latch_write_prob = 0.0;
  }
  flag("--faults=" + faults.Describe());

  return scenario;
}

}  // namespace sim
}  // namespace dcape
