#ifndef DCAPE_SIM_FAULTY_BACKEND_H_
#define DCAPE_SIM_FAULTY_BACKEND_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "sim/fault_plan.h"
#include "storage/disk_backend.h"

namespace dcape {
namespace sim {

/// A DiskBackend decorator that consults a FaultPlan before every
/// operation: reads can fail transiently or come back truncated, writes
/// can fail transiently or latch broken. Removes and listings pass
/// through — the chaos harness targets the data path, and a run never
/// removes a segment it did not successfully read first.
///
/// Thread-safety matches the inner backend's contract: at most one
/// thread touches a given backend at a time (the SpillStore barriers
/// before any synchronous access), and the plan keys its disk RNG by
/// engine, so a shared plan never races across engines either.
class FaultyBackend : public DiskBackend {
 public:
  FaultyBackend(std::unique_ptr<DiskBackend> inner, FaultPlan* plan,
                EngineId engine);

  Status Write(const std::string& name, std::string_view data) override;
  StatusOr<std::string> Read(const std::string& name) override;
  Status Remove(const std::string& name) override;
  std::vector<std::string> List() const override;

 private:
  std::unique_ptr<DiskBackend> inner_;
  FaultPlan* plan_;
  EngineId engine_;
};

}  // namespace sim
}  // namespace dcape

#endif  // DCAPE_SIM_FAULTY_BACKEND_H_
