#ifndef DCAPE_SIM_INVARIANTS_H_
#define DCAPE_SIM_INVARIANTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dcape {
namespace sim {

/// Collects invariant violations reported by the protocol participants
/// (engines, split hosts, coordinator) during a chaos trial.
///
/// Thread-safe: engines report from pool workers during the parallel
/// phase of a tick. Consumers sort the collected strings before
/// comparing or printing — arrival order across threads is the one thing
/// about a trial that is *not* deterministic.
class InvariantRecorder {
 public:
  void Report(std::string violation) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    violations_.push_back(std::move(violation));
  }

  std::vector<std::string> violations() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return violations_;
  }

  bool empty() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return violations_.empty();
  }

  int64_t count() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int64_t>(violations_.size());
  }

 private:
  mutable Mutex mu_;
  std::vector<std::string> violations_ GUARDED_BY(mu_);
};

}  // namespace sim
}  // namespace dcape

#endif  // DCAPE_SIM_INVARIANTS_H_
