#ifndef DCAPE_DCAPE_H_
#define DCAPE_DCAPE_H_

/// Umbrella header: the public surface of the DCAPE library.
///
/// Everything an embedding program needs to configure, run, and observe
/// one experiment:
///
///   - ClusterConfig + ClusterConfig::Builder  (runtime/cluster_config.h)
///   - Cluster                                 (runtime/cluster.h)
///   - RunResult                               (runtime/run_result.h)
///   - Status / StatusOr                       (common/status.h)
///   - DCAPE_LOG + log levels                  (common/logging.h)
///   - obs::MetricsRegistry / obs::Tracer      (obs/metrics.h, obs/trace.h)
///   - obs::WriteTimeline                      (obs/report.h)
///   - the CLI flag parser used by dcape_run   (runtime/experiment_flags.h)
///
/// Minimal program:
///
///   #include "dcape.h"
///
///   int main() {
///     dcape::ClusterConfig config;
///     config.strategy = dcape::AdaptationStrategy::kLazyDisk;
///     dcape::Cluster cluster(config);
///     dcape::RunResult result = cluster.Run();
///     ...
///   }
///
/// Internal layers (engine/, core/, net/, storage/, join/, tuple/) are
/// reachable through their own headers but are not part of the stable
/// surface.

#include "common/logging.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/strategy.h"
#include "metrics/table_printer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/taxonomy.h"
#include "obs/trace.h"
#include "runtime/cluster.h"
#include "runtime/cluster_config.h"
#include "runtime/experiment_flags.h"
#include "runtime/run_result.h"

#endif  // DCAPE_DCAPE_H_
